// E5 — Single-turn text-to-SQL with schema pruning (paper §1, §3.3).
//
// Evaluates the CodeS-substitute translator on generated NL benchmarks
// over the TPC-H and Internet-log schemas (exact-match and execution-
// match accuracy), and sweeps table width to show that schema pruning
// keeps translation robust and fast on very wide tables. Checks:
//   * single-turn exact accuracy > 80% (the paper's CodeS figure),
//   * execution accuracy >= exact accuracy,
//   * accuracy and latency are stable from 10-column to 2000-column
//     tables (the pruning claim of §3.3).
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "nl2sql/nl_benchmark.h"
#include "storage/memory_store.h"
#include "workload/loggen.h"
#include "workload/tpch.h"

using namespace pixels;
using namespace pixels::bench;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  std::printf("=== E5: text-to-SQL accuracy and schema pruning (§3.3) ===\n\n");

  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  TpchOptions topt;
  topt.scale_factor = 0.002;
  Status st = GenerateTpch(catalog.get(), "tpch", topt);
  LogGenOptions lopt;
  lopt.num_rows = 5000;
  st = GenerateWebLogs(catalog.get(), "logs", lopt);
  (void)st;

  bool ok = true;
  std::printf("%-8s %7s %12s %12s %12s %12s\n", "schema", "cases", "translated",
              "exact", "exec_match", "hard_cases");
  for (const char* db : {"tpch", "logs"}) {
    auto schema = catalog->GetDatabase(db);
    if (!schema.ok()) return 1;
    NlBenchmark bench(**schema, 17);
    auto cases = bench.Generate(300);
    SemanticParser parser(**schema);
    auto synonyms = std::string(db) == "tpch" ? TpchSynonyms() : LogSynonyms();
    for (const auto& [w, t] : synonyms) parser.AddSynonym(w, t);
    auto result = bench.Evaluate(cases, parser, catalog.get(), db);
    size_t hard = 0;
    for (const auto& c : cases) hard += c.hard;
    std::printf("%-8s %7zu %9zu    %8.1f%%  %8.1f%%  %10zu\n", db,
                result.total, result.translated,
                100.0 * result.ExactAccuracy(),
                100.0 * result.ExecutionAccuracy(), hard);
    ok &= Check(result.ExactAccuracy() > 0.80,
                std::string(db) + ": exact accuracy > 80% (paper: CodeS)");
    ok &= Check(result.ExactAccuracy() < 1.0,
                std::string(db) + ": hard paraphrase slice keeps score honest");
    ok &= Check(result.ExecutionAccuracy() >= result.ExactAccuracy() - 0.02,
                std::string(db) + ": execution match >= exact match");
  }

  // ---- wide-table sweep: schema pruning (paper: thousands of columns) ----
  std::printf("\n%-10s %10s %14s\n", "columns", "accuracy", "ms/translation");
  double first_acc = -1, last_acc = -1;
  double last_ms = 0;
  for (int width : {10, 100, 500, 1000, 2000}) {
    DatabaseSchema wide;
    wide.name = "wide";
    TableSchema t;
    t.name = "metrics";
    t.columns.push_back({"host_name", TypeId::kString});
    t.columns.push_back({"cpu_usage", TypeId::kDouble});
    t.columns.push_back({"mem_usage", TypeId::kDouble});
    t.columns.push_back({"sample_date", TypeId::kDate});
    for (int i = 4; i < width; ++i) {
      t.columns.push_back(
          {"padding_metric_" + std::to_string(i), TypeId::kDouble});
    }
    wide.tables.push_back(std::move(t));

    SemanticParser parser(wide);
    const char* questions[] = {
        "average cpu usage of metrics per host name",
        "maximum mem usage of metrics",
        "how many metrics have cpu usage greater than 90?",
        "total mem usage of metrics after 2024-01-01",
    };
    const char* expected[] = {
        "SELECT host_name, avg(cpu_usage) FROM metrics GROUP BY host_name",
        "SELECT max(mem_usage) FROM metrics",
        "SELECT count(*) FROM metrics WHERE cpu_usage > 90",
        "SELECT sum(mem_usage) FROM metrics WHERE sample_date > DATE "
        "'2024-01-01'",
    };
    int correct = 0;
    auto start = std::chrono::steady_clock::now();
    const int kRepeats = 5;
    for (int r = 0; r < kRepeats; ++r) {
      for (int qi = 0; qi < 4; ++qi) {
        auto tr = parser.Translate(questions[qi]);
        if (r == 0 && tr.ok() &&
            NlBenchmark::SqlEquivalent(tr->sql, expected[qi])) {
          ++correct;
        }
      }
    }
    double ms = MillisSince(start) / (4.0 * kRepeats);
    double acc = correct / 4.0;
    if (first_acc < 0) first_acc = acc;
    last_acc = acc;
    last_ms = ms;
    std::printf("%-10d %9.0f%% %12.2fms\n", width, acc * 100, ms);
  }
  ok &= Check(first_acc == 1.0 && last_acc == 1.0,
              "accuracy unaffected by table width (schema pruning)");
  ok &= Check(last_ms < 100.0,
              "translation stays fast on 2000-column tables");

  std::printf("\nE5 overall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
