// E8 — Lazy scale-in and best-of-effort backfill (paper §3.2, footnote 2).
//
// A periodic-spike workload exposes eager scale-in: releasing VMs right
// before the next spike forces repeated re-provisioning and queueing.
// Compares eager vs lazy scale-in policies, then shows the second effect
// the paper describes: a backlog of best-of-effort queries absorbs idle
// capacity below the low watermark, avoiding unnecessary scale-in at very
// little extra cost. Checks:
//   * lazy scale-in performs fewer scale-in events and lowers spike p95,
//   * a best-of-effort backlog reduces scale-in events further while its
//     own cost stays small.
#include <cstdio>

#include "bench_util.h"
#include "workload/arrivals.h"

using namespace pixels;
using namespace pixels::bench;

namespace {

struct PolicyResult {
  PendingStats interactive;
  PendingStats best_effort;
  int scale_in = 0;
  int scale_out = 0;
  double vm_cost = 0;
  double best_effort_cost = 0;
};

PolicyResult RunPolicy(SimTime scale_in_cooldown, size_t best_effort_jobs) {
  // Interactive spikes: 1.5 q/s for 90 s every 6 minutes, base 0.05 q/s.
  Random rng(31);
  auto arrivals = PeriodicSpikeArrivals(&rng, 0.05, 1.5, 6 * kMinutes,
                                        90 * kSeconds, 36 * kMinutes);
  std::vector<QuerySpec> specs;
  std::vector<ServiceLevel> levels;
  Random work_rng(37);
  for (size_t i = 0; i < arrivals.size(); ++i) {
    QuerySpec spec;
    spec.work_vcpu_seconds = work_rng.UniformDouble(8.0, 24.0);
    spec.bytes_to_scan = static_cast<uint64_t>(spec.work_vcpu_seconds * 1e8);
    specs.push_back(spec);
    levels.push_back(ServiceLevel::kRelaxed);
  }
  const size_t interactive_count = arrivals.size();
  // Best-of-effort batch jobs submitted up front.
  for (size_t i = 0; i < best_effort_jobs; ++i) {
    arrivals.push_back(static_cast<SimTime>(i));  // all at t~0
    QuerySpec spec;
    spec.work_vcpu_seconds = 40.0;
    spec.bytes_to_scan = static_cast<uint64_t>(spec.work_vcpu_seconds * 1e8);
    specs.push_back(spec);
    levels.push_back(ServiceLevel::kBestEffort);
  }
  // Re-sort arrival order jointly.
  std::vector<size_t> order(arrivals.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return arrivals[a] < arrivals[b]; });
  std::vector<SimTime> sorted_arrivals;
  std::vector<QuerySpec> sorted_specs;
  std::vector<ServiceLevel> sorted_levels;
  std::vector<bool> is_interactive;
  for (size_t idx : order) {
    sorted_arrivals.push_back(arrivals[idx]);
    sorted_specs.push_back(specs[idx]);
    sorted_levels.push_back(levels[idx]);
    is_interactive.push_back(idx < interactive_count);
  }

  CoordinatorParams cparams;
  cparams.vm.initial_vms = 3;
  cparams.vm.slots_per_vm = 4;
  cparams.vm.max_vms = 24;
  cparams.vm.high_watermark = 5.0;
  cparams.vm.low_watermark = 0.75;
  cparams.vm.scale_in_cooldown = scale_in_cooldown;
  QueryServerParams sparams;
  sparams.relaxed_grace_period = 3 * kMinutes;

  // Short drain: scale events are compared over the workload window, not
  // over hours of idle tail.
  auto result = RunScenario(cparams, sparams, sorted_arrivals, sorted_specs,
                            sorted_levels, 10 * kMinutes);

  PolicyResult out;
  std::vector<QueryOutcome> interactive, best;
  for (size_t i = 0; i < result.outcomes.size(); ++i) {
    (is_interactive[i] ? interactive : best).push_back(result.outcomes[i]);
  }
  out.interactive = Summarize(interactive);
  out.best_effort = Summarize(best);
  out.scale_in = result.scale_in_events;
  out.scale_out = result.scale_out_events;
  out.vm_cost = result.vm_cost_usd;
  for (const auto& o : best) out.best_effort_cost += o.compute_cost_usd;
  return out;
}

}  // namespace

int main() {
  std::printf("=== E8: lazy scale-in + best-of-effort backfill (§3.2 fn.2) ===\n\n");

  PolicyResult eager = RunPolicy(/*cooldown=*/0, /*best_effort_jobs=*/0);
  PolicyResult lazy = RunPolicy(/*cooldown=*/4 * kMinutes, 0);
  PolicyResult lazy_backfill = RunPolicy(4 * kMinutes, 40);

  std::printf("%-16s %10s %10s %12s %14s %12s\n", "policy", "scale_in",
              "scale_out", "spike_p95", "vm_cost$", "be_jobs");
  auto print_row = [](const char* name, const PolicyResult& r) {
    std::printf("%-16s %10d %10d %10.1fs %14.4f %7zu/%zu\n", name, r.scale_in,
                r.scale_out, r.interactive.p95_pending_s, r.vm_cost,
                r.best_effort.finished, r.best_effort.total);
  };
  print_row("eager", eager);
  print_row("lazy", lazy);
  print_row("lazy+backfill", lazy_backfill);
  std::printf("\nbest-effort compute cost (backfill run): $%.6f\n",
              lazy_backfill.best_effort_cost);

  bool ok = true;
  ok &= Check(lazy.scale_in < eager.scale_in,
              "lazy policy performs fewer scale-in events");
  ok &= Check(lazy.interactive.p95_pending_s <=
                  eager.interactive.p95_pending_s + 1.0,
              "lazy policy does not worsen interactive p95 pending");
  ok &= Check(lazy_backfill.scale_in <= lazy.scale_in,
              "best-of-effort backlog absorbs would-be scale-ins");
  ok &= Check(lazy_backfill.best_effort.finished > 0,
              "best-of-effort jobs make progress in idle windows");
  ok &= Check(lazy_backfill.best_effort_cost < lazy_backfill.vm_cost * 0.25,
              "best-of-effort work adds very little extra cost (paper)");

  std::printf("\nE8 overall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
