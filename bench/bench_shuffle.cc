// E15 — Multi-stage CF shuffle: exchange overhead, hedged straggler
// mitigation, and billing identity.
//
// A TPC-H equi-join (lineitem x orders) runs as a scan->shuffle->join
// DAG of CF stages, swept over
//   partitions x hedging x straggler rate,
// with stragglers injected as deterministic per-path slow rules on the
// join stage's task attempts (simulated milliseconds — the same model
// FaultInjectingStorage::PathSlowMs feeds in production). For every
// configuration the bench checks:
//   * result rows and scanned bytes byte-identical to the single-stage
//     CF fleet (exchange traffic is intermediate, never billed),
//   * hedge counters zero when no straggler is injected,
//   * with stragglers, hedging recovers >= half of the injected p99
//     latency relative to the unhedged run,
//   * the exchange prefix is swept clean after every run.
//
// The full run prints the sweep tables and writes BENCH_shuffle.json
// (machine-readable, checked in). `--shuffle-smoke` runs the CI gate:
// one small configuration exercising every invariant above.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/event_log.h"
#include "exec/executor.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "storage/memory_store.h"
#include "turbo/cf_worker.h"
#include "workload/tpch.h"

using namespace pixels;
using namespace pixels::bench;

namespace {

const char* kJoinSql =
    "SELECT o_orderpriority, count(*) AS n, sum(l_extendedprice) AS rev "
    "FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey "
    "GROUP BY o_orderpriority ORDER BY o_orderpriority";

std::shared_ptr<Catalog> BuildCatalog(double scale_factor) {
  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  TpchOptions topt;
  topt.scale_factor = scale_factor;
  topt.rows_per_file = 2000;
  if (!GenerateTpch(catalog.get(), "tpch", topt).ok()) return nullptr;
  return catalog;
}

PlanPtr PlanJoin(Catalog* catalog) {
  auto plan = PlanQuery(kJoinSql, *catalog, "tpch");
  if (!plan.ok()) return nullptr;
  auto optimized = Optimize(std::move(plan).ValueOrDie(), *catalog);
  return optimized.ok() ? *optimized : nullptr;
}

std::vector<std::string> ResultRows(const Table& t) {
  std::vector<std::string> rows;
  for (const auto& b : t.batches()) {
    for (size_t r = 0; r < b->num_rows(); ++r)
      rows.push_back(b->RowToString(r));
  }
  return rows;
}

/// Direct (VM-path) execution of the join: the bytes_scanned reference.
/// Each base table is scanned exactly once — which is also what the
/// shuffle DAG does. (The single-stage fleet REPLICATES the build-side
/// scan per worker, so its billed bytes grow with the fleet; the shuffle
/// comparison therefore pins the VM identity, not the replicated one.)
/// Runtime filters off to match the shuffle configurations.
uint64_t DirectBytes(Catalog* catalog, std::vector<std::string>* rows) {
  ExecContext ctx;
  ctx.catalog = catalog;
  ctx.runtime_filters = false;
  auto r = ExecutePlan(PlanJoin(catalog), &ctx);
  if (!r.ok()) return 0;
  if (rows != nullptr) *rows = ResultRows(**r);
  return ctx.bytes_scanned.load();
}

struct RunOut {
  bool ok = false;
  bool shuffle_used = false;
  std::vector<std::string> rows;
  uint64_t bytes_scanned = 0;
  int hedges_fired = 0;
  int hedges_won = 0;
  uint64_t exchange_written = 0;
  uint64_t exchange_read = 0;
  double critical_path_ms = 0;
  double p99_final_stage_ms = 0;
  size_t objects_swept = 0;
  size_t leaked_objects = 0;
};

/// --verbose: replay the run's event log as a per-stage timeline.
bool g_verbose = false;

void PrintTimeline(const EventLog& log) {
  for (const EventRecord& e : log.Snapshot()) {
    if (e.type == "shuffle.stage_start") {
      std::printf("  [%8.1fms] stage %lld (%s) start, %lld tasks\n",
                  static_cast<double>(e.time),
                  static_cast<long long>(e.fields.Get("stage").AsInt()),
                  e.fields.Get("name").AsString().c_str(),
                  static_cast<long long>(e.fields.Get("tasks").AsInt()));
    } else if (e.type == "shuffle.task_commit") {
      std::printf("  [%8.1fms]   s%lld/t%lld commit winner=%s "
                  "completion=%.1fms retries=%lld\n",
                  static_cast<double>(e.time),
                  static_cast<long long>(e.fields.Get("stage").AsInt()),
                  static_cast<long long>(e.fields.Get("task").AsInt()),
                  e.fields.Get("winner").AsString().c_str(),
                  e.fields.Get("completion_ms").AsNumber(),
                  static_cast<long long>(e.fields.Get("retries").AsInt()));
    } else if (e.type == "shuffle.stage_done") {
      std::printf("  [%8.1fms] stage %lld done wall=%.1fms hedges=%lld/%lld "
                  "bytes=%lld\n",
                  static_cast<double>(e.time),
                  static_cast<long long>(e.fields.Get("stage").AsInt()),
                  e.fields.Get("wall_ms").AsNumber(),
                  static_cast<long long>(e.fields.Get("hedges_won").AsInt()),
                  static_cast<long long>(e.fields.Get("hedges_fired").AsInt()),
                  static_cast<long long>(e.fields.Get("bytes").AsInt()));
    }
  }
}

/// One CF execution. `straggled` lists join-stage task ids whose every
/// attempt (but never the hedge duplicate) is slowed by `slow_ms`
/// simulated milliseconds.
RunOut RunConfig(Catalog* catalog, bool shuffle, int partitions, bool hedging,
                 const std::vector<int>& straggled, double slow_ms) {
  CfWorkerOptions options;
  options.num_workers = 4;
  options.runtime_filters = false;  // per-topology pruning differs; see E13
  options.shuffle.enabled = shuffle;
  options.shuffle.partitions = partitions;
  options.shuffle.producer_tasks = 4;
  options.shuffle.hedging = hedging;
  if (!straggled.empty()) {
    options.shuffle.path_slow_ms = [straggled, slow_ms](const std::string& p) {
      for (int t : straggled) {
        if (p.find("s2/t" + std::to_string(t) + ".a") != std::string::npos)
          return slow_ms;
      }
      return 0.0;
    };
  }

  EventLog log;
  if (g_verbose && shuffle) options.event_log = &log;

  RunOut out;
  auto exec = ExecuteWithCfPushdown(PlanJoin(catalog), catalog, options);
  if (!exec.ok()) {
    std::printf("run failed: %s\n", exec.status().ToString().c_str());
    return out;
  }
  if (g_verbose && shuffle) {
    std::printf("timeline: partitions=%d hedging=%d stragglers=%zu\n",
                partitions, hedging ? 1 : 0, straggled.size());
    PrintTimeline(log);
  }
  out.ok = true;
  out.shuffle_used = exec->shuffle_used;
  out.rows = ResultRows(*exec->result);
  out.bytes_scanned = exec->bytes_scanned;
  out.hedges_fired = exec->hedges_fired;
  out.hedges_won = exec->hedges_won;
  out.exchange_written = exec->shuffle_bytes_written;
  out.exchange_read = exec->shuffle_bytes_read;
  out.critical_path_ms = exec->shuffle_critical_path_ms;
  out.objects_swept = exec->shuffle_objects_swept;
  auto leftovers = catalog->storage()->List("intermediate/view.shuffle");
  out.leaked_objects = leftovers.ok() ? leftovers->size() : 1;
  return out;
}

/// Join-stage task completion p99 is not exported through CfExecution, so
/// approximate it with the critical path: the DAG makespan is dominated
/// by the slowest join task, which is exactly what hedging shortens.
double P99(const RunOut& o) { return o.critical_path_ms; }

struct SweepRow {
  int partitions = 0;
  bool hedging = false;
  double rate = 0;
  RunOut run;
  double recovery_pct = -1;  // vs unhedged, when stragglers were injected
  bool identical = false;
  bool bytes_equal = false;
};

std::vector<int> StraggledTasks(int partitions, double rate) {
  // Deterministic straggler set: the first ceil(rate * partitions) tasks.
  std::vector<int> out;
  const int n = static_cast<int>(rate * partitions + 0.999);
  for (int t = 0; t < n && t < partitions; ++t) out.push_back(t);
  return out;
}

constexpr double kSlowMs = 30000.0;  // 30 s simulated straggler penalty

int RunSweep(const char* out_path) {
  std::printf("=== E15: CF shuffle (partitions x hedging x stragglers) ===\n\n");
  auto catalog = BuildCatalog(0.005);
  if (catalog == nullptr) return 1;

  std::vector<std::string> direct_rows;
  const uint64_t direct_bytes = DirectBytes(catalog.get(), &direct_rows);
  const RunOut single =
      RunConfig(catalog.get(), /*shuffle=*/false, 0, false, {}, 0);
  if (!single.ok || direct_bytes == 0) return 1;
  std::printf("direct (VM-path) baseline: %llu bytes scanned "
              "(single-stage fleet: %llu — build side replicated per "
              "worker)\n\n",
              static_cast<unsigned long long>(direct_bytes),
              static_cast<unsigned long long>(single.bytes_scanned));

  std::printf("%5s %6s %6s %7s %7s %10s %10s %12s %12s %9s\n", "parts",
              "hedge", "rate", "fired", "won", "xchg_wr", "xchg_rd",
              "critpath_ms", "p99_ms", "recov%");

  bool ok = true;
  std::vector<SweepRow> rows;
  for (int partitions : {2, 4, 8}) {
    for (double rate : {0.0, 0.125, 0.25}) {
      const auto straggled = StraggledTasks(partitions, rate);
      // Unhedged first: the recovery denominator.
      SweepRow off;
      off.partitions = partitions;
      off.hedging = false;
      off.rate = rate;
      off.run = RunConfig(catalog.get(), true, partitions, false, straggled,
                          kSlowMs);
      SweepRow on;
      on.partitions = partitions;
      on.hedging = true;
      on.rate = rate;
      on.run = RunConfig(catalog.get(), true, partitions, true, straggled,
                         kSlowMs);
      for (SweepRow* row : {&off, &on}) {
        ok &= row->run.ok && row->run.shuffle_used;
        row->identical =
            row->run.rows == single.rows && row->run.rows == direct_rows;
        row->bytes_equal = row->run.bytes_scanned == direct_bytes;
        ok &= Check(row->identical,
                    "rows identical to single-stage and VM path (P=" +
                        std::to_string(partitions) + ")");
        ok &= Check(row->bytes_equal, "bytes identical to the VM path");
        ok &= Check(row->run.leaked_objects == 0, "exchange prefix swept");
      }
      if (!straggled.empty() && partitions >= 4) {
        // Recovery: how much of the injected p99 inflation hedging undid.
        const double injected = P99(off.run) - P99(on.run);
        const double baselineless = P99(off.run);
        on.recovery_pct = baselineless > 0 ? 100.0 * injected / baselineless
                                           : 0;
        ok &= Check(on.run.hedges_fired >= static_cast<int>(straggled.size()),
                    "hedges fired for every straggler");
        ok &= Check(on.run.hedges_won >= 1, "a hedge won the commit race");
        ok &= Check(P99(on.run) * 2 <= P99(off.run),
                    "hedging recovered >= half the injected p99 latency");
      } else if (!straggled.empty()) {
        // P=2 with one straggler = half the stage is slow: a quantile
        // cutoff cannot (and should not) separate that from a uniformly
        // slow stage, so only the identity invariants apply.
      } else {
        ok &= Check(off.run.hedges_fired == 0 && on.run.hedges_fired == 0,
                    "no straggler -> no hedge fires");
      }
      for (const SweepRow& row : {off, on}) {
        std::printf("%5d %6s %5.0f%% %7d %7d %10llu %10llu %12.1f %12.1f ",
                    row.partitions, row.hedging ? "on" : "off",
                    row.rate * 100, row.run.hedges_fired, row.run.hedges_won,
                    static_cast<unsigned long long>(row.run.exchange_written),
                    static_cast<unsigned long long>(row.run.exchange_read),
                    row.run.critical_path_ms, P99(row.run));
        if (row.recovery_pct >= 0) {
          std::printf("%8.1f%%\n", row.recovery_pct);
        } else {
          std::printf("%9s\n", "-");
        }
        rows.push_back(row);
      }
    }
  }

  FILE* f = std::fopen(out_path, "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"shuffle\",\n");
    std::fprintf(f, "  \"query\": \"lineitem x orders group-by\",\n");
    std::fprintf(f, "  \"straggler_slow_ms\": %.0f,\n", kSlowMs);
    std::fprintf(f, "  \"vm_path_bytes\": %llu,\n",
                 static_cast<unsigned long long>(direct_bytes));
    std::fprintf(f, "  \"single_stage_bytes\": %llu,\n",
                 static_cast<unsigned long long>(single.bytes_scanned));
    std::fprintf(f, "  \"sweep\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& r = rows[i];
      std::fprintf(
          f,
          "    {\"partitions\": %d, \"hedging\": %s, \"straggler_rate\": "
          "%.3f, \"hedges_fired\": %d, \"hedges_won\": %d, "
          "\"exchange_written\": %llu, \"exchange_read\": %llu, "
          "\"critical_path_ms\": %.1f, \"recovery_pct\": %.1f, "
          "\"identical\": %s, \"bytes_equal\": %s}%s\n",
          r.partitions, r.hedging ? "true" : "false", r.rate,
          r.run.hedges_fired, r.run.hedges_won,
          static_cast<unsigned long long>(r.run.exchange_written),
          static_cast<unsigned long long>(r.run.exchange_read),
          r.run.critical_path_ms, r.recovery_pct,
          r.identical ? "true" : "false", r.bytes_equal ? "true" : "false",
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"overall\": \"%s\"\n}\n",
                 ok ? "PASS" : "FAIL");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
  }

  std::printf("\nE15 overall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int RunSmoke() {
  std::printf("=== E15 smoke: shuffle identity + hedged straggler (CI) ===\n");
  auto catalog = BuildCatalog(0.002);
  if (catalog == nullptr) return 1;

  std::vector<std::string> direct_rows;
  const uint64_t direct_bytes = DirectBytes(catalog.get(), &direct_rows);
  const RunOut single =
      RunConfig(catalog.get(), /*shuffle=*/false, 0, false, {}, 0);
  const RunOut clean = RunConfig(catalog.get(), true, 4, true, {}, 0);
  const RunOut unhedged = RunConfig(catalog.get(), true, 4, false, {0},
                                    kSlowMs);
  const RunOut hedged = RunConfig(catalog.get(), true, 4, true, {0}, kSlowMs);

  bool ok = true;
  ok &= Check(direct_bytes > 0 && single.ok && clean.ok && unhedged.ok &&
                  hedged.ok,
              "all configurations executed");
  if (!ok) return 1;
  ok &= Check(clean.shuffle_used && hedged.shuffle_used,
              "shuffle DAG was used");
  ok &= Check(clean.rows == direct_rows && clean.rows == single.rows &&
                  hedged.rows == direct_rows && unhedged.rows == direct_rows,
              "rows byte-identical across VM/single-stage/shuffle/hedged");
  ok &= Check(clean.bytes_scanned == direct_bytes &&
                  hedged.bytes_scanned == direct_bytes &&
                  unhedged.bytes_scanned == direct_bytes,
              "scanned bytes identical to the VM path (exchange traffic "
              "never billed)");
  ok &= Check(clean.hedges_fired == 0, "no straggler -> no hedge");
  ok &= Check(hedged.hedges_fired >= 1 && hedged.hedges_won >= 1,
              "straggler was hedged and the hedge won");
  ok &= Check(hedged.critical_path_ms * 2 <= unhedged.critical_path_ms,
              "hedging recovered >= half the injected p99 latency");
  ok &= Check(clean.leaked_objects == 0 && hedged.leaked_objects == 0 &&
                  unhedged.leaked_objects == 0,
              "exchange prefix swept after every run");
  ok &= Check(clean.objects_swept > 0, "the sweep had real objects to GC");

  std::printf("E15 smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_shuffle.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shuffle-smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--verbose") == 0) g_verbose = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  return smoke ? RunSmoke() : RunSweep(out_path);
}
