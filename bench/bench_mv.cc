// E10 — Materialized-view reuse (paper §3.1 generalized to cross-query
// reuse).
//
// A repeated dashboard-style workload is replayed over real TPC-H data
// behind a GET-counting object store, sweeping the share of repeated
// queries × the service level. For each cell the bench reports the MV
// hit rate, object-store GETs, and the total bill, and checks:
//   * no repeats → no hits (the store never invents sharing),
//   * hit rate grows with the repeat share,
//   * GETs and the total bill fall monotonically as the repeat share
//     grows (hits scan nothing and bill at the reuse fraction),
//   * within a cell, hits are strictly cheaper than misses.
//
// `--mv-smoke` runs the CI gate instead: a repeated identical Immediate
// query must be answered with ZERO object-store GETs and a strictly
// lower bill than the first run.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "storage/memory_store.h"
#include "storage/object_store.h"
#include "workload/tpch.h"

using namespace pixels;
using namespace pixels::bench;

namespace {

struct Cell {
  double repeat_share = 0;
  const char* level_name = "";
  size_t queries = 0;
  size_t hits = 0;
  uint64_t gets = 0;
  uint64_t saved_bytes = 0;
  double billed = 0;
  double miss_bill = 0;  // mean bill of a miss
  double hit_bill = 0;   // mean bill of a hit
};

/// Distinct dashboard queries: one template, varying literal → distinct
/// fingerprints.
std::string QueryAt(int i) {
  return "SELECT l_returnflag, count(*) AS n, sum(l_quantity) AS q FROM "
         "lineitem WHERE l_quantity < " +
         std::to_string(10 + i % 40) + " GROUP BY l_returnflag";
}

Cell RunCell(const std::shared_ptr<MemoryStore>& base, double repeat_share,
             ServiceLevel level, const char* level_name, int num_queries) {
  // Fresh engine per cell over the same base data; GETs counted here.
  auto object_store = std::make_shared<ObjectStore>(base);
  auto catalog = std::make_shared<Catalog>(object_store);
  if (!catalog->LoadFromStorage("meta/catalog.json").ok()) return {};

  SimClock clock;
  Random rng(42);
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 1;
  cparams.vm.slots_per_vm = 2;
  cparams.vm.monitor_interval = 5 * kSeconds;
  cparams.chunk_cache_bytes = 0;  // isolate MV reuse from chunk caching
  cparams.mv_store_bytes = 256ULL << 20;
  Coordinator coordinator(&clock, &rng, cparams, catalog);
  QueryServerParams sparams;
  QueryServer server(&clock, &coordinator, sparams);

  Cell cell;
  cell.repeat_share = repeat_share;
  cell.level_name = level_name;
  cell.queries = static_cast<size_t>(num_queries);

  Random workload_rng(7);
  std::vector<std::string> history;
  size_t miss_count = 0, hit_count = 0;
  int fresh = 0;
  for (int i = 0; i < num_queries; ++i) {
    std::string sql;
    if (!history.empty() &&
        workload_rng.UniformDouble(0.0, 1.0) < repeat_share) {
      sql = history[static_cast<size_t>(workload_rng.Uniform(
          0, static_cast<int64_t>(history.size()) - 1))];
    } else {
      sql = QueryAt(fresh++);
    }
    history.push_back(sql);

    Submission s;
    s.level = level;
    s.query.sql = sql;
    s.query.db = "tpch";
    s.query.execute_real = true;
    double bill = 0;
    bool mv_hit = false;
    server.Submit(s, [&](const SubmissionRecord& srec, const QueryRecord&) {
      bill = srec.bill_usd;
      mv_hit = srec.mv_hit;
    });
    clock.RunUntil(clock.Now() + 10 * kMinutes);
    cell.billed += bill;
    if (mv_hit) {
      ++hit_count;
      cell.hit_bill += bill;
    } else {
      ++miss_count;
      cell.miss_bill += bill;
    }
  }
  cell.hits = hit_count;
  if (hit_count > 0) cell.hit_bill /= static_cast<double>(hit_count);
  if (miss_count > 0) cell.miss_bill /= static_cast<double>(miss_count);
  cell.gets = object_store->stats().get_requests;
  cell.saved_bytes = coordinator.mv_store()->stats().saved_scan_bytes;
  server.Stop();
  coordinator.Stop();
  clock.RunAll();
  return cell;
}

int RunSweep() {
  std::printf("=== E10: materialized-view reuse (repeat share x level) ===\n\n");

  auto base = std::make_shared<MemoryStore>();
  {
    Catalog catalog(base);
    TpchOptions topt;
    topt.scale_factor = 0.001;
    topt.rows_per_file = 2000;
    if (!GenerateTpch(&catalog, "tpch", topt).ok()) return 1;
    if (!catalog.SaveToStorage("meta/catalog.json").ok()) return 1;
  }

  const double shares[] = {0.0, 0.25, 0.5, 0.75};
  struct LevelRow {
    ServiceLevel level;
    const char* name;
  };
  const LevelRow levels[] = {{ServiceLevel::kImmediate, "immediate"},
                             {ServiceLevel::kRelaxed, "relaxed"},
                             {ServiceLevel::kBestEffort, "best-effort"}};
  const int kQueries = 40;

  std::printf("%-12s %8s %9s %7s %8s %12s %12s %12s\n", "level", "repeat",
              "hit_rate", "gets", "saved_MB", "billed_usd", "bill/miss",
              "bill/hit");
  std::vector<std::vector<Cell>> table;
  for (const auto& lvl : levels) {
    std::vector<Cell> row;
    for (double share : shares) {
      Cell c = RunCell(base, share, lvl.level, lvl.name, kQueries);
      std::printf("%-12s %7.0f%% %8.1f%% %7llu %8.2f %12.8f %12.8f %12.8f\n",
                  c.level_name, share * 100,
                  100.0 * static_cast<double>(c.hits) /
                      static_cast<double>(c.queries),
                  static_cast<unsigned long long>(c.gets),
                  static_cast<double>(c.saved_bytes) / 1e6, c.billed,
                  c.miss_bill, c.hit_bill);
      row.push_back(c);
    }
    table.push_back(row);
  }
  std::printf("\n");

  bool ok = true;
  for (const auto& row : table) {
    const std::string name = row[0].level_name;
    ok &= Check(row[0].hits == 0,
                name + ": zero repeats -> zero MV hits");
    ok &= Check(row[1].hits < row[2].hits && row[2].hits < row[3].hits,
                name + ": hit count grows with the repeat share");
    ok &= Check(row[0].gets > row[1].gets && row[1].gets > row[2].gets &&
                    row[2].gets > row[3].gets,
                name + ": object-store GETs fall as repeats grow");
    ok &= Check(row[0].billed > row[1].billed &&
                    row[1].billed > row[2].billed &&
                    row[2].billed > row[3].billed,
                name + ": total bill falls as repeats grow");
    for (size_t i = 1; i < row.size(); ++i) {
      ok &= Check(row[i].hit_bill < row[i].miss_bill,
                  name + ": hits bill strictly less than misses (share " +
                      std::to_string(static_cast<int>(
                          row[i].repeat_share * 100)) +
                      "%)");
    }
  }

  std::printf("\nE10 overall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int RunSmoke() {
  std::printf("=== E10 smoke: repeated Immediate query (CI gate) ===\n");
  auto base = std::make_shared<MemoryStore>();
  {
    Catalog catalog(base);
    TpchOptions topt;
    topt.scale_factor = 0.001;
    topt.rows_per_file = 2000;
    if (!GenerateTpch(&catalog, "tpch", topt).ok()) return 1;
    if (!catalog.SaveToStorage("meta/catalog.json").ok()) return 1;
  }
  auto object_store = std::make_shared<ObjectStore>(base);
  auto catalog = std::make_shared<Catalog>(object_store);
  if (!catalog->LoadFromStorage("meta/catalog.json").ok()) return 1;

  SimClock clock;
  Random rng(42);
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 1;
  cparams.vm.slots_per_vm = 2;
  cparams.vm.monitor_interval = 5 * kSeconds;
  cparams.chunk_cache_bytes = 0;
  cparams.mv_store_bytes = 256ULL << 20;
  Coordinator coordinator(&clock, &rng, cparams, catalog);
  QueryServer server(&clock, &coordinator, {});

  auto run = [&] {
    Submission s;
    s.level = ServiceLevel::kImmediate;
    s.query.sql =
        "SELECT l_returnflag, count(*) AS n FROM lineitem GROUP BY "
        "l_returnflag";
    s.query.db = "tpch";
    s.query.execute_real = true;
    struct Out {
      double bill = -1;
      bool mv_hit = false;
      uint64_t gets = 0;
    } out;
    const uint64_t before = object_store->stats().get_requests;
    server.Submit(s, [&out](const SubmissionRecord& srec,
                            const QueryRecord&) {
      out.bill = srec.bill_usd;
      out.mv_hit = srec.mv_hit;
    });
    clock.RunUntil(clock.Now() + 10 * kMinutes);
    out.gets = object_store->stats().get_requests - before;
    return out;
  };

  auto first = run();
  auto second = run();
  std::printf("first : gets=%llu bill=%.8f mv_hit=%d\n",
              static_cast<unsigned long long>(first.gets), first.bill,
              first.mv_hit);
  std::printf("second: gets=%llu bill=%.8f mv_hit=%d\n",
              static_cast<unsigned long long>(second.gets), second.bill,
              second.mv_hit);

  bool ok = true;
  ok &= Check(first.gets > 0 && first.bill > 0 && !first.mv_hit,
              "first run scans the object store and bills in full");
  ok &= Check(second.mv_hit, "second run is an MV hit");
  ok &= Check(second.gets == 0,
              "second run issues ZERO object-store GETs");
  ok &= Check(second.bill > 0 && second.bill < first.bill,
              "second run bills strictly less (and not zero)");

  server.Stop();
  coordinator.Stop();
  clock.RunAll();
  std::printf("E10 smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--mv-smoke") == 0) {
    return RunSmoke();
  }
  return RunSweep();
}
