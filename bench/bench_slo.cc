// E17 — SLO compliance monitoring & adaptive best-effort watermarks.
//
// Bursty traffic (Poisson base + periodic Immediate spikes) is driven
// through the query server with a best-effort time-to-start grace of
// 2 minutes, four times:
//
//   static      — static best-effort watermark, event log off,
//   static+log  — same knobs with the admission audit log on (twice, to
//                 compare exports byte-for-byte),
//   adaptive    — adaptive watermarks fed by the SLO monitor's sliding
//                 windows, event log on.
//
// With the static gate, held best-effort work is invisible to the
// autoscaler and waits out the Immediate spikes; violations pile up.
// The adaptive controller raises the gate while the windowed violation
// rate is over budget (or holds outlive the grace), the backlog becomes
// visible queue depth, the cluster scales out, and time-to-start drops.
//
// Checked invariants:
//
//   * SLO exactness: per level `met + violated + excluded == settled`,
//     and every submission settles exactly once with nothing cancelled,
//   * the event log is an observer: bills/bytes/states are identical
//     with the log on or off, and two identical runs export
//     byte-identical JSONL,
//   * adaptive watermarks re-time work but never re-price it:
//     bills/bytes identical to the static run,
//   * (full run) adaptive cuts the best-effort violation rate vs the
//     static gate on the same trace.
//
// The full run writes BENCH_slo.json (checked in). `--slo-smoke` runs a
// scaled-down configuration as the CI Release gate.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/event_log.h"
#include "workload/arrivals.h"

using namespace pixels;
using namespace pixels::bench;

namespace {

constexpr ServiceLevel kLevels[] = {ServiceLevel::kImmediate,
                                    ServiceLevel::kRelaxed,
                                    ServiceLevel::kBestEffort};

struct Schedule {
  std::vector<SimTime> arrivals;
  std::vector<QuerySpec> specs;
  std::vector<ServiceLevel> levels;
};

/// Bursty traffic: Poisson base load with periodic Immediate-heavy
/// spikes, seeded so every run replays the identical trace.
Schedule MakeSchedule(uint64_t seed, double base_rate, double spike_rate,
                      SimTime duration) {
  Random rng(seed);
  Schedule s;
  s.arrivals = PeriodicSpikeArrivals(&rng, base_rate, spike_rate,
                                     /*period=*/10 * kMinutes,
                                     /*spike_len=*/1 * kMinutes, duration);
  s.specs.reserve(s.arrivals.size());
  s.levels.reserve(s.arrivals.size());
  for (size_t i = 0; i < s.arrivals.size(); ++i) {
    const double u = rng.NextDouble();
    s.levels.push_back(u < 0.3 ? ServiceLevel::kImmediate
                       : u < 0.6 ? ServiceLevel::kRelaxed
                                 : ServiceLevel::kBestEffort);
    QuerySpec q;
    q.bytes_to_scan =
        static_cast<uint64_t>(rng.UniformDouble(0.2e9, 2.0e9));
    q.work_vcpu_seconds = static_cast<double>(q.bytes_to_scan) / 200e6;
    s.specs.push_back(q);
  }
  return s;
}

struct RunOut {
  std::vector<double> bills;
  std::vector<uint64_t> bytes;
  std::vector<uint8_t> finished;
  size_t settled = 0;
  size_t cancelled = 0;
  double total_billed = 0;
  double vm_cost = 0;
  SloReport report;
  std::string event_log_lines;
  size_t event_log_events = 0;
  double watermark_raises = 0;
  double wall_ms = 0;
};

RunOut RunOne(const Schedule& sched, bool adaptive, bool with_log,
              SimTime drain) {
  const auto wall_start = std::chrono::steady_clock::now();
  SimClock clock;
  Random rng(7);
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 4;
  cparams.vm.slots_per_vm = 4;
  cparams.vm.min_vms = 2;
  cparams.vm.max_vms = 16;
  if (with_log) cparams.event_log_capacity = 1u << 20;
  Coordinator coordinator(&clock, &rng, cparams);
  QueryServerParams sparams;
  sparams.async_dispatch = true;
  sparams.slo.best_effort_grace = 2 * kMinutes;
  sparams.admission.adaptive_watermarks = adaptive;
  // The static base is the cluster-idle threshold (0.75 queries), so the
  // default ceiling (8x base = 6 concurrent queries) cannot cover a
  // 64-slot fleet. Let the controller climb to ~96 in 4-slot steps; the
  // decay path returns to the same 0.75 base either way.
  sparams.admission.adaptive_step = 4.0;
  sparams.admission.adaptive_max_factor = 128.0;
  QueryServer server(&clock, &coordinator, sparams);
  coordinator.Start();

  RunOut out;
  const int64_t session = server.OpenSession();
  const size_t n = sched.arrivals.size();
  out.bills.assign(n, 0);
  out.bytes.assign(n, 0);
  out.finished.assign(n, 0);

  for (size_t i = 0; i < n; ++i) {
    clock.ScheduleAt(sched.arrivals[i], [&, i] {
      Submission s;
      s.level = sched.levels[i];
      s.query = sched.specs[i];
      s.session_id = session;
      server.Submit(
          std::move(s),
          [&, i](const SubmissionRecord& srec, const QueryRecord& qrec) {
            ++out.settled;
            out.bills[i] = srec.bill_usd;
            out.bytes[i] = qrec.bytes_scanned;
            out.finished[i] = qrec.state == QueryState::kFinished ? 1 : 0;
            if (srec.cancelled) ++out.cancelled;
          });
    });
  }

  clock.RunUntil(sched.arrivals.back() + drain);
  out.report = server.SloReport();
  out.total_billed = server.TotalBilledUsd();
  out.vm_cost = coordinator.TotalVmCostUsd();
  out.watermark_raises = server.metrics().Counter("adaptive_watermark_raises");
  server.Stop();
  coordinator.Stop();
  clock.RunAll();
  if (with_log && coordinator.event_log() != nullptr) {
    out.event_log_lines = coordinator.event_log()->ToJsonLines();
    out.event_log_events = coordinator.event_log()->size();
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  return out;
}

/// Per-query bills/bytes/states must match exactly. The billed total is
/// deliberately not compared across modes: it is a running double sum in
/// settle order, and re-timing work reorders the additions.
bool SameBillsAndBytes(const RunOut& a, const RunOut& b) {
  return a.bills == b.bills && a.bytes == b.bytes && a.finished == b.finished;
}

/// violated / (met + violated); 0 when nothing scored.
double ViolationRate(const SloLevelReport& l) {
  const uint64_t scored = l.met + l.violated;
  return scored == 0 ? 0.0
                     : static_cast<double>(l.violated) /
                           static_cast<double>(scored);
}

void PrintRun(const char* name, const RunOut& r) {
  std::printf("\n--- %s ---\n", name);
  std::printf("settled=%zu cancelled=%zu billed=$%.2f vm_cost=$%.2f "
              "watermark_raises=%.0f events=%zu wall=%.0fms\n",
              r.settled, r.cancelled, r.total_billed, r.vm_cost,
              r.watermark_raises, r.event_log_events, r.wall_ms);
  std::printf("%-12s %8s %8s %8s %8s %10s %10s %12s\n", "level", "settled",
              "met", "violated", "excl", "compliance", "viol_rate",
              "p99_wait_ms");
  for (ServiceLevel level : kLevels) {
    const SloLevelReport& l = r.report.Level(level);
    std::printf("%-12s %8llu %8llu %8llu %8llu %10.4f %10.4f %12.0f\n",
                ServiceLevelName(level),
                static_cast<unsigned long long>(l.settled),
                static_cast<unsigned long long>(l.met),
                static_cast<unsigned long long>(l.violated),
                static_cast<unsigned long long>(l.excluded), l.compliance,
                ViolationRate(l), l.window_queue_wait_p99_ms);
  }
}

bool CheckInvariants(const Schedule& sched, const RunOut& st,
                     const RunOut& st_log, const RunOut& st_log2,
                     const RunOut& ad, bool require_improvement) {
  const size_t n = sched.arrivals.size();
  bool ok = true;
  for (const auto* r : {&st, &st_log, &ad}) {
    for (ServiceLevel level : kLevels) {
      const SloLevelReport& l = r->report.Level(level);
      ok &= Check(l.met + l.violated + l.excluded == l.settled,
                  "SLO exactness: met + violated + excluded == settled");
    }
  }
  ok &= Check(st.settled == n && st_log.settled == n && ad.settled == n,
              "every submission settled exactly once");
  ok &= Check(st.cancelled == 0 && st_log.cancelled == 0 && ad.cancelled == 0,
              "nothing cancelled after the full drain");
  ok &= Check(SameBillsAndBytes(st, st_log),
              "event log is an observer: bills/bytes/states unchanged");
  ok &= Check(!st_log.event_log_lines.empty() &&
                  st_log.event_log_lines == st_log2.event_log_lines,
              "identical runs export byte-identical event logs");
  ok &= Check(SameBillsAndBytes(st, ad),
              "adaptive watermarks never re-price: bills/bytes identical");
  ok &= Check(ad.watermark_raises >= 1,
              "adaptive controller actually raised the gate under spikes");
  const double sv = ViolationRate(st.report.Level(ServiceLevel::kBestEffort));
  const double av = ViolationRate(ad.report.Level(ServiceLevel::kBestEffort));
  std::printf("\nbest-effort violation rate: static=%.4f adaptive=%.4f\n",
              sv, av);
  if (require_improvement) {
    ok &= Check(av < sv,
                "adaptive cuts the best-effort violation rate vs static");
  }
  return ok;
}

void WriteJson(const char* out_path, const Schedule& sched, const RunOut& st,
               const RunOut& st_log, const RunOut& ad, bool ok) {
  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"bench\": \"slo\",\n");
  std::fprintf(f, "  \"queries\": %zu,\n", sched.arrivals.size());
  std::fprintf(f, "  \"best_effort_grace_ms\": %lld,\n",
               static_cast<long long>(2 * kMinutes));
  std::fprintf(f, "  \"event_log_observer_identical\": %s,\n",
               SameBillsAndBytes(st, st_log) ? "true" : "false");
  std::fprintf(f, "  \"adaptive_bills_identical\": %s,\n",
               SameBillsAndBytes(st, ad) ? "true" : "false");
  const RunOut* runs[] = {&st, &ad};
  const char* names[] = {"static", "adaptive"};
  std::fprintf(f, "  \"runs\": [\n");
  for (int r = 0; r < 2; ++r) {
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"settled\": %zu, "
                 "\"billed_usd\": %.6f, \"vm_cost_usd\": %.6f, "
                 "\"watermark_raises\": %.0f, \"levels\": {",
                 names[r], runs[r]->settled, runs[r]->total_billed,
                 runs[r]->vm_cost, runs[r]->watermark_raises);
    for (int l = 0; l < 3; ++l) {
      const SloLevelReport& lr = runs[r]->report.Level(kLevels[l]);
      std::fprintf(f,
                   "\"%s\": {\"settled\": %llu, \"met\": %llu, "
                   "\"violated\": %llu, \"excluded\": %llu, "
                   "\"violation_rate\": %.6f}%s",
                   ServiceLevelName(kLevels[l]),
                   static_cast<unsigned long long>(lr.settled),
                   static_cast<unsigned long long>(lr.met),
                   static_cast<unsigned long long>(lr.violated),
                   static_cast<unsigned long long>(lr.excluded),
                   ViolationRate(lr), l < 2 ? ", " : "");
    }
    std::fprintf(f, "}}%s\n", r < 1 ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"overall\": \"%s\"\n}\n", ok ? "PASS" : "FAIL");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);
}

int RunConfigured(const char* title, const Schedule& sched, SimTime drain,
                  bool require_improvement, const char* out_path) {
  std::printf("=== %s ===\n", title);
  std::printf("schedule: %zu queries over %.0f min\n", sched.arrivals.size(),
              static_cast<double>(sched.arrivals.back()) / kMinutes);

  const RunOut st = RunOne(sched, /*adaptive=*/false, /*with_log=*/false,
                           drain);
  PrintRun("static (no event log)", st);
  const RunOut st_log = RunOne(sched, /*adaptive=*/false, /*with_log=*/true,
                               drain);
  PrintRun("static + event log", st_log);
  const RunOut st_log2 = RunOne(sched, /*adaptive=*/false, /*with_log=*/true,
                                drain);
  const RunOut ad = RunOne(sched, /*adaptive=*/true, /*with_log=*/true,
                           drain);
  PrintRun("adaptive watermarks", ad);

  const bool ok =
      CheckInvariants(sched, st, st_log, st_log2, ad, require_improvement);
  if (out_path != nullptr) WriteJson(out_path, sched, st, st_log, ad, ok);
  std::printf("\nE17 overall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_slo.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--slo-smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  if (smoke) {
    // ~2k queries over 15 min: every invariant except the violation-rate
    // improvement (too little traffic for a stable comparison).
    return RunConfigured("E17 smoke: SLO monitor & adaptive watermarks (CI)",
                         MakeSchedule(23, 1.5, 12.0, 15 * kMinutes),
                         /*drain=*/12 * kHours,
                         /*require_improvement=*/false, nullptr);
  }
  // ~17k queries: 1.5/s base + 12/s spikes (1 min every 10) over 2 h —
  // spikes overload the fleet briefly; the base load leaves slack.
  return RunConfigured("E17: SLO compliance & adaptive watermarks",
                       MakeSchedule(23, 1.5, 12.0, 2 * kHours),
                       /*drain=*/48 * kHours,
                       /*require_improvement=*/true, out_path);
}
