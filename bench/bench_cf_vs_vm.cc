// E3 — CF acceleration vs pure-VM vs pure-CF under a workload spike
// (paper §1, §2, §3.1; cost figures from [7]).
//
// The same spike workload runs through three engine configurations:
//   pure-VM : CF disabled, queries queue while the cluster scales;
//   hybrid  : Pixels-Turbo — CF workers absorb the spike until VMs arrive;
//   pure-CF : no VM cluster, every query runs in cloud functions.
// Reports spike-phase latency and total cost, checking the paper's shape:
//   * hybrid removes the queueing spike pure-VM suffers,
//   * pure-CF is fast but its resource unit price is 9-24x the VM price,
//   * hybrid costs far less than pure-CF and close to pure-VM.
#include <cstdio>

#include "bench_util.h"
#include "workload/arrivals.h"

using namespace pixels;
using namespace pixels::bench;

namespace {

struct Config {
  const char* name;
  bool cf_enabled;
  int initial_vms;
  int max_vms;
};

}  // namespace

int main() {
  std::printf("=== E3: pure-VM vs hybrid vs pure-CF (paper §1/§3.1) ===\n\n");

  // Sustained 0.8 q/s for 30 minutes with a 4 q/s spike in minutes 5-7.
  // The sustained phase is what makes the cost comparison meaningful: the
  // paper's point is that CF is 1-2 orders of magnitude more expensive on
  // sustained workloads, while VMs cannot absorb the spike in time.
  Random rng(23);
  auto arrivals = SpikeArrivals(&rng, 0.8, 4.0, 5 * kMinutes, 2 * kMinutes,
                                30 * kMinutes);
  std::vector<QuerySpec> specs;
  Random work_rng(29);
  for (size_t i = 0; i < arrivals.size(); ++i) {
    QuerySpec spec;
    spec.work_vcpu_seconds = work_rng.UniformDouble(20.0, 60.0);
    spec.bytes_to_scan = static_cast<uint64_t>(spec.work_vcpu_seconds * 1e8);
    specs.push_back(spec);
  }

  const Config configs[] = {
      {"pure-VM", false, 8, 32},
      {"hybrid", true, 8, 32},
      {"pure-CF", true, 0, 0},
  };

  struct Row {
    PendingStats stats;
    double vm_cost, cf_cost;
    double spike_p95;
  };
  Row rows[3];

  for (int c = 0; c < 3; ++c) {
    CoordinatorParams cparams;
    cparams.vm.initial_vms = configs[c].initial_vms;
    cparams.vm.min_vms = configs[c].initial_vms == 0 ? 0 : 1;
    cparams.vm.max_vms = configs[c].max_vms;
    cparams.vm.slots_per_vm = 4;
    cparams.vm.high_watermark = 5.0;
    QueryServerParams sparams;
    std::vector<QuerySpec> cfg_specs = specs;
    std::vector<ServiceLevel> levels(
        arrivals.size(),
        configs[c].cf_enabled ? ServiceLevel::kImmediate
                              : ServiceLevel::kRelaxed);
    // For the pure-VM config, disable the relaxed hold so queries go
    // straight to the coordinator queue (grace period zero).
    if (!configs[c].cf_enabled) sparams.relaxed_grace_period = 0;

    auto result = RunScenario(cparams, sparams, arrivals, cfg_specs, levels,
                               15 * kMinutes);
    rows[c].stats = Summarize(result.outcomes);
    rows[c].vm_cost = result.vm_cost_usd;
    rows[c].cf_cost = result.cf_cost_usd;

    // Spike-phase p95 pending (arrivals in [5min, 7min)).
    std::vector<double> spike_pendings;
    for (const auto& o : result.outcomes) {
      if (o.finished && o.submit_time >= 5 * kMinutes &&
          o.submit_time < 7 * kMinutes) {
        spike_pendings.push_back(static_cast<double>(o.pending_ms) / 1000.0);
      }
    }
    rows[c].spike_p95 = Percentile(spike_pendings, 95);
  }

  std::printf("%-10s %10s %12s %12s %12s %12s %10s\n", "config",
              "spike_p95", "mean_pend", "vm_cost$", "cf_cost$", "total$",
              "cf_queries");
  for (int c = 0; c < 3; ++c) {
    std::printf("%-10s %8.1fs %10.1fs %12.4f %12.4f %12.4f %10zu\n",
                configs[c].name, rows[c].spike_p95,
                rows[c].stats.mean_pending_s, rows[c].vm_cost, rows[c].cf_cost,
                rows[c].vm_cost + rows[c].cf_cost, rows[c].stats.used_cf);
  }
  std::printf("\n");

  const Row& vm = rows[0];
  const Row& hybrid = rows[1];
  const Row& cf = rows[2];

  // Resource unit price ratio achieved on the same work.
  PricingModel pricing;
  double unit_ratio = pricing.CfPricePerVcpuSecond() / pricing.VmPricePerVcpuSecond();

  bool ok = true;
  ok &= Check(vm.spike_p95 > 45.0,
              "pure-VM: spike queries queue while the cluster provisions "
              "(60-120 s VM startup)");
  ok &= Check(hybrid.spike_p95 <= 1.0,
              "hybrid: CF acceleration removes the queueing spike");
  ok &= Check(cf.spike_p95 <= 2.0, "pure-CF: elastic, no queueing");
  ok &= Check(unit_ratio >= 9.0 && unit_ratio <= 24.0,
              "CF resource unit price is 9-24x the VM price (paper §2)");
  // Per-query compute cost (marginal resource use, utilization-free).
  double per_query_ratio =
      cf.stats.mean_compute_cost / vm.stats.mean_compute_cost;
  std::printf("per-query compute cost: CF/VM = %.1fx\n", per_query_ratio);
  ok &= Check(per_query_ratio >= 9.0,
              "pure-CF per-query cost >= 9x pure-VM (paper: 9-24x + startup)");
  ok &= Check(cf.cf_cost > (vm.vm_cost + vm.cf_cost) * 1.5,
              "pure-CF total cost far exceeds the pure-VM configuration");
  ok &= Check(hybrid.vm_cost + hybrid.cf_cost < cf.cf_cost,
              "hybrid costs less than pure-CF");
  ok &= Check(hybrid.stats.used_cf > 0 &&
                  hybrid.stats.used_cf < hybrid.stats.total / 2,
              "hybrid uses CF only for the spike fraction of queries");

  std::printf("\nE3 overall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
