// E16 — Admission control & the actor-style dispatcher at scale.
//
// The full run opens 1M+ client sessions, then drives 100k+ queries of
// mixed service levels through the query server under bursty arrivals
// (periodic Immediate spikes on a Poisson base), three times:
//
//   sync      — the seed path (async_dispatch=false), default admission,
//   async     — the actor path (MPSC mailbox + pump), default admission,
//   admission — the actor path with cost-based CF placement and
//               burst-triggered best-effort deferral/preemption on.
//
// Reported per run: per-service-level queue-wait p50/p99 (from the
// server's queue_wait_ms histograms), dispatcher traffic, preemption and
// recall counts, and batched-status-poll throughput. Checked invariants:
//
//   * sync and async produce BYTE-IDENTICAL bills, scanned bytes, and
//     final states for every query (the tentpole's standing invariant),
//   * every submission settles exactly once (finished + cancelled ==
//     submitted; nothing stranded),
//   * Immediate queries never wait in the server queue (p99 == 0),
//   * the sync path exchanges zero dispatcher messages; the async path
//     exchanges >= 2 per query (submit + completion),
//   * with preemption on, Immediate bursts actually recall queued
//     best-effort work (full run only; the smoke run just reports).
//
// The full run writes BENCH_admission.json (machine-readable, checked
// in). `--admission-smoke` runs a scaled-down configuration exercising
// the same invariants as the CI Release gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workload/arrivals.h"

using namespace pixels;
using namespace pixels::bench;

namespace {

constexpr ServiceLevel kLevels[] = {ServiceLevel::kImmediate,
                                    ServiceLevel::kRelaxed,
                                    ServiceLevel::kBestEffort};

struct Schedule {
  std::vector<SimTime> arrivals;
  std::vector<QuerySpec> specs;
  std::vector<ServiceLevel> levels;
};

/// Bursty traffic: Poisson base load with periodic Immediate-heavy
/// spikes, seeded so every run replays the identical trace.
Schedule MakeSchedule(uint64_t seed, double base_rate, double spike_rate,
                      SimTime duration) {
  Random rng(seed);
  Schedule s;
  s.arrivals = PeriodicSpikeArrivals(&rng, base_rate, spike_rate,
                                     /*period=*/10 * kMinutes,
                                     /*spike_len=*/1 * kMinutes, duration);
  s.specs.reserve(s.arrivals.size());
  s.levels.reserve(s.arrivals.size());
  for (size_t i = 0; i < s.arrivals.size(); ++i) {
    const double u = rng.NextDouble();
    s.levels.push_back(u < 0.3 ? ServiceLevel::kImmediate
                       : u < 0.7 ? ServiceLevel::kRelaxed
                                 : ServiceLevel::kBestEffort);
    QuerySpec q;
    q.bytes_to_scan =
        static_cast<uint64_t>(rng.UniformDouble(0.2e9, 2.0e9));
    q.work_vcpu_seconds = static_cast<double>(q.bytes_to_scan) / 200e6;
    s.specs.push_back(q);
  }
  return s;
}

struct LevelStats {
  uint64_t count = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

struct RunOut {
  std::vector<double> bills;
  std::vector<uint64_t> bytes;
  std::vector<uint8_t> finished;
  size_t settled = 0;
  size_t cancelled = 0;
  double total_billed = 0;
  LevelStats level[3];
  DispatcherStats dstats;
  double preemptions = 0;
  double recalls = 0;
  size_t sessions = 0;
  size_t status_views = 0;
  double wall_ms = 0;
};

/// One end-to-end run: open `n_sessions` client sessions, replay the
/// schedule, poll batched statuses along the way, drain, and collect.
/// The drain must be generous: the seed's best-effort gate (concurrency
/// below the 0.75 low watermark) releases holds one at a time, so a
/// deep best-effort backlog empties serially after traffic stops.
RunOut RunOne(const Schedule& sched, bool async, size_t n_sessions,
              const AdmissionParams& admission, int max_vms,
              SimTime drain) {
  const auto wall_start = std::chrono::steady_clock::now();
  SimClock clock;
  Random rng(7);
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 4;
  cparams.vm.slots_per_vm = 4;
  cparams.vm.min_vms = 2;
  cparams.vm.max_vms = max_vms;
  Coordinator coordinator(&clock, &rng, cparams);
  QueryServerParams sparams;
  sparams.async_dispatch = async;
  sparams.session_shards = 64;
  sparams.admission = admission;
  QueryServer server(&clock, &coordinator, sparams);
  coordinator.Start();

  RunOut out;
  // 1M+ sessions up front: the sharded tables must stay tractable, and
  // a slice of them opens and closes again (lifecycle churn).
  std::vector<int64_t> session_ids;
  session_ids.reserve(n_sessions);
  for (size_t i = 0; i < n_sessions; ++i) {
    session_ids.push_back(server.OpenSession());
  }
  for (size_t i = 0; i < n_sessions; i += 20) {  // close 5%
    server.CloseSession(session_ids[i]);
    session_ids[i] = session_ids[(i + 7) % n_sessions];
  }
  out.sessions = server.SessionCount();

  const size_t n = sched.arrivals.size();
  out.bills.assign(n, 0);
  out.bytes.assign(n, 0);
  out.finished.assign(n, 0);
  std::vector<int64_t> server_ids(n, -1);

  for (size_t i = 0; i < n; ++i) {
    clock.ScheduleAt(sched.arrivals[i], [&, i] {
      Submission s;
      s.level = sched.levels[i];
      s.query = sched.specs[i];
      s.session_id = session_ids[(i * 9973) % session_ids.size()];
      server_ids[i] = server.Submit(
          std::move(s),
          [&, i](const SubmissionRecord& srec, const QueryRecord& qrec) {
            ++out.settled;
            out.bills[i] = srec.bill_usd;
            out.bytes[i] = qrec.bytes_scanned;
            out.finished[i] = qrec.state == QueryState::kFinished ? 1 : 0;
            if (srec.cancelled) ++out.cancelled;
          });
    });
  }

  // Batched status polling every minute over the most recent 1024
  // submissions — the monitoring read path the sharded tables exist for.
  const SimTime last_arrival = sched.arrivals.empty() ? 0
                                                      : sched.arrivals.back();
  for (SimTime t = 1 * kMinutes; t <= last_arrival; t += 1 * kMinutes) {
    clock.ScheduleAt(t, [&] {
      std::vector<int64_t> ids;
      for (size_t i = n; i > 0 && ids.size() < 1024; --i) {
        if (server_ids[i - 1] > 0) ids.push_back(server_ids[i - 1]);
      }
      if (ids.empty()) return;
      std::vector<bool> found;
      out.status_views += server.GetStatusBatch(ids, &found).size();
    });
  }

  clock.RunUntil(last_arrival + drain);
  for (int l = 0; l < 3; ++l) {
    const Histogram h = server.metrics().GetHistogram(
        std::string("queue_wait_ms{level=\"") + ServiceLevelName(kLevels[l]) +
        "\"}");
    out.level[l].count = h.count();
    out.level[l].p50_ms = h.Quantile(50);
    out.level[l].p99_ms = h.Quantile(99);
  }
  out.total_billed = server.TotalBilledUsd();
  out.dstats = server.dispatcher_stats();
  out.preemptions = server.metrics().Counter("best_effort_preemptions");
  out.recalls = coordinator.metrics().Counter("queries_recalled");
  server.Stop();
  coordinator.Stop();
  clock.RunAll();
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  return out;
}

bool Identical(const RunOut& a, const RunOut& b) {
  return a.bills == b.bills && a.bytes == b.bytes &&
         a.finished == b.finished && a.total_billed == b.total_billed;
}

void PrintRun(const char* name, const RunOut& r) {
  std::printf("\n--- %s ---\n", name);
  std::printf("sessions=%zu settled=%zu cancelled=%zu billed=$%.2f "
              "status_views=%zu wall=%.0fms\n",
              r.sessions, r.settled, r.cancelled, r.total_billed,
              r.status_views, r.wall_ms);
  std::printf("%-16s %10s %12s %12s\n", "level", "queries", "p50_wait_ms",
              "p99_wait_ms");
  for (int l = 0; l < 3; ++l) {
    std::printf("%-16s %10llu %12.0f %12.0f\n", ServiceLevelName(kLevels[l]),
                static_cast<unsigned long long>(r.level[l].count),
                r.level[l].p50_ms, r.level[l].p99_ms);
  }
  std::printf("dispatcher: messages=%llu pumps=%llu max_batch=%llu "
              "reentrant=%llu preemptions=%.0f recalls=%.0f\n",
              static_cast<unsigned long long>(r.dstats.messages),
              static_cast<unsigned long long>(r.dstats.pumps),
              static_cast<unsigned long long>(r.dstats.max_batch),
              static_cast<unsigned long long>(r.dstats.reentrant_enqueues),
              r.preemptions, r.recalls);
}

/// Shared invariants for one (sync, async) pair plus an admission run.
bool CheckInvariants(const Schedule& sched, const RunOut& sync,
                     const RunOut& async_run, const RunOut& admission,
                     bool require_preemptions) {
  const size_t n = sched.arrivals.size();
  bool ok = true;
  ok &= Check(Identical(sync, async_run),
              "sync and async paths byte-identical (bills, bytes, states)");
  ok &= Check(sync.settled == n && async_run.settled == n &&
                  admission.settled == n,
              "every submission settled exactly once");
  ok &= Check(sync.cancelled == 0 && async_run.cancelled == 0,
              "nothing left stranded at Stop() after the drain");
  ok &= Check(sync.dstats.messages == 0,
              "sync path exchanges zero dispatcher messages");
  ok &= Check(async_run.dstats.messages >= 2 * n,
              "async path exchanges >= 2 messages per query");
  ok &= Check(async_run.level[0].p99_ms == 0 && sync.level[0].p99_ms == 0,
              "immediate queries never wait in the server queue");
  ok &= Check(async_run.level[2].p99_ms >= async_run.level[0].p99_ms,
              "best-effort waits at least as long as immediate");
  if (require_preemptions) {
    ok &= Check(admission.preemptions >= 1 &&
                    admission.recalls >= admission.preemptions,
                "immediate bursts preempted queued best-effort work");
  }
  return ok;
}

/// Admission knobs for the third run: an effectively unbounded
/// best-effort watermark lets best-effort work flow straight into the
/// coordinator's VM queue (total concurrency counts the relaxed hold
/// backlog, so any finite watermark keeps the gate shut under load) —
/// Immediate bursts then claw the queued-but-not-running share back via
/// preemption. The burst threshold sits between the base and spike
/// Immediate arrival counts per window so only real spikes trip it.
AdmissionParams AdvancedAdmission(int burst_threshold) {
  AdmissionParams ap;
  ap.cost_based_placement = true;
  ap.preempt_best_effort = true;
  ap.best_effort_admit_watermark = 1e12;
  ap.burst_window = 10 * kSeconds;
  ap.burst_threshold = burst_threshold;
  return ap;
}

int RunFull(const char* out_path) {
  std::printf("=== E16: admission control & async dispatcher at scale ===\n");
  // ~121k queries: 12/s base + 60/s spikes (1 min every 10) over 2 h.
  const Schedule sched = MakeSchedule(17, 12.0, 60.0, 2 * kHours);
  constexpr size_t kSessions = 1'050'000;
  std::printf("schedule: %zu queries over %.0f min, %zu sessions\n",
              sched.arrivals.size(),
              static_cast<double>(sched.arrivals.back()) / kMinutes,
              kSessions);

  const RunOut sync =
      RunOne(sched, /*async=*/false, kSessions, {}, 48, 48 * kHours);
  PrintRun("sync (seed path)", sync);
  const RunOut async_run =
      RunOne(sched, /*async=*/true, kSessions, {}, 48, 48 * kHours);
  PrintRun("async (actor path)", async_run);
  // Base Immediate traffic ~36 arrivals per 10 s window, spikes ~180:
  // threshold 80 trips on spikes only. The admission run gets a smaller
  // fleet (8 VMs = 32 slots) so spikes saturate the slots and dispatched
  // best-effort work actually sits in the recallable coordinator queue.
  const RunOut admission = RunOne(sched, /*async=*/true, kSessions,
                                  AdvancedAdmission(80), 8, 48 * kHours);
  PrintRun("async + cost placement + preemption", admission);

  const bool ok = CheckInvariants(sched, sync, async_run, admission,
                                  /*require_preemptions=*/true);

  FILE* f = std::fopen(out_path, "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"admission\",\n");
    std::fprintf(f, "  \"queries\": %zu,\n", sched.arrivals.size());
    std::fprintf(f, "  \"sessions\": %zu,\n", kSessions);
    std::fprintf(f, "  \"sync_async_identical\": %s,\n",
                 Identical(sync, async_run) ? "true" : "false");
    std::fprintf(f, "  \"total_billed_usd\": %.6f,\n", sync.total_billed);
    const RunOut* runs[] = {&sync, &async_run, &admission};
    const char* names[] = {"sync", "async", "admission"};
    std::fprintf(f, "  \"runs\": [\n");
    for (int r = 0; r < 3; ++r) {
      std::fprintf(
          f,
          "    {\"mode\": \"%s\", \"settled\": %zu, \"cancelled\": %zu, "
          "\"dispatcher_messages\": %llu, \"pumps\": %llu, "
          "\"max_batch\": %llu, \"preemptions\": %.0f, \"recalls\": %.0f, "
          "\"wait_ms\": {",
          names[r], runs[r]->settled, runs[r]->cancelled,
          static_cast<unsigned long long>(runs[r]->dstats.messages),
          static_cast<unsigned long long>(runs[r]->dstats.pumps),
          static_cast<unsigned long long>(runs[r]->dstats.max_batch),
          runs[r]->preemptions, runs[r]->recalls);
      for (int l = 0; l < 3; ++l) {
        std::fprintf(f, "\"%s\": {\"n\": %llu, \"p50\": %.0f, \"p99\": %.0f}%s",
                     ServiceLevelName(kLevels[l]),
                     static_cast<unsigned long long>(runs[r]->level[l].count),
                     runs[r]->level[l].p50_ms, runs[r]->level[l].p99_ms,
                     l < 2 ? ", " : "");
      }
      std::fprintf(f, "}}%s\n", r < 2 ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"overall\": \"%s\"\n}\n", ok ? "PASS" : "FAIL");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path);
  }

  std::printf("\nE16 overall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int RunSmoke() {
  std::printf("=== E16 smoke: dispatcher identity + admission (CI) ===\n");
  // ~6k queries, 50k sessions: every invariant, Release-gate sized.
  const Schedule sched = MakeSchedule(17, 4.0, 30.0, 20 * kMinutes);
  constexpr size_t kSessions = 50'000;
  std::printf("schedule: %zu queries, %zu sessions\n", sched.arrivals.size(),
              kSessions);
  const RunOut sync =
      RunOne(sched, /*async=*/false, kSessions, {}, 48, 6 * kHours);
  const RunOut async_run =
      RunOne(sched, /*async=*/true, kSessions, {}, 48, 6 * kHours);
  // Base ~12 Immediate arrivals per window, spikes ~90: threshold 40.
  const RunOut admission = RunOne(sched, /*async=*/true, kSessions,
                                  AdvancedAdmission(40), 8, 6 * kHours);
  PrintRun("sync", sync);
  PrintRun("async", async_run);
  PrintRun("admission", admission);
  const bool ok = CheckInvariants(sched, sync, async_run, admission,
                                  /*require_preemptions=*/false);
  std::printf("E16 smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_admission.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--admission-smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  return smoke ? RunSmoke() : RunFull(out_path);
}
