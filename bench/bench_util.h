// Shared plumbing for the macro-benches: a simulation harness that feeds
// an arrival trace of query submissions through the query server, plus
// table/series printing and PASS/FAIL shape checks.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "cloud/metrics.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "server/query_server.h"
#include "turbo/coordinator.h"

namespace pixels {
namespace bench {

/// Outcome of one simulated submission.
struct QueryOutcome {
  int64_t server_id = 0;
  ServiceLevel level = ServiceLevel::kImmediate;
  SimTime submit_time = 0;
  SimTime pending_ms = -1;
  SimTime execution_ms = -1;
  double bill_usd = 0;
  double compute_cost_usd = 0;
  bool used_cf = false;
  bool finished = false;
};

/// Runs one scheduling scenario: `arrivals[i]` submits `specs[i]` at
/// `levels[i]`. Returns per-query outcomes after draining the simulation.
struct ScenarioResult {
  std::vector<QueryOutcome> outcomes;
  double vm_cost_usd = 0;
  double cf_cost_usd = 0;
  double billed_usd = 0;
  int scale_out_events = 0;
  int scale_in_events = 0;
  int final_vms = 0;
  SimTime end_time = 0;
};

inline ScenarioResult RunScenario(const CoordinatorParams& cparams,
                                  const QueryServerParams& sparams,
                                  const std::vector<SimTime>& arrivals,
                                  const std::vector<QuerySpec>& specs,
                                  const std::vector<ServiceLevel>& levels,
                                  SimTime drain = 2 * kHours,
                                  uint64_t seed = 42,
                                  MetricsRegistry* vm_metrics_out = nullptr) {
  SimClock clock;
  Random rng(seed);
  Coordinator coordinator(&clock, &rng, cparams);
  QueryServer server(&clock, &coordinator, sparams);
  coordinator.Start();

  ScenarioResult result;
  result.outcomes.resize(arrivals.size());

  for (size_t i = 0; i < arrivals.size(); ++i) {
    clock.ScheduleAt(arrivals[i], [&, i] {
      Submission s;
      s.level = levels[i];
      s.query = specs[i];
      QueryOutcome& out = result.outcomes[i];
      out.level = levels[i];
      out.submit_time = clock.Now();
      out.server_id = server.Submit(
          s, [&out](const SubmissionRecord& srec, const QueryRecord& qrec) {
            // Stop() cancels still-held queries with a failed record;
            // only genuinely finished queries count.
            out.finished = qrec.state == QueryState::kFinished;
            out.pending_ms = qrec.start_time - srec.received_time;
            out.execution_ms = qrec.ExecutionTime();
            out.bill_usd = srec.bill_usd;
            out.compute_cost_usd = qrec.compute_cost_usd;
            out.used_cf = qrec.used_cf;
          });
    });
  }

  SimTime last_arrival = arrivals.empty() ? 0 : arrivals.back();
  clock.RunUntil(last_arrival + drain);
  result.end_time = clock.Now();
  result.vm_cost_usd = coordinator.TotalVmCostUsd();
  result.cf_cost_usd = coordinator.TotalCfCostUsd();
  result.billed_usd = server.TotalBilledUsd();
  result.scale_out_events = coordinator.vm_cluster().scale_out_events();
  result.scale_in_events = coordinator.vm_cluster().scale_in_events();
  result.final_vms = coordinator.vm_cluster().num_vms();
  if (vm_metrics_out != nullptr) {
    *vm_metrics_out = coordinator.vm_cluster().metrics();
  }
  server.Stop();
  coordinator.Stop();
  clock.RunAll();
  return result;
}

/// Pending-time statistics of the finished subset.
struct PendingStats {
  size_t finished = 0;
  size_t total = 0;
  double mean_pending_s = 0;
  double p50_pending_s = 0;
  double p95_pending_s = 0;
  double max_pending_s = 0;
  double mean_bill = 0;
  double mean_compute_cost = 0;
  size_t used_cf = 0;
};

inline PendingStats Summarize(const std::vector<QueryOutcome>& outcomes) {
  PendingStats s;
  s.total = outcomes.size();
  std::vector<double> pendings;
  double bill = 0, cost = 0;
  for (const auto& o : outcomes) {
    if (!o.finished) continue;
    ++s.finished;
    pendings.push_back(static_cast<double>(o.pending_ms) / 1000.0);
    bill += o.bill_usd;
    cost += o.compute_cost_usd;
    s.used_cf += o.used_cf;
  }
  if (s.finished == 0) return s;
  double total_pending = 0;
  for (double p : pendings) total_pending += p;
  s.mean_pending_s = total_pending / static_cast<double>(s.finished);
  s.p50_pending_s = Percentile(pendings, 50);
  s.p95_pending_s = Percentile(pendings, 95);
  s.max_pending_s = Percentile(pendings, 100);
  s.mean_bill = bill / static_cast<double>(s.finished);
  s.mean_compute_cost = cost / static_cast<double>(s.finished);
  return s;
}

/// Prints a PASS/FAIL line for a shape check; returns `ok` for chaining.
inline bool Check(bool ok, const std::string& what) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  return ok;
}

/// Prints a time series downsampled to `stride` seconds as "t_s value".
inline void PrintSeries(const char* name, const TimeSeries& series,
                        SimTime t_end, SimTime stride) {
  std::printf("# series: %s (time_s value)\n", name);
  for (SimTime t = 0; t <= t_end; t += stride) {
    std::printf("%8.0f  %10.2f\n", static_cast<double>(t) / 1000.0,
                series.ValueAt(t));
  }
}

}  // namespace bench
}  // namespace pixels
