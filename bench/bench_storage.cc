// E6 — Columnar storage microbenchmarks (google-benchmark).
//
// The substrate behind $/TB-scan billing: encoding/decoding throughput of
// every chunk encoding, full-scan vs projected-scan vs zone-map-pruned
// scan throughput of the .pxl reader, and writer throughput.
// Run with --coalescing-smoke (no google-benchmark flags) for a pass/fail
// check of the buffered I/O layer: coalescing must cut GETs >= 4x and a
// warm-cache re-scan must issue zero GETs, with identical billed bytes.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "catalog/catalog.h"
#include "cloud/pricing.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "format/footer_cache.h"
#include "format/reader.h"
#include "format/writer.h"
#include "storage/memory_store.h"
#include "storage/object_store.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

ColumnVector MakeIntColumn(size_t n, bool sorted) {
  Random rng(1);
  ColumnVector col(TypeId::kInt64);
  int64_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    if (sorted) {
      acc += rng.Uniform(0, 10);
      col.AppendInt(acc);
    } else {
      col.AppendInt(rng.Uniform(-1000000, 1000000));
    }
  }
  return col;
}

ColumnVector MakeStringColumn(size_t n, int cardinality) {
  Random rng(2);
  ColumnVector col(TypeId::kString);
  std::vector<std::string> dict;
  for (int i = 0; i < cardinality; ++i) dict.push_back(rng.NextString(12));
  for (size_t i = 0; i < n; ++i) {
    col.AppendString(dict[static_cast<size_t>(rng.Uniform(0, cardinality - 1))]);
  }
  return col;
}

void BM_EncodeInt(benchmark::State& state) {
  const auto encoding = static_cast<Encoding>(state.range(0));
  const bool sorted = encoding == Encoding::kDelta;
  ColumnVector col = MakeIntColumn(65536, sorted);
  for (auto _ : state) {
    ByteWriter out;
    benchmark::DoNotOptimize(EncodeColumn(col, encoding, &out));
  }
  state.SetItemsProcessed(state.iterations() * 65536);
  state.SetLabel(EncodingName(encoding));
}
BENCHMARK(BM_EncodeInt)
    ->Arg(static_cast<int>(Encoding::kPlain))
    ->Arg(static_cast<int>(Encoding::kRunLength))
    ->Arg(static_cast<int>(Encoding::kDelta));

void BM_DecodeInt(benchmark::State& state) {
  const auto encoding = static_cast<Encoding>(state.range(0));
  const bool sorted = encoding == Encoding::kDelta;
  ColumnVector col = MakeIntColumn(65536, sorted);
  ByteWriter out;
  (void)EncodeColumn(col, encoding, &out);
  for (auto _ : state) {
    ByteReader in(out.data());
    benchmark::DoNotOptimize(DecodeColumn(TypeId::kInt64, encoding, &in, 65536));
  }
  state.SetItemsProcessed(state.iterations() * 65536);
  state.SetLabel(EncodingName(encoding));
}
BENCHMARK(BM_DecodeInt)
    ->Arg(static_cast<int>(Encoding::kPlain))
    ->Arg(static_cast<int>(Encoding::kRunLength))
    ->Arg(static_cast<int>(Encoding::kDelta));

void BM_EncodeString(benchmark::State& state) {
  const auto encoding = static_cast<Encoding>(state.range(0));
  ColumnVector col = MakeStringColumn(16384, 32);
  for (auto _ : state) {
    ByteWriter out;
    benchmark::DoNotOptimize(EncodeColumn(col, encoding, &out));
  }
  state.SetItemsProcessed(state.iterations() * 16384);
  state.SetLabel(EncodingName(encoding));
}
BENCHMARK(BM_EncodeString)
    ->Arg(static_cast<int>(Encoding::kPlain))
    ->Arg(static_cast<int>(Encoding::kDictionary));

// --- reader scans over a generated lineitem table ---

struct ScanFixture {
  std::shared_ptr<MemoryStore> storage;
  std::shared_ptr<Catalog> catalog;

  ScanFixture() {
    storage = std::make_shared<MemoryStore>();
    catalog = std::make_shared<Catalog>(storage);
    TpchOptions options;
    options.scale_factor = 0.005;  // 30k lineitem rows
    options.rows_per_file = 30000;
    (void)GenerateTpch(catalog.get(), "tpch", options);
  }

  static ScanFixture& Get() {
    static ScanFixture fixture;
    return fixture;
  }
};

void BM_ScanFull(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  auto table = f.catalog->GetTable("tpch", "lineitem");
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto reader = PixelsReader::Open(f.storage.get(), (*table)->files[0]);
    auto batches = (*reader)->Scan(ScanOptions{});
    benchmark::DoNotOptimize(batches);
    bytes += (*reader)->scan_stats().bytes_scanned;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ScanFull);

void BM_ScanProjected(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  auto table = f.catalog->GetTable("tpch", "lineitem");
  ScanOptions options;
  options.columns = {"l_extendedprice", "l_discount"};
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto reader = PixelsReader::Open(f.storage.get(), (*table)->files[0]);
    auto batches = (*reader)->Scan(options);
    benchmark::DoNotOptimize(batches);
    bytes += (*reader)->scan_stats().bytes_scanned;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ScanProjected);

void BM_ScanZoneMapPruned(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  auto table = f.catalog->GetTable("tpch", "lineitem");
  ScanOptions options;
  options.columns = {"l_extendedprice"};
  options.predicates = {
      {"l_shipdate", "<", Value::Int(*ParseDate("1900-01-01"))}};
  for (auto _ : state) {
    auto reader = PixelsReader::Open(f.storage.get(), (*table)->files[0]);
    auto batches = (*reader)->Scan(options);
    benchmark::DoNotOptimize(batches);
  }
}
BENCHMARK(BM_ScanZoneMapPruned);

// --- morsel-parallel scan thread sweep (1/2/4/8) ---

void BM_ScanParallelSweep(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  auto table = f.catalog->GetTable("tpch", "lineitem");
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(threads);
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto reader = PixelsReader::Open(f.storage.get(), (*table)->files[0]);
    auto batches = (*reader)->Scan(ScanOptions{}, &pool, threads);
    benchmark::DoNotOptimize(batches);
    bytes += (*reader)->scan_stats().bytes_scanned;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_ScanParallelSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Storage decorator adding a real per-request delay, approximating the
/// first-byte latency of cold object storage. Parallel morsels overlap
/// these waits, which is where serverless scans win on cold data.
class LatencyStore : public Storage {
 public:
  LatencyStore(Storage* inner, int delay_us)
      : inner_(inner), delay_us_(delay_us) {}

  Result<std::vector<uint8_t>> Read(const std::string& path) override {
    Delay();
    return inner_->Read(path);
  }
  Result<std::vector<uint8_t>> ReadRange(const std::string& path,
                                         uint64_t offset,
                                         uint64_t length) override {
    Delay();
    return inner_->ReadRange(path, offset, length);
  }
  Status Write(const std::string& path,
               const std::vector<uint8_t>& data) override {
    return inner_->Write(path, data);
  }
  Result<uint64_t> Size(const std::string& path) override {
    return inner_->Size(path);
  }
  Result<std::vector<std::string>> List(const std::string& prefix) override {
    return inner_->List(prefix);
  }
  Status Delete(const std::string& path) override {
    return inner_->Delete(path);
  }
  bool Exists(const std::string& path) override { return inner_->Exists(path); }

 private:
  void Delay() const {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us_));
  }
  Storage* inner_;
  int delay_us_;
};

void BM_ScanParallelColdStore(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  auto table = f.catalog->GetTable("tpch", "lineitem");
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(threads);
  LatencyStore cold(f.storage.get(), /*delay_us=*/500);
  for (auto _ : state) {
    auto reader = PixelsReader::Open(&cold, (*table)->files[0]);
    auto batches = (*reader)->Scan(ScanOptions{}, &pool, threads);
    benchmark::DoNotOptimize(batches);
  }
  state.SetLabel(std::to_string(threads) + " threads, 0.5ms/request");
}
BENCHMARK(BM_ScanParallelColdStore)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// --- buffered I/O layer: GET counts under coalescing and caching ---

/// Projection of schema-interleaved columns: the gaps between projected
/// chunks are other columns' chunks, so a zero-gap plan pays one GET per
/// chunk while a gap-tolerant plan merges whole row groups.
const std::vector<std::string>& InterleavedProjection() {
  static const std::vector<std::string> columns = {
      "l_orderkey", "l_suppkey",     "l_quantity",
      "l_discount", "l_returnflag",  "l_shipdate"};
  return columns;
}

/// One projected serial scan; returns stats via out-params.
void ProjectedScan(Storage* storage, const std::string& path,
                   const IoOptions& io, uint64_t* bytes_scanned) {
  ScanOptions options;
  options.columns = InterleavedProjection();
  auto reader = PixelsReader::Open(storage, path, io);
  auto batches = (*reader)->Scan(options);
  benchmark::DoNotOptimize(batches);
  if (bytes_scanned != nullptr) {
    *bytes_scanned = (*reader)->scan_stats().bytes_scanned;
  }
}

void BM_ScanProjectedGetSweep(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  auto table = f.catalog->GetTable("tpch", "lineitem");
  auto counting = std::make_shared<ObjectStore>(f.storage);
  IoOptions io;
  io.use_footer_cache = false;
  io.coalesce_gap_bytes = static_cast<uint64_t>(state.range(0));
  uint64_t bytes = 0;
  for (auto _ : state) {
    uint64_t scanned = 0;
    ProjectedScan(counting.get(), (*table)->files[0], io, &scanned);
    bytes += scanned;
  }
  const auto& stats = counting->stats();
  state.counters["gets_per_scan"] = benchmark::Counter(
      static_cast<double>(stats.get_requests), benchmark::Counter::kAvgIterations);
  state.counters["gap_kb_per_scan"] = benchmark::Counter(
      static_cast<double>(stats.gap_bytes_fetched) / 1024.0,
      benchmark::Counter::kAvgIterations);
  PricingModel pricing;
  state.counters["get_cost_usd_per_scan"] = benchmark::Counter(
      pricing.ObjectStoreGetCost(stats.get_requests),
      benchmark::Counter::kAvgIterations);
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.SetLabel("gap=" + std::to_string(state.range(0)) + "B");
}
BENCHMARK(BM_ScanProjectedGetSweep)
    ->Arg(0)->Arg(4 << 10)->Arg(64 << 10)->Arg(256 << 10)
    ->Unit(benchmark::kMillisecond);

void BM_ScanWarmChunkCache(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  auto table = f.catalog->GetTable("tpch", "lineitem");
  auto counting = std::make_shared<ObjectStore>(f.storage);
  BufferCache cache(256ULL << 20);
  IoOptions io;
  io.chunk_cache = &cache;
  // Warm-up scan fills the footer and chunk caches.
  ProjectedScan(counting.get(), (*table)->files[0], io, nullptr);
  const uint64_t gets_after_warmup = counting->stats().get_requests;
  uint64_t bytes = 0;
  for (auto _ : state) {
    uint64_t scanned = 0;
    ProjectedScan(counting.get(), (*table)->files[0], io, &scanned);
    bytes += scanned;
  }
  // Warm re-scans are GET-free: 0 for Open (footer cache), 0 for chunks.
  state.counters["warm_gets"] = benchmark::Counter(
      static_cast<double>(counting->stats().get_requests - gets_after_warmup));
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ScanWarmChunkCache)->Unit(benchmark::kMillisecond);

void BM_WriteLineitemFile(benchmark::State& state) {
  Random rng(3);
  FileSchema schema = {{"a", TypeId::kInt64},
                       {"b", TypeId::kDouble},
                       {"c", TypeId::kString}};
  for (auto _ : state) {
    MemoryStore store;
    PixelsWriter writer(schema);
    for (int i = 0; i < 20000; ++i) {
      (void)writer.AppendRow({Value::Int(i), Value::Double(i * 0.5),
                              Value::String(i % 3 == 0 ? "x" : "yy")});
    }
    benchmark::DoNotOptimize(writer.Finish(&store, "f.pxl"));
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_WriteLineitemFile);

void BM_EndToEndQ6(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  for (auto _ : state) {
    ExecContext ctx;
    ctx.catalog = f.catalog.get();
    auto result = ExecuteQuery(
        "SELECT sum(l_extendedprice * l_discount) FROM lineitem WHERE "
        "l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' "
        "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
        "tpch", &ctx);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EndToEndQ6);

/// CI smoke check (exit 0 = pass): projected lineitem scans over a
/// GET-counting object store must show coalescing cutting GETs >= 4x and
/// a warm-cache re-scan issuing zero GETs, with `bytes_scanned` identical
/// across plain / coalesced / cold / warm runs (billing exactness).
int RunCoalescingSmoke() {
  auto& f = ScanFixture::Get();
  auto table = f.catalog->GetTable("tpch", "lineitem");
  if (!table.ok()) {
    std::fprintf(stderr, "smoke: fixture failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  const std::string path = (*table)->files[0];
  FooterCache::Shared()->Clear();

  // Plain: zero gap tolerance, no caches — one GET per projected chunk.
  auto plain_store = std::make_shared<ObjectStore>(f.storage);
  IoOptions plain_io;
  plain_io.use_footer_cache = false;
  plain_io.coalesce_gap_bytes = 0;
  uint64_t plain_bytes = 0;
  ProjectedScan(plain_store.get(), path, plain_io, &plain_bytes);
  const uint64_t plain_gets = plain_store->stats().get_requests;

  // Coalesced: default gap tolerance, still uncached.
  auto coalesced_store = std::make_shared<ObjectStore>(f.storage);
  IoOptions coalesced_io;
  coalesced_io.use_footer_cache = false;
  uint64_t coalesced_bytes = 0;
  ProjectedScan(coalesced_store.get(), path, coalesced_io, &coalesced_bytes);
  const uint64_t coalesced_gets = coalesced_store->stats().get_requests;
  const uint64_t gap_bytes = coalesced_store->stats().gap_bytes_fetched;

  // Cached: cold scan fills footer + chunk caches, warm re-scan is free.
  auto cached_store = std::make_shared<ObjectStore>(f.storage);
  BufferCache cache(256ULL << 20);
  IoOptions cached_io;
  cached_io.chunk_cache = &cache;
  uint64_t cold_bytes = 0, warm_bytes = 0;
  ProjectedScan(cached_store.get(), path, cached_io, &cold_bytes);
  const uint64_t cold_gets = cached_store->stats().get_requests;
  ProjectedScan(cached_store.get(), path, cached_io, &warm_bytes);
  const uint64_t warm_gets = cached_store->stats().get_requests - cold_gets;

  PricingModel pricing;
  std::printf(
      "coalescing-smoke: plain_gets=%llu coalesced_gets=%llu (%.1fx) "
      "gap_kb=%.1f cold_gets=%llu warm_gets=%llu\n"
      "                  bytes_scanned plain=%llu coalesced=%llu cold=%llu "
      "warm=%llu  get_cost plain=$%.7f coalesced=$%.7f\n",
      static_cast<unsigned long long>(plain_gets),
      static_cast<unsigned long long>(coalesced_gets),
      coalesced_gets > 0 ? static_cast<double>(plain_gets) /
                               static_cast<double>(coalesced_gets)
                         : 0.0,
      static_cast<double>(gap_bytes) / 1024.0,
      static_cast<unsigned long long>(cold_gets),
      static_cast<unsigned long long>(warm_gets),
      static_cast<unsigned long long>(plain_bytes),
      static_cast<unsigned long long>(coalesced_bytes),
      static_cast<unsigned long long>(cold_bytes),
      static_cast<unsigned long long>(warm_bytes),
      pricing.ObjectStoreGetCost(plain_gets),
      pricing.ObjectStoreGetCost(coalesced_gets));

  int failures = 0;
  if (coalesced_gets == 0 || plain_gets < 4 * coalesced_gets) {
    std::fprintf(stderr, "FAIL: coalescing cut GETs < 4x\n");
    ++failures;
  }
  if (warm_gets != 0) {
    std::fprintf(stderr, "FAIL: warm re-scan issued GETs\n");
    ++failures;
  }
  if (plain_bytes != coalesced_bytes || plain_bytes != cold_bytes ||
      plain_bytes != warm_bytes || plain_bytes == 0) {
    std::fprintf(stderr, "FAIL: bytes_scanned not identical across runs\n");
    ++failures;
  }
  if (failures == 0) std::printf("coalescing-smoke: PASS\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace pixels

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--coalescing-smoke") == 0) {
      return pixels::RunCoalescingSmoke();
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
