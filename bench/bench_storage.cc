// E6 — Columnar storage microbenchmarks (google-benchmark).
//
// The substrate behind $/TB-scan billing: encoding/decoding throughput of
// every chunk encoding, full-scan vs projected-scan vs zone-map-pruned
// scan throughput of the .pxl reader, and writer throughput.
#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "catalog/catalog.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "format/reader.h"
#include "format/writer.h"
#include "storage/memory_store.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

ColumnVector MakeIntColumn(size_t n, bool sorted) {
  Random rng(1);
  ColumnVector col(TypeId::kInt64);
  int64_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    if (sorted) {
      acc += rng.Uniform(0, 10);
      col.AppendInt(acc);
    } else {
      col.AppendInt(rng.Uniform(-1000000, 1000000));
    }
  }
  return col;
}

ColumnVector MakeStringColumn(size_t n, int cardinality) {
  Random rng(2);
  ColumnVector col(TypeId::kString);
  std::vector<std::string> dict;
  for (int i = 0; i < cardinality; ++i) dict.push_back(rng.NextString(12));
  for (size_t i = 0; i < n; ++i) {
    col.AppendString(dict[static_cast<size_t>(rng.Uniform(0, cardinality - 1))]);
  }
  return col;
}

void BM_EncodeInt(benchmark::State& state) {
  const auto encoding = static_cast<Encoding>(state.range(0));
  const bool sorted = encoding == Encoding::kDelta;
  ColumnVector col = MakeIntColumn(65536, sorted);
  for (auto _ : state) {
    ByteWriter out;
    benchmark::DoNotOptimize(EncodeColumn(col, encoding, &out));
  }
  state.SetItemsProcessed(state.iterations() * 65536);
  state.SetLabel(EncodingName(encoding));
}
BENCHMARK(BM_EncodeInt)
    ->Arg(static_cast<int>(Encoding::kPlain))
    ->Arg(static_cast<int>(Encoding::kRunLength))
    ->Arg(static_cast<int>(Encoding::kDelta));

void BM_DecodeInt(benchmark::State& state) {
  const auto encoding = static_cast<Encoding>(state.range(0));
  const bool sorted = encoding == Encoding::kDelta;
  ColumnVector col = MakeIntColumn(65536, sorted);
  ByteWriter out;
  (void)EncodeColumn(col, encoding, &out);
  for (auto _ : state) {
    ByteReader in(out.data());
    benchmark::DoNotOptimize(DecodeColumn(TypeId::kInt64, encoding, &in, 65536));
  }
  state.SetItemsProcessed(state.iterations() * 65536);
  state.SetLabel(EncodingName(encoding));
}
BENCHMARK(BM_DecodeInt)
    ->Arg(static_cast<int>(Encoding::kPlain))
    ->Arg(static_cast<int>(Encoding::kRunLength))
    ->Arg(static_cast<int>(Encoding::kDelta));

void BM_EncodeString(benchmark::State& state) {
  const auto encoding = static_cast<Encoding>(state.range(0));
  ColumnVector col = MakeStringColumn(16384, 32);
  for (auto _ : state) {
    ByteWriter out;
    benchmark::DoNotOptimize(EncodeColumn(col, encoding, &out));
  }
  state.SetItemsProcessed(state.iterations() * 16384);
  state.SetLabel(EncodingName(encoding));
}
BENCHMARK(BM_EncodeString)
    ->Arg(static_cast<int>(Encoding::kPlain))
    ->Arg(static_cast<int>(Encoding::kDictionary));

// --- reader scans over a generated lineitem table ---

struct ScanFixture {
  std::shared_ptr<MemoryStore> storage;
  std::shared_ptr<Catalog> catalog;

  ScanFixture() {
    storage = std::make_shared<MemoryStore>();
    catalog = std::make_shared<Catalog>(storage);
    TpchOptions options;
    options.scale_factor = 0.005;  // 30k lineitem rows
    options.rows_per_file = 30000;
    (void)GenerateTpch(catalog.get(), "tpch", options);
  }

  static ScanFixture& Get() {
    static ScanFixture fixture;
    return fixture;
  }
};

void BM_ScanFull(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  auto table = f.catalog->GetTable("tpch", "lineitem");
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto reader = PixelsReader::Open(f.storage.get(), (*table)->files[0]);
    auto batches = (*reader)->Scan(ScanOptions{});
    benchmark::DoNotOptimize(batches);
    bytes += (*reader)->scan_stats().bytes_scanned;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ScanFull);

void BM_ScanProjected(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  auto table = f.catalog->GetTable("tpch", "lineitem");
  ScanOptions options;
  options.columns = {"l_extendedprice", "l_discount"};
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto reader = PixelsReader::Open(f.storage.get(), (*table)->files[0]);
    auto batches = (*reader)->Scan(options);
    benchmark::DoNotOptimize(batches);
    bytes += (*reader)->scan_stats().bytes_scanned;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ScanProjected);

void BM_ScanZoneMapPruned(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  auto table = f.catalog->GetTable("tpch", "lineitem");
  ScanOptions options;
  options.columns = {"l_extendedprice"};
  options.predicates = {
      {"l_shipdate", "<", Value::Int(*ParseDate("1900-01-01"))}};
  for (auto _ : state) {
    auto reader = PixelsReader::Open(f.storage.get(), (*table)->files[0]);
    auto batches = (*reader)->Scan(options);
    benchmark::DoNotOptimize(batches);
  }
}
BENCHMARK(BM_ScanZoneMapPruned);

// --- morsel-parallel scan thread sweep (1/2/4/8) ---

void BM_ScanParallelSweep(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  auto table = f.catalog->GetTable("tpch", "lineitem");
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(threads);
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto reader = PixelsReader::Open(f.storage.get(), (*table)->files[0]);
    auto batches = (*reader)->Scan(ScanOptions{}, &pool, threads);
    benchmark::DoNotOptimize(batches);
    bytes += (*reader)->scan_stats().bytes_scanned;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_ScanParallelSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Storage decorator adding a real per-request delay, approximating the
/// first-byte latency of cold object storage. Parallel morsels overlap
/// these waits, which is where serverless scans win on cold data.
class LatencyStore : public Storage {
 public:
  LatencyStore(Storage* inner, int delay_us)
      : inner_(inner), delay_us_(delay_us) {}

  Result<std::vector<uint8_t>> Read(const std::string& path) override {
    Delay();
    return inner_->Read(path);
  }
  Result<std::vector<uint8_t>> ReadRange(const std::string& path,
                                         uint64_t offset,
                                         uint64_t length) override {
    Delay();
    return inner_->ReadRange(path, offset, length);
  }
  Status Write(const std::string& path,
               const std::vector<uint8_t>& data) override {
    return inner_->Write(path, data);
  }
  Result<uint64_t> Size(const std::string& path) override {
    return inner_->Size(path);
  }
  Result<std::vector<std::string>> List(const std::string& prefix) override {
    return inner_->List(prefix);
  }
  Status Delete(const std::string& path) override {
    return inner_->Delete(path);
  }
  bool Exists(const std::string& path) override { return inner_->Exists(path); }

 private:
  void Delay() const {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us_));
  }
  Storage* inner_;
  int delay_us_;
};

void BM_ScanParallelColdStore(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  auto table = f.catalog->GetTable("tpch", "lineitem");
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(threads);
  LatencyStore cold(f.storage.get(), /*delay_us=*/500);
  for (auto _ : state) {
    auto reader = PixelsReader::Open(&cold, (*table)->files[0]);
    auto batches = (*reader)->Scan(ScanOptions{}, &pool, threads);
    benchmark::DoNotOptimize(batches);
  }
  state.SetLabel(std::to_string(threads) + " threads, 0.5ms/request");
}
BENCHMARK(BM_ScanParallelColdStore)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_WriteLineitemFile(benchmark::State& state) {
  Random rng(3);
  FileSchema schema = {{"a", TypeId::kInt64},
                       {"b", TypeId::kDouble},
                       {"c", TypeId::kString}};
  for (auto _ : state) {
    MemoryStore store;
    PixelsWriter writer(schema);
    for (int i = 0; i < 20000; ++i) {
      (void)writer.AppendRow({Value::Int(i), Value::Double(i * 0.5),
                              Value::String(i % 3 == 0 ? "x" : "yy")});
    }
    benchmark::DoNotOptimize(writer.Finish(&store, "f.pxl"));
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_WriteLineitemFile);

void BM_EndToEndQ6(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  for (auto _ : state) {
    ExecContext ctx;
    ctx.catalog = f.catalog.get();
    auto result = ExecuteQuery(
        "SELECT sum(l_extendedprice * l_discount) FROM lineitem WHERE "
        "l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' "
        "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
        "tpch", &ctx);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EndToEndQ6);

}  // namespace
}  // namespace pixels

BENCHMARK_MAIN();
