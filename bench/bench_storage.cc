// E6 — Columnar storage microbenchmarks (google-benchmark).
//
// The substrate behind $/TB-scan billing: encoding/decoding throughput of
// every chunk encoding, full-scan vs projected-scan vs zone-map-pruned
// scan throughput of the .pxl reader, and writer throughput.
#include <benchmark/benchmark.h>

#include "catalog/catalog.h"
#include "common/random.h"
#include "exec/executor.h"
#include "format/reader.h"
#include "format/writer.h"
#include "storage/memory_store.h"
#include "workload/tpch.h"

namespace pixels {
namespace {

ColumnVector MakeIntColumn(size_t n, bool sorted) {
  Random rng(1);
  ColumnVector col(TypeId::kInt64);
  int64_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    if (sorted) {
      acc += rng.Uniform(0, 10);
      col.AppendInt(acc);
    } else {
      col.AppendInt(rng.Uniform(-1000000, 1000000));
    }
  }
  return col;
}

ColumnVector MakeStringColumn(size_t n, int cardinality) {
  Random rng(2);
  ColumnVector col(TypeId::kString);
  std::vector<std::string> dict;
  for (int i = 0; i < cardinality; ++i) dict.push_back(rng.NextString(12));
  for (size_t i = 0; i < n; ++i) {
    col.AppendString(dict[static_cast<size_t>(rng.Uniform(0, cardinality - 1))]);
  }
  return col;
}

void BM_EncodeInt(benchmark::State& state) {
  const auto encoding = static_cast<Encoding>(state.range(0));
  const bool sorted = encoding == Encoding::kDelta;
  ColumnVector col = MakeIntColumn(65536, sorted);
  for (auto _ : state) {
    ByteWriter out;
    benchmark::DoNotOptimize(EncodeColumn(col, encoding, &out));
  }
  state.SetItemsProcessed(state.iterations() * 65536);
  state.SetLabel(EncodingName(encoding));
}
BENCHMARK(BM_EncodeInt)
    ->Arg(static_cast<int>(Encoding::kPlain))
    ->Arg(static_cast<int>(Encoding::kRunLength))
    ->Arg(static_cast<int>(Encoding::kDelta));

void BM_DecodeInt(benchmark::State& state) {
  const auto encoding = static_cast<Encoding>(state.range(0));
  const bool sorted = encoding == Encoding::kDelta;
  ColumnVector col = MakeIntColumn(65536, sorted);
  ByteWriter out;
  (void)EncodeColumn(col, encoding, &out);
  for (auto _ : state) {
    ByteReader in(out.data());
    benchmark::DoNotOptimize(DecodeColumn(TypeId::kInt64, encoding, &in, 65536));
  }
  state.SetItemsProcessed(state.iterations() * 65536);
  state.SetLabel(EncodingName(encoding));
}
BENCHMARK(BM_DecodeInt)
    ->Arg(static_cast<int>(Encoding::kPlain))
    ->Arg(static_cast<int>(Encoding::kRunLength))
    ->Arg(static_cast<int>(Encoding::kDelta));

void BM_EncodeString(benchmark::State& state) {
  const auto encoding = static_cast<Encoding>(state.range(0));
  ColumnVector col = MakeStringColumn(16384, 32);
  for (auto _ : state) {
    ByteWriter out;
    benchmark::DoNotOptimize(EncodeColumn(col, encoding, &out));
  }
  state.SetItemsProcessed(state.iterations() * 16384);
  state.SetLabel(EncodingName(encoding));
}
BENCHMARK(BM_EncodeString)
    ->Arg(static_cast<int>(Encoding::kPlain))
    ->Arg(static_cast<int>(Encoding::kDictionary));

// --- reader scans over a generated lineitem table ---

struct ScanFixture {
  std::shared_ptr<MemoryStore> storage;
  std::shared_ptr<Catalog> catalog;

  ScanFixture() {
    storage = std::make_shared<MemoryStore>();
    catalog = std::make_shared<Catalog>(storage);
    TpchOptions options;
    options.scale_factor = 0.005;  // 30k lineitem rows
    options.rows_per_file = 30000;
    (void)GenerateTpch(catalog.get(), "tpch", options);
  }

  static ScanFixture& Get() {
    static ScanFixture fixture;
    return fixture;
  }
};

void BM_ScanFull(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  auto table = f.catalog->GetTable("tpch", "lineitem");
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto reader = PixelsReader::Open(f.storage.get(), (*table)->files[0]);
    auto batches = (*reader)->Scan(ScanOptions{});
    benchmark::DoNotOptimize(batches);
    bytes += (*reader)->scan_stats().bytes_scanned;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ScanFull);

void BM_ScanProjected(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  auto table = f.catalog->GetTable("tpch", "lineitem");
  ScanOptions options;
  options.columns = {"l_extendedprice", "l_discount"};
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto reader = PixelsReader::Open(f.storage.get(), (*table)->files[0]);
    auto batches = (*reader)->Scan(options);
    benchmark::DoNotOptimize(batches);
    bytes += (*reader)->scan_stats().bytes_scanned;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_ScanProjected);

void BM_ScanZoneMapPruned(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  auto table = f.catalog->GetTable("tpch", "lineitem");
  ScanOptions options;
  options.columns = {"l_extendedprice"};
  options.predicates = {
      {"l_shipdate", "<", Value::Int(*ParseDate("1900-01-01"))}};
  for (auto _ : state) {
    auto reader = PixelsReader::Open(f.storage.get(), (*table)->files[0]);
    auto batches = (*reader)->Scan(options);
    benchmark::DoNotOptimize(batches);
  }
}
BENCHMARK(BM_ScanZoneMapPruned);

void BM_WriteLineitemFile(benchmark::State& state) {
  Random rng(3);
  FileSchema schema = {{"a", TypeId::kInt64},
                       {"b", TypeId::kDouble},
                       {"c", TypeId::kString}};
  for (auto _ : state) {
    MemoryStore store;
    PixelsWriter writer(schema);
    for (int i = 0; i < 20000; ++i) {
      (void)writer.AppendRow({Value::Int(i), Value::Double(i * 0.5),
                              Value::String(i % 3 == 0 ? "x" : "yy")});
    }
    benchmark::DoNotOptimize(writer.Finish(&store, "f.pxl"));
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_WriteLineitemFile);

void BM_EndToEndQ6(benchmark::State& state) {
  auto& f = ScanFixture::Get();
  for (auto _ : state) {
    ExecContext ctx;
    ctx.catalog = f.catalog.get();
    auto result = ExecuteQuery(
        "SELECT sum(l_extendedprice * l_discount) FROM lineitem WHERE "
        "l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' "
        "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
        "tpch", &ctx);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EndToEndQ6);

}  // namespace
}  // namespace pixels

BENCHMARK_MAIN();
