// E4 — $/TB-scan billing (paper §3.2).
//
// Executes the TPC-H query set for real through the engine, bills each
// query at each service level, and compares the user-facing bills with
// the provider-side resource cost of executing the same queries in VMs
// vs CF workers. Checks:
//   * the achieved rates are $5 / $1 / $0.5 per TB scanned,
//   * bills are proportional to bytes actually scanned (projection and
//     zone maps reduce the bill),
//   * the resource cost of relaxed queries (VM execution) is 1-2 orders
//     of magnitude below immediate queries executed in CFs, in line with
//     the paper's pricing rationale.
#include <cstdio>

#include "bench_util.h"
#include "exec/executor.h"
#include "storage/memory_store.h"
#include "workload/tpch.h"

using namespace pixels;
using namespace pixels::bench;

int main() {
  std::printf("=== E4: $/TB-scan pricing (paper §3.2) ===\n\n");

  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  TpchOptions options;
  options.scale_factor = 0.01;
  options.rows_per_file = 20000;
  Status st = GenerateTpch(catalog.get(), "tpch", options);
  if (!st.ok()) {
    std::printf("generation failed: %s\n", st.ToString().c_str());
    return 1;
  }

  PriceList prices;
  PricingModel pricing;
  CfServiceParams cf_params;

  std::printf("%-22s %12s %12s %12s %12s %14s %14s\n", "query", "bytes",
              "imm_bill$", "rel_bill$", "best_bill$", "vm_cost$",
              "cf_cost$");

  bool ok = true;
  double total_cf_cost = 0, total_vm_cost = 0;
  double total_rel_bill = 0;
  for (const auto& q : TpchQuerySet()) {
    ExecContext ctx;
    ctx.catalog = catalog.get();
    auto result = ExecuteQuery(q.sql, "tpch", &ctx);
    if (!result.ok()) {
      std::printf("%s failed: %s\n", q.name.c_str(),
                  result.status().ToString().c_str());
      return 1;
    }
    const uint64_t bytes = ctx.bytes_scanned;
    // Resource-cost comparison uses production-scale work: the local
    // dataset is SF 0.01, so scale scanned bytes to SF 100 before applying
    // the cost model (the bills themselves are rates and stay unscaled).
    const double scaled_bytes = static_cast<double>(bytes) * 10000.0;
    const double work = scaled_bytes / 1e8;  // vCPU-seconds
    const double bill_imm = prices.Bill(ServiceLevel::kImmediate, bytes);
    const double bill_rel = prices.Bill(ServiceLevel::kRelaxed, bytes);
    const double bill_best = prices.Bill(ServiceLevel::kBestEffort, bytes);
    const double vm_cost = pricing.VmComputeCost(work);
    // CF execution: 8 workers, billed per worker-duration with startup.
    const int workers = 8;
    const double per_worker_ms =
        work / workers / cf_params.vcpus_per_worker * 1000.0 + 1000.0;
    double cf_cost = 0;
    for (int w = 0; w < workers; ++w) {
      cf_cost += pricing.CfInvocationCost(cf_params.vcpus_per_worker,
                                          static_cast<int64_t>(per_worker_ms));
    }
    total_cf_cost += cf_cost;
    total_vm_cost += vm_cost;
    total_rel_bill += bill_rel;

    std::printf("%-22s %12llu %12.6f %12.6f %12.6f %14.8f %14.8f\n",
                q.name.c_str(), static_cast<unsigned long long>(bytes),
                bill_imm, bill_rel, bill_best, vm_cost, cf_cost);

    ok &= std::abs(bill_imm / (static_cast<double>(bytes) / kBytesPerTB) -
                   5.0) < 1e-9;
    ok &= std::abs(bill_rel / bill_imm - 0.2) < 1e-9;
    ok &= std::abs(bill_best / bill_imm - 0.1) < 1e-9;
  }
  Check(ok, "achieved rates are exactly $5 / $1 / $0.5 per TB scanned");

  // Projection + pruning reduce the billed bytes.
  ExecContext narrow_ctx, wide_ctx;
  narrow_ctx.catalog = catalog.get();
  wide_ctx.catalog = catalog.get();
  (void)ExecuteQuery("SELECT sum(l_quantity) FROM lineitem WHERE l_shipdate < "
                     "DATE '1200-01-01'",
                     "tpch", &narrow_ctx);
  (void)ExecuteQuery("SELECT * FROM lineitem", "tpch", &wide_ctx);
  double narrow_bill =
      prices.Bill(ServiceLevel::kImmediate, narrow_ctx.bytes_scanned);
  double wide_bill =
      prices.Bill(ServiceLevel::kImmediate, wide_ctx.bytes_scanned);
  std::printf("\npruned+projected query bill: $%.6f vs full scan bill: $%.6f\n",
              narrow_bill, wide_bill);
  bool ok2 = Check(narrow_bill < wide_bill / 10,
                   "zone maps + projection cut the bill by >10x");

  // Paper: relaxed (VM) execution is 1-2 orders of magnitude cheaper than
  // immediate execution in CFs.
  double ratio = total_cf_cost / total_vm_cost;
  std::printf("\nCF execution cost / VM execution cost = %.1fx\n", ratio);
  bool ok3 = Check(ratio >= 10.0 && ratio <= 100.0,
                   "CF execution costs 1-2 orders of magnitude more than VM");

  bool all = ok && ok2 && ok3;
  std::printf("\nE4 overall: %s\n", all ? "PASS" : "FAIL");
  return all ? 0 : 1;
}
