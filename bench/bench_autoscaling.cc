// E2 — Watermark-based auto-scaling (paper §3.1).
//
// Replays a TPC-H-weighted Poisson workload whose rate steps up 6x for
// twenty minutes, and an Internet-log workload with periodic spikes.
// Prints the cluster-size and concurrency time series (the figure §3.1
// describes) and checks:
//   * the cluster scales out after the load step, with the 1-2 minute
//     provisioning lag of the paper,
//   * it scales back in after the load drops (lazy scale-in),
//   * scaling keeps p95 pending time of the steady phase low.
#include <cstdio>

#include "bench_util.h"
#include "workload/arrivals.h"
#include "workload/loggen.h"
#include "workload/tpch.h"

using namespace pixels;
using namespace pixels::bench;

namespace {

struct TraceResult {
  ScenarioResult scenario;
  MetricsRegistry vm_metrics;
  SimTime duration;
};

TraceResult RunTrace(const std::vector<SimTime>& arrivals,
                     const std::vector<QuerySpec>& specs, SimTime duration) {
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 2;
  cparams.vm.slots_per_vm = 4;
  cparams.vm.max_vms = 32;
  cparams.vm.high_watermark = 5.0;
  cparams.vm.low_watermark = 0.75;
  cparams.vm.scale_in_cooldown = 1 * kMinutes;
  QueryServerParams sparams;
  TraceResult out;
  std::vector<ServiceLevel> levels(arrivals.size(), ServiceLevel::kRelaxed);
  out.scenario = RunScenario(cparams, sparams, arrivals, specs, levels,
                             30 * kMinutes, 42, &out.vm_metrics);
  out.duration = duration;
  return out;
}

std::vector<QuerySpec> MixedSpecs(size_t n, uint64_t seed, double scale) {
  Random rng(seed);
  std::vector<QuerySpec> specs;
  const auto& queries = TpchQuerySet();
  for (size_t i = 0; i < n; ++i) {
    const auto& q =
        queries[rng.Uniform(0, static_cast<int64_t>(queries.size()) - 1)];
    QuerySpec spec;
    spec.work_vcpu_seconds = q.weight * scale;
    spec.bytes_to_scan = static_cast<uint64_t>(q.weight * 0.4e9);
    specs.push_back(spec);
  }
  return specs;
}

}  // namespace

int main() {
  std::printf("=== E2: watermark auto-scaling (paper §3.1) ===\n\n");

  // --- TPC-H load step: 0.05 q/s, stepping to 1.2 q/s in minutes 20-40 ---
  Random rng(3);
  const SimTime total = 70 * kMinutes;
  auto base = PoissonArrivals(&rng, 0.05, total);
  auto burst = PoissonArrivals(&rng, 1.15, 20 * kMinutes);
  for (auto& t : burst) t += 20 * kMinutes;
  base.insert(base.end(), burst.begin(), burst.end());
  std::sort(base.begin(), base.end());

  auto specs = MixedSpecs(base.size(), 5, 8.0);
  auto tpch = RunTrace(base, specs, total);

  std::printf("-- TPC-H load step (0.05 -> 1.2 -> 0.05 q/s) --\n");
  PrintSeries("vms", tpch.vm_metrics.GetSeries("vms"), total, 2 * kMinutes);

  const TimeSeries vms = tpch.vm_metrics.GetSeries("vms");
  double vms_before = vms.TimeWeightedMean(10 * kMinutes, 20 * kMinutes);
  double vms_during = vms.TimeWeightedMean(30 * kMinutes, 40 * kMinutes);
  double vms_after = vms.TimeWeightedMean(60 * kMinutes, 70 * kMinutes);

  // Scale-out lag: first VM-count increase after the step at t=20min.
  SimTime first_growth = -1;
  double base_level = vms.ValueAt(20 * kMinutes);
  for (const auto& s : vms.samples()) {
    if (s.time > 20 * kMinutes && s.value > base_level) {
      first_growth = s.time;
      break;
    }
  }

  auto stats = Summarize(tpch.scenario.outcomes);
  std::printf("\ncluster size: before=%.1f during-burst=%.1f after=%.1f\n",
              vms_before, vms_during, vms_after);
  std::printf("scale-out events=%d scale-in events=%d\n",
              tpch.scenario.scale_out_events, tpch.scenario.scale_in_events);
  std::printf("first growth after step: +%.0fs\n",
              first_growth < 0 ? -1.0
                               : static_cast<double>(first_growth - 20 * kMinutes) /
                                     1000.0);
  std::printf("pending: mean=%.1fs p95=%.1fs (all relaxed)\n\n",
              stats.mean_pending_s, stats.p95_pending_s);

  bool ok = true;
  ok &= Check(vms_during > vms_before * 1.5,
              "cluster grows under the sustained load step");
  ok &= Check(vms_after < vms_during,
              "cluster shrinks again after the load drops (scale-in)");
  ok &= Check(first_growth > 0 &&
                  first_growth - 20 * kMinutes >= 60 * kSeconds &&
                  first_growth - 20 * kMinutes <= 150 * kSeconds,
              "provisioning lag is 1-2 minutes after the trigger (paper)");
  ok &= Check(stats.finished == stats.total, "workload fully completes");

  // --- Internet-log workload with periodic spikes ---
  Random rng2(13);
  auto log_arrivals = PeriodicSpikeArrivals(&rng2, 0.2, 2.0, 15 * kMinutes,
                                            2 * kMinutes, 60 * kMinutes);
  Random rng3(17);
  std::vector<QuerySpec> log_specs;
  const auto& log_queries = LogQuerySet();
  for (size_t i = 0; i < log_arrivals.size(); ++i) {
    const auto& q =
        log_queries[rng3.Uniform(0, static_cast<int64_t>(log_queries.size()) - 1)];
    QuerySpec spec;
    spec.work_vcpu_seconds = q.weight * 12.0;
    spec.bytes_to_scan = static_cast<uint64_t>(q.weight * 0.3e9);
    log_specs.push_back(spec);
  }
  auto logs = RunTrace(log_arrivals, log_specs, 60 * kMinutes);
  auto log_stats = Summarize(logs.scenario.outcomes);
  std::printf("-- Internet-log periodic spikes --\n");
  PrintSeries("vms", logs.vm_metrics.GetSeries("vms"), 60 * kMinutes,
              2 * kMinutes);
  std::printf("\npending: mean=%.1fs p95=%.1fs; scale events out=%d in=%d\n\n",
              log_stats.mean_pending_s, log_stats.p95_pending_s,
              logs.scenario.scale_out_events, logs.scenario.scale_in_events);

  ok &= Check(log_stats.finished == log_stats.total,
              "log workload fully completes");
  ok &= Check(logs.scenario.scale_out_events > 0,
              "periodic spikes trigger scale-out");

  std::printf("\nE2 overall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
