// E13/E14 — Vectorized kernels, fused decode+filter, runtime filters,
// and typed hash join/aggregation.
//
// Four measurements over real engine paths:
//   1. Predicate kernels: CompiledPredicate::Select vs the scalar
//      EvaluateExpr path on an in-memory batch, swept over selectivity.
//   2. Fused decode+filter: a selective filter scan executed with
//      fused_decode on vs off (same bill, fewer rows materialized).
//   3. Runtime filters: a clustered fact ⋈ small dim join with filters
//      on vs off — identical results, measurably fewer billed bytes,
//      and the exact audit bytes_off == bytes_on + rf_skipped_bytes.
//   4. Typed hash tables (E14): hash aggregation and equi-join with
//      vectorized_hash on vs off, swept over key cardinality and probe
//      selectivity — identical rows and bills, typed path faster.
//
// The full run prints the tables and writes BENCH_kernels.json
// (machine-readable, checked in). `--kernels-smoke` runs the CI gate:
// every correctness/audit invariant above plus "kernels are not slower
// than scalar on a selective filter". `--hash-smoke` gates the typed
// hash path: identical results/bills across the sweep and a noise-robust
// speedup floor on the high-cardinality group-by and selective join.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "exec/executor.h"
#include "exec/expression.h"
#include "exec/kernels.h"
#include "format/writer.h"
#include "sql/parser.h"
#include "storage/memory_store.h"

using namespace pixels;

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-N wall time of `fn` in milliseconds.
template <typename Fn>
double TimeMs(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = NowMs();
    fn();
    const double t1 = NowMs();
    if (t1 - t0 < best) best = t1 - t0;
  }
  return best;
}

// ---- 1. predicate kernels on an in-memory batch ----

RowBatchPtr MakeKernelBatch(size_t rows) {
  Random rng(11);
  auto batch = std::make_shared<RowBatch>();
  auto a = MakeVector(TypeId::kInt64);
  auto b = MakeVector(TypeId::kDouble);
  auto s = MakeVector(TypeId::kString);
  const char* words[] = {"red", "green", "blue", "cyan"};
  for (size_t i = 0; i < rows; ++i) {
    a->AppendInt(rng.Uniform(0, 1000000));
    b->AppendDouble(rng.UniformDouble(0, 1));
    s->AppendString(words[rng.Uniform(0, 3)]);
  }
  batch->AddColumn("t.a", a);
  batch->AddColumn("t.b", b);
  batch->AddColumn("t.s", s);
  return batch;
}

SelectionVector ScalarSelect(const Expr& pred, const RowBatch& batch) {
  auto col = EvaluateExpr(pred, batch);
  SelectionVector sel;
  if (!col.ok()) return sel;
  for (size_t i = 0; i < (*col)->size(); ++i) {
    if (!(*col)->IsNull(i) && (*col)->GetValue(i).i != 0) {
      sel.push_back(static_cast<uint32_t>(i));
    }
  }
  return sel;
}

struct SweepPoint {
  double selectivity;
  double scalar_ms;
  double kernel_ms;
  double speedup;
  bool identical;
};

std::vector<SweepPoint> RunKernelSweep(size_t rows, int reps) {
  auto batch = MakeKernelBatch(rows);
  std::vector<SweepPoint> points;
  for (double target : {0.01, 0.1, 0.5, 0.9}) {
    const int64_t threshold = static_cast<int64_t>(1000000 * target);
    const std::string text = "a < " + std::to_string(threshold);
    auto pred = ParseExpression(text);
    if (!pred.ok()) continue;
    auto compiled = CompiledPredicate::Compile(**pred);

    SelectionVector scalar_sel, kernel_sel;
    const double scalar_ms =
        TimeMs(reps, [&] { scalar_sel = ScalarSelect(**pred, *batch); });
    const double kernel_ms = TimeMs(reps, [&] {
      auto r = compiled.Select(*batch);
      if (r.ok()) kernel_sel = std::move(*r);
    });
    points.push_back({target, scalar_ms, kernel_ms,
                      kernel_ms > 0 ? scalar_ms / kernel_ms : 0,
                      scalar_sel == kernel_sel});
  }
  return points;
}

// ---- 2 & 3. engine-level scans and joins ----

/// Benches run over data they just wrote; any failure here is a bug.
void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "bench setup failed: %s\n", s.ToString().c_str());
    std::abort();
  }
}

// fact: `rows` rows in row groups of 4096, key clustered so a join
// against dim (keys < dim_keys) prunes most row groups by range.
std::shared_ptr<Catalog> BuildBenchCatalog(int rows, int dim_keys) {
  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  Check(catalog->CreateDatabase("db"));
  {
    FileSchema schema = {{"k", TypeId::kInt64},
                         {"v", TypeId::kInt64},
                         {"tag", TypeId::kString}};
    Check(catalog->CreateTable("db", "fact", schema));
    WriterOptions options;
    options.row_group_size = 4096;
    PixelsWriter writer(schema, options);
    const char* tags[] = {"red", "green", "blue"};
    const int keys_per_group = 64;  // k advances with the row groups
    for (int i = 0; i < rows; ++i) {
      const int64_t k = i / (4096 / keys_per_group);
      Check(writer.AppendRow({Value::Int(k), Value::Int(i % 1000),
                              Value::String(tags[i % 3])}));
    }
    Check(writer.Finish(storage.get(), "db/fact/part0.pxl"));
    Check(catalog->AddTableFile("db", "fact", "db/fact/part0.pxl"));
  }
  {
    FileSchema schema = {{"k", TypeId::kInt64}, {"name", TypeId::kString}};
    Check(catalog->CreateTable("db", "dim", schema));
    PixelsWriter writer(schema);
    for (int k = 0; k < dim_keys; ++k) {
      Check(writer.AppendRow(
          {Value::Int(k), Value::String("d" + std::to_string(k))}));
    }
    Check(writer.Finish(storage.get(), "db/dim/part0.pxl"));
    Check(catalog->AddTableFile("db", "dim", "db/dim/part0.pxl"));
  }
  return catalog;
}

struct EngineRun {
  std::vector<std::string> rows;
  uint64_t bytes = 0;
  uint64_t rf_skipped = 0;
  uint64_t rf_pruned_row_groups = 0;
};

EngineRun RunQuery(Catalog* catalog, const std::string& sql, bool fused,
                   bool runtime_filters) {
  ExecContext ctx;
  ctx.catalog = catalog;
  ctx.fused_decode = fused;
  ctx.runtime_filters = runtime_filters;
  ctx.parallelism = 1;
  EngineRun run;
  auto result = ExecuteQuery(sql, "db", &ctx);
  if (result.ok()) {
    for (const auto& b : (*result)->batches()) {
      for (size_t r = 0; r < b->num_rows(); ++r) {
        run.rows.push_back(b->RowToString(r));
      }
    }
  }
  run.bytes = ctx.bytes_scanned.load();
  run.rf_skipped = ctx.rf_skipped_bytes.load();
  run.rf_pruned_row_groups = ctx.rf_pruned_row_groups.load();
  return run;
}

// ---- 4. typed hash join & aggregation (E14) ----

// h: `rows` rows with group keys at three cardinalities (10 / 10k /
// all-distinct) and a uniform value column for probe selectivity.
// hd_small / hd_big: join build sides of 1k / 100k distinct keys.
std::shared_ptr<Catalog> BuildHashCatalog(int rows) {
  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  Check(catalog->CreateDatabase("db"));
  {
    FileSchema schema = {{"k_lo", TypeId::kInt64},
                         {"k_mid", TypeId::kInt64},
                         {"k_hi", TypeId::kInt64},
                         {"v", TypeId::kInt64}};
    Check(catalog->CreateTable("db", "h", schema));
    WriterOptions options;
    options.row_group_size = 4096;
    PixelsWriter writer(schema, options);
    for (int i = 0; i < rows; ++i) {
      Check(writer.AppendRow({Value::Int(i % 10), Value::Int(i % 10000),
                              Value::Int(i), Value::Int(i % 1000)}));
    }
    Check(writer.Finish(storage.get(), "db/h/part0.pxl"));
    Check(catalog->AddTableFile("db", "h", "db/h/part0.pxl"));
  }
  auto make_dim = [&](const char* name, int keys) {
    FileSchema schema = {{"k", TypeId::kInt64}, {"w", TypeId::kInt64}};
    Check(catalog->CreateTable("db", name, schema));
    PixelsWriter writer(schema);
    for (int k = 0; k < keys; ++k) {
      Check(writer.AppendRow({Value::Int(k), Value::Int(k % 7)}));
    }
    const std::string path = std::string("db/") + name + "/part0.pxl";
    Check(writer.Finish(storage.get(), path));
    Check(catalog->AddTableFile("db", name, path));
  };
  make_dim("hd_small", 1000);
  make_dim("hd_big", std::min(rows, 100000));
  return catalog;
}

struct HashRun {
  TablePtr table;
  uint64_t bytes = 0;
};

HashRun ExecHashQuery(Catalog* catalog, const std::string& sql, bool typed,
                      bool rf = true) {
  ExecContext ctx;
  ctx.catalog = catalog;
  ctx.vectorized_hash = typed;
  ctx.runtime_filters = rf;
  ctx.parallelism = 1;
  HashRun run;
  auto result = ExecuteQuery(sql, "db", &ctx);
  if (result.ok()) run.table = *result;
  run.bytes = ctx.bytes_scanned.load();
  return run;
}

/// Order-insensitive row set (scalar and typed emit orders may differ).
std::vector<std::string> SortedTableRows(const TablePtr& table) {
  std::vector<std::string> rows;
  if (table == nullptr) return rows;
  for (const auto& b : table->batches()) {
    for (size_t r = 0; r < b->num_rows(); ++r) {
      rows.push_back(b->RowToString(r));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

struct HashPoint {
  const char* op;     // "agg" | "join"
  const char* label;  // human-readable sweep point
  long long cardinality;
  double selectivity;
  double scalar_ms;
  double typed_ms;
  double speedup;
  bool identical;
  bool bytes_equal;
};

std::vector<HashPoint> RunHashSweep(Catalog* catalog, int rows, int reps) {
  std::vector<HashPoint> points;
  auto run_point = [&](const char* op, const char* label, long long card,
                       double sel, const std::string& sql, bool rf = true) {
    HashRun scalar, typed;
    // Time the engine only; result-set stringification (identical work on
    // both paths) happens outside the timer.
    const double scalar_ms =
        TimeMs(reps, [&] { scalar = ExecHashQuery(catalog, sql, false, rf); });
    const double typed_ms =
        TimeMs(reps, [&] { typed = ExecHashQuery(catalog, sql, true, rf); });
    const auto scalar_rows = SortedTableRows(scalar.table);
    const auto typed_rows = SortedTableRows(typed.table);
    points.push_back({op, label, card, sel, scalar_ms, typed_ms,
                      typed_ms > 0 ? scalar_ms / typed_ms : 0,
                      !scalar_rows.empty() && scalar_rows == typed_rows,
                      scalar.bytes == typed.bytes});
  };

  // Aggregation: key cardinality x probe selectivity. The WHERE v < 50
  // points route a 5%-selectivity selection vector into the agg.
  for (const auto& key : {std::make_pair("k_lo", 10LL),
                          std::make_pair("k_mid", 10000LL),
                          std::make_pair("k_hi", static_cast<long long>(rows))}) {
    const std::string grouped = std::string("SELECT ") + key.first +
                                ", count(*) AS c, sum(v) AS s FROM h GROUP BY " +
                                key.first;
    const std::string filtered = std::string("SELECT ") + key.first +
                                 ", count(*) AS c, sum(v) AS s FROM h WHERE "
                                 "v < 50 GROUP BY " +
                                 key.first;
    run_point("agg", "group-by full scan", key.second, 1.0, grouped);
    run_point("agg", "group-by 5% filter", key.second, 0.05, filtered);
  }

  // Join: build-side cardinality doubles as probe selectivity (matched
  // probe fraction = dim keys / rows); k_mid vs hd_big exercises
  // duplicate probe hits per build key.
  run_point("join", "selective equi-join (0.1% match)", 1000,
            1000.0 / rows,
            "SELECT count(*) AS c, sum(h.v) AS s FROM h JOIN hd_small d "
            "ON h.k_hi = d.k");
  // With runtime filters on, the selective probe is mostly pruned at the
  // scan (zone maps + bloom), so the join operator barely runs on either
  // path. The rf-off point (same setting on both sides, so bills still
  // match) sends every probe row through the operator and measures the
  // join itself: the scalar path pays a serialized-key multimap lookup
  // per probe row, the typed path a batch hash + table probe.
  run_point("join", "selective, rf off (raw probe)", 1000, 1000.0 / rows,
            "SELECT count(*) AS c, sum(h.v) AS s FROM h JOIN hd_small d "
            "ON h.k_hi = d.k",
            /*rf=*/false);
  run_point("join", "10% match", 100000, 100000.0 / rows,
            "SELECT count(*) AS c, sum(h.v) AS s FROM h JOIN hd_big d "
            "ON h.k_hi = d.k");
  run_point("join", "every row matches (10k dup keys)", 10000, 1.0,
            "SELECT count(*) AS c, sum(h.v) AS s FROM h JOIN hd_big d "
            "ON h.k_mid = d.k");
  return points;
}

struct FusedPoint {
  double selectivity;
  double unfused_ms;
  double fused_ms;
  double speedup;
  bool identical;
  bool bytes_equal;
};

std::vector<FusedPoint> RunFusedSweep(Catalog* catalog, int fact_rows,
                                      int reps) {
  (void)fact_rows;
  std::vector<FusedPoint> points;
  // Predicate on `v` (uniform across row groups, so zone maps cannot
  // prune): the fused path filters the encoded chunk and materializes
  // only survivors, the unfused path decodes everything then filters.
  for (double target : {0.001, 0.01, 0.1}) {
    const int64_t threshold = static_cast<int64_t>(1000 * target);
    const std::string sql =
        "SELECT tag, count(*) AS c, sum(k) AS s FROM fact WHERE v < " +
        std::to_string(threshold) + " AND tag <> 'red' GROUP BY tag";
    EngineRun fused_run, unfused_run;
    const double unfused_ms = TimeMs(
        reps, [&] { unfused_run = RunQuery(catalog, sql, false, false); });
    const double fused_ms =
        TimeMs(reps, [&] { fused_run = RunQuery(catalog, sql, true, false); });
    points.push_back({target, unfused_ms, fused_ms,
                      fused_ms > 0 ? unfused_ms / fused_ms : 0,
                      fused_run.rows == unfused_run.rows,
                      fused_run.bytes == unfused_run.bytes});
  }
  return points;
}

struct RfResult {
  uint64_t bytes_off = 0;
  uint64_t bytes_on = 0;
  uint64_t rf_skipped = 0;
  uint64_t pruned_row_groups = 0;
  bool identical = false;
  bool audit_exact = false;
  double off_ms = 0;
  double on_ms = 0;
};

RfResult RunRfComparison(Catalog* catalog, int reps) {
  const std::string sql =
      "SELECT d.name, sum(f.v) AS s, count(*) AS c FROM fact f "
      "JOIN dim d ON f.k = d.k GROUP BY d.name ORDER BY d.name";
  EngineRun off, on;
  RfResult rf;
  rf.off_ms = TimeMs(reps, [&] { off = RunQuery(catalog, sql, true, false); });
  rf.on_ms = TimeMs(reps, [&] { on = RunQuery(catalog, sql, true, true); });
  rf.bytes_off = off.bytes;
  rf.bytes_on = on.bytes;
  rf.rf_skipped = on.rf_skipped;
  rf.pruned_row_groups = on.rf_pruned_row_groups;
  rf.identical = !off.rows.empty() && off.rows == on.rows;
  rf.audit_exact = off.bytes == on.bytes + on.rf_skipped;
  return rf;
}

void WriteJson(const char* path, size_t kernel_rows,
               const std::vector<SweepPoint>& sweep, int fact_rows,
               const std::vector<FusedPoint>& fused, const RfResult& rf,
               int hash_rows, const std::vector<HashPoint>& hash) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"kernels\",\n");
  std::fprintf(f, "  \"kernel_batch_rows\": %zu,\n", kernel_rows);
  std::fprintf(f, "  \"selectivity_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const auto& p = sweep[i];
    std::fprintf(f,
                 "    {\"selectivity\": %.3f, \"scalar_ms\": %.3f, "
                 "\"kernel_ms\": %.3f, \"speedup\": %.2f, "
                 "\"identical\": %s}%s\n",
                 p.selectivity, p.scalar_ms, p.kernel_ms, p.speedup,
                 p.identical ? "true" : "false",
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"fact_rows\": %d,\n", fact_rows);
  std::fprintf(f, "  \"fused_decode_sweep\": [\n");
  for (size_t i = 0; i < fused.size(); ++i) {
    const auto& p = fused[i];
    std::fprintf(f,
                 "    {\"selectivity\": %.3f, \"unfused_ms\": %.3f, "
                 "\"fused_ms\": %.3f, \"speedup\": %.2f, "
                 "\"identical\": %s, \"bytes_equal\": %s}%s\n",
                 p.selectivity, p.unfused_ms, p.fused_ms, p.speedup,
                 p.identical ? "true" : "false",
                 p.bytes_equal ? "true" : "false",
                 i + 1 < fused.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"runtime_filters\": {\n");
  std::fprintf(f, "    \"bytes_off\": %llu,\n",
               static_cast<unsigned long long>(rf.bytes_off));
  std::fprintf(f, "    \"bytes_on\": %llu,\n",
               static_cast<unsigned long long>(rf.bytes_on));
  std::fprintf(f, "    \"rf_skipped_bytes\": %llu,\n",
               static_cast<unsigned long long>(rf.rf_skipped));
  std::fprintf(f, "    \"pruned_row_groups\": %llu,\n",
               static_cast<unsigned long long>(rf.pruned_row_groups));
  std::fprintf(f, "    \"billed_byte_reduction_pct\": %.1f,\n",
               rf.bytes_off > 0
                   ? 100.0 * (rf.bytes_off - rf.bytes_on) / rf.bytes_off
                   : 0.0);
  std::fprintf(f, "    \"identical_results\": %s,\n",
               rf.identical ? "true" : "false");
  std::fprintf(f, "    \"audit_exact\": %s\n", rf.audit_exact ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"hash_rows\": %d,\n", hash_rows);
  std::fprintf(f, "  \"hash_sweep\": [\n");
  for (size_t i = 0; i < hash.size(); ++i) {
    const auto& p = hash[i];
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"label\": \"%s\", "
                 "\"cardinality\": %lld, \"selectivity\": %.4f, "
                 "\"scalar_ms\": %.3f, \"typed_ms\": %.3f, "
                 "\"speedup\": %.2f, \"identical\": %s, "
                 "\"bytes_equal\": %s}%s\n",
                 p.op, p.label, p.cardinality, p.selectivity, p.scalar_ms,
                 p.typed_ms, p.speedup, p.identical ? "true" : "false",
                 p.bytes_equal ? "true" : "false",
                 i + 1 < hash.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int Fail(const char* what) {
  std::printf("FAIL: %s\n", what);
  return 1;
}

int RunSmoke() {
  std::printf("== kernels smoke (CI gate) ==\n");
  // Kernel-vs-scalar: identical selections, kernels not slower on a
  // selective filter (in Release they are several times faster; the gate
  // only demands "no regression" to stay robust on noisy runners).
  const size_t kRows = 200000;
  auto sweep = RunKernelSweep(kRows, 5);
  if (sweep.empty()) return Fail("kernel sweep did not run");
  for (const auto& p : sweep) {
    if (!p.identical) return Fail("kernel selection differs from scalar");
  }
  const auto& selective = sweep.front();  // 1% selectivity
  std::printf("  scalar %.3f ms, kernel %.3f ms (%.1fx) at %.0f%% selectivity\n",
              selective.scalar_ms, selective.kernel_ms, selective.speedup,
              selective.selectivity * 100);
  if (selective.kernel_ms > selective.scalar_ms) {
    return Fail("kernel path slower than scalar on selective filter");
  }

  const int kFactRows = 1 << 17;
  auto catalog = BuildBenchCatalog(kFactRows, 100);
  auto fused = RunFusedSweep(catalog.get(), kFactRows, 2);
  for (const auto& p : fused) {
    if (!p.identical) return Fail("fused decode changed query results");
    if (!p.bytes_equal) return Fail("fused decode changed the bill");
  }
  std::printf("  fused==unfused results and bills across %zu selectivities\n",
              fused.size());

  auto rf = RunRfComparison(catalog.get(), 2);
  if (!rf.identical) return Fail("runtime filters changed join results");
  if (!rf.audit_exact) {
    return Fail("bytes_off != bytes_on + rf_skipped_bytes");
  }
  if (rf.bytes_on >= rf.bytes_off) {
    return Fail("runtime filters did not reduce billed bytes");
  }
  std::printf(
      "  rf bytes %llu -> %llu (-%.1f%%), %llu row groups pruned, audit "
      "exact\n",
      static_cast<unsigned long long>(rf.bytes_off),
      static_cast<unsigned long long>(rf.bytes_on),
      100.0 * (rf.bytes_off - rf.bytes_on) / rf.bytes_off,
      static_cast<unsigned long long>(rf.pruned_row_groups));
  std::printf("PASS: kernels smoke\n");
  return 0;
}

void PrintHashSweep(const std::vector<HashPoint>& hash) {
  std::printf("%5s %-34s %11s %6s %11s %11s %9s %5s %6s\n", "op", "point",
              "cardinality", "sel", "scalar_ms", "typed_ms", "speedup",
              "same", "bill=");
  for (const auto& p : hash) {
    std::printf("%5s %-34s %11lld %6.3f %11.3f %11.3f %8.1fx %5s %6s\n",
                p.op, p.label, p.cardinality, p.selectivity, p.scalar_ms,
                p.typed_ms, p.speedup, p.identical ? "yes" : "NO",
                p.bytes_equal ? "yes" : "NO");
  }
}

int RunHashSmoke() {
  std::printf("== hash smoke (CI gate) ==\n");
  const int kRows = 1 << 17;
  auto catalog = BuildHashCatalog(kRows);
  auto hash = RunHashSweep(catalog.get(), kRows, 2);
  if (hash.empty()) return Fail("hash sweep did not run");
  PrintHashSweep(hash);
  double high_card_agg = 0, selective_join = 0, raw_probe_join = 0;
  for (const auto& p : hash) {
    if (!p.identical) return Fail("typed hash path changed query results");
    if (!p.bytes_equal) return Fail("typed hash path changed the bill");
    // Gate only the points where typed must win big; the remaining points
    // just need "not slower" with headroom for noisy runners.
    if (p.cardinality == kRows && std::strcmp(p.op, "agg") == 0 &&
        p.selectivity == 1.0) {
      high_card_agg = p.speedup;
    } else if (std::strcmp(p.label, "selective, rf off (raw probe)") == 0) {
      raw_probe_join = p.speedup;
    } else if (std::strcmp(p.op, "join") == 0 && p.cardinality == 1000) {
      selective_join = p.speedup;
    } else if (p.speedup < 0.5) {
      return Fail("typed hash path >2x slower on a sweep point");
    }
  }
  std::printf("  high-card agg %.1fx, selective join %.1fx, raw probe %.1fx\n",
              high_card_agg, selective_join, raw_probe_join);
  if (high_card_agg < 2.0) {
    return Fail("typed path under 2x on high-cardinality group-by");
  }
  if (selective_join < 1.5) {
    return Fail("typed path under 1.5x on selective equi-join");
  }
  if (raw_probe_join < 3.0) {
    return Fail("typed path under 3x on the rf-off selective join probe");
  }
  std::printf("PASS: hash smoke\n");
  return 0;
}

int RunFull(const char* out_path) {
  const size_t kKernelRows = 1000000;
  std::printf("== E11: vectorized kernels & runtime filters ==\n\n");
  std::printf("-- predicate kernels (%zu-row batch, best of 5) --\n",
              kKernelRows);
  std::printf("%12s %12s %12s %9s %6s\n", "selectivity", "scalar_ms",
              "kernel_ms", "speedup", "same");
  auto sweep = RunKernelSweep(kKernelRows, 5);
  for (const auto& p : sweep) {
    std::printf("%12.3f %12.3f %12.3f %8.1fx %6s\n", p.selectivity,
                p.scalar_ms, p.kernel_ms, p.speedup,
                p.identical ? "yes" : "NO");
  }

  const int kFactRows = 1 << 19;
  auto catalog = BuildBenchCatalog(kFactRows, 200);
  std::printf("\n-- fused decode+filter (%d-row fact scan, best of 3) --\n",
              kFactRows);
  std::printf("%12s %12s %12s %9s %6s %6s\n", "selectivity", "unfused_ms",
              "fused_ms", "speedup", "same", "bill=");
  auto fused = RunFusedSweep(catalog.get(), kFactRows, 3);
  for (const auto& p : fused) {
    std::printf("%12.3f %12.3f %12.3f %8.1fx %6s %6s\n", p.selectivity,
                p.unfused_ms, p.fused_ms, p.speedup,
                p.identical ? "yes" : "NO", p.bytes_equal ? "yes" : "NO");
  }

  std::printf("\n-- runtime filters (fact join selective dim) --\n");
  auto rf = RunRfComparison(catalog.get(), 3);
  std::printf("  off: %llu bytes in %.2f ms\n",
              static_cast<unsigned long long>(rf.bytes_off), rf.off_ms);
  std::printf("  on:  %llu bytes in %.2f ms (rf_skipped=%llu, pruned "
              "row groups=%llu)\n",
              static_cast<unsigned long long>(rf.bytes_on), rf.on_ms,
              static_cast<unsigned long long>(rf.rf_skipped),
              static_cast<unsigned long long>(rf.pruned_row_groups));
  std::printf("  billed-byte reduction: %.1f%%; results identical: %s; "
              "audit exact: %s\n",
              rf.bytes_off > 0
                  ? 100.0 * (rf.bytes_off - rf.bytes_on) / rf.bytes_off
                  : 0.0,
              rf.identical ? "yes" : "NO", rf.audit_exact ? "yes" : "NO");

  const int kHashRows = 1000000;
  std::printf(
      "\n-- E14: typed hash join & aggregation (%d rows, best of 2) --\n",
      kHashRows);
  auto hash_catalog = BuildHashCatalog(kHashRows);
  auto hash = RunHashSweep(hash_catalog.get(), kHashRows, 2);
  PrintHashSweep(hash);

  WriteJson(out_path, kKernelRows, sweep, kFactRows, fused, rf, kHashRows,
            hash);

  bool ok = rf.identical && rf.audit_exact && rf.bytes_on < rf.bytes_off;
  for (const auto& p : sweep) ok = ok && p.identical;
  for (const auto& p : fused) ok = ok && p.identical && p.bytes_equal;
  for (const auto& p : hash) ok = ok && p.identical && p.bytes_equal;
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_kernels.json";
  bool smoke = false;
  bool hash_smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kernels-smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--hash-smoke") == 0) hash_smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  if (hash_smoke) return RunHashSmoke();
  return smoke ? RunSmoke() : RunFull(out_path);
}
