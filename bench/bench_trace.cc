// E12 — End-to-end tracing, per-operator profiles, metrics export.
//
// A fixed workload (one slot-occupying query, one CF-fleet aggregation
// with a seeded transient fault, one relaxed query that gets held) runs
// over real TPC-H data at each trace level and checks:
//   * trace_level=off records nothing and results/bytes/bills are
//     byte-identical to the fully traced run (observability is free),
//   * the full trace contains the whole causal chain: query -> hold ->
//     mv-lookup -> cf-fleet -> per-worker attempts (with the injected
//     retry) -> individual storage ops,
//   * EXPLAIN ANALYZE profiles appear only at trace_level=full,
//   * the Chrome-trace JSON export is well-formed,
//   * the merged metrics snapshot is valid Prometheus text exposing the
//     per-service-level latency histograms.
//
// `--trace-smoke` runs the CI gate: the full-level run plus the
// off-vs-full identity check.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json.h"
#include "common/trace.h"
#include "format/footer_cache.h"
#include "server/query_server.h"
#include "storage/fault_injection.h"
#include "storage/memory_store.h"
#include "storage/object_store.h"
#include "storage/retrying_storage.h"
#include "storage/tracing_storage.h"
#include "workload/tpch.h"

using namespace pixels;
using namespace pixels::bench;

namespace {

struct TraceOutcome {
  size_t finished = 0;
  std::vector<std::vector<std::string>> rows;
  std::vector<uint64_t> bytes;
  std::vector<double> bills;
  double total_billed = 0;
  std::string profile;  // the CF query's EXPLAIN ANALYZE report
  std::string prometheus;
};

std::vector<std::string> SortedRows(const Table& t) {
  std::vector<std::string> rows;
  for (const auto& b : t.batches()) {
    for (size_t r = 0; r < b->num_rows(); ++r)
      rows.push_back(b->RowToString(r));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::shared_ptr<MemoryStore> BuildBase() {
  auto base = std::make_shared<MemoryStore>();
  Catalog catalog(base);
  TpchOptions topt;
  topt.scale_factor = 0.002;
  topt.rows_per_file = 2000;
  if (!GenerateTpch(&catalog, "tpch", topt).ok()) return nullptr;
  if (!catalog.SaveToStorage("meta/catalog.json").ok()) return nullptr;
  return base;
}

/// One run of the full stack at `level`, spans collected into `tracer`.
/// A single-slot VM cluster forces the immediate real query onto the CF
/// fleet and holds the relaxed one; exactly one seeded transient read
/// fault (with the storage retry layer disabled) forces one CF worker
/// re-invocation, so the trace contains a real retry.
TraceOutcome RunTraced(const std::shared_ptr<MemoryStore>& base,
                       TraceLevel level, Tracer* tracer) {
  FooterCache::Shared()->Clear();
  TraceOutcome out;

  FaultInjectionParams fparams;
  FaultRule rule;
  rule.path_substring = "tpch/";
  rule.fail_first_reads = 1;
  fparams.rules.push_back(rule);
  auto injector = std::make_shared<FaultInjectingStorage>(base, fparams);
  RetryPolicy policy;
  policy.max_attempts = 1;  // the fault reaches the CF worker
  auto retrying = std::make_shared<RetryingStorage>(injector, policy);
  auto store = std::make_shared<ObjectStore>(retrying);
  auto tracing = std::make_shared<TracingStorage>(store, tracer);
  auto catalog = std::make_shared<Catalog>(tracing);
  if (!catalog->LoadFromStorage("meta/catalog.json").ok()) return out;

  SimClock clock;
  Random rng(42);
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 1;
  cparams.vm.slots_per_vm = 1;
  cparams.vm.min_vms = 1;
  cparams.vm.max_vms = 1;
  cparams.vm.high_watermark = 1;
  cparams.vm.monitor_interval = 5 * kSeconds;
  cparams.mv_store_bytes = 8ULL << 20;
  cparams.trace_level = level;
  cparams.tracer = tracer;
  Coordinator coordinator(&clock, &rng, cparams, catalog);
  QueryServer server(&clock, &coordinator);

  const size_t kNum = 3;
  out.rows.resize(kNum);
  out.bytes.assign(kNum, 0);
  out.bills.assign(kNum, 0);
  std::vector<bool> done(kNum, false);
  auto submit = [&](size_t i, Submission s) {
    server.Submit(std::move(s),
                  [&, i](const SubmissionRecord& srec,
                         const QueryRecord& qrec) {
                    done[i] = qrec.state == QueryState::kFinished;
                    out.bytes[i] = qrec.bytes_scanned;
                    out.bills[i] = srec.bill_usd;
                    if (i == 1) out.profile = qrec.profile;
                    if (qrec.result != nullptr)
                      out.rows[i] = SortedRows(*qrec.result);
                  });
  };

  Submission occupier;  // pins the only VM slot
  occupier.level = ServiceLevel::kImmediate;
  occupier.query.work_vcpu_seconds = 30;
  submit(0, std::move(occupier));

  Submission cf_query;
  cf_query.level = ServiceLevel::kImmediate;
  cf_query.query.sql =
      "SELECT l_returnflag, sum(l_extendedprice) AS rev, count(*) AS n "
      "FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag";
  cf_query.query.db = "tpch";
  cf_query.query.execute_real = true;
  submit(1, std::move(cf_query));

  Submission relaxed;
  relaxed.level = ServiceLevel::kRelaxed;
  relaxed.query.sql =
      "SELECT l_linestatus, sum(l_quantity) AS q FROM lineitem "
      "WHERE l_discount > 0.02 GROUP BY l_linestatus ORDER BY l_linestatus";
  relaxed.query.db = "tpch";
  relaxed.query.execute_real = true;
  submit(2, std::move(relaxed));

  clock.RunAll();
  server.Stop();
  coordinator.Stop();
  clock.RunAll();

  for (bool d : done) out.finished += d ? 1 : 0;
  out.total_billed = server.TotalBilledUsd();
  out.prometheus = server.MetricsSnapshot().ToPrometheusText();
  return out;
}

size_t CountSpans(const Tracer& tracer, const char* name) {
  return tracer.FindSpans(name).size();
}

bool CheckTrace(const Tracer& tracer) {
  bool ok = true;
  ok &= Check(CountSpans(tracer, "query") == 3,
              "full trace: one root query span per submission");
  ok &= Check(CountSpans(tracer, "hold") == 1,
              "full trace: the relaxed query was held exactly once");
  ok &= Check(CountSpans(tracer, "mv-lookup") >= 2,
              "full trace: MV lookups traced on both engine paths");
  ok &= Check(CountSpans(tracer, "cf-fleet") == 1,
              "full trace: one CF fleet dispatch");
  const size_t workers = CountSpans(tracer, "cf-worker");
  const size_t attempts = CountSpans(tracer, "cf-attempt");
  ok &= Check(workers >= 2, "full trace: the fleet spanned >=2 workers");
  ok &= Check(attempts == workers + 1,
              "full trace: exactly one extra attempt (the injected retry)");
  size_t storage_spans = 0;
  for (const auto& span : tracer.Snapshot()) {
    if (span.name.rfind("storage-", 0) == 0) ++storage_spans;
  }
  ok &= Check(storage_spans > 0,
              "full trace: individual storage ops were traced");
  auto doc = Json::Parse(tracer.ToChromeTraceJson());
  ok &= Check(doc.ok() && doc->Get("traceEvents").size() == tracer.size(),
              "chrome-trace export parses and covers every span");
  return ok;
}

bool CheckPrometheus(const std::string& text) {
  bool ok = true;
  std::string error;
  ok &= Check(ValidatePrometheusText(text, &error),
              "metrics snapshot is valid Prometheus text" +
                  (error.empty() ? "" : " (" + error + ")"));
  ok &= Check(text.find("pixels_query_latency_ms_bucket{level=\"immediate\"") !=
                  std::string::npos,
              "per-level latency histogram: immediate");
  ok &= Check(text.find("pixels_query_latency_ms_bucket{level=\"relaxed\"") !=
                  std::string::npos,
              "per-level latency histogram: relaxed");
  ok &= Check(text.find("pixels_queue_wait_ms") != std::string::npos,
              "queue-wait histogram exported");
  ok &= Check(text.find("pixels_storage_get_latency_ms") != std::string::npos,
              "storage GET latency histogram exported");
  ok &= Check(text.find("pixels_cf_worker_retries 1") != std::string::npos,
              "the injected CF worker retry is visible in the counters");
  return ok;
}

bool CheckIdentical(const TraceOutcome& off, const TraceOutcome& full) {
  bool ok = true;
  ok &= Check(off.finished == 3 && full.finished == 3,
              "all queries finish at every trace level");
  for (size_t i = 0; i < off.rows.size(); ++i) {
    const std::string q = "q" + std::to_string(i);
    ok &= Check(off.rows[i] == full.rows[i],
                q + ": byte-identical result rows (off vs full)");
    ok &= Check(off.bytes[i] == full.bytes[i],
                q + ": identical scanned bytes (off vs full)");
    ok &= Check(off.bills[i] == full.bills[i],
                q + ": cent-identical bill (off vs full)");
  }
  ok &= Check(off.total_billed == full.total_billed,
              "identical total billed (off vs full)");
  return ok;
}

void PrintRow(const char* level, const Tracer& tracer,
              const TraceOutcome& out) {
  std::printf("%6s %8zu %9zu/3 %12.8f %10zu %12zu\n", level, tracer.size(),
              out.finished, out.total_billed, out.profile.size(),
              out.prometheus.size());
}

int RunSweep() {
  std::printf("=== E12: tracing, profiles, metrics export ===\n\n");
  auto base = BuildBase();
  if (base == nullptr) return 1;

  std::printf("%6s %8s %11s %12s %10s %12s\n", "level", "spans", "finished",
              "billed_usd", "profile_b", "prometheus_b");
  Tracer off_tracer;
  const TraceOutcome off = RunTraced(base, TraceLevel::kOff, &off_tracer);
  PrintRow("off", off_tracer, off);
  Tracer spans_tracer(TraceLevel::kSpans);
  const TraceOutcome spans = RunTraced(base, TraceLevel::kSpans, &spans_tracer);
  PrintRow("spans", spans_tracer, spans);
  Tracer full_tracer(TraceLevel::kFull);
  const TraceOutcome full = RunTraced(base, TraceLevel::kFull, &full_tracer);
  PrintRow("full", full_tracer, full);
  std::printf("\n--- EXPLAIN ANALYZE (CF-fleet query, trace_level=full) ---\n");
  std::printf("%s\n", full.profile.c_str());

  bool ok = true;
  ok &= Check(off_tracer.size() == 0, "trace_level=off records no spans");
  ok &= Check(off.profile.empty() && spans.profile.empty(),
              "profiles attach only at trace_level=full");
  ok &= Check(!full.profile.empty() &&
                  full.profile.find("CfWorker[") != std::string::npos,
              "full profile includes the fleet's per-worker operators");
  ok &= CheckIdentical(off, full);
  ok &= CheckTrace(full_tracer);
  ok &= CheckTrace(spans_tracer);
  ok &= CheckPrometheus(full.prometheus);

  std::printf("\nE12 overall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int RunSmoke() {
  std::printf("=== E12 smoke: traced run vs untraced run (CI gate) ===\n");
  auto base = BuildBase();
  if (base == nullptr) return 1;

  Tracer off_tracer;
  const TraceOutcome off = RunTraced(base, TraceLevel::kOff, &off_tracer);
  Tracer full_tracer(TraceLevel::kFull);
  const TraceOutcome full = RunTraced(base, TraceLevel::kFull, &full_tracer);
  PrintRow("off", off_tracer, off);
  PrintRow("full", full_tracer, full);

  bool ok = true;
  ok &= Check(off_tracer.size() == 0, "trace_level=off records no spans");
  ok &= CheckIdentical(off, full);
  ok &= CheckTrace(full_tracer);
  ok &= CheckPrometheus(full.prometheus);
  ok &= Check(!full.profile.empty(), "EXPLAIN ANALYZE profile attached");

  std::printf("E12 smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--trace-smoke") == 0) {
    return RunSmoke();
  }
  return RunSweep();
}
