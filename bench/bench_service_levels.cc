// E1 — Flexible service levels and prices (paper §3.2).
//
// The same bursty TPC-H-weighted workload is replayed three times, each
// time submitting every query at one service level. The bench reports the
// pending-time distribution and per-query bill per level — the figure a
// full evaluation of §3.2 would plot — and checks the paper's claims:
//   * pending-time bounds order immediate <= relaxed <= best-of-effort,
//   * immediate queries start (almost) instantly even during the spike,
//   * relaxed pending time is bounded by the grace period,
//   * bills follow the 5 : 1 : 0.5 $/TB price list.
#include <cstdio>

#include "bench_util.h"
#include "workload/arrivals.h"
#include "workload/tpch.h"

using namespace pixels;
using namespace pixels::bench;

int main() {
  std::printf("=== E1: service levels and prices (paper §3.2) ===\n\n");

  // Workload: 0.2 q/s base with a 3 q/s spike in minutes 10-13, one hour.
  Random arrival_rng(7);
  auto arrivals = SpikeArrivals(&arrival_rng, 0.2, 3.0, 10 * kMinutes,
                                3 * kMinutes, 60 * kMinutes);
  // Query mix: TPC-H weights scaled to vCPU-seconds, ~0.5-3 GB scans.
  Random mix_rng(11);
  std::vector<QuerySpec> specs;
  const auto& queries = TpchQuerySet();
  for (size_t i = 0; i < arrivals.size(); ++i) {
    const auto& q = queries[mix_rng.Uniform(0, static_cast<int64_t>(queries.size()) - 1)];
    QuerySpec spec;
    spec.work_vcpu_seconds = q.weight * 20.0;
    spec.bytes_to_scan = static_cast<uint64_t>(q.weight * 0.5e9);
    specs.push_back(spec);
  }

  CoordinatorParams cparams;
  cparams.vm.initial_vms = 2;
  cparams.vm.slots_per_vm = 4;
  cparams.vm.high_watermark = 5.0;
  cparams.vm.low_watermark = 0.75;
  QueryServerParams sparams;
  sparams.relaxed_grace_period = 5 * kMinutes;

  struct Row {
    const char* name;
    ServiceLevel level;
    PendingStats stats;
    double cf_cost = 0;
  };
  Row rows[] = {{"immediate", ServiceLevel::kImmediate, {}, 0},
                {"relaxed", ServiceLevel::kRelaxed, {}, 0},
                {"best-of-effort", ServiceLevel::kBestEffort, {}, 0}};

  for (auto& row : rows) {
    std::vector<ServiceLevel> levels(arrivals.size(), row.level);
    auto result =
        RunScenario(cparams, sparams, arrivals, specs, levels, 4 * kHours);
    row.stats = Summarize(result.outcomes);
    row.cf_cost = result.cf_cost_usd;
  }

  std::printf("%-16s %9s %10s %10s %10s %12s %10s %8s\n", "level",
              "finished", "mean_pend", "p50_pend", "p95_pend", "bill/query",
              "$rate/TB", "used_cf");
  // All levels replay the same workload, so the achieved $/TB rate is the
  // mean bill over the mean scanned bytes.
  double mean_bytes = 0;
  for (const auto& s : specs) mean_bytes += static_cast<double>(s.bytes_to_scan);
  mean_bytes /= static_cast<double>(specs.size());
  for (const auto& row : rows) {
    std::printf("%-16s %6zu/%-3zu %8.1fs %8.1fs %8.1fs %11.5f %9.2f %7zu\n",
                row.name, row.stats.finished, row.stats.total,
                row.stats.mean_pending_s, row.stats.p50_pending_s,
                row.stats.p95_pending_s, row.stats.mean_bill,
                row.stats.mean_bill / (mean_bytes / kBytesPerTB),
                row.stats.used_cf);
  }
  std::printf("\n");

  const PendingStats& imm = rows[0].stats;
  const PendingStats& rel = rows[1].stats;
  const PendingStats& best = rows[2].stats;

  bool ok = true;
  ok &= Check(imm.finished == imm.total && rel.finished == rel.total,
              "immediate and relaxed workloads fully complete");
  ok &= Check(imm.p95_pending_s <= 1.0,
              "immediate: p95 pending <= 1 s (guaranteed immediate start)");
  ok &= Check(imm.mean_pending_s <= rel.mean_pending_s &&
                  rel.mean_pending_s <= best.mean_pending_s,
              "pending times order immediate <= relaxed <= best-of-effort");
  ok &= Check(rel.max_pending_s <= 5 * 60 + 30,
              "relaxed: max pending bounded by the 5-minute grace period");
  ok &= Check(best.p95_pending_s > rel.p95_pending_s,
              "best-of-effort: no pending-time guarantee (worst p95)");
  ok &= Check(std::abs(rel.mean_bill / imm.mean_bill - 0.2) < 0.01,
              "relaxed bill = 20% of immediate (paper: $1 vs $5 per TB)");
  ok &= Check(std::abs(best.mean_bill / imm.mean_bill - 0.1) < 0.01,
              "best-of-effort bill = 10% of immediate ($0.5 per TB)");
  ok &= Check(rows[0].cf_cost > 0 && rows[1].cf_cost == 0 &&
                  rows[2].cf_cost == 0,
              "only the immediate level engages CF acceleration");

  std::printf("\nE1 overall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
