// E11 — Fault injection + retry/backoff (the chaos invariant).
//
// A fixed three-query workload is replayed over real TPC-H data behind
// the production storage stack
//   ObjectStore( RetryingStorage( FaultInjectingStorage( MemoryStore )))
// sweeping the seeded transient-fault rate. For each rate the bench
// reports injected errors, retry attempts/recoveries, and the total
// bill, and checks:
//   * rate 0 -> retry counters exactly zero,
//   * every faulted run produces results, scanned bytes, and bills
//     byte-/cent-identical to the fault-free baseline,
//   * retries grow with the fault rate and nothing is ever exhausted,
//   * the same 20% rate WITHOUT the retry layer fails queries (and the
//     failed queries bill zero) — the retries are what buy the SLO.
//
// `--chaos-smoke` runs the CI gate instead: a 5% fault-rate run must be
// identical to the fault-free run while actually having retried.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "format/footer_cache.h"
#include "server/query_server.h"
#include "storage/fault_injection.h"
#include "storage/memory_store.h"
#include "storage/object_store.h"
#include "storage/retrying_storage.h"
#include "workload/tpch.h"

using namespace pixels;
using namespace pixels::bench;

namespace {

struct QueryOut {
  bool finished = false;
  std::vector<std::string> rows;  // sorted
  uint64_t bytes_scanned = 0;
  double bill_usd = 0;
};

struct ChaosOutcome {
  double rate = 0;
  bool retry_enabled = true;
  std::vector<QueryOut> queries;
  size_t finished = 0;
  double total_billed = 0;
  uint64_t injected_errors = 0;
  uint64_t retry_attempts = 0;
  uint64_t retry_recovered = 0;
  uint64_t retry_exhausted = 0;
};

const struct {
  const char* sql;
  ServiceLevel level;
} kQueries[] = {
    {"SELECT l_returnflag, sum(l_extendedprice) AS rev, count(*) AS n "
     "FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag",
     ServiceLevel::kImmediate},
    {"SELECT o.o_orderpriority, count(*) AS n FROM orders o JOIN "
     "lineitem l ON o.o_orderkey = l.l_orderkey WHERE l.l_quantity < 25 "
     "GROUP BY o.o_orderpriority ORDER BY o.o_orderpriority",
     ServiceLevel::kImmediate},
    {"SELECT l_linestatus, sum(l_quantity) AS q FROM lineitem "
     "WHERE l_discount > 0.02 GROUP BY l_linestatus ORDER BY l_linestatus",
     ServiceLevel::kRelaxed},
};
constexpr size_t kNumQueries = sizeof(kQueries) / sizeof(kQueries[0]);

std::vector<std::string> SortedRows(const Table& t) {
  std::vector<std::string> rows;
  for (const auto& b : t.batches()) {
    for (size_t r = 0; r < b->num_rows(); ++r)
      rows.push_back(b->RowToString(r));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// One full server/coordinator/engine run over the shared base data at the
/// given fault rate. Faults only hit TPC-H data paths ("tpch/..."), so the
/// catalog load stays comparable even when retries are disabled.
ChaosOutcome RunChaos(const std::shared_ptr<MemoryStore>& base, double rate,
                      bool retry_enabled) {
  // Footer-cache keys include the storage pointer; clear so a recycled
  // allocation can never leak warm footers between runs.
  FooterCache::Shared()->Clear();

  ChaosOutcome out;
  out.rate = rate;
  out.retry_enabled = retry_enabled;

  std::shared_ptr<Storage> inner = base;
  std::shared_ptr<FaultInjectingStorage> injector;
  if (rate > 0) {
    FaultInjectionParams params;
    params.seed = 7;  // fixed seed: a run that passes once passes forever
    FaultRule rule;
    rule.path_substring = "tpch/";
    rule.read_error_rate = rate;
    rule.latency_spike_rate = rate;
    params.rules.push_back(rule);
    injector = std::make_shared<FaultInjectingStorage>(base, params);
    inner = injector;
  }
  RetryPolicy policy;
  policy.max_attempts = retry_enabled ? 8 : 1;
  auto retrying = std::make_shared<RetryingStorage>(inner, policy);
  auto store = std::make_shared<ObjectStore>(retrying);
  auto catalog = std::make_shared<Catalog>(store);
  if (!catalog->LoadFromStorage("meta/catalog.json").ok()) return out;

  SimClock clock;
  Random rng(42);
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 2;
  cparams.vm.slots_per_vm = 2;
  cparams.vm.min_vms = 1;
  cparams.vm.max_vms = 4;
  cparams.vm.monitor_interval = 5 * kSeconds;
  Coordinator coordinator(&clock, &rng, cparams, catalog);
  QueryServer server(&clock, &coordinator);

  out.queries.resize(kNumQueries);
  for (size_t i = 0; i < kNumQueries; ++i) {
    Submission s;
    s.level = kQueries[i].level;
    s.query.sql = kQueries[i].sql;
    s.query.db = "tpch";
    s.query.execute_real = true;
    server.Submit(s, [&out, i](const SubmissionRecord& srec,
                               const QueryRecord& qrec) {
      QueryOut& q = out.queries[i];
      q.finished = qrec.state == QueryState::kFinished;
      q.bytes_scanned = qrec.bytes_scanned;
      q.bill_usd = srec.bill_usd;
      if (qrec.result != nullptr) q.rows = SortedRows(*qrec.result);
    });
  }
  clock.RunAll();
  server.Stop();
  coordinator.Stop();
  clock.RunAll();

  for (const auto& q : out.queries) out.finished += q.finished ? 1 : 0;
  out.total_billed = server.TotalBilledUsd();
  const ObjectStoreStats stats = store->stats();
  out.retry_attempts = stats.retry_attempts;
  out.retry_recovered = stats.retry_recovered;
  out.retry_exhausted = stats.retry_exhausted;
  if (injector != nullptr) {
    out.injected_errors = injector->stats().injected_read_errors;
  }
  return out;
}

std::shared_ptr<MemoryStore> BuildBase() {
  auto base = std::make_shared<MemoryStore>();
  Catalog catalog(base);
  TpchOptions topt;
  topt.scale_factor = 0.002;
  topt.rows_per_file = 2000;
  if (!GenerateTpch(&catalog, "tpch", topt).ok()) return nullptr;
  if (!catalog.SaveToStorage("meta/catalog.json").ok()) return nullptr;
  return base;
}

void PrintRow(const ChaosOutcome& o) {
  std::printf("%6.0f%% %6s %9llu %9llu %10llu %10llu %9zu/%zu %12.8f\n",
              o.rate * 100, o.retry_enabled ? "on" : "off",
              static_cast<unsigned long long>(o.injected_errors),
              static_cast<unsigned long long>(o.retry_attempts),
              static_cast<unsigned long long>(o.retry_recovered),
              static_cast<unsigned long long>(o.retry_exhausted), o.finished,
              kNumQueries, o.total_billed);
}

bool CheckIdentical(const ChaosOutcome& baseline, const ChaosOutcome& chaotic,
                    const std::string& label) {
  bool ok = true;
  ok &= Check(chaotic.finished == kNumQueries,
              label + ": every query finishes");
  for (size_t i = 0; i < kNumQueries; ++i) {
    const std::string q = label + " q" + std::to_string(i);
    ok &= Check(baseline.queries[i].rows == chaotic.queries[i].rows,
                q + ": byte-identical result rows");
    ok &= Check(
        baseline.queries[i].bytes_scanned == chaotic.queries[i].bytes_scanned,
        q + ": identical scanned bytes (no double-billed retries)");
    ok &= Check(baseline.queries[i].bill_usd == chaotic.queries[i].bill_usd,
                q + ": cent-identical bill");
  }
  ok &= Check(baseline.total_billed == chaotic.total_billed,
              label + ": identical total billed");
  ok &= Check(chaotic.retry_exhausted == 0,
              label + ": no op exhausted its retry budget");
  return ok;
}

int RunSweep() {
  std::printf("=== E11: chaos soak (fault rate x retry layer) ===\n\n");
  auto base = BuildBase();
  if (base == nullptr) return 1;

  std::printf("%7s %6s %9s %9s %10s %10s %11s %12s\n", "rate", "retry",
              "injected", "attempts", "recovered", "exhausted", "finished",
              "billed_usd");

  const ChaosOutcome baseline = RunChaos(base, 0.0, true);
  PrintRow(baseline);
  std::vector<ChaosOutcome> chaotic;
  for (double rate : {0.01, 0.05, 0.20}) {
    chaotic.push_back(RunChaos(base, rate, true));
    PrintRow(chaotic.back());
  }
  const ChaosOutcome unprotected = RunChaos(base, 0.20, false);
  PrintRow(unprotected);
  std::printf("\n");

  bool ok = true;
  ok &= Check(baseline.finished == kNumQueries && baseline.total_billed > 0,
              "baseline: all queries finish and bill");
  ok &= Check(baseline.retry_attempts == 0 && baseline.retry_recovered == 0 &&
                  baseline.retry_exhausted == 0,
              "baseline: injection off -> retry counters exactly zero");
  for (const auto& o : chaotic) {
    const std::string label =
        "rate " + std::to_string(static_cast<int>(o.rate * 100)) + "%";
    ok &= CheckIdentical(baseline, o, label);
    // At 1% the seeded draw may legitimately inject nothing over this
    // small workload; only the higher rates must observably retry.
    if (o.rate >= 0.05) {
      ok &= Check(o.injected_errors > 0 && o.retry_recovered > 0,
                  label + ": faults were injected and recovered");
    }
  }
  ok &= Check(chaotic.front().retry_attempts < chaotic.back().retry_attempts,
              "retry attempts grow with the fault rate");
  ok &= Check(unprotected.finished < kNumQueries,
              "20% faults without retries fail queries");
  ok &= Check(unprotected.total_billed < baseline.total_billed,
              "failed queries bill zero, so the unprotected total is lower");

  std::printf("\nE11 overall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int RunSmoke() {
  std::printf("=== E11 smoke: 5%% seeded faults vs fault-free (CI gate) ===\n");
  auto base = BuildBase();
  if (base == nullptr) return 1;

  const ChaosOutcome baseline = RunChaos(base, 0.0, true);
  const ChaosOutcome chaotic = RunChaos(base, 0.05, true);
  PrintRow(baseline);
  PrintRow(chaotic);

  bool ok = true;
  ok &= Check(baseline.finished == kNumQueries && baseline.total_billed > 0,
              "baseline: all queries finish and bill");
  ok &= Check(baseline.retry_attempts == 0 && baseline.retry_recovered == 0,
              "baseline: retry counters exactly zero");
  ok &= CheckIdentical(baseline, chaotic, "5% chaos");
  ok &= Check(chaotic.injected_errors > 0 && chaotic.retry_recovered > 0,
              "5% chaos: faults were injected and recovered by retries");

  std::printf("E11 smoke: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--chaos-smoke") == 0) {
    return RunSmoke();
  }
  return RunSweep();
}
