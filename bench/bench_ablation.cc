// E9 (ablation) — contribution of each optimizer rule to the quantities
// the paper's pricing model rewards: bytes scanned (the billing unit) and
// rows materialized out of the scans.
//
// Runs the TPC-H query set under ablated optimizer configurations and
// reports per-config totals. Checks:
//   * projection pruning is the dominant bytes-scanned reducer,
//   * predicate pushdown (zone maps) cuts rows read on selective queries,
//   * the full optimizer is never worse than any ablation,
//   * all configurations return identical results.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exec/executor.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "storage/memory_store.h"
#include "workload/tpch.h"

using namespace pixels;
using namespace pixels::bench;

namespace {

std::vector<std::string> SortedRows(const Table& t) {
  std::vector<std::string> rows;
  for (const auto& b : t.batches()) {
    for (size_t r = 0; r < b->num_rows(); ++r) rows.push_back(b->RowToString(r));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace

int main() {
  std::printf("=== E9 (ablation): optimizer rules vs bytes scanned ===\n\n");

  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  TpchOptions options;
  options.scale_factor = 0.01;
  Status st = GenerateTpch(catalog.get(), "tpch", options);
  if (!st.ok()) {
    std::printf("generation failed: %s\n", st.ToString().c_str());
    return 1;
  }

  struct Config {
    const char* name;
    OptimizerOptions options;
  };
  OptimizerOptions none{false, false, false, false};
  OptimizerOptions fold = none;
  fold.fold_constants = true;
  OptimizerOptions pushdown = none;
  pushdown.pushdown_predicates = true;
  OptimizerOptions prune = none;
  prune.prune_projections = true;
  const Config configs[] = {
      {"none", none},           {"+fold", fold},
      {"+pushdown", pushdown},  {"+prune_projection", prune},
      {"full", OptimizerOptions{}},
  };

  struct Totals {
    uint64_t bytes = 0;
    uint64_t rows = 0;
  };
  Totals totals[5];
  std::vector<std::vector<std::string>> reference_results;

  bool results_match = true;
  for (int c = 0; c < 5; ++c) {
    size_t qi = 0;
    for (const auto& q : TpchQuerySet()) {
      auto plan = PlanQuery(q.sql, *catalog, "tpch");
      if (!plan.ok()) {
        std::printf("%s: %s\n", q.name.c_str(), plan.status().ToString().c_str());
        return 1;
      }
      auto optimized =
          Optimize(std::move(plan).ValueOrDie(), *catalog, configs[c].options);
      if (!optimized.ok()) return 1;
      ExecContext ctx;
      ctx.catalog = catalog.get();
      auto result = ExecutePlan(*optimized, &ctx);
      if (!result.ok()) {
        std::printf("%s under %s: %s\n", q.name.c_str(), configs[c].name,
                    result.status().ToString().c_str());
        return 1;
      }
      totals[c].bytes += ctx.bytes_scanned;
      totals[c].rows += ctx.rows_scanned;
      if (c == 0) {
        reference_results.push_back(SortedRows(**result));
      } else if (SortedRows(**result) != reference_results[qi]) {
        results_match = false;
        std::printf("MISMATCH: %s under %s\n", q.name.c_str(), configs[c].name);
      }
      ++qi;
    }
  }

  std::printf("%-20s %16s %16s %12s\n", "config", "bytes_scanned",
              "rows_scanned", "bytes_vs_none");
  for (int c = 0; c < 5; ++c) {
    std::printf("%-20s %16llu %16llu %11.1f%%\n", configs[c].name,
                static_cast<unsigned long long>(totals[c].bytes),
                static_cast<unsigned long long>(totals[c].rows),
                100.0 * static_cast<double>(totals[c].bytes) /
                    static_cast<double>(totals[0].bytes));
  }
  std::printf("\n");

  bool ok = true;
  ok &= Check(results_match, "all ablations return identical results");
  ok &= Check(totals[3].bytes < totals[0].bytes / 2,
              "projection pruning alone cuts scanned bytes by >2x");
  ok &= Check(totals[2].rows < totals[0].rows,
              "zone-map pushdown alone cuts rows read");
  ok &= Check(totals[4].bytes <= totals[3].bytes &&
                  totals[4].bytes <= totals[2].bytes,
              "full optimizer is at least as good as any single rule");
  ok &= Check(totals[4].bytes < totals[0].bytes / 2,
              "full optimizer halves the billing unit (bytes scanned)");

  std::printf("\nE9 overall: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
