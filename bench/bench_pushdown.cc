// E7 — Operator pushdown into CF sub-plans (paper §3.1).
//
// Runs TPC-H aggregations and joins directly in one process vs through
// the CF pushdown path (sub-plan partitioned over a worker fleet, partial
// results written to object storage as materialized views, merged by the
// top-level plan). Reports correctness, bytes scanned, and simulated
// latency for worker fleets of 1..16, checking:
//   * pushdown results exactly match direct execution,
//   * per-worker runtime shrinks as the fleet grows (the reason CF can
//     absorb spikes),
//   * materialized views flow through object storage.
#include <chrono>
#include <cstdio>
#include <numeric>

#include "bench_util.h"
#include "exec/executor.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "storage/memory_store.h"
#include "turbo/cf_worker.h"
#include "workload/tpch.h"

using namespace pixels;
using namespace pixels::bench;

namespace {

std::vector<std::string> Rows(const Table& t) {
  std::vector<std::string> rows;
  for (const auto& b : t.batches()) {
    for (size_t r = 0; r < b->num_rows(); ++r) rows.push_back(b->RowToString(r));
  }
  return rows;
}

}  // namespace

int main() {
  std::printf("=== E7: CF sub-plan pushdown (paper §3.1) ===\n\n");

  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  TpchOptions options;
  options.scale_factor = 0.01;
  options.rows_per_file = 4000;  // 15 lineitem files -> fleets up to 15
  Status st = GenerateTpch(catalog.get(), "tpch", options);
  if (!st.ok()) {
    std::printf("generation failed: %s\n", st.ToString().c_str());
    return 1;
  }

  CfServiceParams cf_params;
  bool ok = true;

  const struct {
    const char* name;
    const char* sql;
  } cases[] = {
      {"q1_aggregate",
       "SELECT l_returnflag, l_linestatus, sum(l_quantity), "
       "sum(l_extendedprice), avg(l_discount), count(*) FROM lineitem WHERE "
       "l_shipdate <= DATE '1998-09-02' GROUP BY l_returnflag, l_linestatus "
       "ORDER BY l_returnflag, l_linestatus"},
      {"q6_filter_sum",
       "SELECT sum(l_extendedprice * l_discount) FROM lineitem WHERE "
       "l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' "
       "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"},
      {"join_agg",
       "SELECT o.o_orderpriority, count(*) AS n FROM orders o JOIN lineitem "
       "l ON o.o_orderkey = l.l_orderkey GROUP BY o.o_orderpriority ORDER BY "
       "o.o_orderpriority"},
  };

  for (const auto& c : cases) {
    ExecContext direct_ctx;
    direct_ctx.catalog = catalog.get();
    auto direct = ExecuteQuery(c.sql, "tpch", &direct_ctx);
    if (!direct.ok()) {
      std::printf("%s direct failed: %s\n", c.name,
                  direct.status().ToString().c_str());
      return 1;
    }
    std::printf("-- %s (direct: %llu bytes scanned) --\n", c.name,
                static_cast<unsigned long long>(direct_ctx.bytes_scanned));
    std::printf("%8s %10s %14s %16s %14s\n", "workers", "used", "match",
                "bytes_scanned", "sim_latency");

    double prev_latency = 1e18;
    bool monotonic = true;
    for (int workers : {1, 2, 4, 8, 16}) {
      auto plan = PlanQuery(c.sql, *catalog, "tpch");
      if (!plan.ok()) return 1;
      auto optimized = Optimize(std::move(plan).ValueOrDie(), *catalog);
      CfWorkerOptions wopts;
      wopts.num_workers = workers;
      wopts.intermediate_store = storage.get();
      wopts.view_prefix =
          "intermediate/" + std::string(c.name) + "." + std::to_string(workers);
      auto exec = ExecuteWithCfPushdown(*optimized, catalog.get(), wopts);
      if (!exec.ok()) {
        std::printf("pushdown failed: %s\n", exec.status().ToString().c_str());
        return 1;
      }
      bool match = Rows(**direct) == Rows(*exec->result);
      ok &= match;
      // Simulated CF latency: startup + per-worker share of the scan work.
      double per_worker_s = exec->work_vcpu_seconds /
                            std::max(exec->workers_used, 1) /
                            cf_params.vcpus_per_worker;
      double sim_latency = 1.0 + per_worker_s;  // 1s startup
      if (exec->workers_used > 1 && sim_latency > prev_latency + 1e-9) {
        monotonic = false;
      }
      prev_latency = sim_latency;
      std::printf("%8d %10d %14s %16llu %12.3fs\n", workers,
                  exec->workers_used, match ? "exact" : "MISMATCH",
                  static_cast<unsigned long long>(exec->bytes_scanned),
                  sim_latency);
    }
    ok &= Check(monotonic,
                std::string(c.name) + ": latency shrinks with fleet size");
    std::printf("\n");
  }
  Check(ok, "all pushdown results exactly match direct execution");

  // --- concurrent CF fleet: measured wall-clock overlap ---
  // The same 8-worker fleet run serially (fleet_parallelism = 1) vs
  // concurrently on the shared pool. Overlap means the concurrent fleet's
  // elapsed wall time is less than the sum of its per-worker times — the
  // property that lets hundreds of CF workers absorb a spike in parallel.
  std::printf("-- concurrent fleet overlap (q1_aggregate, 8 workers) --\n");
  bool overlap_ok = true;
  double serial_elapsed = 0, concurrent_elapsed = 0;
  for (int fleet_par : {1, 8}) {
    auto plan = PlanQuery(cases[0].sql, *catalog, "tpch");
    if (!plan.ok()) return 1;
    auto optimized = Optimize(std::move(plan).ValueOrDie(), *catalog);
    CfWorkerOptions wopts;
    wopts.num_workers = 8;
    wopts.fleet_parallelism = fleet_par;
    wopts.intermediate_store = storage.get();
    wopts.view_prefix = "intermediate/overlap." + std::to_string(fleet_par);
    const auto t0 = std::chrono::steady_clock::now();
    auto exec = ExecuteWithCfPushdown(*optimized, catalog.get(), wopts);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (!exec.ok()) {
      std::printf("pushdown failed: %s\n", exec.status().ToString().c_str());
      return 1;
    }
    const double worker_sum =
        std::accumulate(exec->worker_elapsed_seconds.begin(),
                        exec->worker_elapsed_seconds.end(), 0.0);
    std::printf(
        "  fleet_parallelism=%d: wall %.1f ms, fleet %.1f ms, "
        "sum(worker wall) %.1f ms\n",
        fleet_par, elapsed * 1e3, exec->fleet_elapsed_seconds * 1e3,
        worker_sum * 1e3);
    if (fleet_par == 1) {
      serial_elapsed = exec->fleet_elapsed_seconds;
    } else {
      concurrent_elapsed = exec->fleet_elapsed_seconds;
      overlap_ok = exec->fleet_elapsed_seconds < worker_sum;
    }
  }
  std::printf("  serial fleet %.1f ms -> concurrent fleet %.1f ms (%.2fx)\n",
              serial_elapsed * 1e3, concurrent_elapsed * 1e3,
              concurrent_elapsed > 0 ? serial_elapsed / concurrent_elapsed
                                     : 0.0);
  ok &= Check(overlap_ok,
              "concurrent fleet elapsed < sum of per-worker wall times");
  std::printf("\n");

  auto views = storage->List("intermediate/");
  bool views_ok =
      Check(views.ok() && views->size() >= 15,
            "worker materialized views persisted in object storage");

  std::printf("\nE7 overall: %s\n", ok && views_ok ? "PASS" : "FAIL");
  return ok && views_ok ? 0 : 1;
}
