// Quickstart: create a database, write a Pixels table, and run SQL.
//
//   $ ./quickstart
//
// Shows the minimal public API: Catalog + PixelsWriter for data loading,
// ExecuteQuery for SQL, Table::ToString for results.
#include <cstdio>

#include "catalog/catalog.h"
#include "exec/executor.h"
#include "format/writer.h"
#include "storage/memory_store.h"

using namespace pixels;

int main() {
  // 1. A catalog over an in-memory object store (swap in LocalFs or the
  //    simulated cloud ObjectStore for persistence / cost accounting).
  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  Status st = catalog->CreateDatabase("shop");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Define and load a table.
  FileSchema schema = {{"product", TypeId::kString},
                       {"region", TypeId::kString},
                       {"units", TypeId::kInt64},
                       {"price", TypeId::kDouble},
                       {"sold", TypeId::kDate}};
  st = catalog->CreateTable("shop", "sales", schema);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  PixelsWriter writer(schema);
  struct Row {
    const char* product;
    const char* region;
    int64_t units;
    double price;
    const char* sold;
  };
  const Row rows[] = {
      {"widget", "emea", 12, 9.99, "2026-05-02"},
      {"widget", "amer", 31, 9.99, "2026-05-03"},
      {"gadget", "emea", 5, 24.50, "2026-05-03"},
      {"gadget", "apac", 8, 24.50, "2026-05-05"},
      {"widget", "apac", 19, 9.49, "2026-05-06"},
      {"doodad", "amer", 2, 199.00, "2026-05-06"},
  };
  for (const auto& r : rows) {
    auto sold = ParseDate(r.sold);
    st = writer.AppendRow({Value::String(r.product), Value::String(r.region),
                           Value::Int(r.units), Value::Double(r.price),
                           Value::Int(*sold)});
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  st = writer.Finish(storage.get(), "shop/sales/part0.pxl");
  if (st.ok()) st = catalog->AddTableFile("shop", "sales", "shop/sales/part0.pxl");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Query it.
  const char* queries[] = {
      "SELECT product, sum(units * price) AS revenue FROM sales GROUP BY "
      "product ORDER BY revenue DESC",
      "SELECT region, count(*) AS orders FROM sales GROUP BY region ORDER BY "
      "orders DESC, region",
      "SELECT product, units FROM sales WHERE sold >= DATE '2026-05-05' "
      "ORDER BY units DESC",
  };
  for (const char* sql : queries) {
    ExecContext ctx;
    ctx.catalog = catalog.get();
    auto result = ExecuteQuery(sql, "shop", &ctx);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("sql> %s\n%s  (%llu bytes scanned)\n\n", sql,
                (*result)->ToString().c_str(),
                static_cast<unsigned long long>(ctx.bytes_scanned));
  }
  return 0;
}
