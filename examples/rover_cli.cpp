// Pixels-Rover as a CLI: the demo workflow of paper §4, minus the browser.
//
//   $ ./rover_cli
//
// Drives the real browser-server backend (rover/backend.h): authenticate
// (§4 "after logging in through authentication"), browse the schema
// sidebar (§4.1), translate analytic questions via the CodeS service,
// edit one translation, submit with a service level and result-size limit
// (§4.2), poll the status-and-result blocks (§4.3), and fetch the
// per-user bill.
#include <cstdio>
#include <string>
#include <vector>

#include "rover/backend.h"
#include "storage/memory_store.h"
#include "workload/tpch.h"

using namespace pixels;

namespace {
void Banner(const std::string& text) {
  std::printf("\n==== %s ====\n", text.c_str());
}
}  // namespace

int main() {
  Banner("PixelsDB / Pixels-Rover (CLI session)");

  // --- backend wiring: catalog + engine + query server + CodeS + auth ---
  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  TpchOptions topt;
  topt.scale_factor = 0.002;
  topt.rows_per_file = 3000;
  Status st = GenerateTpch(catalog.get(), "tpch", topt);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  SimClock clock;
  Random rng(42);
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 1;
  cparams.vm.slots_per_vm = 2;
  Coordinator coordinator(&clock, &rng, cparams, catalog);
  coordinator.Start();
  QueryServer server(&clock, &coordinator);
  CodesService codes(catalog.get());
  for (const auto& [w, t] : TpchSynonyms()) codes.AddSynonym(w, t);
  AuthService auth;
  (void)auth.RegisterUser("analyst", "demo-password", {"tpch"});
  RoverBackend backend(catalog.get(), &server, &codes, &auth, &clock);

  // --- login ---
  auto token = backend.Login("analyst", "demo-password");
  if (!token.ok()) {
    std::fprintf(stderr, "login failed: %s\n", token.status().ToString().c_str());
    return 1;
  }
  std::printf("user 'analyst' logged in (token %.12s...).\n", token->c_str());

  // --- §4.1 schema sidebar ---
  Banner("Schemas (sidebar)");
  auto schemas = backend.ListSchemas(*token);
  if (schemas.ok()) {
    const Json& dbs = schemas->Get("databases");
    for (size_t d = 0; d < dbs.size(); ++d) {
      const Json& db = dbs.At(d);
      std::printf("  %s\n", db.Get("database").AsString().c_str());
      const Json& tables = db.Get("tables");
      for (size_t t = 0; t < tables.size(); ++t) {
        const Json& table = tables.At(t);
        std::printf("    %-10s (%zu columns, %lld rows)\n",
                    table.Get("table").AsString().c_str(),
                    table.Get("columns").size(),
                    static_cast<long long>(table.Get("row_count").AsInt()));
      }
    }
  }
  (void)backend.SelectDatabase(*token, "tpch");
  std::printf("database 'tpch' selected.\n");

  // --- §4.2 translate, edit, submit ---
  struct Step {
    const char* question;
    ServiceLevel level;
    int64_t result_limit;
    const char* edit;  // optional manual edit before submitting
  };
  const Step steps[] = {
      {"how many orders are there?", ServiceLevel::kImmediate, 10, nullptr},
      {"total revenue of lineitem per returnflag", ServiceLevel::kRelaxed, 10,
       nullptr},
      {"average acctbal of customer per mktsegment, top 3",
       ServiceLevel::kBestEffort, 10, nullptr},
      {"first 5 orders", ServiceLevel::kImmediate, 5,
       "SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice "
       "DESC LIMIT 5"},
  };

  std::vector<int64_t> submitted;
  for (const auto& step : steps) {
    Banner("Translator");
    std::printf("analyst> %s\n", step.question);
    auto translation = backend.Translate(*token, step.question);
    if (!translation.ok()) {
      std::printf("codes  > translation failed: %s\n",
                  translation.status().ToString().c_str());
      continue;
    }
    int64_t query_id = translation->Get("query_id").AsInt();
    std::printf("codes  > %s\n", translation->Get("sql").AsString().c_str());
    if (step.edit != nullptr) {
      (void)backend.EditQuery(*token, query_id, step.edit);
      std::printf("edit   > %s\n", step.edit);
    }
    std::printf("submit > level=%s result_limit=%lld\n",
                ServiceLevelName(step.level),
                static_cast<long long>(step.result_limit));
    auto id = backend.Submit(*token, query_id, step.level, step.result_limit);
    if (id.ok()) submitted.push_back(*id);
  }

  // --- §4.3 status blocks: one mid-flight poll, then drain ---
  Banner("Query Result (status blocks)");
  clock.RunUntil(clock.Now() + 2 * kSeconds);
  for (int64_t id : submitted) {
    auto status = backend.QueryStatus(*token, id);
    if (status.ok()) {
      std::printf("  [%s] query %lld: %s\n",
                  status->Get("service_level").AsString().c_str(),
                  static_cast<long long>(id),
                  status->Get("status").AsString().c_str());
    }
  }
  clock.RunUntil(clock.Now() + 30 * kMinutes);

  for (int64_t id : submitted) {
    auto status = backend.QueryStatus(*token, id);
    if (!status.ok()) continue;
    std::printf("\n-- query %lld [%s] --\n", static_cast<long long>(id),
                status->Get("service_level").AsString().c_str());
    std::printf("   sql: %s\n", status->Get("sql").AsString().c_str());
    std::printf(
        "   status: %s | pending %.1fs | execution %.1fs | cost $%.6f\n",
        status->Get("status").AsString().c_str(),
        status->Get("pending_ms").AsNumber() / 1000.0,
        status->Get("execution_ms").AsNumber() / 1000.0,
        status->Get("cost_usd").AsNumber());
    if (status->Has("error")) {
      std::printf("   error: %s\n", status->Get("error").AsString().c_str());
      continue;
    }
    if (status->Has("columns")) {
      const Json& columns = status->Get("columns");
      for (size_t c = 0; c < columns.size(); ++c) {
        std::printf("%s%s", c > 0 ? "\t" : "   ",
                    columns.At(c).AsString().c_str());
      }
      std::printf("\n");
      const Json& rows = status->Get("rows");
      for (size_t r = 0; r < rows.size(); ++r) {
        std::printf("   ");
        for (size_t c = 0; c < rows.At(r).size(); ++c) {
          const Json& cell = rows.At(r).At(c);
          if (c > 0) std::printf("\t");
          if (cell.is_string()) {
            std::printf("%s", cell.AsString().c_str());
          } else if (cell.is_null()) {
            std::printf("NULL");
          } else {
            std::printf("%g", cell.AsNumber());
          }
        }
        std::printf("\n");
      }
    }
  }

  // --- per-user bill ---
  Banner("Billing");
  auto bill = backend.BillingSummary(*token);
  if (bill.ok()) std::printf("%s\n", bill->Pretty().c_str());

  (void)backend.Logout(*token);
  server.Stop();
  coordinator.Stop();
  clock.RunAll();
  std::printf("\nsession closed.\n");
  return 0;
}
