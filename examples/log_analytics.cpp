// Internet-log analytics: the second workload the paper motivates.
//
//   $ ./log_analytics
//
// Generates a web access log, answers operations questions through the
// NL interface, and runs the nightly batch report set at the
// best-of-effort level (the non-interactive class of §1).
#include <cstdio>

#include "exec/executor.h"
#include "nl2sql/codes_service.h"
#include "server/query_server.h"
#include "storage/memory_store.h"
#include "workload/loggen.h"

using namespace pixels;

int main() {
  std::printf("=== PixelsDB log analytics ===\n\n");

  auto storage = std::make_shared<MemoryStore>();
  auto catalog = std::make_shared<Catalog>(storage);
  LogGenOptions options;
  options.num_rows = 20000;
  Status st = GenerateWebLogs(catalog.get(), "logs", options);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("generated %llu log rows into %s\n\n",
              static_cast<unsigned long long>(
                  (*catalog->GetTable("logs", "weblogs"))->row_count),
              "logs.weblogs");

  CodesService codes(catalog.get());
  for (const auto& [w, t] : LogSynonyms()) codes.AddSynonym(w, t);

  // --- interactive NL questions ---
  const char* questions[] = {
      "how many weblogs have status at least 500?",
      "average latency ms of weblogs per url, top 5",
      "total bytes sent of weblogs per country, top 5",
  };
  for (const char* q : questions) {
    auto translation = codes.Translate("logs", q);
    std::printf("ops> %s\n", q);
    if (!translation.ok()) {
      std::printf("   translation failed: %s\n\n",
                  translation.status().ToString().c_str());
      continue;
    }
    std::printf("sql> %s\n", translation->sql.c_str());
    ExecContext ctx;
    ctx.catalog = catalog.get();
    auto result = ExecuteQuery(translation->sql, "logs", &ctx);
    if (!result.ok()) {
      std::printf("   execution failed: %s\n\n",
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n", (*result)->ToString(6).c_str());
  }

  // --- nightly batch reports at best-of-effort ---
  std::printf("--- nightly reports (best-of-effort, $0.5/TB) ---\n");
  SimClock clock;
  Random rng(42);
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 1;
  cparams.vm.slots_per_vm = 2;
  Coordinator coordinator(&clock, &rng, cparams, catalog);
  coordinator.Start();
  QueryServer server(&clock, &coordinator);

  for (const auto& report : LogQuerySet()) {
    Submission s;
    s.level = ServiceLevel::kBestEffort;
    s.query.sql = report.sql;
    s.query.db = "logs";
    s.query.execute_real = true;
    std::string name = report.name;
    server.Submit(s, [name](const SubmissionRecord& srec,
                            const QueryRecord& qrec) {
      std::printf("  %-22s %s, %llu rows, pending %.1fs, bill $%.8f\n",
                  name.c_str(), QueryStateName(qrec.state),
                  static_cast<unsigned long long>(
                      qrec.result ? qrec.result->num_rows() : 0),
                  static_cast<double>(qrec.start_time - srec.received_time) /
                      1000.0,
                  srec.bill_usd);
    });
  }
  clock.RunUntil(2 * kHours);
  std::printf("\ntotal billed: $%.8f\n", server.TotalBilledUsd());

  server.Stop();
  coordinator.Stop();
  clock.RunAll();
  return 0;
}
