// The store-shopping scenario of paper §1: the same analysis submitted at
// all three service levels while the cluster is busy, "just like
// purchasing products in a store" — faster service costs more.
//
//   $ ./service_levels
//
// Prints each submission's pending time, execution time, and bill, plus
// the engine-side view (VM queue, CF usage, cluster scaling).
#include <cstdio>

#include "server/query_server.h"
#include "workload/tpch.h"

using namespace pixels;

int main() {
  std::printf("=== PixelsDB service levels: one query, three prices ===\n\n");

  SimClock clock;
  Random rng(42);
  CoordinatorParams cparams;
  cparams.vm.initial_vms = 2;
  cparams.vm.slots_per_vm = 2;
  cparams.vm.high_watermark = 4.0;
  cparams.vm.low_watermark = 0.75;
  Coordinator coordinator(&clock, &rng, cparams);
  coordinator.Start();
  QueryServerParams sparams;
  sparams.relaxed_grace_period = 5 * kMinutes;
  QueryServer server(&clock, &coordinator, sparams);

  // Background load: ten long-running analyses keep the cluster busy.
  std::printf("background: 10 long analyses keep all VM slots busy...\n");
  for (int i = 0; i < 10; ++i) {
    Submission filler;
    filler.level = ServiceLevel::kRelaxed;
    filler.query.work_vcpu_seconds = 400.0;
    filler.query.bytes_to_scan = 2'000'000'000;
    server.Submit(filler);
  }

  // The analyst's query: a ~100 GB scan (about 8 vCPU-minutes of work).
  auto analyst_query = [] {
    QuerySpec spec;
    spec.work_vcpu_seconds = 120.0;
    spec.bytes_to_scan = 100'000'000'000ULL;  // 100 GB
    return spec;
  };

  struct Outcome {
    const char* level;
    SimTime pending = -1;
    SimTime execution = -1;
    double bill = 0;
    bool used_cf = false;
  };
  Outcome outcomes[3] = {{"immediate"}, {"relaxed"}, {"best-of-effort"}};
  ServiceLevel levels[3] = {ServiceLevel::kImmediate, ServiceLevel::kRelaxed,
                            ServiceLevel::kBestEffort};

  for (int i = 0; i < 3; ++i) {
    Submission s;
    s.level = levels[i];
    s.query = analyst_query();
    server.Submit(s, [&outcomes, i](const SubmissionRecord& srec,
                                    const QueryRecord& qrec) {
      outcomes[i].pending = qrec.start_time - srec.received_time;
      outcomes[i].execution = qrec.ExecutionTime();
      outcomes[i].bill = srec.bill_usd;
      outcomes[i].used_cf = qrec.used_cf;
    });
  }

  clock.RunUntil(60 * kMinutes);

  std::printf("\n%-16s %12s %12s %10s %8s\n", "service level", "pending",
              "execution", "bill", "via");
  for (const auto& o : outcomes) {
    std::printf("%-16s %10.1fs %10.1fs %9.2f$ %8s\n", o.level,
                static_cast<double>(o.pending) / 1000.0,
                static_cast<double>(o.execution) / 1000.0, o.bill,
                o.used_cf ? "CF" : "VM");
  }

  std::printf(
      "\nengine: %d VMs (from %d), %d scale-out events, VM cost $%.4f, CF "
      "cost $%.4f\n",
      coordinator.vm_cluster().num_vms(), cparams.vm.initial_vms,
      coordinator.vm_cluster().scale_out_events(),
      coordinator.TotalVmCostUsd(), coordinator.TotalCfCostUsd());
  std::printf(
      "\nthe store: immediate starts now at $5/TB via cloud functions;\n"
      "relaxed waits for the cluster to scale at $1/TB; best-of-effort\n"
      "fills idle capacity at $0.5/TB.\n");

  server.Stop();
  coordinator.Stop();
  clock.RunAll();
  return 0;
}
