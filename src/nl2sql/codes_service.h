// The CodeS-style text-to-SQL service (paper §2(3), §3.3): a REST-like
// single-turn API. Pixels-Rover's backend compiles a JSON message with
// the question and the selected database's schema elements; the service
// prunes the schema, generates SQL, and responds in one round trip.
#pragma once

#include <memory>

#include "catalog/catalog.h"
#include "common/json.h"
#include "nl2sql/semantic_parser.h"

namespace pixels {

/// In-process stand-in for the CodeS REST endpoint. The service is
/// pluggable in PixelsDB (§2), so this class is the only seam the rest of
/// the system sees.
class CodesService {
 public:
  explicit CodesService(const Catalog* catalog) : catalog_(catalog) {}

  /// Registers domain synonyms applied to every database's parser.
  void AddSynonym(const std::string& word, const std::string& schema_token);

  /// Handles one JSON request of the form
  ///   {"question": "...", "database": "...", "schema": {...}}
  /// (the schema element is what Pixels-Rover sends; the service itself
  /// re-reads it from the catalog). Responds with
  ///   {"sql": "...", "table": "...", "confidence": x} or {"error": "..."}.
  Json HandleRequest(const Json& request) const;

  /// Convenience: direct translation without the JSON envelope.
  Result<Translation> Translate(const std::string& db,
                                const std::string& question) const;

 private:
  const Catalog* catalog_;
  std::vector<std::pair<std::string, std::string>> synonyms_;
};

}  // namespace pixels
