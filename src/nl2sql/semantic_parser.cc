#include "nl2sql/semantic_parser.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>

#include "format/type.h"

namespace pixels {

namespace {

/// A question token: word, number, quoted string, or ISO date.
struct QToken {
  enum class Kind { kWord, kNumber, kString, kDate };
  Kind kind;
  std::string text;   // lower-cased word / raw string
  double number = 0;
  int32_t date = 0;   // days since epoch
};

std::vector<QToken> LexQuestion(const std::string& question) {
  std::vector<QToken> out;
  size_t i = 0;
  const size_t n = question.size();
  while (i < n) {
    char c = question[i];
    if (c == '\'' || c == '"') {
      char quote = c;
      size_t start = ++i;
      while (i < n && question[i] != quote) ++i;
      out.push_back({QToken::Kind::kString, question.substr(start, i - start),
                     0, 0});
      if (i < n) ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Date: YYYY-MM-DD.
      if (i + 10 <= n && question[i + 4] == '-' && question[i + 7] == '-') {
        std::string maybe = question.substr(i, 10);
        auto days = ParseDate(maybe);
        if (days.ok()) {
          out.push_back({QToken::Kind::kDate, maybe, 0, *days});
          i += 10;
          continue;
        }
      }
      size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(question[i])) ||
                       question[i] == '.')) {
        ++i;
      }
      std::string num = question.substr(start, i - start);
      out.push_back({QToken::Kind::kNumber, num,
                     std::strtod(num.c_str(), nullptr), 0});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(question[i])) ||
                       question[i] == '_')) {
        ++i;
      }
      std::string word = question.substr(start, i - start);
      for (auto& ch : word) {
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      }
      out.push_back({QToken::Kind::kWord, std::move(word), 0, 0});
      continue;
    }
    ++i;
  }
  return out;
}

const std::set<std::string>& StopWords() {
  static const std::set<std::string> kStop = {
      "the", "a",  "an", "of", "for", "in", "on", "at", "to",  "from",
      "me",  "us", "is", "are", "was", "were", "please", "all", "their",
      "its", "that", "with", "and"};
  return kStop;
}

struct AggIntent {
  std::string function;  // sum/avg/count/min/max
  size_t keyword_pos;
};

const std::map<std::string, std::string>& AggKeywords() {
  static const std::map<std::string, std::string> kAgg = {
      {"total", "sum"},     {"sum", "sum"},       {"average", "avg"},
      {"mean", "avg"},      {"avg", "avg"},       {"count", "count"},
      {"number", "count"},  {"maximum", "max"},   {"max", "max"},
      {"largest", "max"},   {"highest", "max"},   {"biggest", "max"},
      {"minimum", "min"},   {"min", "min"},       {"smallest", "min"},
      {"lowest", "min"},    {"earliest", "min"},  {"latest", "max"},
  };
  return kAgg;
}

}  // namespace

SemanticParser::SemanticParser(const DatabaseSchema& schema)
    : schema_(schema), linker_(schema) {}

void SemanticParser::AddSynonym(const std::string& word,
                                const std::string& schema_token) {
  linker_.AddSynonym(word, schema_token);
}

Result<Translation> SemanticParser::Translate(const std::string& question) const {
  const std::vector<QToken> tokens = LexQuestion(question);
  if (tokens.empty()) return Status::InvalidArgument("empty question");

  // Schema linking over the whole question picks the table.
  LinkedSchema linked = linker_.Link(question, 2, 24);
  if (linked.tables.empty()) {
    return Status::InvalidArgument("question mentions no known table or column");
  }
  const std::string table_name = linked.tables[0].table;
  const TableSchema* table = schema_.FindTable(table_name);
  if (table == nullptr) return Status::Internal("linker returned unknown table");

  // Table-name stems are never column evidence ("count of nation" must
  // not resolve to n_nationkey via substring match).
  std::set<std::string> table_stems;
  for (const auto& t : SchemaLinker::SplitIdentifier(table_name)) {
    table_stems.insert(SchemaLinker::Stem(t));
  }

  // Resolves a phrase (window of words) to a column of the chosen table.
  auto find_column = [&](size_t begin, size_t end) -> std::string {
    std::string phrase;
    for (size_t i = begin; i < end && i < tokens.size(); ++i) {
      if (tokens[i].kind != QToken::Kind::kWord) break;
      if (StopWords().count(tokens[i].text) > 0) continue;
      if (table_stems.count(SchemaLinker::Stem(tokens[i].text)) > 0) continue;
      if (!phrase.empty()) phrase += ' ';
      phrase += tokens[i].text;
    }
    if (phrase.empty()) return "";
    LinkedSchema ls = linker_.Link(phrase, 4, 8);
    for (const auto& col : ls.columns) {
      if (col.table == table_name) return col.column;
    }
    return "";
  };

  auto word_at = [&](size_t i) -> const std::string& {
    static const std::string kEmpty;
    if (i >= tokens.size() || tokens[i].kind != QToken::Kind::kWord) {
      return kEmpty;
    }
    return tokens[i].text;
  };

  auto stmt = std::make_unique<SelectStmt>();
  stmt->has_from = true;
  stmt->from.table = table_name;

  // ---- aggregates ----
  std::vector<std::pair<std::string, std::string>> aggs;  // (fn, column)
  bool count_star = false;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& w = word_at(i);
    if (w == "how" && word_at(i + 1) == "many") {
      count_star = true;
      continue;
    }
    auto it = AggKeywords().find(w);
    if (it == AggKeywords().end()) continue;
    // Measure phrase follows the keyword (up to 3 meaningful words).
    std::string col = find_column(i + 1, i + 4);
    if (col.empty() && it->second == "count") {
      count_star = true;
      continue;
    }
    if (!col.empty()) {
      aggs.emplace_back(it->second, col);
    }
  }

  // ---- group by: "per X", "by each X", "for each X", "grouped by X" ----
  std::vector<std::string> group_cols;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& w = word_at(i);
    bool trigger = false;
    size_t phrase_start = 0;
    if (w == "per") {
      trigger = true;
      phrase_start = i + 1;
    } else if (w == "each" && (word_at(i - 1) == "for" || word_at(i - 1) == "by")) {
      trigger = true;
      phrase_start = i + 1;
    } else if (w == "grouped" && word_at(i + 1) == "by") {
      trigger = true;
      phrase_start = i + 2;
    }
    if (!trigger) continue;
    std::string col = find_column(phrase_start, phrase_start + 3);
    if (!col.empty() &&
        std::find(group_cols.begin(), group_cols.end(), col) ==
            group_cols.end()) {
      group_cols.push_back(col);
    }
  }

  // ---- filters ----
  std::vector<ExprPtr> conjuncts;
  std::set<std::string> filter_cols;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& w = word_at(i);
    // Comparison phrasings anchored on a column to the left.
    struct CmpPattern {
      const char* phrase1;
      const char* phrase2;  // optional second word
      const char* op;
    };
    static const CmpPattern kPatterns[] = {
        {"greater", "than", ">"},  {"more", "than", ">"},
        {"above", nullptr, ">"},   {"over", nullptr, ">"},
        {"exceeding", nullptr, ">"},
        {"less", "than", "<"},     {"fewer", "than", "<"},
        {"below", nullptr, "<"},   {"under", nullptr, "<"},
        {"at", "least", ">="},     {"at", "most", "<="},
        {"equals", nullptr, "="},  {"equal", "to", "="},
        {"is", nullptr, "="},      {"after", nullptr, ">"},
        {"before", nullptr, "<"},  {"since", nullptr, ">="},
    };
    for (const auto& p : kPatterns) {
      if (w != p.phrase1) continue;
      size_t value_pos = i + 1;
      if (p.phrase2 != nullptr) {
        if (word_at(i + 1) != p.phrase2) continue;
        value_pos = i + 2;
      }
      if (value_pos >= tokens.size()) continue;
      const QToken& vt = tokens[value_pos];
      Value literal;
      if (vt.kind == QToken::Kind::kNumber) {
        literal = vt.number == std::floor(vt.number)
                      ? Value::Int(static_cast<int64_t>(vt.number))
                      : Value::Double(vt.number);
      } else if (vt.kind == QToken::Kind::kDate) {
        literal = Value::Int(vt.date);
      } else if (vt.kind == QToken::Kind::kString) {
        literal = Value::String(vt.text);
      } else {
        continue;  // "is shipped" etc. — not a comparison value
      }
      // Column phrase: up to 3 words to the left of the pattern.
      std::string col = find_column(i >= 3 ? i - 3 : 0, i);
      if (vt.kind == QToken::Kind::kDate) {
        // Date comparisons must land on a date column; when the phrase
        // resolved to a non-date column (e.g. the aggregate's measure in
        // "total amount of sales after 2024-01-01"), prefer the table's
        // first date column.
        bool col_is_date = false;
        if (!col.empty()) {
          auto type = table->ColumnType(col);
          col_is_date = type.ok() && *type == TypeId::kDate;
        }
        if (!col_is_date) {
          col.clear();
          for (const auto& c : table->columns) {
            if (c.type == TypeId::kDate) {
              col = c.name;
              break;
            }
          }
        }
      }
      if (col.empty()) continue;
      filter_cols.insert(col);
      conjuncts.push_back(MakeBinary(p.op, MakeColumnRef("", col),
                                     MakeLiteral(std::move(literal))));
      break;
    }
    // "between A and B".
    if (w == "between" && i + 3 < tokens.size() &&
        word_at(i + 2) == "and") {
      const QToken& a = tokens[i + 1];
      const QToken& b = tokens[i + 3];
      auto to_value = [](const QToken& t) -> Value {
        if (t.kind == QToken::Kind::kNumber) {
          return t.number == std::floor(t.number)
                     ? Value::Int(static_cast<int64_t>(t.number))
                     : Value::Double(t.number);
        }
        if (t.kind == QToken::Kind::kDate) return Value::Int(t.date);
        return Value::String(t.text);
      };
      if (a.kind != QToken::Kind::kWord && b.kind != QToken::Kind::kWord) {
        std::string col = find_column(i >= 3 ? i - 3 : 0, i);
        if (col.empty() && a.kind == QToken::Kind::kDate) {
          for (const auto& c : table->columns) {
            if (c.type == TypeId::kDate) {
              col = c.name;
              break;
            }
          }
        }
        if (!col.empty()) {
          auto e = std::make_unique<Expr>();
          e->kind = Expr::Kind::kBetween;
          e->args.push_back(MakeColumnRef("", col));
          e->args.push_back(MakeLiteral(to_value(a)));
          e->args.push_back(MakeLiteral(to_value(b)));
          filter_cols.insert(col);
          conjuncts.push_back(std::move(e));
        }
      }
    }
    // "contains 'x'" / "containing 'x'" → LIKE '%x%'.
    if ((w == "contains" || w == "containing") && i + 1 < tokens.size() &&
        tokens[i + 1].kind == QToken::Kind::kString) {
      std::string col = find_column(i >= 3 ? i - 3 : 0, i);
      if (col.empty()) {
        for (const auto& c : table->columns) {
          if (c.type == TypeId::kString) {
            col = c.name;
            break;
          }
        }
      }
      if (!col.empty()) {
        filter_cols.insert(col);
        conjuncts.push_back(MakeBinary(
            "LIKE", MakeColumnRef("", col),
            MakeLiteral(Value::String("%" + tokens[i + 1].text + "%"))));
      }
    }
    // Bare quoted value: "<column> 'value'" equality when preceded by a
    // column phrase and not already consumed by a pattern above.
    if (tokens[i].kind == QToken::Kind::kString && i > 0 &&
        tokens[i - 1].kind == QToken::Kind::kWord) {
      const std::string& prev = word_at(i - 1);
      if (prev != "contains" && prev != "containing" && prev != "is" &&
          prev != "equals" && prev != "to") {
        std::string col = find_column(i >= 3 ? i - 3 : 0, i);
        if (!col.empty()) {
          filter_cols.insert(col);
          conjuncts.push_back(MakeBinary("=", MakeColumnRef("", col),
                                         MakeLiteral(Value::String(
                                             tokens[i].text))));
        }
      }
    }
  }

  // ---- top N / order / limit ----
  int64_t limit = -1;
  bool order_desc = false;
  std::string order_col;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& w = word_at(i);
    if ((w == "top" || w == "first") && i + 1 < tokens.size() &&
        tokens[i + 1].kind == QToken::Kind::kNumber) {
      limit = static_cast<int64_t>(tokens[i + 1].number);
      if (w == "top") order_desc = true;
    }
    if ((w == "sorted" || w == "ordered" || w == "order") &&
        word_at(i + 1) == "by") {
      order_col = find_column(i + 2, i + 5);
      // Scan ahead for direction.
      for (size_t j = i + 2; j < std::min(tokens.size(), i + 7); ++j) {
        const std::string& d = word_at(j);
        if (d == "descending" || d == "desc" || d == "decreasing") {
          order_desc = true;
        }
      }
    }
  }

  // ---- assemble the statement ----
  const bool grouped = !group_cols.empty();
  const bool aggregated = grouped || count_star || !aggs.empty();

  if (aggregated) {
    for (const auto& g : group_cols) {
      stmt->items.push_back(SelectItem{MakeColumnRef("", g), ""});
      stmt->group_by.push_back(MakeColumnRef("", g));
    }
    if (aggs.empty() && count_star) {
      std::vector<ExprPtr> star;
      star.push_back(MakeStar());
      stmt->items.push_back(SelectItem{MakeFunction("count", std::move(star)), ""});
    }
    for (const auto& [fn, col] : aggs) {
      std::vector<ExprPtr> arg;
      arg.push_back(MakeColumnRef("", col));
      stmt->items.push_back(SelectItem{MakeFunction(fn, std::move(arg)), ""});
    }
    if (count_star && !aggs.empty()) {
      std::vector<ExprPtr> star;
      star.push_back(MakeStar());
      stmt->items.push_back(SelectItem{MakeFunction("count", std::move(star)), ""});
    }
    // Top-N over groups orders by the first aggregate.
    if (limit >= 0 && grouped && !stmt->items.empty()) {
      const SelectItem& last = stmt->items.back();
      stmt->order_by.push_back(OrderItem{last.expr->Clone(), !order_desc});
      stmt->limit = limit;
    }
  } else {
    // Listing query: pick explicitly mentioned columns, else *. Link
    // against the question with the table-name words removed, so "first
    // 10 customers" does not select a column that merely echoes the table
    // name (customer_name).
    std::string without_table;
    {
      std::set<std::string> table_tokens;
      for (const auto& t : SchemaLinker::SplitIdentifier(table_name)) {
        table_tokens.insert(SchemaLinker::Stem(t));
      }
      for (const auto& tok : tokens) {
        if (tok.kind == QToken::Kind::kWord &&
            table_tokens.count(SchemaLinker::Stem(tok.text)) > 0) {
          continue;
        }
        if (!without_table.empty()) without_table += ' ';
        without_table += tok.text;
      }
    }
    LinkedSchema listing_link = linker_.Link(without_table, 4, 24);
    std::vector<std::string> cols;
    for (const auto& c : listing_link.columns) {
      // Columns only mentioned as filter anchors ("... where name contains
      // 'x'") are not selected: CodeS-style output uses SELECT * there.
      if (c.table == table_name && filter_cols.count(c.column) == 0 &&
          std::find(cols.begin(), cols.end(), c.column) == cols.end()) {
        cols.push_back(c.column);
      }
    }
    // Order the selected columns by their first mention in the question.
    auto first_mention = [&](const std::string& column) -> size_t {
      auto ident_tokens = SchemaLinker::SplitIdentifier(column);
      for (size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].kind != QToken::Kind::kWord) continue;
        const std::string stem_q = SchemaLinker::Stem(tokens[i].text);
        for (const auto& it : ident_tokens) {
          if (it.size() <= 1) continue;
          const std::string stem_it = SchemaLinker::Stem(it);
          if (stem_it == stem_q ||
              (stem_it.size() >= 5 && stem_q.size() >= 4 &&
               stem_it.find(stem_q) != std::string::npos)) {
            return i;
          }
        }
      }
      return tokens.size();
    };
    std::stable_sort(cols.begin(), cols.end(),
                     [&](const std::string& a, const std::string& b) {
                       return first_mention(a) < first_mention(b);
                     });
    if (cols.empty()) {
      stmt->items.push_back(SelectItem{MakeStar(), ""});
    } else {
      for (const auto& c : cols) {
        stmt->items.push_back(SelectItem{MakeColumnRef("", c), ""});
      }
    }
    if (limit >= 0) stmt->limit = limit;
  }

  if (!order_col.empty()) {
    stmt->order_by.clear();
    stmt->order_by.push_back(
        OrderItem{MakeColumnRef("", order_col), !order_desc});
    if (limit >= 0) stmt->limit = limit;
  }

  if (!conjuncts.empty()) {
    ExprPtr where = std::move(conjuncts[0]);
    for (size_t i = 1; i < conjuncts.size(); ++i) {
      where = MakeBinary("AND", std::move(where), std::move(conjuncts[i]));
    }
    stmt->where = std::move(where);
  }

  Translation out;
  out.table = table_name;
  out.sql = stmt->ToString();
  out.stmt = std::move(stmt);
  out.confidence = linked.tables[0].score;
  return out;
}

}  // namespace pixels
