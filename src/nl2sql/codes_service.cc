#include "nl2sql/codes_service.h"

namespace pixels {

void CodesService::AddSynonym(const std::string& word,
                              const std::string& schema_token) {
  synonyms_.emplace_back(word, schema_token);
}

Result<Translation> CodesService::Translate(const std::string& db,
                                            const std::string& question) const {
  PIXELS_ASSIGN_OR_RETURN(const DatabaseSchema* schema,
                          catalog_->GetDatabase(db));
  SemanticParser parser(*schema);
  for (const auto& [w, t] : synonyms_) parser.AddSynonym(w, t);
  return parser.Translate(question);
}

Json CodesService::HandleRequest(const Json& request) const {
  Json response = Json::Object();
  if (!request.is_object() || !request.Has("question") ||
      !request.Get("question").is_string()) {
    response.Set("error", "request must contain a 'question' string");
    return response;
  }
  const std::string db = request.Get("database").is_string()
                             ? request.Get("database").AsString()
                             : "default";
  auto translation = Translate(db, request.Get("question").AsString());
  if (!translation.ok()) {
    response.Set("error", translation.status().ToString());
    return response;
  }
  response.Set("sql", translation->sql);
  response.Set("table", translation->table);
  response.Set("confidence", translation->confidence);
  return response;
}

}  // namespace pixels
