// Template/grammar-based semantic parser: the generation stage of the
// CodeS substitute. Translates analytic questions over one table into
// executable SQL in a single turn, using the pruned schema from the
// linker. (The original CodeS is a fine-tuned LLM; this deterministic
// parser preserves the interface and the single-turn behaviour so the
// full PixelsDB pipeline can run offline.)
#pragma once

#include "common/result.h"
#include "nl2sql/schema_linker.h"
#include "sql/ast.h"

namespace pixels {

/// Translation output: the SQL plus the parser's interpretation notes
/// (useful for debugging translations in Pixels-Rover).
struct Translation {
  std::string sql;
  SelectStmtPtr stmt;
  std::string table;
  double confidence = 0;  // crude: fraction of question tokens consumed
};

/// Deterministic NL→SQL for a fixed question grammar:
///  - listing:     "show/list <columns> of <table> [filters] [top N]"
///  - counting:    "how many <table> [filters]"
///  - aggregates:  "what is the total/average/min/max <column> [of <table>]
///                  [per <column>] [filters]"
///  - top-N:       "top N <group> by <measure>" / "which <group> has the
///                  highest <measure>"
///  - filters:     "<column> (is/equals/above/below/at least/at most/
///                  between/contains/starting after/before) <value>"
///  - ordering:    "sorted/ordered by <column> [descending]"
class SemanticParser {
 public:
  explicit SemanticParser(const DatabaseSchema& schema);

  /// Registers a synonym forwarded to the schema linker.
  void AddSynonym(const std::string& word, const std::string& schema_token);

  /// Translates one question; fails with InvalidArgument when the
  /// question does not fit the grammar (a real model would guess).
  Result<Translation> Translate(const std::string& question) const;

 private:
  const DatabaseSchema& schema_;
  SchemaLinker linker_;
};

}  // namespace pixels
