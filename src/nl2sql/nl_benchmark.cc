#include "nl2sql/nl_benchmark.h"

#include <algorithm>

#include "exec/executor.h"
#include "sql/parser.h"

namespace pixels {

namespace {

bool ExprPtrEquals(const ExprPtr& a, const ExprPtr& b) {
  if ((a == nullptr) != (b == nullptr)) return false;
  if (a == nullptr) return true;
  return a->Equals(*b);
}

bool StmtEquals(const SelectStmt& a, const SelectStmt& b) {
  if (a.distinct != b.distinct || a.has_from != b.has_from ||
      a.limit != b.limit || a.items.size() != b.items.size() ||
      a.group_by.size() != b.group_by.size() ||
      a.order_by.size() != b.order_by.size() ||
      a.joins.size() != b.joins.size()) {
    return false;
  }
  if (a.has_from && a.from.table != b.from.table) return false;
  for (size_t i = 0; i < a.items.size(); ++i) {
    if (!a.items[i].expr->Equals(*b.items[i].expr)) return false;
  }
  if (!ExprPtrEquals(a.where, b.where)) return false;
  for (size_t i = 0; i < a.group_by.size(); ++i) {
    if (!a.group_by[i]->Equals(*b.group_by[i])) return false;
  }
  if (!ExprPtrEquals(a.having, b.having)) return false;
  for (size_t i = 0; i < a.order_by.size(); ++i) {
    if (a.order_by[i].ascending != b.order_by[i].ascending ||
        !a.order_by[i].expr->Equals(*b.order_by[i].expr)) {
      return false;
    }
  }
  return true;
}

/// Multiset of row strings, order-insensitive result comparison (unless
/// the statement has ORDER BY, where we keep order).
std::vector<std::string> ResultRows(const Table& table) {
  std::vector<std::string> rows;
  for (const auto& b : table.batches()) {
    for (size_t r = 0; r < b->num_rows(); ++r) {
      rows.push_back(b->RowToString(r));
    }
  }
  return rows;
}

}  // namespace

bool NlBenchmark::SqlEquivalent(const std::string& a, const std::string& b) {
  auto pa = ParseSelect(a);
  auto pb = ParseSelect(b);
  if (!pa.ok() || !pb.ok()) return false;
  return StmtEquals(**pa, **pb);
}

std::string NlBenchmark::NlName(const std::string& ident) {
  auto tokens = SchemaLinker::SplitIdentifier(ident);
  std::string out;
  for (const auto& t : tokens) {
    if (t.size() <= 1) continue;
    if (!out.empty()) out += ' ';
    out += t;
  }
  return out.empty() ? ident : out;
}

NlBenchmark::NlBenchmark(const DatabaseSchema& schema, uint64_t seed)
    : schema_(schema), rng_(seed) {
  for (const auto& table : schema_.tables) {
    TableProfile p;
    p.table = &table;
    for (const auto& col : table.columns) {
      switch (col.type) {
        case TypeId::kInt32:
        case TypeId::kInt64:
        case TypeId::kDouble:
          p.numeric_cols.push_back(col.name);
          break;
        case TypeId::kString:
          p.string_cols.push_back(col.name);
          break;
        case TypeId::kDate:
          p.date_cols.push_back(col.name);
          break;
        default:
          break;
      }
    }
    profiles_.push_back(std::move(p));
  }
}

std::vector<NlCase> NlBenchmark::Generate(size_t n) {
  std::vector<NlCase> cases;
  if (profiles_.empty()) return cases;

  auto pick = [&](const std::vector<std::string>& v) -> std::string {
    return v[static_cast<size_t>(rng_.Uniform(0, static_cast<int64_t>(v.size()) - 1))];
  };

  while (cases.size() < n) {
    const TableProfile& p =
        profiles_[static_cast<size_t>(rng_.Uniform(0, static_cast<int64_t>(profiles_.size()) - 1))];
    const std::string& t = p.table->name;
    const int kind = static_cast<int>(rng_.Uniform(0, 13));
    NlCase c;
    switch (kind) {
      case 0: {  // total per group
        if (p.numeric_cols.empty() || p.string_cols.empty()) continue;
        std::string m = pick(p.numeric_cols), g = pick(p.string_cols);
        c.question = "what is the total " + NlName(m) + " of " + t + " per " +
                     NlName(g) + "?";
        c.gold_sql = "SELECT " + g + ", sum(" + m + ") FROM " + t +
                     " GROUP BY " + g;
        c.category = "agg_per_group";
        break;
      }
      case 1: {  // average per group
        if (p.numeric_cols.empty() || p.string_cols.empty()) continue;
        std::string m = pick(p.numeric_cols), g = pick(p.string_cols);
        c.question =
            "average " + NlName(m) + " in " + t + " for each " + NlName(g);
        c.gold_sql = "SELECT " + g + ", avg(" + m + ") FROM " + t +
                     " GROUP BY " + g;
        c.category = "avg_per_group";
        break;
      }
      case 2: {  // global count
        c.question = "how many " + t + " are there?";
        c.gold_sql = "SELECT count(*) FROM " + t;
        c.category = "count_all";
        break;
      }
      case 3: {  // count with numeric filter
        if (p.numeric_cols.empty()) continue;
        std::string m = pick(p.numeric_cols);
        int64_t threshold = rng_.Uniform(1, 1000);
        c.question = "how many " + t + " have " + NlName(m) +
                     " greater than " + std::to_string(threshold) + "?";
        c.gold_sql = "SELECT count(*) FROM " + t + " WHERE " + m + " > " +
                     std::to_string(threshold);
        c.category = "count_filtered";
        break;
      }
      case 4: {  // listing sorted
        if (p.numeric_cols.empty() || p.string_cols.empty()) continue;
        std::string a = pick(p.string_cols), b = pick(p.numeric_cols);
        c.question = "show the " + NlName(a) + " and " + NlName(b) + " of " +
                     t + " ordered by " + NlName(b) + " descending";
        c.gold_sql = "SELECT " + a + ", " + b + " FROM " + t + " ORDER BY " +
                     b + " DESC";
        c.category = "listing_sorted";
        break;
      }
      case 5: {  // top-N groups by measure
        if (p.numeric_cols.empty() || p.string_cols.empty()) continue;
        std::string m = pick(p.numeric_cols), g = pick(p.string_cols);
        int64_t k = rng_.Uniform(3, 10);
        c.question = "total " + NlName(m) + " of " + t + " per " + NlName(g) +
                     ", top " + std::to_string(k);
        c.gold_sql = "SELECT " + g + ", sum(" + m + ") FROM " + t +
                     " GROUP BY " + g + " ORDER BY sum(" + m + ") DESC LIMIT " +
                     std::to_string(k);
        c.category = "top_n";
        break;
      }
      case 6: {  // string contains
        if (p.string_cols.empty()) continue;
        std::string s = pick(p.string_cols);
        std::string needle = rng_.NextString(3);
        c.question = "list " + t + " where " + NlName(s) + " contains '" +
                     needle + "'";
        c.gold_sql = "SELECT * FROM " + t + " WHERE " + s + " LIKE '%" +
                     needle + "%'";
        c.category = "contains";
        break;
      }
      case 7: {  // min and max per group
        if (p.numeric_cols.empty() || p.string_cols.empty()) continue;
        std::string m = pick(p.numeric_cols), g = pick(p.string_cols);
        c.question = "minimum and maximum " + NlName(m) + " of " + t +
                     " per " + NlName(g);
        c.gold_sql = "SELECT " + g + ", min(" + m + "), max(" + m + ") FROM " +
                     t + " GROUP BY " + g;
        c.category = "minmax_per_group";
        break;
      }
      case 8: {  // date filter
        if (p.date_cols.empty() || p.numeric_cols.empty()) continue;
        std::string d = pick(p.date_cols), m = pick(p.numeric_cols);
        int32_t days = static_cast<int32_t>(rng_.Uniform(9000, 20000));
        std::string date = FormatDate(days);
        c.question = "total " + NlName(m) + " of " + t + " after " + date;
        c.gold_sql = "SELECT sum(" + m + ") FROM " + t + " WHERE " + d +
                     " > DATE '" + date + "'";
        c.category = "date_filter";
        break;
      }
      case 9: {  // first N listing
        int64_t k = rng_.Uniform(5, 20);
        c.question = "first " + std::to_string(k) + " " + t;
        c.gold_sql = "SELECT * FROM " + t + " LIMIT " + std::to_string(k);
        c.category = "first_n";
        break;
      }
      case 12: {  // sum with "sum of" phrasing
        if (p.numeric_cols.empty() || p.string_cols.empty()) continue;
        std::string m = pick(p.numeric_cols), g = pick(p.string_cols);
        c.question =
            "sum of " + NlName(m) + " per " + NlName(g) + " in " + t;
        c.gold_sql = "SELECT " + g + ", sum(" + m + ") FROM " + t +
                     " GROUP BY " + g;
        c.category = "sum_of_per_group";
        break;
      }
      case 13: {  // count per group
        if (p.string_cols.empty()) continue;
        std::string g = pick(p.string_cols);
        c.question = "count of " + t + " per " + NlName(g);
        c.gold_sql = "SELECT " + g + ", count(*) FROM " + t + " GROUP BY " + g;
        c.category = "count_per_group";
        break;
      }
      case 10: {  // HARD: "breakdown ... across" paraphrase
        if (p.numeric_cols.empty() || p.string_cols.empty()) continue;
        std::string m = pick(p.numeric_cols), g = pick(p.string_cols);
        c.question = "give me a breakdown of " + NlName(m) + " across " +
                     NlName(g) + " in " + t;
        c.gold_sql = "SELECT " + g + ", sum(" + m + ") FROM " + t +
                     " GROUP BY " + g;
        c.hard = true;
        c.category = "hard_breakdown";
        break;
      }
      default: {  // HARD: "which ... the most" paraphrase
        if (p.numeric_cols.empty() || p.string_cols.empty()) continue;
        std::string m = pick(p.numeric_cols), g = pick(p.string_cols);
        c.question = "which " + NlName(g) + " generated the most " +
                     NlName(m) + " in " + t + "?";
        c.gold_sql = "SELECT " + g + ", sum(" + m + ") FROM " + t +
                     " GROUP BY " + g + " ORDER BY sum(" + m +
                     ") DESC LIMIT 1";
        c.hard = true;
        c.category = "hard_superlative";
        break;
      }
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

NlEvalResult NlBenchmark::Evaluate(const std::vector<NlCase>& cases,
                                   const SemanticParser& parser,
                                   Catalog* catalog,
                                   const std::string& db) const {
  NlEvalResult result;
  result.total = cases.size();
  for (const auto& c : cases) {
    auto translation = parser.Translate(c.question);
    if (!translation.ok()) continue;
    ++result.translated;
    const bool exact = SqlEquivalent(translation->sql, c.gold_sql);
    if (exact) ++result.exact_match;
    if (catalog != nullptr) {
      ExecContext ctx_gold, ctx_got;
      ctx_gold.catalog = catalog;
      ctx_got.catalog = catalog;
      auto gold = ExecuteQuery(c.gold_sql, db, &ctx_gold);
      auto got = ExecuteQuery(translation->sql, db, &ctx_got);
      if (gold.ok() && got.ok()) {
        ++result.executed;
        auto rows_gold = ResultRows(**gold);
        auto rows_got = ResultRows(**got);
        // Order-insensitive unless the gold query orders.
        if (c.gold_sql.find("ORDER BY") == std::string::npos) {
          std::sort(rows_gold.begin(), rows_gold.end());
          std::sort(rows_got.begin(), rows_got.end());
        }
        if (rows_gold == rows_got) ++result.execution_match;
      }
    }
  }
  return result;
}

}  // namespace pixels
