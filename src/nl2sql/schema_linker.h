// Schema linking ("schema pruning", paper §3.3): identifies the schema
// elements most related to a natural-language question so that arbitrarily
// wide tables can be handled without context truncation. This is the
// first stage of the CodeS-substitute translator.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "catalog/schema.h"

namespace pixels {

/// A column matched to the question with a relevance score.
struct LinkedColumn {
  std::string table;
  std::string column;
  double score = 0;
};

/// A table matched to the question.
struct LinkedTable {
  std::string table;
  double score = 0;
};

/// The pruned schema handed to the generation stage.
struct LinkedSchema {
  std::vector<LinkedTable> tables;    // descending score
  std::vector<LinkedColumn> columns;  // descending score
  /// Columns of the top table only, convenience view.
  std::vector<LinkedColumn> TopTableColumns() const;
};

/// Scores question tokens against table/column identifiers, with synonym
/// expansion and sub-token matching for snake_case identifiers.
class SchemaLinker {
 public:
  explicit SchemaLinker(const DatabaseSchema& schema);

  /// Registers a natural-language synonym for a schema token, e.g.
  /// AddSynonym("revenue", "extendedprice").
  void AddSynonym(const std::string& word, const std::string& schema_token);

  /// Links the question to the schema, returning the top `max_tables`
  /// tables and `max_columns` columns overall.
  LinkedSchema Link(const std::string& question, size_t max_tables = 4,
                    size_t max_columns = 16) const;

  /// Lower-cased word tokens of free text (letters/digits runs).
  static std::vector<std::string> TokenizeText(const std::string& text);

  /// Splits an identifier into lower-cased sub-tokens on '_' and case
  /// boundaries, e.g. "l_extendedprice" -> {"l","extendedprice"},
  /// "orderDate" -> {"order","date"}.
  static std::vector<std::string> SplitIdentifier(const std::string& ident);

  /// Strips a trailing plural 's' (best-effort stemming).
  static std::string Stem(const std::string& word);

 private:
  double ScoreTokens(const std::vector<std::string>& question_tokens,
                     const std::vector<std::string>& ident_tokens) const;

  const DatabaseSchema& schema_;
  std::multimap<std::string, std::string> synonyms_;
};

}  // namespace pixels
