// NL-to-SQL benchmark harness (experiment E5): generates natural-language
// question / gold-SQL pairs over any database schema, runs them through
// the translator, and scores exact-match and execution-match accuracy.
// A slice of deliberately out-of-grammar paraphrases keeps the measured
// accuracy honest (CodeS reports >80% single-turn accuracy; a substitute
// that scored 100% on its own grammar would be meaningless).
#pragma once

#include "catalog/catalog.h"
#include "common/random.h"
#include "nl2sql/semantic_parser.h"

namespace pixels {

/// One benchmark case.
struct NlCase {
  std::string question;
  std::string gold_sql;
  /// True for paraphrases outside the supported grammar (hard slice).
  bool hard = false;
  std::string category;  // template id, e.g. "agg_per_group"
};

/// Accuracy summary.
struct NlEvalResult {
  size_t total = 0;
  size_t translated = 0;       // parser produced SQL at all
  size_t exact_match = 0;      // AST-equivalent to gold
  size_t execution_match = 0;  // same result set (when executed)
  size_t executed = 0;         // cases where both sides executed

  double ExactAccuracy() const {
    return total == 0 ? 0 : static_cast<double>(exact_match) / total;
  }
  double ExecutionAccuracy() const {
    return executed == 0 ? 0
                         : static_cast<double>(execution_match) / executed;
  }
};

/// Deterministic question generator + scorer over one database schema.
class NlBenchmark {
 public:
  NlBenchmark(const DatabaseSchema& schema, uint64_t seed);

  /// Generates `n` cases; roughly 15% fall in the hard slice.
  std::vector<NlCase> Generate(size_t n);

  /// Scores the parser on the cases. When `catalog` is non-null, both the
  /// gold and the produced SQL are executed against it for the
  /// execution-match metric.
  NlEvalResult Evaluate(const std::vector<NlCase>& cases,
                        const SemanticParser& parser,
                        Catalog* catalog = nullptr,
                        const std::string& db = "default") const;

  /// AST-level equivalence of two SQL strings (both must parse).
  static bool SqlEquivalent(const std::string& a, const std::string& b);

 private:
  struct TableProfile {
    const TableSchema* table;
    std::vector<std::string> numeric_cols;
    std::vector<std::string> string_cols;
    std::vector<std::string> date_cols;
  };

  /// Natural-language rendering of an identifier ("l_extendedprice" ->
  /// "extendedprice").
  static std::string NlName(const std::string& ident);

  const DatabaseSchema& schema_;
  Random rng_;
  std::vector<TableProfile> profiles_;
};

}  // namespace pixels
