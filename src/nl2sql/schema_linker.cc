#include "nl2sql/schema_linker.h"

#include <algorithm>
#include <cctype>

namespace pixels {

std::vector<LinkedColumn> LinkedSchema::TopTableColumns() const {
  std::vector<LinkedColumn> out;
  if (tables.empty()) return out;
  for (const auto& c : columns) {
    if (c.table == tables[0].table) out.push_back(c);
  }
  return out;
}

SchemaLinker::SchemaLinker(const DatabaseSchema& schema) : schema_(schema) {}

void SchemaLinker::AddSynonym(const std::string& word,
                              const std::string& schema_token) {
  std::string w = word, t = schema_token;
  for (auto& c : w) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  for (auto& c : t) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  synonyms_.emplace(std::move(w), std::move(t));
}

std::vector<std::string> SchemaLinker::TokenizeText(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : text) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      cur.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::vector<std::string> SchemaLinker::SplitIdentifier(const std::string& ident) {
  std::vector<std::string> out;
  std::string cur;
  char prev = 0;
  auto flush = [&] {
    if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  };
  for (size_t i = 0; i < ident.size(); ++i) {
    char ch = ident[i];
    if (ch == '_' || ch == '.' || ch == ' ') {
      flush();
      prev = 0;
      continue;
    }
    // Split on lower->Upper boundaries only, so acronym runs ("XML") stay
    // one token.
    if (std::isupper(static_cast<unsigned char>(ch)) &&
        std::islower(static_cast<unsigned char>(prev))) {
      flush();
    }
    cur.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(ch))));
    prev = ch;
  }
  flush();
  return out;
}

std::string SchemaLinker::Stem(const std::string& word) {
  // Strip a plural 's' but keep -ss ("class") and -us ("status") endings.
  if (word.size() > 3 && word.back() == 's' && word[word.size() - 2] != 's' &&
      word[word.size() - 2] != 'u') {
    return word.substr(0, word.size() - 1);
  }
  return word;
}

double SchemaLinker::ScoreTokens(
    const std::vector<std::string>& question_tokens,
    const std::vector<std::string>& ident_tokens) const {
  if (ident_tokens.empty()) return 0;
  double matched = 0;
  for (const auto& it : ident_tokens) {
    if (it.size() <= 1) continue;  // skip prefixes like "l", "o"
    const std::string stem_it = Stem(it);
    // Exact (or synonym) token matches outrank substring containment, so
    // "totalprice" beats "orderkey" for the word "totalprice" even when
    // another question word ("orders") is a substring of "orderkey".
    double hit = 0;
    for (const auto& qt : question_tokens) {
      const std::string stem_q = Stem(qt);
      if (stem_q == stem_it) {
        hit = 1.0;
        break;
      }
      // Synonym expansion: question word mapped to schema token.
      auto range = synonyms_.equal_range(qt);
      bool syn = false;
      for (auto s = range.first; s != range.second && !syn; ++s) {
        if (Stem(s->second) == stem_it) syn = true;
      }
      if (syn) {
        hit = 1.0;
        break;
      }
      // Substring containment for longer tokens (e.g. "price" in
      // "extendedprice") counts, but less than an exact match.
      if (stem_it.size() >= 5 && stem_q.size() >= 4 &&
          stem_it.find(stem_q) != std::string::npos) {
        hit = std::max(hit, 0.6);
      }
    }
    matched += hit;
  }
  // Normalize by identifier length so exact matches rank first.
  double meaningful = 0;
  for (const auto& it : ident_tokens) {
    if (it.size() > 1) meaningful += 1;
  }
  if (meaningful == 0) return 0;
  return matched / meaningful;
}

LinkedSchema SchemaLinker::Link(const std::string& question, size_t max_tables,
                                size_t max_columns) const {
  const auto qtokens = TokenizeText(question);
  LinkedSchema out;

  for (const auto& table : schema_.tables) {
    double tscore = ScoreTokens(qtokens, SplitIdentifier(table.name));
    double best_col = 0;
    for (const auto& col : table.columns) {
      double cscore = ScoreTokens(qtokens, SplitIdentifier(col.name));
      if (cscore > 0) {
        out.columns.push_back(LinkedColumn{table.name, col.name, cscore});
        best_col = std::max(best_col, cscore);
      }
    }
    // A table is relevant if named directly or if it owns matching columns.
    double combined = tscore + 0.5 * best_col;
    if (combined > 0) {
      out.tables.push_back(LinkedTable{table.name, combined});
    }
  }
  std::stable_sort(out.tables.begin(), out.tables.end(),
                   [](const LinkedTable& a, const LinkedTable& b) {
                     return a.score > b.score;
                   });
  std::stable_sort(out.columns.begin(), out.columns.end(),
                   [](const LinkedColumn& a, const LinkedColumn& b) {
                     return a.score > b.score;
                   });
  if (out.tables.size() > max_tables) out.tables.resize(max_tables);
  if (out.columns.size() > max_columns) out.columns.resize(max_columns);
  return out;
}

}  // namespace pixels
