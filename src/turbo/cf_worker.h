// CF worker execution of pushed-down sub-plans (paper §3.1): the sub-plan
// is partitioned over a fleet of ephemeral workers, each worker's result
// is written to cloud object storage, and the concatenation re-enters the
// top-level plan as a materialized view.
#pragma once

#include "catalog/catalog.h"
#include "common/trace.h"
#include "exec/profile.h"
#include "mv/mv_store.h"
#include "plan/subplan.h"
#include "turbo/shuffle/stage_scheduler.h"

namespace pixels {

/// Outcome of executing a plan with CF pushdown.
struct CfExecution {
  TablePtr result;          // final query result
  TablePtr view;            // the materialized view produced by workers
  int workers_used = 0;     // actual fleet size
  uint64_t bytes_scanned = 0;
  bool pushdown_used = false;
  /// The whole query was answered from the MV store (no scan, no fleet).
  bool mv_full_hit = false;
  /// The pushed-down sub-plan's view came from the MV store; only the
  /// top-level plan executed (no fleet invocation).
  bool mv_subplan_hit = false;
  /// Scan bytes MV hits avoided (full-query or sub-plan granularity).
  uint64_t mv_saved_bytes = 0;
  /// Re-invocations of failed workers across the fleet (transient worker
  /// failures absorbed without surfacing to the query).
  int worker_retries = 0;
  /// Partitions that succeeded after at least one re-invocation.
  int workers_recovered = 0;
  /// Partitions that exhausted their re-invocation budget and degraded to
  /// the VM path (executed inline by the coordinator instead of failing
  /// the query). Excluded from `workers_used`.
  int workers_fallback = 0;
  /// Subset of `bytes_scanned` scanned by VM-path fallback partitions
  /// (drives the VM/CF compute-cost split; billing per byte is unchanged).
  uint64_t fallback_bytes_scanned = 0;
  /// Simulated backoff time between worker re-invocations.
  double retry_backoff_simulated_ms = 0;
  /// Per-worker vCPU-seconds estimate derived from bytes (for billing).
  double work_vcpu_seconds = 0;
  /// Measured wall-clock seconds of each worker's sub-plan (index =
  /// partition index).
  std::vector<double> worker_elapsed_seconds;
  /// Measured wall-clock seconds from first worker start to last worker
  /// finish. With a concurrent fleet this is less than the sum of
  /// worker_elapsed_seconds — the overlap the paper's sub-second CF
  /// absorption story depends on.
  double fleet_elapsed_seconds = 0;
  /// The sub-plan ran as a multi-stage shuffle DAG (cf_shuffle) instead
  /// of the single-stage fleet. Results, bytes_scanned, and bills are
  /// byte-identical either way; only the counters below differ.
  bool shuffle_used = false;
  int shuffle_stages = 0;
  /// Hedged duplicate invocations fired against stragglers / won the
  /// first-writer-wins race (losers' work is discarded and un-billed).
  int hedges_fired = 0;
  int hedges_won = 0;
  /// Exchange-object bytes written by winning producers / combined-read
  /// by consumers. Intermediate traffic — never part of `bytes_scanned`.
  uint64_t shuffle_bytes_written = 0;
  uint64_t shuffle_bytes_read = 0;
  /// Simulated wall per shuffle stage (produce-left, produce-right, join)
  /// and the DAG makespan.
  std::vector<double> shuffle_stage_wall_ms;
  double shuffle_critical_path_ms = 0;
  /// Intermediate objects removed by the end-of-query GC sweep.
  size_t shuffle_objects_swept = 0;
  /// Runtime-filter totals across every context that ran part of this
  /// query (workers, VM fallbacks, top-level/final plan), merged in
  /// partition order so serial and parallel fleets report identically.
  /// `rf_skipped_bytes` is billed scan work the filters genuinely avoided
  /// (row groups never fetched) — `bytes_scanned` above excludes it.
  uint64_t rf_probe_rows = 0;
  uint64_t rf_pruned_rows = 0;
  uint64_t rf_pruned_row_groups = 0;
  uint64_t rf_skipped_bytes = 0;
};

/// Options for CF execution.
struct CfWorkerOptions {
  int num_workers = 8;
  /// Storage for worker-produced materialized views (paper: S3). Null
  /// keeps views in memory.
  Storage* intermediate_store = nullptr;
  /// Path prefix for materialized-view objects.
  std::string view_prefix = "intermediate/view";
  /// Scan throughput per vCPU used to convert bytes to work (bytes/s).
  double bytes_per_vcpu_second = 100e6;
  /// How many workers genuinely run concurrently on the shared pool:
  /// 0 = DefaultParallelism(), 1 = serial fleet (today's deterministic
  /// discrete-event-simulation behavior).
  int fleet_parallelism = 0;
  /// Intra-worker parallelism for each worker's own sub-plan (scans,
  /// builds). Workers default to serial so fleet-level concurrency is the
  /// unit of scaling, mirroring 1-vCPU cloud functions.
  int worker_parallelism = 1;
  /// I/O policy shared by the top-level plan and every worker: one chunk
  /// cache means a worker's fetch warms the final plan's reads. Billing
  /// is unchanged by caching.
  IoOptions io;
  /// Materialized-view store shared with the coordinator and concurrent
  /// queries (null disables MV reuse). Consulted at two granularities:
  /// the whole plan (hit = no execution at all) and the pushed-down
  /// sub-plan (hit = the worker fleet is skipped and the cached view
  /// re-enters the top-level plan directly).
  MvStore* mv_store = nullptr;
  /// Attempt budget per worker partition, including the first invocation
  /// (1 disables re-invocation). A worker whose sub-plan fails with a
  /// retryable error (see RetryPolicy::IsRetryable) is re-invoked from a
  /// fresh ExecContext, so only the successful attempt's scanned bytes
  /// are counted — retries never double-bill.
  int max_worker_attempts = 3;
  /// Base backoff between re-invocations of one worker, doubled per
  /// further attempt. Accounted in simulated milliseconds only.
  double worker_retry_backoff_ms = 200.0;
  /// When a partition exhausts its attempt budget, execute it on the VM
  /// path (inline, no intermediate round trip) instead of failing the
  /// query. Non-retryable errors always fail the query: a corrupt object
  /// is corrupt on the VM path too.
  bool vm_fallback = true;
  /// Observability (all null/0 = off, the default). With a tracer on, the
  /// fleet emits cf-fleet → cf-worker → cf-attempt spans (retry counts,
  /// bytes, fallback reasons) under `trace_parent`. With a profile,
  /// workers contribute aggregate-only nodes — counters come from the
  /// successful attempt's ExecContext, so failed attempts never pollute
  /// the report — while the top-level plan profiles per operator.
  Tracer* tracer = nullptr;
  uint64_t trace_parent = 0;
  QueryProfile* profile = nullptr;
  /// Audit event log for shuffle stage progress (null = off).
  EventLog* event_log = nullptr;
  /// Vectorized-execution knobs, threaded into every ExecContext this
  /// query creates (workers included, so runtime filters prune billed
  /// scan work across the CF seam). Both are superset-safe: results are
  /// identical on or off.
  bool runtime_filters = true;
  bool fused_decode = true;
  int rf_bloom_bits_per_key = 8;
  /// Typed hash tables + selection-vector pipeline for joins/aggregation
  /// (exec/hash_table.h). Superset-safe like the knobs above.
  bool vectorized_hash = true;
  double hash_table_load_factor = 0.7;
  /// Multi-stage shuffle knobs (stage_scheduler.h). `shuffle.enabled`
  /// off — the default — preserves single-stage behavior exactly; on, an
  /// eligible sub-plan (single equi-join core) runs as a
  /// scan→shuffle→join DAG with hedged straggler mitigation, and
  /// ineligible shapes silently keep the single-stage fleet.
  ShuffleOptions shuffle;
};

/// Executes `plan` with the sub-plan pushed down to a simulated CF worker
/// fleet. Falls back to plain execution when nothing is pushable.
Result<CfExecution> ExecuteWithCfPushdown(const PlanPtr& plan,
                                          Catalog* catalog,
                                          const CfWorkerOptions& options);

/// Writes a materialized table as a .pxl object and reads it back —
/// the round trip a CF worker result takes through object storage.
Result<TablePtr> RoundTripView(const Table& view, Storage* storage,
                               const std::string& path);

}  // namespace pixels
