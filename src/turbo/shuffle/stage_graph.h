// Stage-DAG planner for the CF shuffle: generalizes PartitionSubplan's
// "one sub-plan, one merge" into scan → shuffle → join/agg stages. A
// pushed-down sub-plan whose heavy core is a single equi-join becomes:
//
//   stage L: partition(left subtree)  — tasks scan their file subset,
//            hash-partition output by the left join keys, write one
//            exchange object each;
//   stage R: same for the right subtree with the right join keys;
//   stage J: one task per hash partition — combined-reads its partition
//            from every L and R object, runs the join (plus whatever
//            unary chain sat above it in the sub-plan, e.g. a partial
//            aggregate) over the two assembled sides.
//
// The concatenated stage-J outputs re-enter the top-level plan as the
// materialized view, exactly where the single-stage fleet's view went —
// so merge aggregation, billing, and MV reuse are unchanged above the
// seam. Matching pairs always meet: both sides are partitioned with the
// same kind-tagged key hash that join equality uses.
#pragma once

#include "plan/subplan.h"

namespace pixels {

/// A shuffle stage DAG derived from one pushed-down sub-plan. When
/// `viable` is false the sub-plan keeps the single-stage path (`reason`
/// says why — e.g. no join, non-equi condition, nested joins).
struct StageGraph {
  bool viable = false;
  std::string reason;

  /// Producer subtrees (join-free, scan-containing; partitionable with
  /// PartitionSubplan).
  PlanPtr left;
  PlanPtr right;
  /// Hash-partition keys per side, index-aligned conjunct by conjunct.
  std::vector<ExprPtr> left_keys;
  std::vector<ExprPtr> right_keys;
  /// Consumer template: the sub-plan with the join's children replaced by
  /// empty MaterializedView placeholders (left child first). Instantiated
  /// per partition via InstantiateConsumer.
  PlanPtr consumer;
};

/// Analyzes `subplan` (the CF pushdown sub-plan, post-optimization) and
/// builds the stage graph. Eligible shape: a unary chain from the root to
/// exactly one INNER join whose condition is a conjunction of
/// column-ref equalities separable across the two join-free,
/// scan-containing child subtrees. Anything else → viable=false.
StageGraph BuildStageGraph(const PlanPtr& subplan);

/// Clones the consumer template and fills its two placeholders with one
/// partition's assembled left/right tables (empty tables allowed).
Result<PlanPtr> InstantiateConsumer(const StageGraph& graph,
                                    TablePtr left_partition,
                                    TablePtr right_partition);

}  // namespace pixels
