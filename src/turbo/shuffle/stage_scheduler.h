// Stage scheduler for the CF shuffle DAG: launches stages as their
// inputs complete, re-invokes failed tasks with the PR-4 retry/backoff
// rules, degrades exhausted tasks to the VM path, and fires hedged
// duplicate tasks against stragglers (Starling §straggler mitigation).
//
// Everything is priced in SIMULATED milliseconds — task duration =
// compute (scanned bytes / vCPU throughput) + exchange I/O latency +
// any deterministic per-path slow penalty (FaultInjectingStorage slow
// rules) + accumulated retry backoff — so hedging decisions are
// reproducible regardless of thread interleaving or wall-clock noise.
// Commit is first-writer-wins in simulated time: both attempts of a task
// may finish physically, but the one with the earlier simulated
// completion holds the commit slot; the loser's object is deleted and
// its bytes never reach billing. Results, bytes_scanned, and bills are
// therefore byte-identical across serial, parallel, and hedged runs.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/event_log.h"
#include "common/trace.h"
#include "exec/profile.h"
#include "storage/buffer_cache.h"
#include "turbo/shuffle/stage_graph.h"

namespace pixels {

/// Shuffle knobs, threaded from CoordinatorParams via CfWorkerOptions.
struct ShuffleOptions {
  /// Master switch (`cf_shuffle`). Off (default) preserves today's
  /// single-stage CF behavior exactly.
  bool enabled = false;
  /// Consumer fan-out: number of hash partitions / stage-J tasks
  /// (0 = the CF fleet size).
  int partitions = 0;
  /// Producer fan-out: tasks per scan stage, clamped by the partitioned
  /// table's file count (0 = the CF fleet size).
  int producer_tasks = 0;
  /// Hedged duplicate invocation of straggler tasks.
  bool hedging = true;
  /// Hedge delay quantile (percentile, [0,100]): the hedge cutoff is
  /// Percentile(primary durations, hedge_quantile) * hedge_delay_factor.
  /// Tasks still running at the cutoff get a duplicate.
  double hedge_quantile = 75.0;
  double hedge_delay_factor = 1.5;
  /// Path prefix for exchange objects; swept on completion AND failure.
  /// Empty = derived by the CF driver from its view prefix.
  std::string object_prefix;
  /// Forced chunk Encoding id (exchange.h); -1 = heuristic per chunk.
  int forced_encoding = -1;
  /// Deterministic per-path slow penalty (simulated ms) added to a task
  /// attempt's duration — wire to FaultInjectingStorage::PathSlowMs to
  /// inject whole-task stragglers. Null = no penalty.
  std::function<double(const std::string&)> path_slow_ms;
};

/// First-writer-wins commit table for (stage, task) slots, ordered by
/// simulated completion time (ties break to the lower attempt rank, i.e.
/// the primary). Thread-safe; the winner is a pure function of the
/// offered claims, never of thread arrival order.
class ExchangeCommitTable {
 public:
  struct Claim {
    int attempt_rank = -1;     // 0 = primary, 1 = hedge
    double completion_ms = 0;  // simulated completion time
    std::string path;          // exchange object (empty for consumers)
  };

  /// Offers a claim; returns true when it took (or already held) the
  /// slot. The displaced loser, when any, is copied to `loser`.
  bool Offer(int stage, int task, const Claim& claim,
             Claim* loser = nullptr);
  /// Current holder (attempt_rank -1 when nothing committed).
  Claim Get(int stage, int task) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<int, int>, Claim> slots_;
};

/// Everything the scheduler needs from the CF execution context, kept
/// separate from CfWorkerOptions to avoid a header cycle.
struct ShuffleRunParams {
  Catalog* catalog = nullptr;
  /// Exchange object storage (the catalog's store in production).
  Storage* store = nullptr;
  ShuffleOptions shuffle;
  IoOptions io;
  /// CF fleet size: default fan-in/fan-out when the knobs are 0.
  int num_workers = 8;
  double bytes_per_vcpu_second = 100e6;
  int fleet_parallelism = 0;
  int worker_parallelism = 1;
  int max_task_attempts = 3;
  double retry_backoff_ms = 200.0;
  bool vm_fallback = true;
  bool runtime_filters = true;
  bool fused_decode = true;
  int rf_bloom_bits_per_key = 8;
  bool vectorized_hash = true;
  double hash_table_load_factor = 0.7;
  Tracer* tracer = nullptr;
  uint64_t trace_parent = 0;
  QueryProfile* profile = nullptr;
  /// Audit event log: stage start/commit/done progress events. Emissions
  /// happen only at deterministic points (stage setup before the parallel
  /// section; the post-barrier winner-resolution loop, in task order), so
  /// identical runs export byte-identical logs. Null = off.
  EventLog* event_log = nullptr;
};

/// Outcome of a shuffle DAG run.
struct ShuffleExecution {
  /// Concatenated stage-J outputs in partition order — the materialized
  /// view that re-enters the top-level plan.
  TablePtr view;
  int stages = 0;
  /// Committed tasks across stages (excluding VM fallbacks).
  int tasks = 0;
  int task_retries = 0;
  int tasks_recovered = 0;
  int tasks_fallback = 0;
  uint64_t fallback_bytes_scanned = 0;
  int hedges_fired = 0;
  int hedges_won = 0;
  /// Scan bytes of committed attempts only (hedge losers un-billed).
  uint64_t bytes_scanned = 0;
  uint64_t exchange_bytes_written = 0;  // winner objects only
  uint64_t exchange_bytes_read = 0;     // consumer combined reads
  double retry_backoff_simulated_ms = 0;
  /// Runtime-filter totals of committed attempts (merged in task order).
  uint64_t rf_probe_rows = 0;
  uint64_t rf_pruned_rows = 0;
  uint64_t rf_pruned_row_groups = 0;
  uint64_t rf_skipped_bytes = 0;
  /// Intermediate objects removed by the end-of-run GC sweep.
  size_t objects_swept = 0;
  /// Simulated wall per stage, index-aligned with the DAG (L, R, J).
  std::vector<double> stage_wall_ms;
  /// Simulated makespan of the DAG (max(L, R) + J).
  double critical_path_ms = 0;
  /// Per-task simulated completion times of the final (J) stage, for
  /// straggler-recovery analysis in the bench.
  std::vector<double> final_stage_task_ms;
};

/// Runs the three-stage shuffle DAG for `graph`. The exchange prefix
/// (`params.shuffle.object_prefix`) is swept before returning on success;
/// callers must also sweep on failure paths (SweepExchangePrefix).
Result<ShuffleExecution> ExecuteShuffleDag(const StageGraph& graph,
                                           const ShuffleRunParams& params);

}  // namespace pixels
