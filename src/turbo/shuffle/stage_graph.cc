#include "turbo/shuffle/stage_graph.h"

#include <algorithm>

namespace pixels {

namespace {

/// Splits an AND tree into conjuncts (borrowed shape from the optimizer).
void CollectConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == Expr::Kind::kBinary && e->op == "AND") {
    CollectConjuncts(e->args[0].get(), out);
    CollectConjuncts(e->args[1].get(), out);
    return;
  }
  out->push_back(e);
}

/// True when `name` (a qualified column ref) resolves into `columns`:
/// exact match first, then the relaxed bare-name suffix match RowBatch
/// uses, as long as it is unambiguous.
bool ResolvesInto(const std::string& name,
                  const std::vector<std::string>& columns) {
  if (std::find(columns.begin(), columns.end(), name) != columns.end()) {
    return true;
  }
  int hits = 0;
  for (const auto& col : columns) {
    if (col.size() > name.size() &&
        col.compare(col.size() - name.size(), name.size(), name) == 0 &&
        col[col.size() - name.size() - 1] == '.') {
      ++hits;
    }
  }
  return hits == 1;
}

StageGraph NotViable(std::string reason) {
  StageGraph g;
  g.reason = std::move(reason);
  return g;
}

/// Walks from `root` down through unary nodes to the first join; returns
/// null when a non-join branch point or a leaf is reached first.
LogicalPlan* FindJoin(LogicalPlan* root) {
  LogicalPlan* node = root;
  while (node != nullptr) {
    if (node->kind == LogicalPlan::Kind::kJoin) return node;
    if (node->children.size() != 1) return nullptr;
    node = node->children[0].get();
  }
  return nullptr;
}

}  // namespace

StageGraph BuildStageGraph(const PlanPtr& subplan) {
  if (subplan == nullptr) return NotViable("no sub-plan");
  LogicalPlan* join = FindJoin(subplan.get());
  if (join == nullptr) return NotViable("no join on the sub-plan spine");
  if (join->join_type != JoinClause::Type::kInner) {
    return NotViable("only inner joins shuffle");
  }
  if (join->join_condition == nullptr) {
    return NotViable("cross join has no partition keys");
  }
  for (const auto& child : join->children) {
    if (child->Contains(LogicalPlan::Kind::kJoin)) {
      return NotViable("nested joins not yet staged");
    }
    if (!child->Contains(LogicalPlan::Kind::kScan)) {
      return NotViable("join side has no scan to partition");
    }
  }

  const std::vector<std::string> left_cols = join->children[0]->OutputColumns();
  const std::vector<std::string> right_cols =
      join->children[1]->OutputColumns();

  std::vector<const Expr*> conjuncts;
  CollectConjuncts(join->join_condition.get(), &conjuncts);

  StageGraph g;
  for (const Expr* c : conjuncts) {
    if (c->kind != Expr::Kind::kBinary || c->op != "=" ||
        c->args[0]->kind != Expr::Kind::kColumnRef ||
        c->args[1]->kind != Expr::Kind::kColumnRef) {
      return NotViable("non-equi join conjunct: " + c->ToString());
    }
    const Expr* a = c->args[0].get();
    const Expr* b = c->args[1].get();
    const std::string an = a->QualifiedName();
    const std::string bn = b->QualifiedName();
    if (ResolvesInto(an, left_cols) && ResolvesInto(bn, right_cols)) {
      g.left_keys.push_back(a->Clone());
      g.right_keys.push_back(b->Clone());
    } else if (ResolvesInto(bn, left_cols) && ResolvesInto(an, right_cols)) {
      g.left_keys.push_back(b->Clone());
      g.right_keys.push_back(a->Clone());
    } else {
      return NotViable("join key does not separate by side: " + c->ToString());
    }
  }
  if (g.left_keys.empty()) return NotViable("no equi-join keys");

  g.left = join->children[0]->Clone();
  g.right = join->children[1]->Clone();

  // Consumer template: the whole sub-plan with the join's inputs swapped
  // for view placeholders — the unary chain above the join (projections,
  // a partial aggregate) runs inside each consumer task.
  g.consumer = subplan->Clone();
  LogicalPlan* cjoin = FindJoin(g.consumer.get());
  auto left_ph = MakeMaterializedView(nullptr);
  left_ph->view_columns = left_cols;
  auto right_ph = MakeMaterializedView(nullptr);
  right_ph->view_columns = right_cols;
  cjoin->children[0] = std::move(left_ph);
  cjoin->children[1] = std::move(right_ph);
  g.viable = true;
  return g;
}

Result<PlanPtr> InstantiateConsumer(const StageGraph& graph,
                                    TablePtr left_partition,
                                    TablePtr right_partition) {
  if (!graph.viable || graph.consumer == nullptr) {
    return Status::FailedPrecondition("stage graph is not viable");
  }
  PlanPtr plan = graph.consumer->Clone();
  LogicalPlan* join = FindJoin(plan.get());
  if (join == nullptr) {
    return Status::Internal("consumer template lost its join");
  }
  // An absent side becomes an empty table, never a null view — a null
  // view is a placeholder and would fail execution.
  join->children[0]->view = left_partition != nullptr
                                ? std::move(left_partition)
                                : std::make_shared<Table>();
  join->children[1]->view = right_partition != nullptr
                                ? std::move(right_partition)
                                : std::make_shared<Table>();
  return plan;
}

}  // namespace pixels
