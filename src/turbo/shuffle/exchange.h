// Storage-mediated exchange format for the multi-stage CF shuffle
// (Starling arXiv 1911.11727 / Lambada arXiv 1912.00937). Each producer
// task hash-partitions its output and writes ONE object per (stage, task)
// holding every partition, so the object count scales with tasks, not
// tasks × partitions. Layout:
//
//   [magic "PXSH"]
//   [partition 0: col 0 chunk][col 1 chunk]...
//   [partition 1: ...]...
//   [footer: schema, per-partition rows + per-column (offset, len, enc)]
//   [footer length: u32][magic "PXSH"]
//
// Chunks reuse the Pixels column encodings (encoding.h) and a partition's
// chunks are laid out contiguously, so a consumer assembles its partition
// with ONE combined ranged GET per producer object: the per-column ranges
// coalesce into a single underlying request through Storage::ReadRanges.
// The footer is self-describing (schema travels with the data), read once
// per object by the scheduler and shared across consumer tasks.
#pragma once

#include "format/batch.h"
#include "format/encoding.h"
#include "format/file_format.h"
#include "sql/ast.h"
#include "storage/storage.h"

namespace pixels {

/// Location + encoding of one column chunk inside an exchange object.
struct ExchangeChunk {
  uint64_t offset = 0;
  uint64_t length = 0;
  Encoding encoding = Encoding::kPlain;
};

/// Parsed footer of one exchange object. An object written from an empty
/// producer result has an empty schema (consumers skip it); an empty
/// partition of a non-empty object has rows == 0 and zero-length chunks.
struct ExchangeFooter {
  /// Column names (qualified, e.g. "l.l_orderkey") and types.
  FileSchema schema;
  std::vector<uint64_t> partition_rows;
  /// [partition][column] chunk locations.
  std::vector<std::vector<ExchangeChunk>> chunks;
  /// Total object size in bytes (set by ReadExchangeFooter).
  uint64_t object_bytes = 0;

  size_t num_partitions() const { return partition_rows.size(); }
};

/// Outcome of writing one exchange object.
struct ExchangeWriteInfo {
  uint64_t bytes_written = 0;
  size_t num_partitions = 0;
};

/// Hash-partitions `table` into `num_partitions` tables by the kind-tagged
/// hash of `key_exprs` (HashKeyColumns — consistent with join equality, so
/// partitioning both join sides by their respective keys routes every
/// matching pair to the same partition). Rows whose key is null route to
/// partition (hash % P) of the fixed null tag — deterministic, and
/// harmless for inner joins since nulls never match. Each output table
/// holds one batch (possibly empty) concatenating the input batches'
/// selected rows in input order, so partitioning is deterministic
/// regardless of upstream thread interleaving.
Result<std::vector<TablePtr>> HashPartitionTable(
    const Table& table, const std::vector<const Expr*>& key_exprs,
    int num_partitions);

/// Writes `partitions` (all sharing one schema; empty tables allowed) as
/// one exchange object at `path`. The schema is derived from the first
/// non-empty partition; when every partition is empty the object records
/// an empty schema and consumers skip it. `forced_encoding` < 0 lets
/// ChooseEncoding pick per chunk; otherwise every chunk uses the given
/// Encoding (falling back to plain when it cannot represent the type).
Result<ExchangeWriteInfo> WriteExchangeObject(
    Storage* storage, const std::string& path,
    const std::vector<TablePtr>& partitions, int forced_encoding = -1);

/// Reads and parses the footer: one Size probe plus one tail ranged GET
/// (a second GET only when the footer exceeds the 4 KiB tail guess).
Result<ExchangeFooter> ReadExchangeFooter(Storage* storage,
                                          const std::string& path);

/// Assembles partition `p` of one exchange object with a single combined
/// ReadRanges call (per-column ranges are contiguous, so they coalesce to
/// one underlying GET). Returns an empty batch for empty partitions and
/// for empty-schema objects. `bytes_read`, when non-null, accumulates the
/// exchange bytes fetched (gap bytes excluded — the ranges are adjacent).
Result<RowBatchPtr> ReadExchangePartition(Storage* storage,
                                          const std::string& path,
                                          const ExchangeFooter& footer,
                                          size_t p,
                                          uint64_t* bytes_read = nullptr);

/// Best-effort GC sweep of every object under `prefix` (List + Delete,
/// with a small bounded retry per object so a transient injected fault
/// cannot leak an intermediate object). Returns the number of objects
/// removed. Mirrors the MvStore spill-prefix sweep; invoked on query
/// completion AND on failure paths by the shuffle driver.
size_t SweepExchangePrefix(Storage* storage, const std::string& prefix);

}  // namespace pixels
