#include "turbo/shuffle/exchange.h"

#include <algorithm>
#include <cstring>

#include "exec/expression.h"
#include "exec/kernels.h"

namespace pixels {

namespace {

constexpr char kExchangeMagic[4] = {'P', 'X', 'S', 'H'};
constexpr size_t kFooterTailGuess = 4096;

Status CheckMagic(const uint8_t* p) {
  if (std::memcmp(p, kExchangeMagic, sizeof(kExchangeMagic)) != 0) {
    return Status::Corruption("exchange object: bad magic");
  }
  return Status::OK();
}

/// Encoding for one chunk: the forced one when it can represent the type,
/// else plain; heuristic choice when nothing is forced.
Encoding PickEncoding(const ColumnVector& col, int forced) {
  if (forced >= 0) {
    const auto e = static_cast<Encoding>(forced);
    return EncodingSupports(e, col.type()) ? e : Encoding::kPlain;
  }
  return ChooseEncoding(col);
}

}  // namespace

Result<std::vector<TablePtr>> HashPartitionTable(
    const Table& table, const std::vector<const Expr*>& key_exprs,
    int num_partitions) {
  if (num_partitions <= 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (key_exprs.empty()) {
    return Status::InvalidArgument("hash partitioning needs key columns");
  }
  const size_t P = static_cast<size_t>(num_partitions);

  // Accumulate one output batch per partition; schema from the first
  // input batch (empty input => empty untyped partitions).
  std::vector<std::string> names;
  std::vector<std::vector<ColumnVectorPtr>> acc(P);
  bool typed = false;

  for (const auto& batch : table.batches()) {
    if (!typed) {
      for (size_t c = 0; c < batch->num_columns(); ++c) {
        names.push_back(batch->name(c));
        for (size_t p = 0; p < P; ++p) {
          acc[p].push_back(MakeVector(batch->column(c)->type()));
        }
      }
      typed = true;
    }
    const size_t rows = batch->num_rows();
    if (rows == 0) continue;
    std::vector<ColumnVectorPtr> keys;
    keys.reserve(key_exprs.size());
    for (const Expr* e : key_exprs) {
      PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr key, EvaluateExpr(*e, *batch));
      keys.push_back(std::move(key));
    }
    const std::vector<uint64_t> hashes =
        HashKeyColumns(keys, rows, /*any_null=*/nullptr);
    for (size_t r = 0; r < rows; ++r) {
      const size_t p = static_cast<size_t>(hashes[r] % P);
      for (size_t c = 0; c < batch->num_columns(); ++c) {
        acc[p][c]->AppendFrom(*batch->column(c), r);
      }
    }
  }

  std::vector<TablePtr> out(P);
  for (size_t p = 0; p < P; ++p) {
    out[p] = std::make_shared<Table>();
    if (!typed) continue;
    auto b = std::make_shared<RowBatch>();
    for (size_t c = 0; c < names.size(); ++c) {
      b->AddColumn(names[c], acc[p][c]);
    }
    out[p]->AddBatch(std::move(b));
  }
  return out;
}

Result<ExchangeWriteInfo> WriteExchangeObject(
    Storage* storage, const std::string& path,
    const std::vector<TablePtr>& partitions, int forced_encoding) {
  if (storage == nullptr) {
    return Status::InvalidArgument("exchange write needs a storage");
  }
  // Schema from the first non-empty partition: names from its first batch.
  FileSchema schema;
  for (const auto& part : partitions) {
    if (part == nullptr || part->batches().empty()) continue;
    const RowBatch& first = *part->batches()[0];
    if (first.num_columns() == 0) continue;
    for (size_t c = 0; c < first.num_columns(); ++c) {
      schema.push_back(ColumnDef{first.name(c), first.column(c)->type()});
    }
    break;
  }

  ByteWriter body;
  body.PutBytes(kExchangeMagic, sizeof(kExchangeMagic));
  std::vector<uint64_t> part_rows(partitions.size(), 0);
  std::vector<std::vector<ExchangeChunk>> chunks(partitions.size());
  for (size_t p = 0; p < partitions.size(); ++p) {
    chunks[p].resize(schema.size());
    if (schema.empty()) continue;
    const Table* part = partitions[p].get();
    // Concatenate the partition's batches per column (a partition is
    // usually a single batch already — see HashPartitionTable).
    std::vector<ColumnVectorPtr> cols(schema.size());
    uint64_t rows = 0;
    if (part != nullptr) {
      for (const auto& b : part->batches()) rows += b->num_rows();
    }
    part_rows[p] = rows;
    if (rows == 0) continue;  // zero-length chunks, nothing encoded
    for (size_t c = 0; c < schema.size(); ++c) {
      if (part->batches().size() == 1) {
        cols[c] = part->batches()[0]->column(c);
      } else {
        auto merged = MakeVector(schema[c].type);
        merged->Reserve(rows);
        for (const auto& b : part->batches()) {
          for (size_t r = 0; r < b->num_rows(); ++r) {
            merged->AppendFrom(*b->column(c), r);
          }
        }
        cols[c] = std::move(merged);
      }
    }
    for (size_t c = 0; c < schema.size(); ++c) {
      const Encoding enc = PickEncoding(*cols[c], forced_encoding);
      ByteWriter chunk;
      PIXELS_RETURN_NOT_OK(EncodeColumn(*cols[c], enc, &chunk));
      chunks[p][c].offset = body.size();
      chunks[p][c].length = chunk.size();
      chunks[p][c].encoding = enc;
      body.PutBytes(chunk.data().data(), chunk.size());
    }
  }

  ByteWriter footer;
  footer.PutU32(static_cast<uint32_t>(schema.size()));
  for (const auto& def : schema) {
    footer.PutString(def.name);
    footer.PutU8(static_cast<uint8_t>(def.type));
  }
  footer.PutU32(static_cast<uint32_t>(partitions.size()));
  for (size_t p = 0; p < partitions.size(); ++p) {
    footer.PutU64(part_rows[p]);
    for (const auto& ch : chunks[p]) {
      footer.PutU64(ch.offset);
      footer.PutU64(ch.length);
      footer.PutU8(static_cast<uint8_t>(ch.encoding));
    }
  }
  const uint32_t footer_len = static_cast<uint32_t>(footer.size());
  body.PutBytes(footer.data().data(), footer.size());
  body.PutU32(footer_len);
  body.PutBytes(kExchangeMagic, sizeof(kExchangeMagic));

  ExchangeWriteInfo info;
  info.bytes_written = body.size();
  info.num_partitions = partitions.size();
  PIXELS_RETURN_NOT_OK(storage->Write(path, body.data()));
  return info;
}

namespace {

Result<ExchangeFooter> ParseFooter(ByteReader* in, size_t object_bytes) {
  ExchangeFooter out;
  out.object_bytes = object_bytes;
  PIXELS_ASSIGN_OR_RETURN(const uint32_t ncols, in->GetU32());
  for (uint32_t c = 0; c < ncols; ++c) {
    PIXELS_ASSIGN_OR_RETURN(std::string name, in->GetString());
    PIXELS_ASSIGN_OR_RETURN(const uint8_t type, in->GetU8());
    out.schema.push_back(ColumnDef{std::move(name), static_cast<TypeId>(type)});
  }
  PIXELS_ASSIGN_OR_RETURN(const uint32_t nparts, in->GetU32());
  out.partition_rows.resize(nparts, 0);
  out.chunks.resize(nparts);
  for (uint32_t p = 0; p < nparts; ++p) {
    PIXELS_ASSIGN_OR_RETURN(out.partition_rows[p], in->GetU64());
    out.chunks[p].resize(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      ExchangeChunk& ch = out.chunks[p][c];
      PIXELS_ASSIGN_OR_RETURN(ch.offset, in->GetU64());
      PIXELS_ASSIGN_OR_RETURN(ch.length, in->GetU64());
      PIXELS_ASSIGN_OR_RETURN(const uint8_t enc, in->GetU8());
      ch.encoding = static_cast<Encoding>(enc);
    }
  }
  return out;
}

}  // namespace

Result<ExchangeFooter> ReadExchangeFooter(Storage* storage,
                                          const std::string& path) {
  PIXELS_ASSIGN_OR_RETURN(const uint64_t size, storage->Size(path));
  if (size < sizeof(kExchangeMagic) * 2 + sizeof(uint32_t)) {
    return Status::Corruption("exchange object too small: " + path);
  }
  const uint64_t tail_len = std::min<uint64_t>(size, kFooterTailGuess);
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> tail,
                          storage->ReadRange(path, size - tail_len, tail_len));
  PIXELS_RETURN_NOT_OK(CheckMagic(tail.data() + tail.size() - 4));
  uint32_t footer_len = 0;
  std::memcpy(&footer_len, tail.data() + tail.size() - 8, sizeof(footer_len));
  const uint64_t footer_span = static_cast<uint64_t>(footer_len) + 8;
  if (footer_span > size - sizeof(kExchangeMagic)) {
    return Status::Corruption("exchange object: footer length out of range");
  }
  if (footer_span <= tail_len) {
    ByteReader in(tail.data() + tail.size() - footer_span, footer_len);
    return ParseFooter(&in, size);
  }
  // Oversized footer (thousands of partitions): one more exact GET.
  PIXELS_ASSIGN_OR_RETURN(
      std::vector<uint8_t> buf,
      storage->ReadRange(path, size - footer_span, footer_len));
  ByteReader in(buf);
  return ParseFooter(&in, size);
}

Result<RowBatchPtr> ReadExchangePartition(Storage* storage,
                                          const std::string& path,
                                          const ExchangeFooter& footer,
                                          size_t p, uint64_t* bytes_read) {
  if (p >= footer.num_partitions()) {
    return Status::InvalidArgument("exchange partition out of range");
  }
  auto batch = std::make_shared<RowBatch>();
  if (footer.schema.empty()) return batch;  // empty producer output
  const uint64_t rows = footer.partition_rows[p];
  // One combined read: per-column ranges are contiguous in the object, so
  // they coalesce into a single underlying GET.
  std::vector<ByteRange> ranges;
  ranges.reserve(footer.schema.size());
  for (const auto& ch : footer.chunks[p]) {
    ranges.push_back(ByteRange{ch.offset, ch.length});
  }
  PIXELS_ASSIGN_OR_RETURN(std::vector<std::vector<uint8_t>> bufs,
                          storage->ReadRanges(path, ranges));
  for (size_t c = 0; c < footer.schema.size(); ++c) {
    ColumnVectorPtr col;
    if (rows == 0) {
      col = MakeVector(footer.schema[c].type);
    } else {
      ByteReader in(bufs[c]);
      PIXELS_ASSIGN_OR_RETURN(
          col, DecodeColumn(footer.schema[c].type,
                            footer.chunks[p][c].encoding, &in, rows));
    }
    if (bytes_read != nullptr) *bytes_read += footer.chunks[p][c].length;
    batch->AddColumn(footer.schema[c].name, std::move(col));
  }
  return batch;
}

size_t SweepExchangePrefix(Storage* storage, const std::string& prefix) {
  if (storage == nullptr || prefix.empty()) return 0;
  auto paths = storage->List(prefix);
  if (!paths.ok()) return 0;
  size_t removed = 0;
  for (const auto& path : *paths) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      if (storage->Delete(path).ok() || !storage->Exists(path)) {
        ++removed;
        break;
      }
    }
  }
  return removed;
}

}  // namespace pixels
