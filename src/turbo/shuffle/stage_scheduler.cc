#include "turbo/shuffle/stage_scheduler.h"

#include <algorithm>
#include <cmath>

#include "cloud/metrics.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "storage/object_store.h"
#include "storage/retrying_storage.h"
#include "turbo/shuffle/exchange.h"

namespace pixels {

bool ExchangeCommitTable::Offer(int stage, int task, const Claim& claim,
                                Claim* loser) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto key = std::make_pair(stage, task);
  auto it = slots_.find(key);
  if (it == slots_.end()) {
    slots_.emplace(key, claim);
    return true;
  }
  Claim& held = it->second;
  const bool wins =
      claim.completion_ms < held.completion_ms ||
      (claim.completion_ms == held.completion_ms &&
       claim.attempt_rank < held.attempt_rank);
  if (wins) {
    if (loser != nullptr) *loser = held;
    held = claim;
    return true;
  }
  if (loser != nullptr) *loser = claim;
  return false;
}

ExchangeCommitTable::Claim ExchangeCommitTable::Get(int stage,
                                                    int task) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(std::make_pair(stage, task));
  return it != slots_.end() ? it->second : Claim{};
}

namespace {

/// Counters one task attempt commits if it wins its slot. Failed and
/// losing attempts never reach the ShuffleExecution totals.
struct AttemptOutcome {
  TablePtr table;  // consumer output (null for producers)
  uint64_t bytes_scanned = 0;
  uint64_t exchange_bytes_written = 0;
  uint64_t exchange_bytes_read = 0;
  uint64_t rf_probe_rows = 0;
  uint64_t rf_pruned_rows = 0;
  uint64_t rf_pruned_row_groups = 0;
  uint64_t rf_skipped_bytes = 0;
  /// Simulated duration of this attempt (compute + exchange I/O + slow
  /// penalty), excluding retry backoff.
  double sim_ms = 0;
};

using TaskRunner = std::function<Result<AttemptOutcome>(
    size_t task, const std::string& attempt_path, uint64_t attempt_span)>;

struct StageOutcome {
  std::vector<AttemptOutcome> winners;   // per task
  std::vector<double> completion_ms;     // per task, relative to stage start
  double wall_ms = 0;
};

/// Simulated latency of one exchange GET/PUT: the object store's own
/// model when the store is one, else the same S3-like default formula.
double EstimateIoMs(Storage* storage, uint64_t bytes) {
  if (bytes == 0) return 0;
  if (auto* os = dynamic_cast<ObjectStore*>(storage)) {
    return os->EstimateReadLatencyMs(bytes);
  }
  return 15.0 + static_cast<double>(bytes) / (90.0 * 1e6) * 1000.0;
}

double ComputeMs(const ShuffleRunParams& params, uint64_t bytes) {
  return static_cast<double>(bytes) / params.bytes_per_vcpu_second * 1000.0;
}

double SlowMs(const ShuffleRunParams& params, const std::string& path) {
  return params.shuffle.path_slow_ms ? params.shuffle.path_slow_ms(path) : 0;
}

void ApplyKnobs(ExecContext* ctx, const ShuffleRunParams& params) {
  ctx->runtime_filters = params.runtime_filters;
  ctx->fused_decode = params.fused_decode;
  ctx->rf_bloom_bits_per_key = params.rf_bloom_bits_per_key;
  ctx->vectorized_hash = params.vectorized_hash;
  ctx->hash_table_load_factor = params.hash_table_load_factor;
}

void TakeRf(AttemptOutcome* o, const ExecContext& ctx) {
  o->rf_probe_rows = ctx.rf_probe_rows.load();
  o->rf_pruned_rows = ctx.rf_pruned_rows.load();
  o->rf_pruned_row_groups = ctx.rf_pruned_row_groups.load();
  o->rf_skipped_bytes = ctx.rf_skipped_bytes.load();
}

std::string TaskPath(const std::string& prefix, int stage, size_t task,
                     const char* suffix) {
  return prefix + "/s" + std::to_string(stage) + "/t" + std::to_string(task) +
         suffix;
}

/// Runs one stage: primaries with the PR-4 retry/backoff + VM-fallback
/// rules, then the hedge wave against stragglers, then first-writer-wins
/// resolution through the commit table. Counter updates into `exec`
/// happen after the barriers, on the calling thread.
Status RunStage(const ShuffleRunParams& params, int stage_id,
                const std::string& stage_name, size_t num_tasks,
                const TaskRunner& run, bool writes_objects,
                ExchangeCommitTable* commit, Tracer* tracer,
                uint64_t shuffle_span, OperatorProfile* shuffle_node,
                ShuffleExecution* exec, StageOutcome* out) {
  const std::string& prefix = params.shuffle.object_prefix;
  const int budget = std::max(params.max_task_attempts, 1);
  const int fleet_par = params.fleet_parallelism > 0
                            ? params.fleet_parallelism
                            : DefaultParallelism();
  uint64_t stage_span = 0;
  if (tracer != nullptr) {
    stage_span = tracer->StartSpan("cf-stage", shuffle_span);
    tracer->Annotate(stage_span, "stage", stage_name);
    tracer->Annotate(stage_span, "tasks", static_cast<uint64_t>(num_tasks));
  }
  ScopedSpan stage_scope(tracer, stage_span);
  const uint64_t prior_parent = tracer != nullptr ? tracer->ActiveParent() : 0;
  if (params.event_log != nullptr) {
    // Emitted on the calling thread before the parallel section, so the
    // event order is deterministic.
    Json f = Json::Object();
    f.Set("stage", Json(stage_id));
    f.Set("name", Json(stage_name));
    f.Set("tasks", Json(static_cast<int64_t>(num_tasks)));
    params.event_log->Emit("shuffle.stage_start", std::move(f));
  }

  std::vector<AttemptOutcome> primary(num_tasks);
  std::vector<AttemptOutcome> hedge(num_tasks);
  std::vector<double> primary_ms(num_tasks, 0.0);
  std::vector<int> retries(num_tasks, 0);
  std::vector<double> backoff_ms(num_tasks, 0.0);
  std::vector<char> recovered(num_tasks, 0);
  std::vector<char> fallback(num_tasks, 0);
  std::vector<char> hedge_ok(num_tasks, 0);

  auto run_primary = [&](size_t t) -> Status {
    uint64_t task_span = 0;
    if (tracer != nullptr) {
      task_span = tracer->StartSpan("cf-task", stage_span);
      tracer->Annotate(task_span, "task", static_cast<uint64_t>(t));
    }
    ScopedSpan task_scope(tracer, task_span);
    Status last;
    for (int attempt = 1; attempt <= budget; ++attempt) {
      if (attempt > 1) {
        ++retries[t];
        double delay = params.retry_backoff_ms;
        for (int i = 2; i < attempt; ++i) delay *= 2.0;
        backoff_ms[t] += delay;
      }
      const std::string path =
          TaskPath(prefix, stage_id, t, (".a" + std::to_string(attempt)).c_str());
      uint64_t attempt_span = 0;
      if (tracer != nullptr) {
        attempt_span = tracer->StartSpan("cf-task-attempt", task_span);
        tracer->Annotate(attempt_span, "attempt",
                         static_cast<uint64_t>(attempt));
        tracer->SetActiveParent(attempt_span);
      }
      Result<AttemptOutcome> r = run(t, path, attempt_span);
      last = r.ok() ? Status::OK() : r.status();
      if (tracer != nullptr) {
        if (!last.ok()) tracer->Annotate(attempt_span, "error", last.ToString());
        tracer->EndSpan(attempt_span);
      }
      if (last.ok()) {
        if (attempt > 1) recovered[t] = 1;
        primary[t] = std::move(*r);
        primary_ms[t] = primary[t].sim_ms + backoff_ms[t];
        commit->Offer(stage_id, static_cast<int>(t),
                      {/*attempt_rank=*/0, primary_ms[t], path});
        if (tracer != nullptr) {
          tracer->Annotate(task_span, "retries",
                           static_cast<uint64_t>(retries[t]));
        }
        return Status::OK();
      }
      if (!RetryPolicy::IsRetryable(last)) return last;
    }
    if (!params.vm_fallback) return last;
    // Budget exhausted: degrade this task to the VM path. It still has to
    // produce its exchange object (consumers need the partitions), so the
    // same runner executes inline under a ".vm" attempt path.
    const std::string vm_path = TaskPath(prefix, stage_id, t, ".vm");
    uint64_t vm_span = 0;
    if (tracer != nullptr) {
      vm_span = tracer->StartSpan("cf-task-attempt", task_span);
      tracer->Annotate(vm_span, "attempt", "vm-fallback");
      tracer->SetActiveParent(vm_span);
    }
    Result<AttemptOutcome> r = run(t, vm_path, vm_span);
    if (tracer != nullptr) {
      if (!r.ok()) tracer->Annotate(vm_span, "error", r.status().ToString());
      tracer->EndSpan(vm_span);
    }
    PIXELS_RETURN_NOT_OK(r.status());
    fallback[t] = 1;
    primary[t] = std::move(*r);
    primary_ms[t] = primary[t].sim_ms + backoff_ms[t];
    commit->Offer(stage_id, static_cast<int>(t),
                  {/*attempt_rank=*/0, primary_ms[t], vm_path});
    if (tracer != nullptr) {
      tracer->Annotate(task_span, "fallback", "attempts-exhausted");
    }
    return Status::OK();
  };
  Status st = ThreadPool::Shared()->ParallelFor(
      0, num_tasks, /*grain=*/1, [&](size_t t) { return run_primary(t); },
      fleet_par);
  if (tracer != nullptr) tracer->SetActiveParent(prior_parent);
  PIXELS_RETURN_NOT_OK(st);

  // Hedge wave: every task whose primary simulated duration exceeds the
  // quantile-derived cutoff gets one duplicate invocation. The duplicate
  // starts AT the cutoff, so its completion is cutoff + its own duration;
  // the commit table then picks the earlier finisher deterministically.
  std::vector<size_t> hedged;
  double cutoff = 0;
  if (params.shuffle.hedging && num_tasks >= 2) {
    std::vector<double> durations;
    durations.reserve(num_tasks);
    for (size_t t = 0; t < num_tasks; ++t) {
      if (!fallback[t]) durations.push_back(primary_ms[t]);
    }
    cutoff = Percentile(durations, params.shuffle.hedge_quantile) *
             params.shuffle.hedge_delay_factor;
    for (size_t t = 0; t < num_tasks; ++t) {
      if (!fallback[t] && primary_ms[t] > cutoff) hedged.push_back(t);
    }
  }
  if (!hedged.empty()) {
    auto run_hedge = [&](size_t i) -> Status {
      const size_t t = hedged[i];
      const std::string path = TaskPath(prefix, stage_id, t, ".h");
      uint64_t hedge_span = 0;
      if (tracer != nullptr) {
        hedge_span = tracer->StartSpan("cf-task-hedge", stage_span);
        tracer->Annotate(hedge_span, "task", static_cast<uint64_t>(t));
        tracer->SetActiveParent(hedge_span);
      }
      ScopedSpan scope(tracer, hedge_span);
      Result<AttemptOutcome> r = run(t, path, hedge_span);
      if (!r.ok()) {
        // A failed hedge just loses the race; the primary already won.
        if (tracer != nullptr) {
          tracer->Annotate(hedge_span, "error", r.status().ToString());
        }
        return Status::OK();
      }
      hedge[t] = std::move(*r);
      hedge_ok[t] = 1;
      commit->Offer(stage_id, static_cast<int>(t),
                    {/*attempt_rank=*/1, cutoff + hedge[t].sim_ms, path});
      return Status::OK();
    };
    st = ThreadPool::Shared()->ParallelFor(
        0, hedged.size(), /*grain=*/1,
        [&](size_t i) { return run_hedge(i); }, fleet_par);
    if (tracer != nullptr) tracer->SetActiveParent(prior_parent);
    PIXELS_RETURN_NOT_OK(st);
  }

  // Resolve winners; discard (and delete) losers so their bytes never
  // reach billing and their objects never reach consumers.
  out->winners.resize(num_tasks);
  out->completion_ms.assign(num_tasks, 0.0);
  int hedges_won = 0;
  for (size_t t = 0; t < num_tasks; ++t) {
    const ExchangeCommitTable::Claim held =
        commit->Get(stage_id, static_cast<int>(t));
    const bool hedge_wins = held.attempt_rank == 1;
    out->winners[t] = hedge_wins ? std::move(hedge[t]) : std::move(primary[t]);
    out->completion_ms[t] = held.completion_ms;
    if (hedge_wins) ++hedges_won;
    if (params.event_log != nullptr) {
      // Exactly ONE commit event per (stage, task) slot regardless of how
      // many attempts raced: emission happens here, in the post-barrier
      // resolution loop in task order, never at Offer time.
      Json f = Json::Object();
      f.Set("stage", Json(stage_id));
      f.Set("task", Json(static_cast<int64_t>(t)));
      f.Set("winner", Json(hedge_wins ? "hedge"
                                      : (fallback[t] ? "vm-fallback"
                                                     : "primary")));
      f.Set("completion_ms", Json(held.completion_ms));
      f.Set("retries", Json(retries[t]));
      f.Set("path", Json(held.path));
      params.event_log->Emit("shuffle.task_commit", std::move(f));
    }
    if (writes_objects) {
      // Best-effort delete of the losing attempt's object; the final
      // prefix sweep catches anything a transient fault leaves behind.
      if (hedge_wins) {
        params.store->Delete(TaskPath(prefix, stage_id, t, ".a1")).ok();
      } else if (hedge_ok[t]) {
        params.store->Delete(TaskPath(prefix, stage_id, t, ".h")).ok();
      }
    }
    out->wall_ms = std::max(out->wall_ms, held.completion_ms);
  }

  // Merge stage counters (winners only) into the execution totals.
  uint64_t stage_scanned = 0;
  for (size_t t = 0; t < num_tasks; ++t) {
    const AttemptOutcome& w = out->winners[t];
    stage_scanned += w.bytes_scanned;
    if (fallback[t]) {
      ++exec->tasks_fallback;
      exec->fallback_bytes_scanned += w.bytes_scanned;
    } else {
      ++exec->tasks;
    }
    exec->task_retries += retries[t];
    if (recovered[t]) ++exec->tasks_recovered;
    exec->retry_backoff_simulated_ms += backoff_ms[t];
    exec->bytes_scanned += w.bytes_scanned;
    exec->exchange_bytes_written += w.exchange_bytes_written;
    exec->exchange_bytes_read += w.exchange_bytes_read;
    exec->rf_probe_rows += w.rf_probe_rows;
    exec->rf_pruned_rows += w.rf_pruned_rows;
    exec->rf_pruned_row_groups += w.rf_pruned_row_groups;
    exec->rf_skipped_bytes += w.rf_skipped_bytes;
  }
  exec->hedges_fired += static_cast<int>(hedged.size());
  exec->hedges_won += hedges_won;
  ++exec->stages;
  exec->stage_wall_ms.push_back(out->wall_ms);
  if (params.event_log != nullptr) {
    Json f = Json::Object();
    f.Set("stage", Json(stage_id));
    f.Set("name", Json(stage_name));
    f.Set("wall_ms", Json(out->wall_ms));
    f.Set("hedges_fired", Json(static_cast<int64_t>(hedged.size())));
    f.Set("hedges_won", Json(hedges_won));
    f.Set("bytes", Json(static_cast<int64_t>(stage_scanned)));
    params.event_log->Emit("shuffle.stage_done", std::move(f));
  }
  if (tracer != nullptr) {
    tracer->Annotate(stage_span, "wall_ms",
                     static_cast<uint64_t>(std::llround(out->wall_ms)));
    tracer->Annotate(stage_span, "hedges_fired",
                     static_cast<uint64_t>(hedged.size()));
    tracer->Annotate(stage_span, "hedges_won",
                     static_cast<uint64_t>(hedges_won));
    tracer->Annotate(stage_span, "bytes", stage_scanned);
  }
  if (shuffle_node != nullptr && params.profile != nullptr) {
    OperatorProfile* node = params.profile->AddNode(
        "CfStage[" + stage_name + "]", shuffle_node, /*measures_io=*/true);
    node->bytes_scanned = stage_scanned;
    node->rows_out = 0;
    node->batches_out = 0;
  }
  return Status::OK();
}

}  // namespace

Result<ShuffleExecution> ExecuteShuffleDag(const StageGraph& graph,
                                           const ShuffleRunParams& params) {
  if (!graph.viable) {
    return Status::FailedPrecondition("stage graph is not viable: " +
                                      graph.reason);
  }
  if (params.catalog == nullptr || params.store == nullptr) {
    return Status::InvalidArgument("shuffle needs a catalog and a store");
  }
  if (params.shuffle.object_prefix.empty()) {
    return Status::InvalidArgument("shuffle needs an object prefix");
  }
  const int P = params.shuffle.partitions > 0 ? params.shuffle.partitions
                                              : std::max(params.num_workers, 1);
  const int producers = params.shuffle.producer_tasks > 0
                            ? params.shuffle.producer_tasks
                            : std::max(params.num_workers, 1);

  Tracer* tracer =
      params.tracer != nullptr && params.tracer->enabled() ? params.tracer
                                                           : nullptr;
  uint64_t shuffle_span = 0;
  if (tracer != nullptr) {
    shuffle_span = tracer->StartSpan("cf-shuffle", params.trace_parent);
    tracer->Annotate(shuffle_span, "partitions", static_cast<uint64_t>(P));
    tracer->Annotate(shuffle_span, "producer_tasks",
                     static_cast<uint64_t>(producers));
  }
  ScopedSpan shuffle_scope(tracer, shuffle_span);
  OperatorProfile* shuffle_node =
      params.profile != nullptr ? params.profile->AddNode("CfShuffle", nullptr)
                                : nullptr;

  std::vector<const Expr*> left_keys, right_keys;
  for (const auto& k : graph.left_keys) left_keys.push_back(k.get());
  for (const auto& k : graph.right_keys) right_keys.push_back(k.get());

  PIXELS_ASSIGN_OR_RETURN(
      std::vector<PlanPtr> left_plans,
      PartitionSubplan(graph.left, producers, *params.catalog));
  PIXELS_ASSIGN_OR_RETURN(
      std::vector<PlanPtr> right_plans,
      PartitionSubplan(graph.right, producers, *params.catalog));

  ShuffleExecution exec;
  ExchangeCommitTable commit;

  // Producer runner: execute the subtree partition, hash-partition the
  // output by the stage's join keys, write one exchange object.
  auto make_producer = [&params, P](const std::vector<PlanPtr>* plans,
                                    std::vector<const Expr*> keys) {
    return [&params, P, plans, keys](
               size_t t, const std::string& path,
               uint64_t attempt_span) -> Result<AttemptOutcome> {
      ExecContext ctx;
      ctx.catalog = params.catalog;
      ctx.parallelism = std::max(params.worker_parallelism, 1);
      ctx.io = params.io;
      ctx.tracer = params.tracer;
      ctx.trace_parent = attempt_span;
      ApplyKnobs(&ctx, params);
      PIXELS_ASSIGN_OR_RETURN(TablePtr table, ExecutePlan((*plans)[t], &ctx));
      PIXELS_ASSIGN_OR_RETURN(std::vector<TablePtr> parts,
                              HashPartitionTable(*table, keys, P));
      PIXELS_ASSIGN_OR_RETURN(
          ExchangeWriteInfo info,
          WriteExchangeObject(params.store, path, parts,
                              params.shuffle.forced_encoding));
      AttemptOutcome o;
      o.bytes_scanned = ctx.bytes_scanned;
      o.exchange_bytes_written = info.bytes_written;
      TakeRf(&o, ctx);
      o.sim_ms = ComputeMs(params, o.bytes_scanned) +
                 EstimateIoMs(params.store, info.bytes_written) +
                 SlowMs(params, path);
      return o;
    };
  };

  StageOutcome left_stage, right_stage;
  PIXELS_RETURN_NOT_OK(RunStage(
      params, /*stage_id=*/0, "produce-left", left_plans.size(),
      make_producer(&left_plans, left_keys), /*writes_objects=*/true, &commit,
      tracer, shuffle_span, shuffle_node, &exec, &left_stage));
  PIXELS_RETURN_NOT_OK(RunStage(
      params, /*stage_id=*/1, "produce-right", right_plans.size(),
      make_producer(&right_plans, right_keys), /*writes_objects=*/true,
      &commit, tracer, shuffle_span, shuffle_node, &exec, &right_stage));

  // Read every winner object's footer once; consumer tasks share them.
  // Footer GETs are control-plane reads — their request accounting flows
  // through the storage stats as usual, but they sit outside the per-task
  // simulated durations (the scheduler reads them before stage J starts).
  struct ProducerObject {
    std::string path;
    ExchangeFooter footer;
  };
  auto collect = [&](int stage_id, size_t n,
                     std::vector<ProducerObject>* objs) -> Status {
    for (size_t t = 0; t < n; ++t) {
      ProducerObject po;
      po.path = commit.Get(stage_id, static_cast<int>(t)).path;
      PIXELS_ASSIGN_OR_RETURN(po.footer,
                              ReadExchangeFooter(params.store, po.path));
      objs->push_back(std::move(po));
    }
    return Status::OK();
  };
  std::vector<ProducerObject> left_objs, right_objs;
  PIXELS_RETURN_NOT_OK(collect(0, left_plans.size(), &left_objs));
  PIXELS_RETURN_NOT_OK(collect(1, right_plans.size(), &right_objs));

  // Consumer runner: assemble this partition from every producer object
  // (one combined ranged GET each), then run the join + the unary chain
  // above it over the two assembled sides.
  auto consumer = [&](size_t p, const std::string& path,
                      uint64_t attempt_span) -> Result<AttemptOutcome> {
    AttemptOutcome o;
    double io_ms = 0;
    auto assemble = [&](const std::vector<ProducerObject>& objs)
        -> Result<TablePtr> {
      auto side = std::make_shared<Table>();
      for (const auto& obj : objs) {
        if (obj.footer.schema.empty()) continue;  // empty producer output
        uint64_t got = 0;
        PIXELS_ASSIGN_OR_RETURN(
            RowBatchPtr batch,
            ReadExchangePartition(params.store, obj.path, obj.footer, p, &got));
        o.exchange_bytes_read += got;
        io_ms += EstimateIoMs(params.store, got);
        side->AddBatch(std::move(batch));
      }
      return side;
    };
    PIXELS_ASSIGN_OR_RETURN(TablePtr left_side, assemble(left_objs));
    PIXELS_ASSIGN_OR_RETURN(TablePtr right_side, assemble(right_objs));
    PIXELS_ASSIGN_OR_RETURN(
        PlanPtr plan,
        InstantiateConsumer(graph, std::move(left_side),
                            std::move(right_side)));
    ExecContext ctx;
    ctx.catalog = params.catalog;
    ctx.parallelism = std::max(params.worker_parallelism, 1);
    ctx.io = params.io;
    ctx.tracer = params.tracer;
    ctx.trace_parent = attempt_span;
    ApplyKnobs(&ctx, params);
    PIXELS_ASSIGN_OR_RETURN(o.table, ExecutePlan(plan, &ctx));
    o.bytes_scanned = ctx.bytes_scanned;  // 0: consumers scan no base table
    TakeRf(&o, ctx);
    // Compute proxy: consumers do join/agg work proportional to the
    // exchange bytes they ingest, priced at the same vCPU throughput.
    o.sim_ms = ComputeMs(params, o.exchange_bytes_read) + io_ms +
               SlowMs(params, path);
    return o;
  };
  StageOutcome join_stage;
  PIXELS_RETURN_NOT_OK(RunStage(params, /*stage_id=*/2, "join",
                                static_cast<size_t>(P), consumer,
                                /*writes_objects=*/false, &commit, tracer,
                                shuffle_span, shuffle_node, &exec,
                                &join_stage));

  // The view is the stage-J outputs concatenated in partition order —
  // deterministic regardless of fleet interleaving or hedge outcomes.
  auto view = std::make_shared<Table>();
  for (const AttemptOutcome& w : join_stage.winners) {
    if (w.table == nullptr) continue;
    for (const auto& batch : w.table->batches()) view->AddBatch(batch);
  }
  exec.view = std::move(view);

  // DAG timing: both producer stages start at 0; stage J starts when the
  // slower one drains.
  const double produce_ms = std::max(left_stage.wall_ms, right_stage.wall_ms);
  exec.critical_path_ms = produce_ms + join_stage.wall_ms;
  exec.final_stage_task_ms = join_stage.completion_ms;

  // GC: the intermediates served their purpose; sweep the whole prefix
  // (winner and any leaked loser objects alike).
  exec.objects_swept =
      SweepExchangePrefix(params.store, params.shuffle.object_prefix);
  if (tracer != nullptr) {
    tracer->Annotate(shuffle_span, "critical_path_ms",
                     static_cast<uint64_t>(std::llround(exec.critical_path_ms)));
    tracer->Annotate(shuffle_span, "hedges_fired",
                     static_cast<uint64_t>(exec.hedges_fired));
    tracer->Annotate(shuffle_span, "hedges_won",
                     static_cast<uint64_t>(exec.hedges_won));
    tracer->Annotate(shuffle_span, "swept",
                     static_cast<uint64_t>(exec.objects_swept));
  }
  return exec;
}

}  // namespace pixels
