// The Coordinator (paper §2): the only long-running component of
// Pixels-Turbo. It manages metadata, admits queries into the VM cluster,
// invokes CF workers to absorb load the cluster cannot serve in time, and
// collects results and statistics.
//
// This paper's modification (§3.1): an API for the query server to check
// the system's load status (query concurrency) and to specify per query
// whether CF acceleration is enabled.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "catalog/catalog.h"
#include "cloud/cf_service.h"
#include "common/event_log.h"
#include "cloud/vm_cluster.h"
#include "mv/mv_store.h"
#include "storage/buffer_cache.h"
#include "storage/object_store.h"
#include "turbo/cf_worker.h"
#include "turbo/query_task.h"

namespace pixels {

/// Coordinator configuration.
struct CoordinatorParams {
  VmClusterParams vm;
  CfServiceParams cf;
  PricingModel pricing;
  /// Default CF fleet size per accelerated query.
  int default_cf_workers = 8;
  /// Scan throughput per vCPU (bytes/s), used to estimate query work from
  /// bytes and to derive execution durations.
  double bytes_per_vcpu_second = 100e6;
  /// Fixed per-query overhead (planning, result collection).
  SimTime query_overhead = 200 * kMillis;
  /// Byte capacity of the coordinator-owned chunk cache shared by the
  /// top-level plan and the CF worker fleet (0 disables caching). The
  /// cache cuts GETs only; `bytes_scanned` billing is cache-oblivious.
  uint64_t chunk_cache_bytes = 128ULL << 20;
  /// Gap tolerance for coalescing adjacent chunk GETs.
  uint64_t coalesce_gap_bytes = kDefaultCoalesceGapBytes;
  /// Byte capacity of the materialized-view store shared across the
  /// top-level plan, the CF fleet, and concurrent queries. 0 disables MV
  /// reuse (the default: unlike the chunk cache, reuse changes what the
  /// query server bills, so the operator opts in explicitly).
  uint64_t mv_store_bytes = 0;
  /// Path prefix for MV entries spilled as Pixels objects through the
  /// catalog's storage. Empty disables the spill tier.
  std::string mv_spill_prefix;
  /// CF-fleet robustness knobs, threaded into CfWorkerOptions: attempt
  /// budget per worker partition (incl. the first invocation), base
  /// backoff between re-invocations (doubled per attempt, simulated
  /// time), and whether an exhausted partition degrades to the VM path
  /// instead of failing the query.
  int cf_max_worker_attempts = 3;
  double cf_worker_retry_backoff_ms = 200.0;
  bool cf_vm_fallback = true;
  /// Multi-stage CF shuffle (DESIGN.md "Multi-stage CF shuffle"). Off —
  /// the default — preserves the single-stage fleet exactly. On, a
  /// pushed-down sub-plan whose core is one equi-join runs as a
  /// scan→shuffle→join DAG of CF stages exchanging hash-partitioned
  /// intermediates through the object store; ineligible shapes silently
  /// keep the single-stage path. Results, bytes_scanned, and bills are
  /// byte-identical either way.
  bool cf_shuffle = false;
  /// Stage fan-out knobs: hash partitions (= join-stage tasks) and
  /// producer tasks per scan stage. 0 = the query's CF fleet size.
  int cf_shuffle_partitions = 0;
  int cf_shuffle_producer_tasks = 0;
  /// Hedged duplicate invocation of straggler tasks: a task whose
  /// simulated duration exceeds Percentile(stage durations,
  /// cf_hedge_quantile) * cf_hedge_delay_factor gets one duplicate; the
  /// first finisher (simulated time) wins the commit, the loser's write
  /// is discarded and un-billed.
  bool cf_shuffle_hedging = true;
  double cf_hedge_quantile = 75.0;
  double cf_hedge_delay_factor = 1.5;
  /// Vectorized-execution knobs applied to every real execution (VM path
  /// and CF workers alike). `runtime_filters` publishes bloom + min/max
  /// filters from hash-join builds into probe-side scans (pruned row
  /// groups shrink the bill); `fused_decode` evaluates pushed predicates
  /// on encoded chunks. Both are superset-safe: results are identical
  /// with either off.
  bool runtime_filters = true;
  bool fused_decode = true;
  /// Bloom sizing for published runtime filters (bits per build key).
  int rf_bloom_bits_per_key = 8;
  /// Typed open-addressing hash tables + selection-vector pipeline for
  /// joins and aggregation (see DESIGN.md "Vectorized hash tables").
  /// Superset-safe: identical results, bills, and bytes_scanned with it
  /// off — it only changes how fast groups and matches are found.
  bool vectorized_hash = true;
  /// Target occupancy of the typed tables before they grow (clamped to
  /// [0.1, 0.95]). Lower = fewer probe collisions, more memory.
  double hash_table_load_factor = 0.7;
  /// Observability level. kOff (the default) is the zero-overhead path:
  /// no spans are allocated, no profile nodes are created, and every
  /// query executes byte-identically to a build without tracing. kSpans
  /// records the query's span tree (coordinator → queue → plan/MV-lookup
  /// → CF fleet/worker/attempt → storage ops). kFull additionally wraps
  /// every operator with a profiling shim and attaches the EXPLAIN
  /// ANALYZE text report to the QueryRecord.
  TraceLevel trace_level = TraceLevel::kOff;
  /// Use this tracer instead of an owned one (lets the query server share
  /// one trace across both layers). Null + trace_level != kOff = the
  /// coordinator owns its tracer.
  Tracer* tracer = nullptr;
  /// Structured audit event log (common/event_log.h). 0 = disabled (the
  /// zero-overhead default). > 0 = the coordinator owns a bounded log of
  /// that capacity; admission/shuffle decisions append typed JSON events.
  size_t event_log_capacity = 0;
  /// Use this log instead of an owned one (lets the query server share one
  /// audit stream across both layers), same pattern as `tracer`.
  EventLog* event_log = nullptr;
};

/// Coordinator of the hybrid serverless query engine.
class Coordinator {
 public:
  using QueryCallback = std::function<void(const QueryRecord&)>;

  Coordinator(SimClock* clock, Random* rng, CoordinatorParams params,
              std::shared_ptr<Catalog> catalog = nullptr);
  ~Coordinator();

  /// Starts the VM cluster autoscaler.
  void Start();
  /// Stops periodic events so SimClock::RunAll can terminate.
  void Stop();

  /// Submits a query. Dispatch policy (paper §3.1):
  ///  - free VM slot → run in the VM cluster;
  ///  - cluster saturated and spec.cf_enabled → run in CF workers now;
  ///  - otherwise → wait in the coordinator queue for VM capacity.
  /// `on_finish` fires when the query finishes or fails.
  int64_t Submit(QuerySpec spec, QueryCallback on_finish = nullptr);

  const QueryRecord* GetQuery(int64_t id) const;

  /// Reports demand the coordinator cannot see: queries held in the
  /// query server. `relaxed_held` (the relaxed hold queue) counts into
  /// the autoscaling signal so the grace period actually "gives time for
  /// the VM cluster to scale out" (paper §3.2(2)). `deferred_held`
  /// (best-effort holds) is deliberately a SEPARATE signal: it must not
  /// raise Concurrency() — best-effort work gates itself on the low
  /// watermark, so counting its own holds would keep its gate closed
  /// forever — but it blocks scale-in, since an idle-looking cluster
  /// with deferred work pending is about to be used.
  void SetExternalPending(int relaxed_held, int deferred_held = 0);

  /// Recalls a query that is still waiting in the coordinator's VM queue
  /// (admission preemption of best-effort work during Immediate bursts).
  /// On success the query's spec is moved into `spec_out`, its record and
  /// callback are erased as if never submitted, and true is returned.
  /// Running/finished queries and CF-dispatched queries return false.
  bool TryRecall(int64_t id, QuerySpec* spec_out);

  /// Load-status API used by the query server (paper §2). Total demand:
  /// running queries plus every queued/held one (the autoscaling signal).
  double Concurrency() const { return vm_.Concurrency(); }
  bool AboveHighWatermark() const { return vm_.AboveHighWatermark(); }
  bool BelowLowWatermark() const { return vm_.BelowLowWatermark(); }

  /// Concurrency as seen inside the engine (running + coordinator queue),
  /// excluding demand still held in the query server. The server's
  /// relaxed gate compares THIS against the high watermark — gating on
  /// total demand would let the held queries keep their own gate closed.
  double EngineConcurrency() const {
    return static_cast<double>(vm_.running_queries()) +
           static_cast<double>(vm_queue_.size());
  }
  bool EngineAboveHighWatermark() const {
    return EngineConcurrency() >= params_.vm.high_watermark;
  }
  size_t QueueDepth() const { return vm_queue_.size(); }

  VmCluster& vm_cluster() { return vm_; }
  CfService& cf_service() { return cf_; }
  Catalog* catalog() { return catalog_.get(); }
  /// The coordinator-owned materialized-view store (null when disabled).
  MvStore* mv_store() { return mv_store_.get(); }
  const CoordinatorParams& params() const { return params_; }

  /// Cluster-level accrued costs.
  double TotalVmCostUsd() { return vm_.AccruedCostUsd(); }
  double TotalCfCostUsd() const { return cf_.AccruedCostUsd(); }

  /// All records (submission order).
  std::vector<const QueryRecord*> AllQueries() const;

  MetricsRegistry& metrics() { return metrics_; }

  /// The active tracer (owned or external); null when trace_level=off
  /// and no external tracer was supplied.
  Tracer* tracer() { return tracer_; }

  /// The active audit event log (owned or external); null when disabled.
  EventLog* event_log() { return event_log_; }

  /// One merged registry: the coordinator's own counters/series plus the
  /// VM cluster's, the CF service's, and point-in-time gauges for the
  /// chunk cache, the shared footer cache, and the MV store. Feed the
  /// result to ToPrometheusText() for a scrape-shaped export.
  MetricsRegistry MetricsSnapshot();

 private:
  /// Estimated work for a spec (vCPU-seconds).
  double EstimateWork(const QuerySpec& spec) const;

  void DispatchFromQueue();
  void UpdateBacklog();
  void StartInVm(QueryRecord* rec);
  void StartInCf(QueryRecord* rec);
  /// Runs the SQL through the real engine if requested; updates record.
  void MaybeExecuteReal(QueryRecord* rec, bool via_cf);
  void Finish(QueryRecord* rec);
  /// Folds the catalog storage's retry/backoff counters (when it is an
  /// ObjectStore, possibly under a TracingStorage decorator) into this
  /// registry as deltas since the last publish.
  void PublishStorageMetrics();
  /// Forwards the clock to the tracer's and the logger's atomic mirrors.
  /// Called at every event boundary on the simulation thread — the only
  /// thread that may touch the SimClock — so pool threads read a stamped
  /// copy instead of racing the clock.
  void SyncObservability();

  /// The query-server-wide I/O policy handed to every real execution.
  IoOptions QueryIo() const;

  SimClock* clock_;
  Random* rng_;
  CoordinatorParams params_;
  std::shared_ptr<Catalog> catalog_;
  /// Chunk LRU shared across queries, the top-level plan, and CF workers.
  std::unique_ptr<BufferCache> chunk_cache_;
  /// Materialized-view store shared the same way (null when disabled).
  std::unique_ptr<MvStore> mv_store_;
  VmCluster vm_;
  CfService cf_;

  int64_t next_id_ = 1;
  std::map<int64_t, QueryRecord> queries_;
  std::map<int64_t, QueryCallback> callbacks_;
  std::deque<int64_t> vm_queue_;
  int external_pending_ = 0;
  int external_deferred_ = 0;
  /// Last storage-stats snapshot published into `metrics_` (delta base).
  ObjectStoreStats published_storage_;
  MetricsRegistry metrics_;
  /// Tracer owned when params request tracing without supplying one.
  std::unique_ptr<Tracer> owned_tracer_;
  Tracer* tracer_ = nullptr;
  /// Event log owned when params request one without supplying it.
  std::unique_ptr<EventLog> owned_event_log_;
  EventLog* event_log_ = nullptr;
};

}  // namespace pixels
