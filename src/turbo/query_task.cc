#include "turbo/query_task.h"

namespace pixels {

const char* QueryStateName(QueryState s) {
  switch (s) {
    case QueryState::kPending:
      return "pending";
    case QueryState::kRunning:
      return "running";
    case QueryState::kFinished:
      return "finished";
    case QueryState::kFailed:
      return "failed";
  }
  return "?";
}

}  // namespace pixels
