#include "turbo/coordinator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "exec/executor.h"
#include "exec/profile.h"
#include "format/footer_cache.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "storage/fault_injection.h"
#include "storage/object_store.h"
#include "storage/retrying_storage.h"
#include "storage/tracing_storage.h"

namespace pixels {

Coordinator::Coordinator(SimClock* clock, Random* rng,
                         CoordinatorParams params,
                         std::shared_ptr<Catalog> catalog)
    : clock_(clock),
      rng_(rng),
      params_(params),
      catalog_(std::move(catalog)),
      vm_(clock, rng, params.vm, params.pricing),
      cf_(clock, rng, params.cf, params.pricing) {
  if (params_.chunk_cache_bytes > 0) {
    chunk_cache_ = std::make_unique<BufferCache>(params_.chunk_cache_bytes);
  }
  if (params_.mv_store_bytes > 0) {
    MvStoreOptions mv;
    mv.capacity_bytes = params_.mv_store_bytes;
    if (!params_.mv_spill_prefix.empty() && catalog_ != nullptr) {
      mv.spill_storage = catalog_->storage();
      mv.spill_prefix = params_.mv_spill_prefix;
    }
    mv_store_ = std::make_unique<MvStore>(std::move(mv));
  }
  vm_.SetCapacityAvailableCallback([this] { DispatchFromQueue(); });
  if (params_.tracer != nullptr) {
    tracer_ = params_.tracer;
    if (params_.trace_level != TraceLevel::kOff) {
      tracer_->set_level(params_.trace_level);
    }
  } else if (params_.trace_level != TraceLevel::kOff) {
    owned_tracer_ = std::make_unique<Tracer>(params_.trace_level);
    tracer_ = owned_tracer_.get();
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    // While tracing, log lines carry virtual time so they correlate with
    // span timestamps.
    RegisterLogClock(clock_);
  }
  if (params_.event_log != nullptr) {
    event_log_ = params_.event_log;
  } else if (params_.event_log_capacity > 0) {
    owned_event_log_ = std::make_unique<EventLog>(params_.event_log_capacity);
    event_log_ = owned_event_log_.get();
  }
  SyncObservability();
}

Coordinator::~Coordinator() { UnregisterLogClock(clock_); }

void Coordinator::SyncObservability() {
  const SimTime now = clock_->Now();
  if (event_log_ != nullptr) event_log_->SyncTime(now);
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  tracer_->SyncTime(now);
  SyncLogTime(now);
}

IoOptions Coordinator::QueryIo() const {
  IoOptions io;
  io.coalesce_gap_bytes = params_.coalesce_gap_bytes;
  io.chunk_cache = chunk_cache_.get();
  return io;
}

void Coordinator::Start() { vm_.Start(); }

void Coordinator::Stop() { vm_.Stop(); }

double Coordinator::EstimateWork(const QuerySpec& spec) const {
  if (spec.work_vcpu_seconds > 0) return spec.work_vcpu_seconds;
  if (spec.bytes_to_scan > 0) {
    return static_cast<double>(spec.bytes_to_scan) /
           params_.bytes_per_vcpu_second;
  }
  return 1.0;  // a nominal small query
}

int64_t Coordinator::Submit(QuerySpec spec, QueryCallback on_finish) {
  SyncObservability();
  const int64_t id = next_id_++;
  QueryRecord rec;
  rec.id = id;
  rec.spec = std::move(spec);
  rec.state = QueryState::kPending;
  rec.submit_time = clock_->Now();
  rec.bytes_scanned = rec.spec.bytes_to_scan;
  queries_[id] = std::move(rec);
  if (on_finish) callbacks_[id] = std::move(on_finish);

  QueryRecord* r = &queries_[id];
  metrics_.Add("queries_submitted", 1);
  if (tracer_ != nullptr && tracer_->enabled()) {
    r->span_id = tracer_->StartSpan("coordinator", r->spec.trace_parent);
    tracer_->Annotate(r->span_id, "query_id", static_cast<uint64_t>(id));
    tracer_->Annotate(r->span_id, "cf_enabled",
                      r->spec.cf_enabled ? "true" : "false");
  }

  if (vm_.TryStartQuery()) {
    StartInVm(r);
  } else if (r->spec.cf_enabled &&
             cf_.CanInvoke(std::max(r->spec.cf_workers,
                                    params_.default_cf_workers))) {
    StartInCf(r);
  } else {
    if (r->span_id != 0) {
      r->queue_span_id = tracer_->StartSpan("vm-queue", r->span_id);
    }
    vm_queue_.push_back(id);
    UpdateBacklog();
    metrics_.Record("vm_queue_depth", clock_->Now(),
                    static_cast<double>(vm_queue_.size()));
  }
  return id;
}

void Coordinator::SetExternalPending(int relaxed_held, int deferred_held) {
  external_pending_ = relaxed_held < 0 ? 0 : relaxed_held;
  external_deferred_ = deferred_held < 0 ? 0 : deferred_held;
  UpdateBacklog();
}

void Coordinator::UpdateBacklog() {
  vm_.SetBacklog(static_cast<int>(vm_queue_.size()) + external_pending_);
  vm_.SetDeferredBacklog(external_deferred_);
}

bool Coordinator::TryRecall(int64_t id, QuerySpec* spec_out) {
  auto it = queries_.find(id);
  if (it == queries_.end()) return false;
  QueryRecord& rec = it->second;
  if (rec.state != QueryState::kPending) return false;
  auto pos = std::find(vm_queue_.begin(), vm_queue_.end(), id);
  if (pos == vm_queue_.end()) return false;  // CF-dispatched or racing
  vm_queue_.erase(pos);
  SyncObservability();
  if (rec.queue_span_id != 0) {
    tracer_->Annotate(rec.queue_span_id, "released_by", "recalled");
    tracer_->EndSpan(rec.queue_span_id);
    rec.queue_span_id = 0;
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    // Instant span marking the recall decision, nested under the server's
    // query span when the server shares its tracer (else under ours).
    const uint64_t parent =
        rec.spec.trace_parent != 0 ? rec.spec.trace_parent : rec.span_id;
    const uint64_t recall_span = tracer_->StartSpan("admission.recall", parent);
    tracer_->Annotate(recall_span, "reason", "immediate-burst");
    tracer_->Annotate(recall_span, "query_id", static_cast<uint64_t>(id));
    tracer_->EndSpan(recall_span);
  }
  if (rec.span_id != 0) {
    tracer_->Annotate(rec.span_id, "state", "recalled");
    tracer_->EndSpan(rec.span_id);
  }
  if (event_log_ != nullptr) {
    Json f = Json::Object();
    f.Set("query_id", Json(id));
    f.Set("reason", Json("immediate-burst"));
    f.Set("queue_depth", Json(static_cast<int64_t>(vm_queue_.size())));
    event_log_->Emit("admission.recall", std::move(f));
  }
  if (spec_out != nullptr) *spec_out = std::move(rec.spec);
  callbacks_.erase(id);
  queries_.erase(it);
  metrics_.Add("queries_recalled", 1);
  UpdateBacklog();
  metrics_.Record("vm_queue_depth", clock_->Now(),
                  static_cast<double>(vm_queue_.size()));
  return true;
}

void Coordinator::DispatchFromQueue() {
  SyncObservability();
  while (!vm_queue_.empty()) {
    if (!vm_.TryStartQuery()) break;
    int64_t id = vm_queue_.front();
    vm_queue_.pop_front();
    StartInVm(&queries_[id]);
  }
  UpdateBacklog();
  metrics_.Record("vm_queue_depth", clock_->Now(),
                  static_cast<double>(vm_queue_.size()));
}

void Coordinator::MaybeExecuteReal(QueryRecord* rec, bool via_cf) {
  if (!rec->spec.execute_real || catalog_ == nullptr || rec->spec.sql.empty()) {
    return;
  }
  Tracer* tracer =
      tracer_ != nullptr && tracer_->enabled() ? tracer_ : nullptr;
  const bool profiling = tracer != nullptr && tracer_->profiling();
  QueryProfile profile;
  uint64_t exec_span = 0;
  uint64_t prior_parent = 0;
  if (tracer != nullptr) {
    exec_span = tracer->StartSpan(via_cf ? "execute-cf" : "execute-vm",
                                  rec->span_id);
    prior_parent = tracer->ActiveParent();
    tracer->SetActiveParent(exec_span);
  }
  // Everything below reports through these on every exit path.
  auto finish_trace = [&] {
    if (tracer == nullptr) return;
    if (!rec->error.empty()) {
      tracer->Annotate(exec_span, "error", rec->error);
    }
    tracer->Annotate(exec_span, "bytes_scanned", rec->bytes_scanned);
    tracer->EndSpan(exec_span);
    tracer->SetActiveParent(prior_parent);
    if (profiling && rec->error.empty()) rec->profile = profile.ToText();
  };
  if (via_cf) {
    uint64_t plan_span = 0;
    if (tracer != nullptr) plan_span = tracer->StartSpan("plan", exec_span);
    auto plan = PlanQuery(rec->spec.sql, *catalog_, rec->spec.db);
    Result<PlanPtr> optimized =
        plan.ok() ? Optimize(std::move(plan).ValueOrDie(), *catalog_)
                  : std::move(plan);
    if (tracer != nullptr) {
      if (!optimized.ok()) {
        tracer->Annotate(plan_span, "error", optimized.status().ToString());
      }
      tracer->EndSpan(plan_span);
    }
    if (!optimized.ok()) {
      rec->error = optimized.status().ToString();
      finish_trace();
      return;
    }
    CfWorkerOptions options;
    options.num_workers = std::max(rec->spec.cf_workers,
                                   params_.default_cf_workers);
    options.intermediate_store = catalog_->storage();
    options.view_prefix = "intermediate/q" + std::to_string(rec->id);
    options.io = QueryIo();
    options.mv_store = mv_store_.get();
    options.max_worker_attempts = params_.cf_max_worker_attempts;
    options.worker_retry_backoff_ms = params_.cf_worker_retry_backoff_ms;
    options.vm_fallback = params_.cf_vm_fallback;
    options.runtime_filters = params_.runtime_filters;
    options.fused_decode = params_.fused_decode;
    options.rf_bloom_bits_per_key = params_.rf_bloom_bits_per_key;
    options.vectorized_hash = params_.vectorized_hash;
    options.hash_table_load_factor = params_.hash_table_load_factor;
    options.tracer = tracer_;
    options.trace_parent = exec_span;
    options.profile = profiling ? &profile : nullptr;
    options.event_log = event_log_;
    options.shuffle.enabled = params_.cf_shuffle;
    options.shuffle.partitions = params_.cf_shuffle_partitions;
    options.shuffle.producer_tasks = params_.cf_shuffle_producer_tasks;
    options.shuffle.hedging = params_.cf_shuffle_hedging;
    options.shuffle.hedge_quantile = params_.cf_hedge_quantile;
    options.shuffle.hedge_delay_factor = params_.cf_hedge_delay_factor;
    options.shuffle.object_prefix = options.view_prefix + ".shuffle";
    if (params_.cf_shuffle) {
      // Deterministic straggler model: slow rules on the fault-injecting
      // decorator (anywhere in the storage stack) stretch whole task
      // attempts by path, feeding the hedging cutoff.
      Storage* s = catalog_->storage();
      while (s != nullptr) {
        if (auto* fault = dynamic_cast<FaultInjectingStorage*>(s)) {
          options.shuffle.path_slow_ms = [fault](const std::string& path) {
            return fault->PathSlowMs(path);
          };
          break;
        }
        if (auto* t = dynamic_cast<TracingStorage*>(s)) {
          s = t->inner();
        } else if (auto* o = dynamic_cast<ObjectStore*>(s)) {
          s = o->inner();
        } else if (auto* r = dynamic_cast<RetryingStorage*>(s)) {
          s = r->inner();
        } else {
          break;
        }
      }
    }
    auto exec = ExecuteWithCfPushdown(std::move(optimized).ValueOrDie(),
                                      catalog_.get(), options);
    if (!exec.ok()) {
      rec->error = exec.status().ToString();
      finish_trace();
      return;
    }
    rec->result = exec->result;
    rec->bytes_scanned = exec->bytes_scanned;
    rec->cf_workers_used = exec->workers_used;
    rec->cf_worker_retries = exec->worker_retries;
    rec->cf_fallback_workers = exec->workers_fallback;
    rec->cf_fallback_bytes = exec->fallback_bytes_scanned;
    rec->used_shuffle = exec->shuffle_used;
    rec->shuffle_stages = exec->shuffle_stages;
    rec->cf_hedges_fired = exec->hedges_fired;
    rec->cf_hedges_won = exec->hedges_won;
    rec->shuffle_bytes_written = exec->shuffle_bytes_written;
    rec->shuffle_bytes_read = exec->shuffle_bytes_read;
    if (exec->shuffle_used) {
      metrics_.Add("cf_shuffle_queries", 1);
      metrics_.Add("cf_hedge_fired_total", exec->hedges_fired);
      metrics_.Add("cf_hedge_won_total", exec->hedges_won);
      metrics_.Add("cf_shuffle_bytes_written",
                   static_cast<double>(exec->shuffle_bytes_written));
      metrics_.Add("cf_shuffle_bytes_read",
                   static_cast<double>(exec->shuffle_bytes_read));
      for (const double wall : exec->shuffle_stage_wall_ms) {
        metrics_.Observe("cf_stage_wall_ms", wall);
      }
    }
    rec->rf_probe_rows = exec->rf_probe_rows;
    rec->rf_pruned_rows = exec->rf_pruned_rows;
    rec->rf_pruned_row_groups = exec->rf_pruned_row_groups;
    rec->rf_skipped_bytes = exec->rf_skipped_bytes;
    rec->mv_hit = exec->mv_full_hit;
    rec->mv_saved_bytes = exec->mv_saved_bytes;
    if (exec->mv_full_hit || exec->mv_subplan_hit) {
      metrics_.Add("mv_hits", 1);
      metrics_.Add("mv_saved_bytes",
                   static_cast<double>(exec->mv_saved_bytes));
    }
    finish_trace();
    return;
  }
  ExecContext ctx;
  ctx.catalog = catalog_.get();
  ctx.io = QueryIo();
  ctx.mv_store = mv_store_.get();
  ctx.tracer = tracer_;
  ctx.trace_parent = exec_span;
  ctx.profile = profiling ? &profile : nullptr;
  ctx.runtime_filters = params_.runtime_filters;
  ctx.fused_decode = params_.fused_decode;
  ctx.rf_bloom_bits_per_key = params_.rf_bloom_bits_per_key;
  ctx.vectorized_hash = params_.vectorized_hash;
  ctx.hash_table_load_factor = params_.hash_table_load_factor;
  auto result = ExecuteQuery(rec->spec.sql, rec->spec.db, &ctx);
  if (!result.ok()) {
    rec->error = result.status().ToString();
    finish_trace();
    return;
  }
  rec->result = std::move(result).ValueOrDie();
  rec->bytes_scanned = ctx.bytes_scanned;
  rec->rf_probe_rows = ctx.rf_probe_rows.load();
  rec->rf_pruned_rows = ctx.rf_pruned_rows.load();
  rec->rf_pruned_row_groups = ctx.rf_pruned_row_groups.load();
  rec->rf_skipped_bytes = ctx.rf_skipped_bytes.load();
  rec->mv_hit = ctx.mv_hits.load() > 0;
  rec->mv_saved_bytes = ctx.mv_saved_bytes.load();
  if (rec->mv_hit) {
    metrics_.Add("mv_hits", 1);
    metrics_.Add("mv_saved_bytes", static_cast<double>(rec->mv_saved_bytes));
  }
  finish_trace();
}

void Coordinator::StartInVm(QueryRecord* rec) {
  rec->state = QueryState::kRunning;
  rec->start_time = clock_->Now();
  metrics_.Observe("vm_queue_wait_ms",
                   static_cast<double>(rec->start_time - rec->submit_time));
  if (rec->queue_span_id != 0) {
    tracer_->Annotate(rec->queue_span_id, "wait_ms",
                      static_cast<uint64_t>(rec->start_time -
                                            rec->submit_time));
    tracer_->EndSpan(rec->queue_span_id);
    rec->queue_span_id = 0;
  }
  MaybeExecuteReal(rec, /*via_cf=*/false);

  if (!rec->error.empty()) {
    // Fail fast: a failed execution holds its slot only for the fixed
    // overhead, accrues no compute cost, and is never billed.
    rec->compute_cost_usd = 0;
    clock_->Schedule(params_.query_overhead, [this, id = rec->id] {
      vm_.FinishQuery();
      Finish(&queries_[id]);
    });
    return;
  }

  const double work = rec->spec.execute_real && rec->bytes_scanned > 0
                          ? static_cast<double>(rec->bytes_scanned) /
                                params_.bytes_per_vcpu_second
                          : EstimateWork(rec->spec);
  const double query_vcpus =
      static_cast<double>(params_.vm.vcpus_per_vm) /
      std::max(params_.vm.slots_per_vm, 1);
  const SimTime duration =
      params_.query_overhead +
      static_cast<SimTime>(std::ceil(work / query_vcpus * 1000.0));
  rec->compute_cost_usd =
      params_.pricing.VmComputeCost(work);

  clock_->Schedule(duration, [this, id = rec->id] {
    QueryRecord* r = &queries_[id];
    vm_.FinishQuery();
    Finish(r);
  });
}

void Coordinator::StartInCf(QueryRecord* rec) {
  rec->state = QueryState::kRunning;
  rec->start_time = clock_->Now();
  if (rec->queue_span_id != 0) {
    tracer_->Annotate(rec->queue_span_id, "wait_ms",
                      static_cast<uint64_t>(rec->start_time -
                                            rec->submit_time));
    tracer_->EndSpan(rec->queue_span_id);
    rec->queue_span_id = 0;
  }
  MaybeExecuteReal(rec, /*via_cf=*/true);

  if (!rec->error.empty()) {
    // Fail fast: no fleet is hired for a failed execution, so a failed
    // query accrues neither CF cost nor a bill.
    rec->compute_cost_usd = 0;
    clock_->Schedule(params_.query_overhead,
                     [this, id = rec->id] { Finish(&queries_[id]); });
    return;
  }

  if (rec->mv_hit) {
    // A full MV hit answered the query before any worker could be hired:
    // no CF invocation, no compute cost, just the fixed query overhead.
    rec->cf_workers_used = 0;
    rec->compute_cost_usd = 0;
    clock_->Schedule(params_.query_overhead,
                     [this, id = rec->id] { Finish(&queries_[id]); });
    return;
  }

  if (rec->cf_worker_retries > 0) {
    metrics_.Add("cf_worker_retries", rec->cf_worker_retries);
  }
  if (rec->cf_fallback_workers > 0) {
    metrics_.Add("cf_fallback_workers", rec->cf_fallback_workers);
  }

  const double work = rec->spec.execute_real && rec->bytes_scanned > 0
                          ? static_cast<double>(rec->bytes_scanned) /
                                params_.bytes_per_vcpu_second
                          : EstimateWork(rec->spec);
  // Work done by VM-path fallback partitions is priced at the VM rate;
  // only the remainder is a CF invocation.
  const double fallback_work =
      rec->cf_fallback_bytes > 0
          ? static_cast<double>(rec->cf_fallback_bytes) /
                params_.bytes_per_vcpu_second
          : 0.0;
  const double cf_work = std::max(work - fallback_work, 0.0);

  if (rec->spec.execute_real && rec->cf_fallback_workers > 0 &&
      rec->cf_workers_used == 0) {
    // Every pushed partition exhausted CF retries: the query effectively
    // ran on the VM path. `used_cf` stays false and the compute cost is
    // VM-priced — the record reflects what actually happened.
    metrics_.Add("cf_fleet_degraded_queries", 1);
    rec->compute_cost_usd = params_.pricing.VmComputeCost(work);
    const double query_vcpus =
        static_cast<double>(params_.vm.vcpus_per_vm) /
        std::max(params_.vm.slots_per_vm, 1);
    const SimTime duration =
        params_.query_overhead +
        static_cast<SimTime>(std::ceil(work / query_vcpus * 1000.0));
    clock_->Schedule(duration, [this, id = rec->id] { Finish(&queries_[id]); });
    return;
  }

  rec->used_cf = true;
  metrics_.Add("queries_cf_accelerated", 1);
  const int workers = rec->cf_workers_used > 0
                          ? rec->cf_workers_used
                          : std::max(rec->spec.cf_workers,
                                     params_.default_cf_workers);
  CfInvocationResult inv =
      cf_.Invoke(workers, cf_work, [this, id = rec->id] {
        Finish(&queries_[id]);
      });
  rec->cf_workers_used = inv.workers;
  rec->compute_cost_usd =
      inv.cost_usd + params_.pricing.VmComputeCost(fallback_work);
}

void Coordinator::PublishStorageMetrics() {
  if (catalog_ == nullptr) return;
  Storage* raw = catalog_->storage();
  // A TracingStorage decorator may sit on top of the ObjectStore; stats
  // live on the store underneath it.
  if (auto* tracing = dynamic_cast<TracingStorage*>(raw)) {
    raw = tracing->inner();
  }
  auto* store = dynamic_cast<ObjectStore*>(raw);
  if (store == nullptr) return;
  const ObjectStoreStats s = store->stats();
  const uint64_t delta_gets = s.get_requests - published_storage_.get_requests;
  const double delta_read_ms =
      s.simulated_read_ms - published_storage_.simulated_read_ms;
  if (delta_gets > 0) {
    // Mean simulated GET latency over the window since the last publish —
    // one observation per window keeps the histogram bounded while the
    // distribution across windows still shows contention and coalescing.
    metrics_.Observe("storage_get_latency_ms",
                     delta_read_ms / static_cast<double>(delta_gets));
  }
  metrics_.Add("storage_retries",
               static_cast<double>(s.retry_attempts) -
                   static_cast<double>(published_storage_.retry_attempts));
  metrics_.Add("storage_retry_recovered",
               static_cast<double>(s.retry_recovered) -
                   static_cast<double>(published_storage_.retry_recovered));
  metrics_.Add("storage_retry_exhausted",
               static_cast<double>(s.retry_exhausted) -
                   static_cast<double>(published_storage_.retry_exhausted));
  metrics_.Add("storage_backoff_ms",
               s.retry_backoff_ms - published_storage_.retry_backoff_ms);
  published_storage_ = s;
}

void Coordinator::Finish(QueryRecord* rec) {
  SyncObservability();
  rec->finish_time = clock_->Now();
  rec->state = rec->error.empty() ? QueryState::kFinished : QueryState::kFailed;
  metrics_.Add(rec->error.empty() ? "queries_finished" : "queries_failed", 1);
  metrics_.Observe("query_execution_ms",
                   static_cast<double>(rec->ExecutionTime()));
  PublishStorageMetrics();
  if (rec->span_id != 0) {
    tracer_->Annotate(rec->span_id, "state", QueryStateName(rec->state));
    tracer_->Annotate(rec->span_id, "bytes_scanned", rec->bytes_scanned);
    if (rec->used_cf) {
      tracer_->Annotate(rec->span_id, "cf_workers",
                        static_cast<uint64_t>(rec->cf_workers_used));
    }
    tracer_->EndSpan(rec->span_id);
  }
  auto cb = callbacks_.find(rec->id);
  if (cb != callbacks_.end()) {
    QueryCallback fn = std::move(cb->second);
    callbacks_.erase(cb);
    fn(*rec);
  }
}

const QueryRecord* Coordinator::GetQuery(int64_t id) const {
  auto it = queries_.find(id);
  return it == queries_.end() ? nullptr : &it->second;
}

MetricsRegistry Coordinator::MetricsSnapshot() {
  PublishStorageMetrics();
  MetricsRegistry out = metrics_;
  out.MergeFrom(vm_.metrics());
  out.MergeFrom(cf_.metrics());
  if (chunk_cache_ != nullptr) {
    const BufferCacheStats c = chunk_cache_->stats();
    out.SetGauge("chunk_cache_hits", static_cast<double>(c.hits));
    out.SetGauge("chunk_cache_misses", static_cast<double>(c.misses));
    out.SetGauge("chunk_cache_evictions", static_cast<double>(c.evictions));
    out.SetGauge("chunk_cache_bytes", static_cast<double>(c.bytes_cached));
  }
  const FooterCacheStats f = FooterCache::Shared()->stats();
  out.SetGauge("footer_cache_hits", static_cast<double>(f.hits));
  out.SetGauge("footer_cache_misses", static_cast<double>(f.misses));
  if (mv_store_ != nullptr) {
    const MvStoreStats m = mv_store_->stats();
    out.SetGauge("mv_store_lookups", static_cast<double>(m.lookups));
    out.SetGauge("mv_store_hits", static_cast<double>(m.hits));
    out.SetGauge("mv_store_invalidations",
                 static_cast<double>(m.invalidations));
    out.SetGauge("mv_store_saved_scan_bytes",
                 static_cast<double>(m.saved_scan_bytes));
    out.SetGauge("mv_store_bytes", static_cast<double>(m.bytes_cached));
  }
  if (catalog_ != nullptr) {
    Storage* raw = catalog_->storage();
    if (auto* tracing = dynamic_cast<TracingStorage*>(raw)) {
      raw = tracing->inner();
    }
    if (auto* store = dynamic_cast<ObjectStore*>(raw)) {
      const ObjectStoreStats s = store->stats();
      out.SetGauge("storage_get_requests",
                   static_cast<double>(s.get_requests));
      out.SetGauge("storage_put_requests",
                   static_cast<double>(s.put_requests));
      out.SetGauge("storage_bytes_read", static_cast<double>(s.bytes_read));
      out.SetGauge("storage_coalesced_gets",
                   static_cast<double>(s.coalesced_gets));
      out.SetGauge("storage_request_cost_usd", s.request_cost_usd);
    }
  }
  return out;
}

std::vector<const QueryRecord*> Coordinator::AllQueries() const {
  std::vector<const QueryRecord*> out;
  out.reserve(queries_.size());
  for (const auto& [_, rec] : queries_) out.push_back(&rec);
  return out;
}

}  // namespace pixels
