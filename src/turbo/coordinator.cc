#include "turbo/coordinator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "exec/executor.h"
#include "plan/binder.h"
#include "plan/optimizer.h"
#include "storage/object_store.h"

namespace pixels {

Coordinator::Coordinator(SimClock* clock, Random* rng,
                         CoordinatorParams params,
                         std::shared_ptr<Catalog> catalog)
    : clock_(clock),
      rng_(rng),
      params_(params),
      catalog_(std::move(catalog)),
      vm_(clock, rng, params.vm, params.pricing),
      cf_(clock, rng, params.cf, params.pricing) {
  if (params_.chunk_cache_bytes > 0) {
    chunk_cache_ = std::make_unique<BufferCache>(params_.chunk_cache_bytes);
  }
  if (params_.mv_store_bytes > 0) {
    MvStoreOptions mv;
    mv.capacity_bytes = params_.mv_store_bytes;
    if (!params_.mv_spill_prefix.empty() && catalog_ != nullptr) {
      mv.spill_storage = catalog_->storage();
      mv.spill_prefix = params_.mv_spill_prefix;
    }
    mv_store_ = std::make_unique<MvStore>(std::move(mv));
  }
  vm_.SetCapacityAvailableCallback([this] { DispatchFromQueue(); });
}

IoOptions Coordinator::QueryIo() const {
  IoOptions io;
  io.coalesce_gap_bytes = params_.coalesce_gap_bytes;
  io.chunk_cache = chunk_cache_.get();
  return io;
}

void Coordinator::Start() { vm_.Start(); }

void Coordinator::Stop() { vm_.Stop(); }

double Coordinator::EstimateWork(const QuerySpec& spec) const {
  if (spec.work_vcpu_seconds > 0) return spec.work_vcpu_seconds;
  if (spec.bytes_to_scan > 0) {
    return static_cast<double>(spec.bytes_to_scan) /
           params_.bytes_per_vcpu_second;
  }
  return 1.0;  // a nominal small query
}

int64_t Coordinator::Submit(QuerySpec spec, QueryCallback on_finish) {
  const int64_t id = next_id_++;
  QueryRecord rec;
  rec.id = id;
  rec.spec = std::move(spec);
  rec.state = QueryState::kPending;
  rec.submit_time = clock_->Now();
  rec.bytes_scanned = rec.spec.bytes_to_scan;
  queries_[id] = std::move(rec);
  if (on_finish) callbacks_[id] = std::move(on_finish);

  QueryRecord* r = &queries_[id];
  metrics_.Add("queries_submitted", 1);

  if (vm_.TryStartQuery()) {
    StartInVm(r);
  } else if (r->spec.cf_enabled &&
             cf_.CanInvoke(std::max(r->spec.cf_workers,
                                    params_.default_cf_workers))) {
    StartInCf(r);
  } else {
    vm_queue_.push_back(id);
    UpdateBacklog();
    metrics_.Series("vm_queue_depth").Record(clock_->Now(),
                                             static_cast<double>(vm_queue_.size()));
  }
  return id;
}

void Coordinator::SetExternalPending(int n) {
  external_pending_ = n < 0 ? 0 : n;
  UpdateBacklog();
}

void Coordinator::UpdateBacklog() {
  vm_.SetBacklog(static_cast<int>(vm_queue_.size()) + external_pending_);
}

void Coordinator::DispatchFromQueue() {
  while (!vm_queue_.empty()) {
    if (!vm_.TryStartQuery()) break;
    int64_t id = vm_queue_.front();
    vm_queue_.pop_front();
    StartInVm(&queries_[id]);
  }
  UpdateBacklog();
  metrics_.Series("vm_queue_depth").Record(clock_->Now(),
                                           static_cast<double>(vm_queue_.size()));
}

void Coordinator::MaybeExecuteReal(QueryRecord* rec, bool via_cf) {
  if (!rec->spec.execute_real || catalog_ == nullptr || rec->spec.sql.empty()) {
    return;
  }
  if (via_cf) {
    auto plan = PlanQuery(rec->spec.sql, *catalog_, rec->spec.db);
    if (!plan.ok()) {
      rec->error = plan.status().ToString();
      return;
    }
    auto optimized = Optimize(std::move(plan).ValueOrDie(), *catalog_);
    if (!optimized.ok()) {
      rec->error = optimized.status().ToString();
      return;
    }
    CfWorkerOptions options;
    options.num_workers = std::max(rec->spec.cf_workers,
                                   params_.default_cf_workers);
    options.intermediate_store = catalog_->storage();
    options.view_prefix = "intermediate/q" + std::to_string(rec->id);
    options.io = QueryIo();
    options.mv_store = mv_store_.get();
    options.max_worker_attempts = params_.cf_max_worker_attempts;
    options.worker_retry_backoff_ms = params_.cf_worker_retry_backoff_ms;
    options.vm_fallback = params_.cf_vm_fallback;
    auto exec = ExecuteWithCfPushdown(std::move(optimized).ValueOrDie(),
                                      catalog_.get(), options);
    if (!exec.ok()) {
      rec->error = exec.status().ToString();
      return;
    }
    rec->result = exec->result;
    rec->bytes_scanned = exec->bytes_scanned;
    rec->cf_workers_used = exec->workers_used;
    rec->cf_worker_retries = exec->worker_retries;
    rec->cf_fallback_workers = exec->workers_fallback;
    rec->cf_fallback_bytes = exec->fallback_bytes_scanned;
    rec->mv_hit = exec->mv_full_hit;
    rec->mv_saved_bytes = exec->mv_saved_bytes;
    if (exec->mv_full_hit || exec->mv_subplan_hit) {
      metrics_.Add("mv_hits", 1);
      metrics_.Add("mv_saved_bytes",
                   static_cast<double>(exec->mv_saved_bytes));
    }
    return;
  }
  ExecContext ctx;
  ctx.catalog = catalog_.get();
  ctx.io = QueryIo();
  ctx.mv_store = mv_store_.get();
  auto result = ExecuteQuery(rec->spec.sql, rec->spec.db, &ctx);
  if (!result.ok()) {
    rec->error = result.status().ToString();
    return;
  }
  rec->result = std::move(result).ValueOrDie();
  rec->bytes_scanned = ctx.bytes_scanned;
  rec->mv_hit = ctx.mv_hits.load() > 0;
  rec->mv_saved_bytes = ctx.mv_saved_bytes.load();
  if (rec->mv_hit) {
    metrics_.Add("mv_hits", 1);
    metrics_.Add("mv_saved_bytes", static_cast<double>(rec->mv_saved_bytes));
  }
}

void Coordinator::StartInVm(QueryRecord* rec) {
  rec->state = QueryState::kRunning;
  rec->start_time = clock_->Now();
  MaybeExecuteReal(rec, /*via_cf=*/false);

  if (!rec->error.empty()) {
    // Fail fast: a failed execution holds its slot only for the fixed
    // overhead, accrues no compute cost, and is never billed.
    rec->compute_cost_usd = 0;
    clock_->Schedule(params_.query_overhead, [this, id = rec->id] {
      vm_.FinishQuery();
      Finish(&queries_[id]);
    });
    return;
  }

  const double work = rec->spec.execute_real && rec->bytes_scanned > 0
                          ? static_cast<double>(rec->bytes_scanned) /
                                params_.bytes_per_vcpu_second
                          : EstimateWork(rec->spec);
  const double query_vcpus =
      static_cast<double>(params_.vm.vcpus_per_vm) /
      std::max(params_.vm.slots_per_vm, 1);
  const SimTime duration =
      params_.query_overhead +
      static_cast<SimTime>(std::ceil(work / query_vcpus * 1000.0));
  rec->compute_cost_usd =
      params_.pricing.VmComputeCost(work);

  clock_->Schedule(duration, [this, id = rec->id] {
    QueryRecord* r = &queries_[id];
    vm_.FinishQuery();
    Finish(r);
  });
}

void Coordinator::StartInCf(QueryRecord* rec) {
  rec->state = QueryState::kRunning;
  rec->start_time = clock_->Now();
  MaybeExecuteReal(rec, /*via_cf=*/true);

  if (!rec->error.empty()) {
    // Fail fast: no fleet is hired for a failed execution, so a failed
    // query accrues neither CF cost nor a bill.
    rec->compute_cost_usd = 0;
    clock_->Schedule(params_.query_overhead,
                     [this, id = rec->id] { Finish(&queries_[id]); });
    return;
  }

  if (rec->mv_hit) {
    // A full MV hit answered the query before any worker could be hired:
    // no CF invocation, no compute cost, just the fixed query overhead.
    rec->cf_workers_used = 0;
    rec->compute_cost_usd = 0;
    clock_->Schedule(params_.query_overhead,
                     [this, id = rec->id] { Finish(&queries_[id]); });
    return;
  }

  if (rec->cf_worker_retries > 0) {
    metrics_.Add("cf_worker_retries", rec->cf_worker_retries);
  }
  if (rec->cf_fallback_workers > 0) {
    metrics_.Add("cf_fallback_workers", rec->cf_fallback_workers);
  }

  const double work = rec->spec.execute_real && rec->bytes_scanned > 0
                          ? static_cast<double>(rec->bytes_scanned) /
                                params_.bytes_per_vcpu_second
                          : EstimateWork(rec->spec);
  // Work done by VM-path fallback partitions is priced at the VM rate;
  // only the remainder is a CF invocation.
  const double fallback_work =
      rec->cf_fallback_bytes > 0
          ? static_cast<double>(rec->cf_fallback_bytes) /
                params_.bytes_per_vcpu_second
          : 0.0;
  const double cf_work = std::max(work - fallback_work, 0.0);

  if (rec->spec.execute_real && rec->cf_fallback_workers > 0 &&
      rec->cf_workers_used == 0) {
    // Every pushed partition exhausted CF retries: the query effectively
    // ran on the VM path. `used_cf` stays false and the compute cost is
    // VM-priced — the record reflects what actually happened.
    metrics_.Add("cf_fleet_degraded_queries", 1);
    rec->compute_cost_usd = params_.pricing.VmComputeCost(work);
    const double query_vcpus =
        static_cast<double>(params_.vm.vcpus_per_vm) /
        std::max(params_.vm.slots_per_vm, 1);
    const SimTime duration =
        params_.query_overhead +
        static_cast<SimTime>(std::ceil(work / query_vcpus * 1000.0));
    clock_->Schedule(duration, [this, id = rec->id] { Finish(&queries_[id]); });
    return;
  }

  rec->used_cf = true;
  metrics_.Add("queries_cf_accelerated", 1);
  const int workers = rec->cf_workers_used > 0
                          ? rec->cf_workers_used
                          : std::max(rec->spec.cf_workers,
                                     params_.default_cf_workers);
  CfInvocationResult inv =
      cf_.Invoke(workers, cf_work, [this, id = rec->id] {
        Finish(&queries_[id]);
      });
  rec->cf_workers_used = inv.workers;
  rec->compute_cost_usd =
      inv.cost_usd + params_.pricing.VmComputeCost(fallback_work);
}

void Coordinator::PublishStorageMetrics() {
  if (catalog_ == nullptr) return;
  auto* store = dynamic_cast<ObjectStore*>(catalog_->storage());
  if (store == nullptr) return;
  const ObjectStoreStats s = store->stats();
  metrics_.Add("storage_retries",
               static_cast<double>(s.retry_attempts) -
                   static_cast<double>(published_storage_.retry_attempts));
  metrics_.Add("storage_retry_recovered",
               static_cast<double>(s.retry_recovered) -
                   static_cast<double>(published_storage_.retry_recovered));
  metrics_.Add("storage_retry_exhausted",
               static_cast<double>(s.retry_exhausted) -
                   static_cast<double>(published_storage_.retry_exhausted));
  metrics_.Add("storage_backoff_ms",
               s.retry_backoff_ms - published_storage_.retry_backoff_ms);
  published_storage_ = s;
}

void Coordinator::Finish(QueryRecord* rec) {
  rec->finish_time = clock_->Now();
  rec->state = rec->error.empty() ? QueryState::kFinished : QueryState::kFailed;
  metrics_.Add(rec->error.empty() ? "queries_finished" : "queries_failed", 1);
  PublishStorageMetrics();
  auto cb = callbacks_.find(rec->id);
  if (cb != callbacks_.end()) {
    QueryCallback fn = std::move(cb->second);
    callbacks_.erase(cb);
    fn(*rec);
  }
}

const QueryRecord* Coordinator::GetQuery(int64_t id) const {
  auto it = queries_.find(id);
  return it == queries_.end() ? nullptr : &it->second;
}

std::vector<const QueryRecord*> Coordinator::AllQueries() const {
  std::vector<const QueryRecord*> out;
  out.reserve(queries_.size());
  for (const auto& [_, rec] : queries_) out.push_back(&rec);
  return out;
}

}  // namespace pixels
