// Query lifecycle objects shared by the coordinator and the query server:
// the four statuses of §4.3 (pending, running, finished, failed) plus the
// execution statistics Pixels-Rover displays (pending time, execution
// time, monetary cost).
#pragma once

#include <cstdint>
#include <string>

#include "common/sim_clock.h"
#include "format/batch.h"

namespace pixels {

/// Paper §4.3: pending (waiting to execute), running, finished, failed.
enum class QueryState : uint8_t { kPending, kRunning, kFinished, kFailed };

const char* QueryStateName(QueryState s);

/// A query submission handed to the coordinator.
struct QuerySpec {
  /// SQL text; may be empty for purely synthetic scheduling studies.
  std::string sql;
  std::string db = "default";

  /// Total compute work of the query in vCPU-seconds. When 0 and a real
  /// execution happens, it is estimated from bytes scanned.
  double work_vcpu_seconds = 0;

  /// Expected bytes scanned (used for scheduling estimates and billing
  /// when no real execution happens).
  uint64_t bytes_to_scan = 0;

  /// Paper §3.1 API: whether adaptive CF acceleration may be used for
  /// this query when the VM cluster is overloaded.
  bool cf_enabled = false;

  /// Run the SQL through the real engine (catalog must be attached to the
  /// coordinator); otherwise the query is simulated from the cost model.
  bool execute_real = false;

  /// CF fleet size when acceleration engages (0 = coordinator default).
  int cf_workers = 0;

  /// Parent span id for the coordinator's spans (0 = root). Set by the
  /// query server so one trace follows the query across both layers.
  uint64_t trace_parent = 0;
};

/// Execution record of one query.
struct QueryRecord {
  int64_t id = 0;
  QuerySpec spec;
  QueryState state = QueryState::kPending;

  SimTime submit_time = 0;
  SimTime start_time = -1;
  SimTime finish_time = -1;

  /// True when the query (or its pushed-down sub-plan) ran in CF workers.
  /// Reflects reality under degradation: a query whose every pushed
  /// partition fell back to the VM path reports false.
  bool used_cf = false;
  int cf_workers_used = 0;
  /// Re-invocations of failed CF workers absorbed for this query.
  int cf_worker_retries = 0;
  /// Partitions that exhausted CF re-invocation and ran on the VM path.
  int cf_fallback_workers = 0;
  /// Bytes scanned by those VM-path fallback partitions (cost split).
  uint64_t cf_fallback_bytes = 0;

  /// The pushed-down sub-plan ran as a multi-stage shuffle DAG
  /// (cf_shuffle). Results, bytes_scanned, and bills are byte-identical
  /// to the single-stage path; these counters only describe HOW it ran.
  bool used_shuffle = false;
  int shuffle_stages = 0;
  /// Hedged duplicate tasks fired against stragglers / won their
  /// first-writer-wins commit race (losers are discarded and un-billed).
  int cf_hedges_fired = 0;
  int cf_hedges_won = 0;
  /// Exchange-object traffic (intermediate, never billed as scan bytes).
  uint64_t shuffle_bytes_written = 0;
  uint64_t shuffle_bytes_read = 0;

  /// Attributed resource cost (VM vCPU-seconds or CF invocation cost).
  double compute_cost_usd = 0;
  /// Bytes scanned: real when executed, estimated otherwise.
  uint64_t bytes_scanned = 0;

  /// Runtime-filter statistics of the real execution (all zero when no
  /// filter was published or the feature is off). `rf_skipped_bytes` is
  /// billed scan work the filters avoided — excluded from bytes_scanned.
  uint64_t rf_probe_rows = 0;
  uint64_t rf_pruned_rows = 0;
  uint64_t rf_pruned_row_groups = 0;
  uint64_t rf_skipped_bytes = 0;

  /// True when the result (whole query) came from the materialized-view
  /// store, so no scan and no CF fleet ran for it.
  bool mv_hit = false;
  /// Scan bytes MV reuse avoided (full-query or sub-plan granularity) —
  /// the basis of the query server's reuse discount.
  uint64_t mv_saved_bytes = 0;

  std::string error;
  TablePtr result;

  /// Observability (filled only when the coordinator's tracer is on).
  /// The query's coordinator span and, while queued, its vm-queue span.
  uint64_t span_id = 0;
  uint64_t queue_span_id = 0;
  /// EXPLAIN ANALYZE text report (trace_level=full real executions only).
  std::string profile;

  /// Time spent waiting before execution began (§4.3 statistic).
  SimTime PendingTime() const {
    if (start_time < 0) return -1;
    return start_time - submit_time;
  }
  /// Execution duration (§4.3 statistic).
  SimTime ExecutionTime() const {
    if (start_time < 0 || finish_time < 0) return -1;
    return finish_time - start_time;
  }
};

}  // namespace pixels
