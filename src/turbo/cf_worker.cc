#include "turbo/cf_worker.h"

#include <chrono>

#include "common/thread_pool.h"
#include "exec/executor.h"
#include "format/writer.h"
#include "plan/fingerprint.h"
#include "storage/retrying_storage.h"
#include "turbo/shuffle/exchange.h"
#include "turbo/shuffle/stage_graph.h"

namespace pixels {

Result<TablePtr> RoundTripView(const Table& view, Storage* storage,
                               const std::string& path) {
  // Derive the file schema from the view's first batch.
  if (view.batches().empty()) {
    // Nothing to persist; an empty table round-trips to itself.
    return std::make_shared<Table>();
  }
  const RowBatch& first = *view.batches()[0];
  FileSchema schema;
  for (size_t c = 0; c < first.num_columns(); ++c) {
    schema.push_back(ColumnDef{first.name(c), first.column(c)->type()});
  }
  PixelsWriter writer(schema);
  for (const auto& batch : view.batches()) {
    PIXELS_RETURN_NOT_OK(writer.Append(*batch));
  }
  PIXELS_RETURN_NOT_OK(writer.Finish(storage, path));

  PIXELS_ASSIGN_OR_RETURN(auto reader, PixelsReader::Open(storage, path));
  auto out = std::make_shared<Table>();
  for (size_t g = 0; g < reader->NumRowGroups(); ++g) {
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, reader->ReadRowGroup(g, {}));
    out->AddBatch(std::move(batch));
  }
  return out;
}

namespace {

/// Fingerprint + version pins snapshotted BEFORE a plan executes (or is
/// partitioned — partitioning bakes the catalog's file list into the
/// worker plans). Scans resolve their file lists at execution time, so a
/// catalog mutation racing the query bumps a version past this snapshot
/// and the inserted entry conservatively fails its next validation.
/// Snapshotting after execution instead would stamp a stale result with
/// the new epoch and silently poison the store.
struct MvInsertSnapshot {
  bool valid = false;
  PlanFingerprint fp;
  std::vector<TableVersionPin> pins;
};

MvInsertSnapshot SnapshotMvInsert(const MvStore* store,
                                  const LogicalPlan& plan,
                                  const Catalog& catalog) {
  MvInsertSnapshot snap;
  if (store == nullptr) return snap;
  auto fp = FingerprintPlan(plan);
  if (!fp.ok()) return snap;
  auto pins = CollectTableVersionPins(plan, catalog);
  if (!pins.ok()) return snap;
  snap.valid = true;
  snap.fp = *fp;
  snap.pins = std::move(*pins);
  return snap;
}

/// Best-effort insert of an executed plan's result under its snapshot.
void CommitMvInsert(MvStore* store, MvInsertSnapshot snap,
                    const TablePtr& result, uint64_t rebuild_scan_bytes) {
  if (store == nullptr || !snap.valid || result == nullptr) return;
  store->Insert(snap.fp, result, rebuild_scan_bytes, std::move(snap.pins));
}

/// The options' tracer when tracing is actually on, else null.
Tracer* LiveTracer(const CfWorkerOptions& options) {
  return options.tracer != nullptr && options.tracer->enabled()
             ? options.tracer
             : nullptr;
}

/// Emits an mv-lookup span around one store probe.
void TraceMvLookup(Tracer* tracer, uint64_t parent, const char* granularity,
                   bool hit, uint64_t saved_bytes) {
  if (tracer == nullptr) return;
  const uint64_t span = tracer->StartSpan("mv-lookup", parent);
  tracer->Annotate(span, "granularity", granularity);
  tracer->Annotate(span, "hit", hit ? "true" : "false");
  if (hit) tracer->Annotate(span, "saved_bytes", saved_bytes);
  tracer->EndSpan(span);
}

/// Applies the vectorized-execution knobs to a fresh context.
void ApplyExecKnobs(ExecContext* ctx, const CfWorkerOptions& options) {
  ctx->runtime_filters = options.runtime_filters;
  ctx->fused_decode = options.fused_decode;
  ctx->rf_bloom_bits_per_key = options.rf_bloom_bits_per_key;
  ctx->vectorized_hash = options.vectorized_hash;
  ctx->hash_table_load_factor = options.hash_table_load_factor;
}

/// Snapshot of one context's runtime-filter counters.
struct RfCounters {
  uint64_t probe_rows = 0;
  uint64_t pruned_rows = 0;
  uint64_t pruned_row_groups = 0;
  uint64_t skipped_bytes = 0;

  static RfCounters From(const ExecContext& ctx) {
    RfCounters c;
    c.probe_rows = ctx.rf_probe_rows.load();
    c.pruned_rows = ctx.rf_pruned_rows.load();
    c.pruned_row_groups = ctx.rf_pruned_row_groups.load();
    c.skipped_bytes = ctx.rf_skipped_bytes.load();
    return c;
  }
};

void MergeRf(CfExecution* out, const RfCounters& c) {
  out->rf_probe_rows += c.probe_rows;
  out->rf_pruned_rows += c.pruned_rows;
  out->rf_pruned_row_groups += c.pruned_row_groups;
  out->rf_skipped_bytes += c.skipped_bytes;
}

void SetProfileRf(OperatorProfile* node, const RfCounters& c) {
  node->rf_probe_rows = c.probe_rows;
  node->rf_pruned_rows = c.pruned_rows;
  node->rf_pruned_row_groups = c.pruned_row_groups;
  node->rf_skipped_bytes = c.skipped_bytes;
}

}  // namespace

Result<CfExecution> ExecuteWithCfPushdown(const PlanPtr& plan,
                                          Catalog* catalog,
                                          const CfWorkerOptions& options) {
  CfExecution out;
  Tracer* tracer = LiveTracer(options);

  // Full-query MV reuse first: a hit answers the query without splitting,
  // scanning, or invoking a single CF worker.
  if (options.mv_store != nullptr) {
    auto fp = FingerprintPlan(*plan);
    if (fp.ok()) {
      auto hit = options.mv_store->Lookup(*fp, *catalog);
      TraceMvLookup(tracer, options.trace_parent, "full-query",
                    hit.has_value(), hit ? hit->saved_scan_bytes : 0);
      if (hit) {
        out.result = hit->table;
        out.mv_full_hit = true;
        out.mv_saved_bytes = hit->saved_scan_bytes;
        return out;
      }
    }
  }

  PIXELS_ASSIGN_OR_RETURN(SubPlanSplit split, SplitForCf(plan));

  ExecContext top_ctx;
  top_ctx.catalog = catalog;
  top_ctx.io = options.io;
  top_ctx.tracer = options.tracer;
  top_ctx.trace_parent = options.trace_parent;
  top_ctx.profile = options.profile;
  ApplyExecKnobs(&top_ctx, options);

  if (split.subplan == nullptr) {
    // Nothing heavy to push: run the plan as-is.
    MvInsertSnapshot snap = SnapshotMvInsert(options.mv_store, *plan, *catalog);
    PIXELS_ASSIGN_OR_RETURN(out.result, ExecutePlan(plan, &top_ctx));
    out.bytes_scanned = top_ctx.bytes_scanned;
    out.work_vcpu_seconds = static_cast<double>(out.bytes_scanned) /
                            options.bytes_per_vcpu_second;
    MergeRf(&out, RfCounters::From(top_ctx));
    CommitMvInsert(options.mv_store, std::move(snap), out.result,
                   out.bytes_scanned);
    return out;
  }

  // Sub-plan MV reuse: the paper's materialized-view seam is exactly the
  // store's unit of sharing, so a repeat of the heavy sub-plan (even
  // under a different top-level shape) skips the whole worker fleet.
  if (options.mv_store != nullptr) {
    auto sub_fp = FingerprintPlan(*split.subplan);
    if (sub_fp.ok()) {
      auto hit = options.mv_store->Lookup(*sub_fp, *catalog);
      TraceMvLookup(tracer, options.trace_parent, "subplan",
                    hit.has_value(), hit ? hit->saved_scan_bytes : 0);
      if (hit) {
        out.pushdown_used = true;
        out.mv_subplan_hit = true;
        out.mv_saved_bytes = hit->saved_scan_bytes;
        out.view = hit->table;
        PIXELS_RETURN_NOT_OK(InjectView(split.final_plan, out.view));
        ExecContext final_ctx;
        final_ctx.catalog = catalog;
        final_ctx.io = options.io;
        final_ctx.tracer = options.tracer;
        final_ctx.trace_parent = options.trace_parent;
        final_ctx.profile = options.profile;
        ApplyExecKnobs(&final_ctx, options);
        PIXELS_ASSIGN_OR_RETURN(out.result,
                                ExecutePlan(split.final_plan, &final_ctx));
        out.bytes_scanned = final_ctx.bytes_scanned;
        out.work_vcpu_seconds = static_cast<double>(out.bytes_scanned) /
                                options.bytes_per_vcpu_second;
        MergeRf(&out, RfCounters::From(final_ctx));
        return out;
      }
    }
  }

  // Snapshot both insert targets now, before partitioning reads the
  // catalog's file lists and before any worker scans.
  MvInsertSnapshot sub_snap =
      SnapshotMvInsert(options.mv_store, *split.subplan, *catalog);
  MvInsertSnapshot full_snap =
      SnapshotMvInsert(options.mv_store, *plan, *catalog);
  const uint64_t prior_parent =
      tracer != nullptr ? tracer->ActiveParent() : 0;

  // Common tail shared by the single-stage fleet and the shuffle DAG:
  // cache the view at the sub-plan seam, inject it, run the top-level
  // plan, cache the full result. `out.bytes_scanned` must already hold
  // the sub-plan total when this runs.
  auto finish = [&](TablePtr view) -> Result<CfExecution> {
    out.view = view;
    out.work_vcpu_seconds = static_cast<double>(out.bytes_scanned) /
                            options.bytes_per_vcpu_second;

    // The worker-produced view is the shareable artifact: cache it keyed
    // by the unpartitioned sub-plan so future queries skip the fleet.
    CommitMvInsert(options.mv_store, std::move(sub_snap), view,
                   out.bytes_scanned);

    // Inject the materialized view and run the top-level plan.
    PIXELS_RETURN_NOT_OK(InjectView(split.final_plan, view));
    ExecContext final_ctx;
    final_ctx.catalog = catalog;
    final_ctx.io = options.io;
    final_ctx.tracer = options.tracer;
    final_ctx.trace_parent = options.trace_parent;
    final_ctx.profile = options.profile;
    ApplyExecKnobs(&final_ctx, options);
    uint64_t final_span = 0;
    if (tracer != nullptr) {
      final_span = tracer->StartSpan("cf-final", options.trace_parent);
      tracer->SetActiveParent(final_span);
      final_ctx.trace_parent = final_span;
    }
    auto final_result = ExecutePlan(split.final_plan, &final_ctx);
    if (tracer != nullptr) {
      if (!final_result.ok()) {
        tracer->Annotate(final_span, "error",
                         final_result.status().ToString());
      }
      tracer->Annotate(final_span, "bytes", final_ctx.bytes_scanned.load());
      tracer->EndSpan(final_span);
      tracer->SetActiveParent(prior_parent);
    }
    PIXELS_ASSIGN_OR_RETURN(out.result, std::move(final_result));
    out.bytes_scanned += final_ctx.bytes_scanned;
    MergeRf(&out, RfCounters::From(final_ctx));

    // Also cache the full-query result (keyed by the original plan, which
    // still has no inlined view) so an identical repeat skips even the
    // top-level merge.
    CommitMvInsert(options.mv_store, std::move(full_snap), out.result,
                   out.bytes_scanned);
    return out;
  };

  // Multi-stage shuffle path (cf_shuffle): an eligible sub-plan runs as a
  // scan→shuffle→join DAG of CF stages exchanging hash-partitioned data
  // through the object store, with hedged duplicates against stragglers.
  // Ineligible shapes (no join, non-equi, nested joins) silently keep the
  // single-stage fleet below.
  if (options.shuffle.enabled) {
    StageGraph graph = BuildStageGraph(split.subplan);
    if (!graph.viable && tracer != nullptr) {
      const uint64_t skip =
          tracer->StartSpan("cf-shuffle-skip", options.trace_parent);
      tracer->Annotate(skip, "reason", graph.reason);
      tracer->EndSpan(skip);
    }
    if (graph.viable) {
      ShuffleRunParams rp;
      rp.catalog = catalog;
      rp.store = options.intermediate_store != nullptr
                     ? options.intermediate_store
                     : catalog->storage();
      rp.shuffle = options.shuffle;
      if (rp.shuffle.object_prefix.empty()) {
        rp.shuffle.object_prefix = options.view_prefix + ".shuffle";
      }
      rp.io = options.io;
      rp.num_workers = options.num_workers;
      rp.bytes_per_vcpu_second = options.bytes_per_vcpu_second;
      rp.fleet_parallelism = options.fleet_parallelism;
      rp.worker_parallelism = options.worker_parallelism;
      rp.max_task_attempts = options.max_worker_attempts;
      rp.retry_backoff_ms = options.worker_retry_backoff_ms;
      rp.vm_fallback = options.vm_fallback;
      rp.runtime_filters = options.runtime_filters;
      rp.fused_decode = options.fused_decode;
      rp.rf_bloom_bits_per_key = options.rf_bloom_bits_per_key;
      rp.vectorized_hash = options.vectorized_hash;
      rp.hash_table_load_factor = options.hash_table_load_factor;
      rp.tracer = options.tracer;
      rp.trace_parent = options.trace_parent;
      rp.profile = options.profile;
      rp.event_log = options.event_log;
      Result<ShuffleExecution> shux = ExecuteShuffleDag(graph, rp);
      if (!shux.ok()) {
        // GC the exchange prefix on the failure path too — a failed or
        // cancelled query must not leak intermediate objects.
        SweepExchangePrefix(rp.store, rp.shuffle.object_prefix);
        return shux.status();
      }
      out.pushdown_used = true;
      out.shuffle_used = true;
      out.shuffle_stages = shux->stages;
      out.workers_used = shux->tasks;
      out.worker_retries = shux->task_retries;
      out.workers_recovered = shux->tasks_recovered;
      out.workers_fallback = shux->tasks_fallback;
      out.fallback_bytes_scanned = shux->fallback_bytes_scanned;
      out.retry_backoff_simulated_ms = shux->retry_backoff_simulated_ms;
      out.hedges_fired = shux->hedges_fired;
      out.hedges_won = shux->hedges_won;
      out.shuffle_bytes_written = shux->exchange_bytes_written;
      out.shuffle_bytes_read = shux->exchange_bytes_read;
      out.shuffle_stage_wall_ms = shux->stage_wall_ms;
      out.shuffle_critical_path_ms = shux->critical_path_ms;
      out.shuffle_objects_swept = shux->objects_swept;
      out.bytes_scanned = shux->bytes_scanned;
      out.rf_probe_rows += shux->rf_probe_rows;
      out.rf_pruned_rows += shux->rf_pruned_rows;
      out.rf_pruned_row_groups += shux->rf_pruned_row_groups;
      out.rf_skipped_bytes += shux->rf_skipped_bytes;
      return finish(std::move(shux->view));
    }
  }

  // Partition the sub-plan across the worker fleet.
  PIXELS_ASSIGN_OR_RETURN(
      std::vector<PlanPtr> worker_plans,
      PartitionSubplan(split.subplan, std::max(options.num_workers, 1),
                       *catalog));
  out.pushdown_used = true;

  // Each worker executes its partition concurrently on the shared pool;
  // results land in index-addressed slots, so the view concatenation and
  // the billing totals are identical to a serial fleet. A worker whose
  // attempt fails with a retryable error is re-invoked (bounded budget,
  // exponential backoff in simulated time); each attempt starts from a
  // fresh ExecContext and only the successful attempt commits its slot,
  // so scanned-byte accounting is identical to a fault-free fleet.
  const auto fleet_start = std::chrono::steady_clock::now();
  const size_t n = worker_plans.size();
  uint64_t fleet_span = 0;
  if (tracer != nullptr) {
    fleet_span = tracer->StartSpan("cf-fleet", options.trace_parent);
    tracer->Annotate(fleet_span, "partitions", static_cast<uint64_t>(n));
  }
  OperatorProfile* fleet_node =
      options.profile != nullptr
          ? options.profile->AddNode("CfFleet", nullptr)
          : nullptr;
  std::vector<TablePtr> parts(n);
  std::vector<uint64_t> worker_bytes(n, 0);
  std::vector<RfCounters> worker_rf(n);
  std::vector<int> retries(n, 0);
  std::vector<char> recovered(n, 0);
  std::vector<char> needs_fallback(n, 0);
  std::vector<double> backoff_ms(n, 0.0);
  out.worker_elapsed_seconds.assign(n, 0.0);
  auto attempt_worker = [&](size_t w, uint64_t attempt_span) -> Status {
    ExecContext worker_ctx;
    worker_ctx.catalog = catalog;
    worker_ctx.parallelism = std::max(options.worker_parallelism, 1);
    worker_ctx.io = options.io;
    worker_ctx.tracer = options.tracer;
    worker_ctx.trace_parent = attempt_span;
    ApplyExecKnobs(&worker_ctx, options);
    PIXELS_ASSIGN_OR_RETURN(TablePtr part,
                            ExecutePlan(worker_plans[w], &worker_ctx));
    if (options.intermediate_store != nullptr) {
      // Worker results land in object storage (paper: S3) and the
      // top-level plan reads them back.
      PIXELS_ASSIGN_OR_RETURN(
          part, RoundTripView(*part, options.intermediate_store,
                              options.view_prefix + "." + std::to_string(w) +
                                  ".pxl"));
    }
    // Commit the slot only on success: a failed attempt's partial scan
    // never reaches the billing counters. The same rule keeps profiles
    // clean — an aggregate node is created from this context only here.
    worker_bytes[w] = worker_ctx.bytes_scanned;
    worker_rf[w] = RfCounters::From(worker_ctx);
    parts[w] = std::move(part);
    if (options.profile != nullptr) {
      OperatorProfile* node = options.profile->AddNode(
          "CfWorker[" + std::to_string(w) + "]", fleet_node,
          /*measures_io=*/true);
      node->bytes_scanned = worker_ctx.bytes_scanned.load();
      node->cache_hits = worker_ctx.cache_hits.load();
      node->cache_misses = worker_ctx.cache_misses.load();
      node->rows_out = parts[w]->num_rows();
      node->batches_out = parts[w]->batches().size();
      SetProfileRf(node, worker_rf[w]);
    }
    return Status::OK();
  };
  auto run_worker = [&](size_t w) -> Status {
    const auto start = std::chrono::steady_clock::now();
    const int budget = std::max(options.max_worker_attempts, 1);
    uint64_t worker_span = 0;
    if (tracer != nullptr) {
      worker_span = tracer->StartSpan("cf-worker", fleet_span);
      tracer->Annotate(worker_span, "partition", static_cast<uint64_t>(w));
    }
    Status last;
    for (int attempt = 1; attempt <= budget; ++attempt) {
      if (attempt > 1) {
        ++retries[w];
        double delay = options.worker_retry_backoff_ms;
        for (int i = 2; i < attempt; ++i) delay *= 2.0;
        backoff_ms[w] += delay;
      }
      uint64_t attempt_span = 0;
      if (tracer != nullptr) {
        attempt_span = tracer->StartSpan("cf-attempt", worker_span);
        tracer->Annotate(attempt_span, "attempt",
                         static_cast<uint64_t>(attempt));
        // Ambient parent for the storage decorator. Under a parallel
        // fleet concurrent attempts race the slot (tree stays
        // well-formed); a serial fleet nests exactly.
        tracer->SetActiveParent(attempt_span);
      }
      last = attempt_worker(w, attempt_span);
      if (tracer != nullptr) {
        if (!last.ok()) {
          tracer->Annotate(attempt_span, "error", last.ToString());
        }
        tracer->EndSpan(attempt_span);
      }
      if (last.ok()) {
        if (attempt > 1) recovered[w] = 1;
        out.worker_elapsed_seconds[w] =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        if (tracer != nullptr) {
          tracer->Annotate(worker_span, "retries",
                           static_cast<uint64_t>(retries[w]));
          tracer->Annotate(worker_span, "bytes", worker_bytes[w]);
          tracer->EndSpan(worker_span);
        }
        return Status::OK();
      }
      // Permanent errors fail the query outright — re-running or falling
      // back cannot fix a corrupt or missing object.
      if (!RetryPolicy::IsRetryable(last)) {
        if (tracer != nullptr) {
          tracer->Annotate(worker_span, "retries",
                           static_cast<uint64_t>(retries[w]));
          tracer->Annotate(worker_span, "error", last.ToString());
          tracer->EndSpan(worker_span);
        }
        return last;
      }
    }
    if (tracer != nullptr) {
      tracer->Annotate(worker_span, "retries",
                       static_cast<uint64_t>(retries[w]));
    }
    if (options.vm_fallback) {
      // Exhausted the budget: degrade this partition to the VM path
      // after the fleet drains instead of failing the whole query.
      needs_fallback[w] = 1;
      if (tracer != nullptr) {
        tracer->Annotate(worker_span, "fallback", "attempts-exhausted");
        tracer->EndSpan(worker_span);
      }
      return Status::OK();
    }
    if (tracer != nullptr) {
      tracer->Annotate(worker_span, "error", last.ToString());
      tracer->EndSpan(worker_span);
    }
    return last;
  };
  const int fleet_par = options.fleet_parallelism > 0
                            ? options.fleet_parallelism
                            : DefaultParallelism();
  const Status fleet_status = ThreadPool::Shared()->ParallelFor(
      0, n, /*grain=*/1, [&](size_t w) { return run_worker(w); }, fleet_par);
  if (tracer != nullptr) {
    tracer->SetActiveParent(prior_parent);
    if (!fleet_status.ok()) {
      tracer->Annotate(fleet_span, "error", fleet_status.ToString());
      tracer->EndSpan(fleet_span);
    }
  }
  PIXELS_RETURN_NOT_OK(fleet_status);
  out.fleet_elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    fleet_start)
          .count();

  // Graceful degradation: partitions whose workers exhausted their
  // re-invocation budget run on the VM path — executed inline by the
  // coordinator, serially, with no intermediate round trip. The view is
  // byte-identical either way; only `used_cf` and the compute-cost split
  // reflect the degradation.
  for (size_t w = 0; w < n; ++w) {
    if (!needs_fallback[w]) continue;
    ExecContext vm_ctx;
    vm_ctx.catalog = catalog;
    vm_ctx.io = options.io;
    vm_ctx.tracer = options.tracer;
    ApplyExecKnobs(&vm_ctx, options);
    uint64_t fb_span = 0;
    if (tracer != nullptr) {
      fb_span = tracer->StartSpan("cf-fallback", fleet_span);
      tracer->Annotate(fb_span, "partition", static_cast<uint64_t>(w));
      tracer->SetActiveParent(fb_span);
      vm_ctx.trace_parent = fb_span;
    }
    auto fb_result = ExecutePlan(worker_plans[w], &vm_ctx);
    if (tracer != nullptr) {
      if (!fb_result.ok()) {
        tracer->Annotate(fb_span, "error", fb_result.status().ToString());
      }
      tracer->Annotate(fb_span, "bytes",
                       vm_ctx.bytes_scanned.load());
      tracer->EndSpan(fb_span);
      tracer->SetActiveParent(prior_parent);
    }
    PIXELS_ASSIGN_OR_RETURN(parts[w], std::move(fb_result));
    worker_bytes[w] = vm_ctx.bytes_scanned;
    worker_rf[w] = RfCounters::From(vm_ctx);
    out.fallback_bytes_scanned += vm_ctx.bytes_scanned;
    ++out.workers_fallback;
    if (options.profile != nullptr) {
      OperatorProfile* node = options.profile->AddNode(
          "CfFallback[" + std::to_string(w) + "]", fleet_node,
          /*measures_io=*/true);
      node->bytes_scanned = vm_ctx.bytes_scanned.load();
      node->cache_hits = vm_ctx.cache_hits.load();
      node->cache_misses = vm_ctx.cache_misses.load();
      node->rows_out = parts[w]->num_rows();
      node->batches_out = parts[w]->batches().size();
      SetProfileRf(node, worker_rf[w]);
    }
  }
  out.workers_used = static_cast<int>(n) - out.workers_fallback;

  // Merge per-worker counters and views in partition order.
  auto view = std::make_shared<Table>();
  for (size_t w = 0; w < n; ++w) {
    out.bytes_scanned += worker_bytes[w];
    MergeRf(&out, worker_rf[w]);
    out.worker_retries += retries[w];
    if (recovered[w]) ++out.workers_recovered;
    out.retry_backoff_simulated_ms += backoff_ms[w];
    for (const auto& batch : parts[w]->batches()) view->AddBatch(batch);
  }
  if (tracer != nullptr) {
    tracer->Annotate(fleet_span, "retries",
                     static_cast<uint64_t>(out.worker_retries));
    tracer->Annotate(fleet_span, "fallbacks",
                     static_cast<uint64_t>(out.workers_fallback));
    tracer->Annotate(fleet_span, "bytes", out.bytes_scanned);
    tracer->EndSpan(fleet_span);
  }
  return finish(std::move(view));
}

}  // namespace pixels
