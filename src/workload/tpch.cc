#include "workload/tpch.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "format/writer.h"

namespace pixels {

namespace {

const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA",  "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",  "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN", "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",  "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES"};
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                           "MACHINERY"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP",
                            "TRUCK"};
const char* kReturnFlags[] = {"A", "N", "R"};
const char* kLineStatus[] = {"F", "O"};

/// Writes `schema`-shaped rows produced by `gen(row_index)` into one or
/// more files of a table.
Status WriteTable(Catalog* catalog, const std::string& db,
                  const std::string& table, const FileSchema& schema,
                  uint64_t num_rows, const TpchOptions& options,
                  const std::function<std::vector<Value>(uint64_t)>& gen) {
  PIXELS_RETURN_NOT_OK(catalog->CreateTable(db, table, schema));
  uint64_t written = 0;
  int file_index = 0;
  while (written < num_rows || (num_rows == 0 && file_index == 0)) {
    WriterOptions wopts;
    wopts.row_group_size = options.row_group_size;
    PixelsWriter writer(schema, wopts);
    const uint64_t in_file =
        std::min<uint64_t>(options.rows_per_file, num_rows - written);
    for (uint64_t r = 0; r < in_file; ++r) {
      PIXELS_RETURN_NOT_OK(writer.AppendRow(gen(written + r)));
    }
    const std::string path = options.path_prefix + "/" + db + "/" + table +
                             "/part" + std::to_string(file_index) + ".pxl";
    PIXELS_RETURN_NOT_OK(writer.Finish(catalog->storage(), path));
    PIXELS_RETURN_NOT_OK(catalog->AddTableFile(db, table, path));
    written += in_file;
    ++file_index;
    if (num_rows == 0) break;
  }
  return Status::OK();
}

}  // namespace

Status GenerateTpch(Catalog* catalog, const std::string& db,
                    const TpchOptions& options) {
  Status st = catalog->CreateDatabase(db);
  if (!st.ok() && !st.IsAlreadyExists()) return st;

  const double sf = options.scale_factor;
  const uint64_t num_customers = static_cast<uint64_t>(150000 * sf);
  const uint64_t num_orders = static_cast<uint64_t>(1500000 * sf);
  const uint64_t num_lineitems = static_cast<uint64_t>(6000000 * sf);
  constexpr int kNumNations = 25;
  constexpr int kNumRegions = 5;

  // region
  {
    FileSchema schema = {{"r_regionkey", TypeId::kInt32},
                         {"r_name", TypeId::kString},
                         {"r_comment", TypeId::kString}};
    PIXELS_RETURN_NOT_OK(WriteTable(
        catalog, db, "region", schema, kNumRegions, options,
        [&](uint64_t i) -> std::vector<Value> {
          return {Value::Int(static_cast<int64_t>(i)),
                  Value::String(kRegions[i]),
                  Value::String("region comment " + std::to_string(i))};
        }));
  }

  // nation
  {
    FileSchema schema = {{"n_nationkey", TypeId::kInt32},
                         {"n_name", TypeId::kString},
                         {"n_regionkey", TypeId::kInt32},
                         {"n_comment", TypeId::kString}};
    PIXELS_RETURN_NOT_OK(WriteTable(
        catalog, db, "nation", schema, kNumNations, options,
        [&](uint64_t i) -> std::vector<Value> {
          return {Value::Int(static_cast<int64_t>(i)),
                  Value::String(kNations[i]),
                  Value::Int(kNationRegion[i]),
                  Value::String("nation comment " + std::to_string(i))};
        }));
  }

  // customer
  {
    Random crng(options.seed + 1);
    FileSchema schema = {{"c_custkey", TypeId::kInt64},
                         {"c_name", TypeId::kString},
                         {"c_address", TypeId::kString},
                         {"c_nationkey", TypeId::kInt32},
                         {"c_acctbal", TypeId::kDouble},
                         {"c_mktsegment", TypeId::kString}};
    PIXELS_RETURN_NOT_OK(WriteTable(
        catalog, db, "customer", schema, num_customers, options,
        [&](uint64_t i) -> std::vector<Value> {
          return {Value::Int(static_cast<int64_t>(i) + 1),
                  Value::String("Customer#" + std::to_string(i + 1)),
                  Value::String(crng.NextString(12)),
                  Value::Int(crng.Uniform(0, kNumNations - 1)),
                  Value::Double(crng.UniformDouble(-999.99, 9999.99)),
                  Value::String(kSegments[crng.Uniform(0, 4)])};
        }));
  }

  // orders
  const int32_t kStartDate = 8035;   // 1992-01-01
  const int32_t kEndDate = 10591;    // 1998-12-31 (exclusive-ish)
  {
    Random orng(options.seed + 2);
    FileSchema schema = {{"o_orderkey", TypeId::kInt64},
                         {"o_custkey", TypeId::kInt64},
                         {"o_orderstatus", TypeId::kString},
                         {"o_totalprice", TypeId::kDouble},
                         {"o_orderdate", TypeId::kDate},
                         {"o_orderpriority", TypeId::kString},
                         {"o_shippriority", TypeId::kInt32}};
    PIXELS_RETURN_NOT_OK(WriteTable(
        catalog, db, "orders", schema, num_orders, options,
        [&](uint64_t i) -> std::vector<Value> {
          // Orders arrive roughly in date order (as in operational
          // systems), which is what makes zone maps effective on dates.
          int32_t base = kStartDate + static_cast<int32_t>(
                                          i * static_cast<uint64_t>(
                                                  kEndDate - kStartDate) /
                                          std::max<uint64_t>(num_orders, 1));
          int32_t date = static_cast<int32_t>(
              std::clamp<int64_t>(base + orng.Uniform(-45, 45), kStartDate,
                                  kEndDate));
          const char* status = date < 9500 ? "F" : (orng.Bernoulli(0.5) ? "O" : "P");
          return {Value::Int(static_cast<int64_t>(i) + 1),
                  Value::Int(orng.Uniform(1, std::max<int64_t>(
                                                 static_cast<int64_t>(num_customers), 1))),
                  Value::String(status),
                  Value::Double(orng.UniformDouble(900.0, 500000.0)),
                  Value::Int(date),
                  Value::String(kPriorities[orng.Uniform(0, 4)]),
                  Value::Int(orng.Uniform(0, 1))};
        }));
  }

  // supplier
  const uint64_t num_suppliers =
      std::max<uint64_t>(static_cast<uint64_t>(10000 * sf), 5);
  {
    Random srng(options.seed + 4);
    FileSchema schema = {{"s_suppkey", TypeId::kInt64},
                         {"s_name", TypeId::kString},
                         {"s_nationkey", TypeId::kInt32},
                         {"s_acctbal", TypeId::kDouble},
                         {"s_phone", TypeId::kString}};
    PIXELS_RETURN_NOT_OK(WriteTable(
        catalog, db, "supplier", schema, num_suppliers, options,
        [&](uint64_t i) -> std::vector<Value> {
          return {Value::Int(static_cast<int64_t>(i) + 1),
                  Value::String("Supplier#" + std::to_string(i + 1)),
                  Value::Int(srng.Uniform(0, kNumNations - 1)),
                  Value::Double(srng.UniformDouble(-999.99, 9999.99)),
                  Value::String(std::to_string(srng.Uniform(10, 34)) + "-" +
                                std::to_string(srng.Uniform(100, 999)) + "-" +
                                std::to_string(srng.Uniform(1000, 9999)))};
        }));
  }

  // part
  const uint64_t num_parts =
      std::max<uint64_t>(static_cast<uint64_t>(200000 * sf), 20);
  {
    Random prng(options.seed + 5);
    static const char* kPartTypes[] = {"STANDARD", "SMALL", "MEDIUM",
                                       "LARGE", "ECONOMY", "PROMO"};
    static const char* kMaterials[] = {"TIN", "NICKEL", "BRASS", "STEEL",
                                       "COPPER"};
    static const char* kContainers[] = {"SM CASE", "SM BOX", "MED BAG",
                                        "MED BOX", "LG CASE", "LG DRUM"};
    FileSchema schema = {{"p_partkey", TypeId::kInt64},
                         {"p_name", TypeId::kString},
                         {"p_brand", TypeId::kString},
                         {"p_type", TypeId::kString},
                         {"p_size", TypeId::kInt32},
                         {"p_retailprice", TypeId::kDouble},
                         {"p_container", TypeId::kString}};
    PIXELS_RETURN_NOT_OK(WriteTable(
        catalog, db, "part", schema, num_parts, options,
        [&](uint64_t i) -> std::vector<Value> {
          std::string type = std::string(kPartTypes[prng.Uniform(0, 5)]) +
                             " " + kMaterials[prng.Uniform(0, 4)];
          return {Value::Int(static_cast<int64_t>(i) + 1),
                  Value::String("part " + prng.NextString(8)),
                  Value::String("Brand#" + std::to_string(prng.Uniform(1, 5)) +
                                std::to_string(prng.Uniform(1, 5))),
                  Value::String(type),
                  Value::Int(prng.Uniform(1, 50)),
                  Value::Double(900.0 + static_cast<double>(i % 1000)),
                  Value::String(kContainers[prng.Uniform(0, 5)])};
        }));
  }

  // lineitem
  {
    Random lrng(options.seed + 3);
    FileSchema schema = {{"l_orderkey", TypeId::kInt64},
                         {"l_partkey", TypeId::kInt64},
                         {"l_suppkey", TypeId::kInt64},
                         {"l_linenumber", TypeId::kInt32},
                         {"l_quantity", TypeId::kDouble},
                         {"l_extendedprice", TypeId::kDouble},
                         {"l_discount", TypeId::kDouble},
                         {"l_tax", TypeId::kDouble},
                         {"l_returnflag", TypeId::kString},
                         {"l_linestatus", TypeId::kString},
                         {"l_shipdate", TypeId::kDate},
                         {"l_shipmode", TypeId::kString}};
    PIXELS_RETURN_NOT_OK(WriteTable(
        catalog, db, "lineitem", schema, num_lineitems, options,
        [&](uint64_t i) -> std::vector<Value> {
          // Cluster line items on order keys so joins have matches.
          int64_t orderkey =
              static_cast<int64_t>(i / 4 % std::max<uint64_t>(num_orders, 1)) + 1;
          double qty = static_cast<double>(lrng.Uniform(1, 50));
          double price = qty * lrng.UniformDouble(900.0, 2100.0);
          // Ship dates follow insertion order with jitter, giving the
          // clustered layout zone maps exploit.
          int32_t ship_base = kStartDate + static_cast<int32_t>(
                                               i * static_cast<uint64_t>(
                                                       kEndDate + 90 -
                                                       kStartDate) /
                                               std::max<uint64_t>(
                                                   num_lineitems, 1));
          int32_t shipdate = static_cast<int32_t>(
              std::clamp<int64_t>(ship_base + lrng.Uniform(-60, 60),
                                  kStartDate, kEndDate + 90));
          const char* flag = shipdate < 9300
                                 ? kReturnFlags[lrng.Uniform(0, 1)]
                                 : kReturnFlags[2 - lrng.Uniform(0, 1)];
          return {Value::Int(orderkey),
                  Value::Int(lrng.Uniform(1, static_cast<int64_t>(num_parts))),
                  Value::Int(lrng.Uniform(
                      1, static_cast<int64_t>(num_suppliers))),
                  Value::Int(static_cast<int64_t>(i % 4) + 1),
                  Value::Double(qty),
                  Value::Double(price),
                  Value::Double(lrng.UniformDouble(0.0, 0.1)),
                  Value::Double(lrng.UniformDouble(0.0, 0.08)),
                  Value::String(flag),
                  Value::String(kLineStatus[shipdate < 9700 ? 0 : 1]),
                  Value::Int(shipdate),
                  Value::String(kShipModes[lrng.Uniform(0, 6)])};
        }));
  }
  return Status::OK();
}

const std::vector<TpchQuery>& TpchQuerySet() {
  static const std::vector<TpchQuery> kQueries = {
      {"q1_pricing_summary",
       "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty, "
       "sum(l_extendedprice) AS sum_base_price, avg(l_discount) AS avg_disc, "
       "count(*) AS count_order FROM lineitem WHERE l_shipdate <= DATE "
       "'1998-09-02' GROUP BY l_returnflag, l_linestatus ORDER BY "
       "l_returnflag, l_linestatus",
       3.0},
      {"q3_shipping_priority",
       "SELECT o.o_orderkey, sum(l.l_extendedprice * (1 - l.l_discount)) AS "
       "revenue FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey "
       "WHERE o.o_orderdate < DATE '1995-03-15' GROUP BY o.o_orderkey ORDER "
       "BY revenue DESC LIMIT 10",
       4.0},
      {"q5_local_supplier",
       "SELECT n.n_name, sum(l.l_extendedprice * (1 - l.l_discount)) AS "
       "revenue FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey "
       "JOIN lineitem l ON o.o_orderkey = l.l_orderkey JOIN nation n ON "
       "c.c_nationkey = n.n_nationkey GROUP BY n.n_name ORDER BY revenue "
       "DESC",
       6.0},
      {"q6_forecast_revenue",
       "SELECT sum(l_extendedprice * l_discount) AS revenue FROM lineitem "
       "WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE "
       "'1995-01-01' AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < "
       "24",
       1.5},
      {"q12_shipmode_priority",
       "SELECT l.l_shipmode, sum(CASE WHEN o.o_orderpriority = '1-URGENT' OR "
       "o.o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count, "
       "sum(CASE WHEN o.o_orderpriority <> '1-URGENT' AND o.o_orderpriority "
       "<> '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count FROM orders o JOIN "
       "lineitem l ON o.o_orderkey = l.l_orderkey WHERE l.l_shipmode IN "
       "('MAIL', 'SHIP') AND l.l_shipdate < DATE '1995-01-01' GROUP BY "
       "l.l_shipmode ORDER BY l.l_shipmode",
       4.0},
      {"q14_promo_effect",
       "SELECT 100.0 * sum(CASE WHEN p.p_type LIKE 'PROMO%' THEN "
       "l.l_extendedprice * (1 - l.l_discount) ELSE 0 END) / "
       "sum(l.l_extendedprice * (1 - l.l_discount)) AS promo_revenue FROM "
       "lineitem l JOIN part p ON l.l_partkey = p.p_partkey WHERE "
       "l.l_shipdate >= DATE '1995-09-01' AND l.l_shipdate < DATE "
       "'1995-10-01'",
       3.5},
      {"q_supplier_balance",
       "SELECT n.n_name, count(*) AS suppliers, avg(s.s_acctbal) AS avg_bal "
       "FROM supplier s JOIN nation n ON s.s_nationkey = n.n_nationkey GROUP "
       "BY n.n_name ORDER BY suppliers DESC, n.n_name LIMIT 10",
       1.0},
      {"probe_count_orders", "SELECT count(*) FROM orders", 0.5},
      {"probe_top_customers",
       "SELECT c_mktsegment, count(*) AS customers, avg(c_acctbal) AS "
       "avg_bal FROM customer GROUP BY c_mktsegment ORDER BY customers DESC",
       1.0},
  };
  return kQueries;
}

std::vector<std::pair<std::string, std::string>> TpchSynonyms() {
  return {
      {"revenue", "extendedprice"}, {"price", "extendedprice"},
      {"sales", "extendedprice"},   {"quantity", "quantity"},
      {"segment", "mktsegment"},    {"market", "mktsegment"},
      {"balance", "acctbal"},       {"account", "acctbal"},
      {"country", "name"},          {"flag", "returnflag"},
      {"status", "linestatus"},     {"shipped", "shipdate"},
      {"date", "orderdate"},
  };
}

}  // namespace pixels
