#include "workload/loggen.h"

#include "common/random.h"
#include "format/writer.h"

namespace pixels {

namespace {
const char* kUrls[] = {"/",          "/login",   "/search", "/cart",
                       "/checkout",  "/product", "/api/v1", "/api/v2",
                       "/static/js", "/help"};
const char* kCountries[] = {"US", "CN", "DE", "FR", "GB", "IN", "JP", "BR"};
const char* kAgents[] = {"Mozilla", "Chrome", "Safari", "curl", "bot"};
const int kOkStatuses[] = {200, 200, 200, 204, 301, 302};
const int kErrStatuses[] = {400, 403, 404, 404, 500, 502, 503};
}  // namespace

Status GenerateWebLogs(Catalog* catalog, const std::string& db,
                       const LogGenOptions& options) {
  Status st = catalog->CreateDatabase(db);
  if (!st.ok() && !st.IsAlreadyExists()) return st;

  FileSchema schema = {
      {"event_time", TypeId::kTimestamp}, {"event_date", TypeId::kDate},
      {"client_ip", TypeId::kString},     {"url", TypeId::kString},
      {"status", TypeId::kInt32},         {"bytes_sent", TypeId::kInt64},
      {"latency_ms", TypeId::kDouble},    {"user_agent", TypeId::kString},
      {"country", TypeId::kString}};
  PIXELS_RETURN_NOT_OK(catalog->CreateTable(db, "weblogs", schema));

  Random rng(options.seed);
  const int64_t base_ms = 1718000000000;  // mid-2024 epoch millis
  const int32_t base_date = static_cast<int32_t>(base_ms / 86400000);

  uint64_t written = 0;
  int file_index = 0;
  while (written < options.num_rows) {
    WriterOptions wopts;
    wopts.row_group_size = options.row_group_size;
    PixelsWriter writer(schema, wopts);
    const uint64_t in_file =
        std::min<uint64_t>(options.rows_per_file, options.num_rows - written);
    for (uint64_t r = 0; r < in_file; ++r) {
      const uint64_t i = written + r;
      const int64_t ts = base_ms + static_cast<int64_t>(i) * 250 +
                         rng.Uniform(0, 249);
      const bool err = rng.Bernoulli(options.error_rate);
      const int status = err ? kErrStatuses[rng.Uniform(0, 6)]
                             : kOkStatuses[rng.Uniform(0, 5)];
      const char* url = kUrls[rng.Zipf(10, 1.1)];
      // Errors are slower; static content is faster.
      double latency = rng.Exponential(err ? 1.0 / 180.0 : 1.0 / 40.0);
      std::vector<Value> row = {
          Value::Int(ts),
          Value::Int(base_date + static_cast<int32_t>(
                                     (ts - base_ms) / 86400000)),
          Value::String(std::to_string(rng.Uniform(1, 255)) + "." +
                        std::to_string(rng.Uniform(0, 255)) + "." +
                        std::to_string(rng.Uniform(0, 255)) + "." +
                        std::to_string(rng.Uniform(1, 254))),
          Value::String(url),
          Value::Int(status),
          Value::Int(rng.Uniform(128, 1 << 20)),
          Value::Double(latency),
          Value::String(kAgents[rng.Uniform(0, 4)]),
          Value::String(kCountries[rng.Zipf(8, 0.9)])};
      PIXELS_RETURN_NOT_OK(writer.AppendRow(row));
    }
    const std::string path = options.path_prefix + "/" + db +
                             "/weblogs/part" + std::to_string(file_index) +
                             ".pxl";
    PIXELS_RETURN_NOT_OK(writer.Finish(catalog->storage(), path));
    PIXELS_RETURN_NOT_OK(catalog->AddTableFile(db, "weblogs", path));
    written += in_file;
    ++file_index;
  }
  return Status::OK();
}

const std::vector<LogQuery>& LogQuerySet() {
  static const std::vector<LogQuery> kQueries = {
      {"errors_per_url",
       "SELECT url, count(*) AS errors FROM weblogs WHERE status >= 400 "
       "GROUP BY url ORDER BY errors DESC",
       1.0},
      {"traffic_per_country",
       "SELECT country, count(*) AS requests, sum(bytes_sent) AS bytes FROM "
       "weblogs GROUP BY country ORDER BY requests DESC",
       1.5},
      {"latency_per_url",
       "SELECT url, avg(latency_ms) AS avg_latency, max(latency_ms) AS "
       "max_latency FROM weblogs GROUP BY url ORDER BY avg_latency DESC",
       1.5},
      {"status_breakdown",
       "SELECT status, count(*) AS requests FROM weblogs GROUP BY status "
       "ORDER BY requests DESC",
       0.8},
      {"heavy_responses",
       "SELECT url, client_ip, bytes_sent FROM weblogs WHERE bytes_sent > "
       "524288 ORDER BY bytes_sent DESC LIMIT 20",
       0.7},
  };
  return kQueries;
}

std::vector<std::pair<std::string, std::string>> LogSynonyms() {
  return {
      {"visits", "url"},      {"requests", "url"},   {"page", "url"},
      {"pages", "url"},       {"errors", "status"},  {"traffic", "bytes"},
      {"bandwidth", "bytes"}, {"latency", "latency"}, {"slow", "latency"},
      {"browser", "agent"},   {"visitors", "client"},
  };
}

}  // namespace pixels
