#include <algorithm>
#include "workload/arrivals.h"

namespace pixels {

std::vector<SimTime> PoissonArrivals(Random* rng, double rate_per_second,
                                     SimTime duration) {
  std::vector<SimTime> out;
  if (rate_per_second <= 0) return out;
  double t_ms = 0;
  while (true) {
    t_ms += rng->Exponential(rate_per_second) * 1000.0;
    if (t_ms >= static_cast<double>(duration)) break;
    out.push_back(static_cast<SimTime>(t_ms));
  }
  return out;
}

std::vector<SimTime> SpikeArrivals(Random* rng, double base_rate,
                                   double spike_rate, SimTime spike_start,
                                   SimTime spike_duration, SimTime duration) {
  std::vector<SimTime> out = PoissonArrivals(rng, base_rate, duration);
  auto spike = PoissonArrivals(rng, spike_rate, spike_duration);
  for (SimTime t : spike) out.push_back(t + spike_start);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SimTime> PeriodicSpikeArrivals(Random* rng, double base_rate,
                                           double spike_rate, SimTime period,
                                           SimTime spike_len,
                                           SimTime duration) {
  std::vector<SimTime> out = PoissonArrivals(rng, base_rate, duration);
  for (SimTime start = period / 2; start < duration; start += period) {
    SimTime len = std::min(spike_len, duration - start);
    auto spike = PoissonArrivals(rng, spike_rate, len);
    for (SimTime t : spike) out.push_back(t + start);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pixels
