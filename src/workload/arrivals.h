// Query arrival processes for the scheduling experiments: steady Poisson
// traffic, a single workload spike, and periodic spikes (the pattern that
// exposes eager scale-in, paper §3.2 footnote 2).
#pragma once

#include <vector>

#include "common/random.h"
#include "common/sim_clock.h"

namespace pixels {

/// Poisson arrivals at `rate_per_second` over [0, duration).
std::vector<SimTime> PoissonArrivals(Random* rng, double rate_per_second,
                                     SimTime duration);

/// Base-rate Poisson traffic with one spike of `spike_rate` during
/// [spike_start, spike_start + spike_duration).
std::vector<SimTime> SpikeArrivals(Random* rng, double base_rate,
                                   double spike_rate, SimTime spike_start,
                                   SimTime spike_duration, SimTime duration);

/// Periodic spikes: base rate with spikes of `spike_rate` lasting
/// `spike_len` every `period`.
std::vector<SimTime> PeriodicSpikeArrivals(Random* rng, double base_rate,
                                           double spike_rate, SimTime period,
                                           SimTime spike_len,
                                           SimTime duration);

}  // namespace pixels
