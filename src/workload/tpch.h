// TPC-H-subset workload: schema, scaled data generator, and a canned
// query set. The paper validates the autoscaler on TPC-H (§3.1); these
// tables and queries drive the scheduling and pushdown experiments.
#pragma once

#include "catalog/catalog.h"
#include "common/random.h"

namespace pixels {

/// Generator options. scale_factor 1.0 ≈ 6M lineitem rows (we default far
/// smaller for in-memory experiments).
struct TpchOptions {
  double scale_factor = 0.01;
  uint64_t seed = 42;
  size_t row_group_size = 8192;
  /// Rows per .pxl file (multiple files let CF workers partition scans).
  size_t rows_per_file = 20000;
  std::string path_prefix = "tpch";
};

/// Creates database `db` in the catalog with nation, region, customer,
/// orders, and lineitem, generates data at the given scale, and writes
/// the .pxl files through the catalog's storage.
Status GenerateTpch(Catalog* catalog, const std::string& db,
                    const TpchOptions& options);

/// Canned analytical queries (adapted TPC-H Q1/Q3/Q5/Q6 plus smaller
/// probes), all within the engine's supported SQL.
struct TpchQuery {
  std::string name;
  std::string sql;
  /// Relative compute weight (used by scheduling benches to vary work).
  double weight;
};
const std::vector<TpchQuery>& TpchQuerySet();

/// Registers NL synonyms that make TPC-H questions natural ("revenue" ->
/// "extendedprice" etc.) on a parser or service.
std::vector<std::pair<std::string, std::string>> TpchSynonyms();

}  // namespace pixels
