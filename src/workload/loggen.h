// Internet-log analysis workload (the second workload the paper cites
// for autoscaler validation, §3.1): a web access-log table plus a set of
// operational analytics queries.
#pragma once

#include "catalog/catalog.h"

namespace pixels {

struct LogGenOptions {
  uint64_t num_rows = 50000;
  uint64_t seed = 7;
  size_t row_group_size = 8192;
  size_t rows_per_file = 20000;
  std::string path_prefix = "logs";
  /// Fraction of requests that are errors (4xx/5xx).
  double error_rate = 0.04;
};

/// Creates `weblogs` in database `db` and generates access-log rows.
Status GenerateWebLogs(Catalog* catalog, const std::string& db,
                       const LogGenOptions& options);

/// Canned log-analytics queries (error breakdowns, traffic by country,
/// latency profiles).
struct LogQuery {
  std::string name;
  std::string sql;
  double weight;
};
const std::vector<LogQuery>& LogQuerySet();

/// NL synonyms for log questions ("visits" -> "requests" etc.).
std::vector<std::pair<std::string, std::string>> LogSynonyms();

}  // namespace pixels
