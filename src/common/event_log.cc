#include "common/event_log.h"

#include <cstdio>

namespace pixels {

std::string EventRecord::ToJsonLine() const {
  Json obj = fields.is_object() ? fields : Json::Object();
  obj.Set("seq", Json(static_cast<int64_t>(seq)));
  obj.Set("t_ms", Json(static_cast<int64_t>(time)));
  obj.Set("type", Json(type));
  return obj.Dump();
}

EventLog::EventLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void EventLog::SyncTime(SimTime now) {
  SimTime cur = time_mirror_.load(std::memory_order_relaxed);
  while (now > cur &&
         !time_mirror_.compare_exchange_weak(cur, now,
                                             std::memory_order_relaxed)) {
  }
}

void EventLog::Emit(const std::string& type, Json fields) {
  const SimTime now = VirtualNow();
  std::lock_guard<std::mutex> lock(mutex_);
  EventRecord rec;
  rec.seq = next_seq_++;
  rec.time = now;
  rec.type = type;
  rec.fields = std::move(fields);
  records_.push_back(std::move(rec));
  if (records_.size() > capacity_) {
    records_.pop_front();
    ++dropped_;
  }
}

std::vector<EventRecord> EventLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<EventRecord>(records_.begin(), records_.end());
}

std::vector<EventRecord> EventLog::OfType(const std::string& type) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<EventRecord> out;
  for (const EventRecord& r : records_) {
    if (r.type == type) out.push_back(r);
  }
  return out;
}

size_t EventLog::CountOfType(const std::string& type) const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const EventRecord& r : records_) {
    if (r.type == type) ++n;
  }
  return n;
}

size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

uint64_t EventLog::total_emitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
}

std::string EventLog::ToJsonLines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const EventRecord& r : records_) {
    out += r.ToJsonLine();
    out += '\n';
  }
  return out;
}

Status EventLog::WriteTo(const std::string& path) const {
  const std::string text = ToJsonLines();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("event log: cannot open " + path);
  }
  const size_t wrote = text.empty() ? 0 : std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (wrote != text.size()) {
    return Status::IOError("event log: short write to " + path);
  }
  return Status::OK();
}

}  // namespace pixels
