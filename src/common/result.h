// Result<T>: a value-or-Status holder, in the style of arrow::Result.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace pixels {

/// Holds either a value of type T or a non-OK Status.
///
/// Use `ok()` to test, `ValueOrDie()` / `operator*` to access the value,
/// and `status()` to access the error. Constructing from an OK Status is a
/// programming error (asserted).
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit, like arrow::Result).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Access the held value; undefined when !ok().
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  T& operator*() & { return ValueOrDie(); }
  const T& operator*() const& { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

  /// Moves the value out, or returns `alternative` when an error is held.
  T ValueOr(T alternative) && {
    if (ok()) return std::move(std::get<T>(repr_));
    return alternative;
  }

 private:
  std::variant<T, Status> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status to the caller.
#define PIXELS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueOrDie();

#define PIXELS_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define PIXELS_ASSIGN_OR_RETURN_NAME(a, b) PIXELS_ASSIGN_OR_RETURN_CONCAT(a, b)

#define PIXELS_ASSIGN_OR_RETURN(lhs, rexpr)                                    \
  PIXELS_ASSIGN_OR_RETURN_IMPL(                                                \
      PIXELS_ASSIGN_OR_RETURN_NAME(_result_tmp_, __COUNTER__), lhs, rexpr)

}  // namespace pixels
