// Discrete-event simulation kernel. The entire cloud layer (VM cluster,
// cloud functions, query server) runs on this virtual clock, which makes
// every scheduling experiment deterministic and independent of wall time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace pixels {

/// Simulated time in milliseconds since simulation start.
using SimTime = int64_t;

constexpr SimTime kMillis = 1;
constexpr SimTime kSeconds = 1000;
constexpr SimTime kMinutes = 60 * kSeconds;
constexpr SimTime kHours = 60 * kMinutes;

/// An event queue plus virtual clock. Events are callbacks scheduled at
/// absolute or relative virtual times; `RunUntil`/`RunAll` advance the
/// clock by executing events in timestamp order (FIFO among ties).
class SimClock {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `cb` to run at `Now() + delay`. Negative delays clamp to 0.
  /// Returns an event id usable with `Cancel`.
  uint64_t Schedule(SimTime delay, Callback cb);

  /// Schedules `cb` at an absolute virtual time (clamped to Now()).
  uint64_t ScheduleAt(SimTime when, Callback cb);

  /// Cancels a pending event; returns false if it already ran, was already
  /// cancelled, or never existed.
  bool Cancel(uint64_t event_id);

  /// Runs events until the queue empties or the clock would pass `deadline`.
  /// The clock is left at max(deadline, time of last event run).
  void RunUntil(SimTime deadline);

  /// Runs every pending event (including ones scheduled while running).
  void RunAll();

  /// Runs a single event if one is pending; returns false when idle.
  bool Step();

  /// Number of live (not yet run, not cancelled) events.
  size_t pending_events() const { return pending_ids_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    uint64_t id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool PopAndRun();

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<uint64_t> pending_ids_;
};

}  // namespace pixels
