#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

namespace pixels {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_emit_mutex;
std::atomic<const SimClock*> g_log_clock{nullptr};
std::atomic<SimTime> g_log_time{0};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void RegisterLogClock(const SimClock* clock) {
  g_log_clock.store(clock, std::memory_order_relaxed);
  if (clock != nullptr) {
    g_log_time.store(clock->Now(), std::memory_order_relaxed);
  }
}

void UnregisterLogClock(const SimClock* clock) {
  const SimClock* expected = clock;
  g_log_clock.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_relaxed);
}

void SyncLogTime(SimTime now) {
  SimTime cur = g_log_time.load(std::memory_order_relaxed);
  while (now > cur &&
         !g_log_time.compare_exchange_weak(cur, now,
                                           std::memory_order_relaxed)) {
  }
}

namespace internal {

void EmitLog(LogLevel level, const char* file, int line, const std::string& msg) {
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  char stamp[32];
  if (g_log_clock.load(std::memory_order_relaxed) != nullptr) {
    std::snprintf(stamp, sizeof(stamp), "t=%lldms",
                  static_cast<long long>(
                      g_log_time.load(std::memory_order_relaxed)));
  } else {
    const std::time_t now = std::time(nullptr);
    std::tm tm_buf{};
#if defined(_WIN32)
    localtime_s(&tm_buf, &now);
#else
    localtime_r(&now, &tm_buf);
#endif
    std::strftime(stamp, sizeof(stamp), "%H:%M:%S", &tm_buf);
  }
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s %s %s:%d] %s\n", stamp, LevelName(level), base,
               line, msg.c_str());
}

}  // namespace internal
}  // namespace pixels
