// Status: error propagation without exceptions, in the style of
// Arrow/RocksDB. All fallible core APIs return Status or Result<T>.
#pragma once

#include <memory>
#include <string>
#include <utility>

namespace pixels {

/// Error categories used across the system.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIOError = 4,
  kCorruption = 5,
  kNotImplemented = 6,
  kResourceExhausted = 7,
  kFailedPrecondition = 8,
  kTimeout = 9,
  kCancelled = 10,
  kParseError = 11,
  kTypeError = 12,
  kInternal = 13,
};

/// Returns a human-readable name for a status code, e.g. "IOError".
const char* StatusCodeName(StatusCode code);

/// A Status holds either success (OK) or an error code plus message.
///
/// The OK state is represented by a null internal pointer, so returning and
/// checking OK statuses is cheap (one pointer move / null check).
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  /// The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;
};

/// Propagates a non-OK Status to the caller.
#define PIXELS_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::pixels::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace pixels
