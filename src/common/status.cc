#include "common/status.h"

namespace pixels {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace pixels
