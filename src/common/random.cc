#include "common/random.h"

#include <cassert>
#include <cmath>

namespace pixels {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64 for seeding.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Random::Uniform(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % range);
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

double Random::Exponential(double rate) {
  assert(rate > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Random::Gaussian() {
  // Box-Muller transform.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Random::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

int64_t Random::Zipf(int64_t n, double s) {
  assert(n > 0);
  if (s <= 0) return Uniform(0, n - 1);
  // Inverse-CDF sampling over the truncated harmonic sum. Linear in n but
  // acceptable for the small domains (columns, tables, keys) used here.
  double norm = 0;
  for (int64_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(static_cast<double>(i), s);
  double u = NextDouble() * norm;
  double acc = 0;
  for (int64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    if (acc >= u) return i - 1;
  }
  return n - 1;
}

int64_t Random::Poisson(double mean) {
  assert(mean >= 0);
  if (mean <= 0) return 0;
  if (mean < 30) {
    // Knuth's method.
    const double limit = std::exp(-mean);
    double p = 1.0;
    int64_t k = 0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation for large means.
  const double v = Gaussian(mean, std::sqrt(mean));
  return v < 0 ? 0 : static_cast<int64_t>(v + 0.5);
}

std::string Random::NextString(size_t length) {
  std::string out(length, 'a');
  for (auto& c : out) c = static_cast<char>('a' + Next() % 26);
  return out;
}

size_t Random::WeightedPick(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double u = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (acc >= u) return i;
  }
  return weights.size() - 1;
}

}  // namespace pixels
