#include "common/bytes.h"

namespace pixels {

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::PutSignedVarint(int64_t v) {
  // Zigzag encoding maps small magnitudes to small varints.
  PutVarint((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
}

void ByteWriter::PutString(const std::string& s) {
  PutVarint(s.size());
  PutBytes(s.data(), s.size());
}

void ByteWriter::PutBytes(const void* data, size_t n) {
  const auto* b = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), b, b + n);
}

Status ByteReader::Seek(size_t pos) {
  if (pos > size_) return Status::InvalidArgument("byte reader: seek out of range");
  pos_ = pos;
  return Status::OK();
}

Result<uint8_t> ByteReader::GetU8() { return GetFixed<uint8_t>(); }
Result<uint16_t> ByteReader::GetU16() { return GetFixed<uint16_t>(); }
Result<uint32_t> ByteReader::GetU32() { return GetFixed<uint32_t>(); }
Result<uint64_t> ByteReader::GetU64() { return GetFixed<uint64_t>(); }
Result<int32_t> ByteReader::GetI32() { return GetFixed<int32_t>(); }
Result<int64_t> ByteReader::GetI64() { return GetFixed<int64_t>(); }
Result<double> ByteReader::GetF64() { return GetFixed<double>(); }

Result<uint64_t> ByteReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (AtEnd()) return Status::Corruption("byte reader: truncated varint");
    if (shift >= 64) return Status::Corruption("byte reader: varint overflow");
    uint8_t b = data_[pos_++];
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<int64_t> ByteReader::GetSignedVarint() {
  PIXELS_ASSIGN_OR_RETURN(uint64_t z, GetVarint());
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

Result<std::string> ByteReader::GetString() {
  PIXELS_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
  if (remaining() < n) return Status::Corruption("byte reader: truncated string");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Status ByteReader::GetBytes(void* out, size_t n) {
  if (remaining() < n) return Status::Corruption("byte reader: truncated bytes");
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

}  // namespace pixels
