// Minimal JSON value, parser, and writer. Used for the CodeS-style
// question+schema messages exchanged between Pixels-Rover and the
// text-to-SQL service, and for catalog serialization.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace pixels {

/// A JSON value: null, bool, number (double), string, array, or object.
/// Objects preserve key order of insertion? No — keys are kept sorted
/// (std::map) for deterministic serialization.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}              // NOLINT
  Json(double n) : type_(Type::kNumber), num_(n) {}           // NOLINT
  Json(int n) : type_(Type::kNumber), num_(n) {}              // NOLINT
  Json(int64_t n)                                             // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}      // NOLINT

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return num_; }
  int64_t AsInt() const { return static_cast<int64_t>(num_); }
  const std::string& AsString() const { return str_; }

  /// Array access.
  size_t size() const;
  const Json& At(size_t i) const;
  void Append(Json v);

  /// Object access. `Get` returns null-Json for missing keys.
  bool Has(const std::string& key) const;
  const Json& Get(const std::string& key) const;
  void Set(const std::string& key, Json v);
  const std::map<std::string, Json>& items() const { return obj_; }

  /// Compact serialization (no whitespace), deterministic key order.
  std::string Dump() const;

  /// Pretty serialization with 2-space indentation.
  std::string Pretty() const;

  /// Parses a JSON document; rejects trailing garbage.
  static Result<Json> Parse(const std::string& text);

  bool operator==(const Json& other) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;
  static void EscapeTo(std::string* out, const std::string& s);

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

}  // namespace pixels
