#include "common/config.h"

#include <cstdlib>
#include <sstream>

namespace pixels {

namespace {
std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}
}  // namespace

Result<Config> Config::FromString(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string t = Trim(line);
    if (t.empty() || t[0] == '#') continue;
    size_t eq = t.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("config line " + std::to_string(lineno) +
                                ": missing '='");
    }
    std::string key = Trim(t.substr(0, eq));
    if (key.empty()) {
      return Status::ParseError("config line " + std::to_string(lineno) +
                                ": empty key");
    }
    cfg.Set(key, Trim(t.substr(eq + 1)));
  }
  return cfg;
}

void Config::Set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

bool Config::Has(const std::string& key) const { return values_.count(key) > 0; }

std::string Config::GetString(const std::string& key, const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

int64_t Config::GetInt(const std::string& key, int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Config::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Config::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string Config::ToString() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    out += k;
    out += '=';
    out += v;
    out += '\n';
  }
  return out;
}

}  // namespace pixels
