#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pixels {

namespace {
const Json& NullJson() {
  static const Json kNull;
  return kNull;
}
}  // namespace

size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  return 0;
}

const Json& Json::At(size_t i) const {
  if (type_ != Type::kArray || i >= arr_.size()) return NullJson();
  return arr_[i];
}

void Json::Append(Json v) {
  type_ = Type::kArray;
  arr_.push_back(std::move(v));
}

bool Json::Has(const std::string& key) const {
  return type_ == Type::kObject && obj_.count(key) > 0;
}

const Json& Json::Get(const std::string& key) const {
  if (type_ != Type::kObject) return NullJson();
  auto it = obj_.find(key);
  return it == obj_.end() ? NullJson() : it->second;
}

void Json::Set(const std::string& key, Json v) {
  type_ = Type::kObject;
  obj_[key] = std::move(v);
}

void Json::EscapeTo(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&] {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * depth), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      if (std::isfinite(num_) && num_ == std::floor(num_) &&
          std::fabs(num_) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(num_));
        *out += buf;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
        *out += buf;
      }
      break;
    }
    case Type::kString:
      EscapeTo(out, str_);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out->push_back(',');
        first = false;
        ++depth;
        newline();
        --depth;
        v.DumpTo(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline();
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out->push_back(',');
        first = false;
        ++depth;
        newline();
        --depth;
        EscapeTo(out, k);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        v.DumpTo(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline();
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, 0, 0);
  return out;
}

std::string Json::Pretty() const {
  std::string out;
  DumpTo(&out, 2, 0);
  return out;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return num_ == other.num_;
    case Type::kString:
      return str_ == other.str_;
    case Type::kArray:
      return arr_ == other.arr_;
    case Type::kObject:
      return obj_ == other.obj_;
  }
  return false;
}

namespace {

/// Recursive-descent JSON parser.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Result<Json> Parse() {
    SkipWs();
    PIXELS_ASSIGN_OR_RETURN(Json v, ParseValue());
    SkipWs();
    if (pos_ != s_.size()) return Err("trailing characters after document");
    return v;
  }

 private:
  Status Err(const std::string& msg) {
    return Status::ParseError("json at offset " + std::to_string(pos_) + ": " +
                              msg);
  }

  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    if (pos_ >= s_.size()) return Err("unexpected end of input");
    char c = s_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        PIXELS_ASSIGN_OR_RETURN(std::string str, ParseString());
        return Json(std::move(str));
      }
      case 't':
        if (s_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          return Json(true);
        }
        return Err("invalid literal");
      case 'f':
        if (s_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          return Json(false);
        }
        return Err("invalid literal");
      case 'n':
        if (s_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return Json();
        }
        return Err("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("invalid number");
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(s_.c_str() + start, &end);
    if (end != s_.c_str() + pos_ || errno == ERANGE) return Err("invalid number");
    return Json(v);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) return Err("truncated escape");
        char e = s_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return Err("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9')
                code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return Err("invalid \\u escape");
            }
            // Encode the code point as UTF-8 (BMP only; surrogate pairs are
            // passed through as two separate 3-byte sequences).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            return Err("invalid escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Err("unterminated string");
  }

  Result<Json> ParseArray() {
    Consume('[');
    Json arr = Json::Array();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      SkipWs();
      PIXELS_ASSIGN_OR_RETURN(Json v, ParseValue());
      arr.Append(std::move(v));
      SkipWs();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  Result<Json> ParseObject() {
    Consume('{');
    Json obj = Json::Object();
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      PIXELS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      PIXELS_ASSIGN_OR_RETURN(Json v, ParseValue());
      obj.Set(key, std::move(v));
      SkipWs();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace pixels
