// Deterministic pseudo-random generation used by all simulators and
// workload generators so that every run is reproducible from a seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pixels {

/// xoshiro256** generator: fast, high quality, fully deterministic.
class Random {
 public:
  /// Seeds the generator; the same seed yields the same stream.
  explicit Random(uint64_t seed = 42);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Zipf-distributed integer in [0, n) with skew s (s=0 is uniform).
  int64_t Zipf(int64_t n, double s);

  /// Poisson-distributed count with the given mean.
  int64_t Poisson(double mean);

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t length);

  /// Picks one element index weighted by `weights` (must be non-empty and
  /// sum to a positive value).
  size_t WeightedPick(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
};

}  // namespace pixels
