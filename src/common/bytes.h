// Byte-buffer reader/writer with varint support. Used by the Pixels file
// format for headers, footers, and encoded column chunks.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pixels {

/// Append-only binary buffer with little-endian fixed-width and varint
/// primitives. The encoders write through this.
class ByteWriter {
 public:
  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutFixed(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  void PutI32(int32_t v) { PutFixed(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutFixed(&v, sizeof(v)); }
  void PutF64(double v) { PutFixed(&v, sizeof(v)); }

  /// LEB128 unsigned varint.
  void PutVarint(uint64_t v);

  /// Zigzag-encoded signed varint.
  void PutSignedVarint(int64_t v);

  /// Varint length followed by raw bytes.
  void PutString(const std::string& s);

  /// Raw byte append.
  void PutBytes(const void* data, size_t n);

 private:
  void PutFixed(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<uint8_t> buf_;
};

/// Sequential reader over a byte span; all getters validate bounds and
/// return Status/Result instead of crashing on truncated input.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& v)
      : ByteReader(v.data(), v.size()) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ >= size_; }

  /// Moves the cursor to an absolute offset.
  Status Seek(size_t pos);

  /// Advances the cursor over `n` bytes without reading them.
  Status Skip(size_t n) {
    if (remaining() < n) {
      return Status::Corruption("byte reader: skip past end");
    }
    pos_ += n;
    return Status::OK();
  }

  /// Returns a view over `n` raw bytes at the cursor and advances past
  /// them. The view aliases the underlying buffer.
  Result<std::string_view> GetView(size_t n) {
    if (remaining() < n) {
      return Status::Corruption("byte reader: truncated view");
    }
    std::string_view v(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return v;
  }

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int32_t> GetI32();
  Result<int64_t> GetI64();
  Result<double> GetF64();
  Result<uint64_t> GetVarint();
  Result<int64_t> GetSignedVarint();
  Result<std::string> GetString();

  /// Copies `n` raw bytes into `out`.
  Status GetBytes(void* out, size_t n);

 private:
  template <typename T>
  Result<T> GetFixed() {
    if (remaining() < sizeof(T)) {
      return Status::Corruption("byte reader: truncated fixed-width value");
    }
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace pixels
