#include "common/trace.h"

#include "common/json.h"

namespace pixels {

const char* TraceLevelName(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff:
      return "off";
    case TraceLevel::kSpans:
      return "spans";
    case TraceLevel::kFull:
      return "full";
  }
  return "?";
}

void Tracer::SyncTime(SimTime now) {
  SimTime cur = virtual_now_.load(std::memory_order_relaxed);
  while (now > cur &&
         !virtual_now_.compare_exchange_weak(cur, now,
                                             std::memory_order_relaxed)) {
  }
}

uint64_t Tracer::StartSpan(const std::string& name, uint64_t parent) {
  if (!enabled()) return 0;
  const SimTime now = VirtualNow();
  std::lock_guard<std::mutex> lock(mutex_);
  TraceSpan span;
  span.id = next_id_++;
  span.parent = parent;
  span.name = name;
  span.start = now;
  span.seq = span.id;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndSpan(uint64_t id) {
  if (id == 0) return;
  const SimTime now = VirtualNow();
  std::lock_guard<std::mutex> lock(mutex_);
  if (id > spans_.size()) return;
  spans_[id - 1].end = now;
}

void Tracer::Annotate(uint64_t id, const std::string& key,
                      const std::string& value) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (id > spans_.size()) return;
  spans_[id - 1].attrs.emplace_back(key, value);
}

void Tracer::Annotate(uint64_t id, const std::string& key, int64_t value) {
  Annotate(id, key, std::to_string(value));
}

void Tracer::Annotate(uint64_t id, const std::string& key, uint64_t value) {
  Annotate(id, key, std::to_string(value));
}

std::vector<TraceSpan> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::vector<TraceSpan> Tracer::FindSpans(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceSpan> out;
  for (const auto& s : spans_) {
    if (s.name == name) out.push_back(s);
  }
  return out;
}

std::vector<TraceSpan> Tracer::ChildrenOf(uint64_t parent_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceSpan> out;
  for (const auto& s : spans_) {
    if (s.parent == parent_id) out.push_back(s);
  }
  return out;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  next_id_ = 1;
}

std::string Tracer::ToChromeTraceJson() const {
  std::vector<TraceSpan> spans = Snapshot();
  Json events = Json::Array();
  for (const auto& s : spans) {
    Json ev = Json::Object();
    ev.Set("name", s.name);
    ev.Set("cat", "pixels");
    ev.Set("ph", "X");  // complete event: ts + dur
    // Chrome trace timestamps are microseconds; virtual time is ms.
    ev.Set("ts", static_cast<int64_t>(s.start) * 1000);
    const SimTime end = s.end < 0 ? s.start : s.end;
    ev.Set("dur", static_cast<int64_t>(end - s.start) * 1000);
    ev.Set("pid", 1);
    ev.Set("tid", 1);
    Json args = Json::Object();
    args.Set("span_id", static_cast<int64_t>(s.id));
    args.Set("parent_id", static_cast<int64_t>(s.parent));
    for (const auto& [k, v] : s.attrs) args.Set(k, v);
    ev.Set("args", std::move(args));
    events.Append(std::move(ev));
  }
  Json doc = Json::Object();
  doc.Set("displayTimeUnit", "ms");
  doc.Set("traceEvents", std::move(events));
  return doc.Dump();
}

}  // namespace pixels
