// Simple string key/value configuration with typed getters, mirroring the
// property files Pixels uses for engine configuration.
#pragma once

#include <map>
#include <string>

#include "common/result.h"

namespace pixels {

/// Key/value configuration. Typed getters fall back to a caller-supplied
/// default when the key is absent, and fail loudly on malformed values.
class Config {
 public:
  Config() = default;

  /// Parses `key=value` lines; '#' starts a comment; blank lines ignored.
  static Result<Config> FromString(const std::string& text);

  void Set(const std::string& key, std::string value);
  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key, const std::string& def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  /// Serializes back to `key=value` lines in key order.
  std::string ToString() const;

  size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace pixels
