#include "common/sim_clock.h"

#include <algorithm>

namespace pixels {

uint64_t SimClock::Schedule(SimTime delay, Callback cb) {
  return ScheduleAt(now_ + std::max<SimTime>(delay, 0), std::move(cb));
}

uint64_t SimClock::ScheduleAt(SimTime when, Callback cb) {
  const uint64_t id = next_id_++;
  queue_.push(Event{std::max(when, now_), next_seq_++, id, std::move(cb)});
  pending_ids_.insert(id);
  return id;
}

bool SimClock::Cancel(uint64_t event_id) {
  return pending_ids_.erase(event_id) > 0;
}

bool SimClock::PopAndRun() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (pending_ids_.erase(ev.id) == 0) {
      continue;  // cancelled: skip without advancing the clock
    }
    now_ = ev.when;
    ev.cb();
    return true;
  }
  return false;
}

void SimClock::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    if (!PopAndRun()) break;
  }
  if (now_ < deadline) now_ = deadline;
}

void SimClock::RunAll() {
  while (PopAndRun()) {
  }
}

bool SimClock::Step() { return PopAndRun(); }

}  // namespace pixels
