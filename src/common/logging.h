// Minimal leveled logger with a process-global level, used across modules.
#pragma once

#include <sstream>
#include <string>

namespace pixels {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-global minimum level that is emitted.
void SetLogLevel(LogLevel level);

/// Returns the current process-global log level.
LogLevel GetLogLevel();

namespace internal {

/// Emits one formatted log line to stderr; called by the PIXELS_LOG macro.
void EmitLog(LogLevel level, const char* file, int line, const std::string& msg);

/// Stream collector whose destructor emits the accumulated message.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLog(level_, file_, line_, stream_.str()); }

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define PIXELS_LOG(level)                                             \
  if (static_cast<int>(::pixels::LogLevel::level) <                   \
      static_cast<int>(::pixels::GetLogLevel())) {                    \
  } else                                                              \
    ::pixels::internal::LogMessage(::pixels::LogLevel::level,         \
                                   __FILE__, __LINE__)                \
        .stream()

#define PIXELS_DCHECK(cond)                                                    \
  if (cond) {                                                                  \
  } else                                                                       \
    ::pixels::internal::LogMessage(::pixels::LogLevel::kError, __FILE__,       \
                                   __LINE__)                                   \
        .stream()                                                              \
        << "DCHECK failed: " #cond " "

}  // namespace pixels
