// Minimal leveled logger with a process-global level, used across modules.
#pragma once

#include <sstream>
#include <string>

#include "common/sim_clock.h"

namespace pixels {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-global minimum level that is emitted.
void SetLogLevel(LogLevel level);

/// Returns the current process-global log level.
LogLevel GetLogLevel();

/// Virtual-time log stamping. While a SimClock is registered, every log
/// line is prefixed with virtual time (`t=12345ms`) so output correlates
/// with trace spans; otherwise lines carry wall-clock time. The displayed
/// virtual time is the value of the last `SyncLogTime` call (seeded at
/// registration): syncing is explicit and done on the simulation thread
/// only, so pool threads never race the SimClock's non-atomic state.
void RegisterLogClock(const SimClock* clock);
/// No-op unless `clock` is the registered one (a replacement already
/// registered by a newer owner stays).
void UnregisterLogClock(const SimClock* clock);
/// Advances the displayed virtual time (monotonic max).
void SyncLogTime(SimTime now);

namespace internal {

/// Emits one formatted log line to stderr; called by the PIXELS_LOG macro.
void EmitLog(LogLevel level, const char* file, int line, const std::string& msg);

/// Stream collector whose destructor emits the accumulated message.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLog(level_, file_, line_, stream_.str()); }

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define PIXELS_LOG(level)                                             \
  if (static_cast<int>(::pixels::LogLevel::level) <                   \
      static_cast<int>(::pixels::GetLogLevel())) {                    \
  } else                                                              \
    ::pixels::internal::LogMessage(::pixels::LogLevel::level,         \
                                   __FILE__, __LINE__)                \
        .stream()

#define PIXELS_DCHECK(cond)                                                    \
  if (cond) {                                                                  \
  } else                                                                       \
    ::pixels::internal::LogMessage(::pixels::LogLevel::kError, __FILE__,       \
                                   __LINE__)                                   \
        .stream()                                                              \
        << "DCHECK failed: " #cond " "

}  // namespace pixels
