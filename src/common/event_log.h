// Structured admission/audit event log. Every hold/dispatch/recall/
// placement/cancel decision (and shuffle stage progress) is recorded as a
// typed JSON event stamped in virtual time, so a run's control-plane
// decisions can be replayed, diffed, and asserted on.
//
// Invariants (shared with the Chrome-trace exporter in common/trace.h):
//   - Deterministic: identical runs produce byte-identical `ToJsonLines()`
//     exports. Emitters must therefore only emit from the simulation thread
//     or from deterministic points outside parallel sections (e.g. the
//     post-barrier winner-resolution loop in the shuffle scheduler).
//   - Virtual-time stamps: pool threads cannot touch SimClock, so the log
//     keeps an atomic mirror of virtual time (`SyncTime`), advanced by the
//     coordinator at event boundaries, exactly like Tracer::SyncTime.
//   - Bounded: the log keeps at most `capacity` records; older records are
//     dropped oldest-first and counted in `dropped()`.
//   - Free when absent: every emitter takes `EventLog*` and treats nullptr
//     as "disabled" — no allocation, no locking, no formatting.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/sim_clock.h"
#include "common/status.h"

namespace pixels {

/// One logged decision. `fields` is always a JSON object; `seq` is the
/// global emission index (monotone even across drops).
struct EventRecord {
  uint64_t seq = 0;
  SimTime time = 0;
  std::string type;
  Json fields;

  /// One-line JSON: the fields object plus reserved keys `seq`, `t_ms`,
  /// and `type`. Deterministic (sorted keys, fixed number formatting).
  std::string ToJsonLine() const;
};

/// Bounded, thread-safe, virtual-time-stamped event log.
class EventLog {
 public:
  static constexpr size_t kDefaultCapacity = 65536;

  explicit EventLog(size_t capacity = kDefaultCapacity);

  /// Advances the virtual-time mirror (monotone; lagging calls are no-ops).
  void SyncTime(SimTime now);
  /// Last synced virtual time.
  SimTime VirtualNow() const { return time_mirror_.load(std::memory_order_relaxed); }

  /// Appends one event stamped at `VirtualNow()`. `fields` should be a JSON
  /// object (a default-constructed Json is upgraded to an empty object).
  void Emit(const std::string& type, Json fields = Json::Object());

  /// Copies of the retained records, oldest first.
  std::vector<EventRecord> Snapshot() const;
  /// Retained records of one type, oldest first.
  std::vector<EventRecord> OfType(const std::string& type) const;
  /// Number of retained records of one type.
  size_t CountOfType(const std::string& type) const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Total events ever emitted (including dropped ones).
  uint64_t total_emitted() const;
  /// Events evicted by the capacity bound.
  uint64_t dropped() const;

  /// Drops every retained record (counters and seq keep advancing).
  void Clear();

  /// JSON-lines export of the retained records, oldest first, one
  /// `EventRecord::ToJsonLine()` per line, each newline-terminated.
  /// Byte-identical across identical runs.
  std::string ToJsonLines() const;

  /// Writes `ToJsonLines()` to `path` (truncating).
  Status WriteTo(const std::string& path) const;

 private:
  const size_t capacity_;
  std::atomic<SimTime> time_mirror_{0};

  mutable std::mutex mutex_;
  std::deque<EventRecord> records_;
  uint64_t next_seq_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace pixels
