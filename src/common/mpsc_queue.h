// Multi-producer single-consumer queue (Vyukov-style, non-intrusive).
// The submission mailbox of the actor-style query-server dispatcher: any
// thread may Push; exactly one consumer thread Pops. Push is lock-free
// (one exchange + one store); Pop is wait-free for the single consumer.
//
// Progress caveat inherent to the algorithm: between a producer's
// exchange of `head_` and its publication of `prev->next`, the chain is
// momentarily disconnected and Pop returns false even though an element
// is in flight. Callers that drain until empty must therefore treat
// "empty" as "empty right now" — the dispatcher re-pumps on every
// message enqueue, so nothing is ever stranded.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>

namespace pixels {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node();
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  ~MpscQueue() {
    Node* n = tail_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Enqueues a value. Safe from any thread, any number of producers.
  void Push(T value) {
    Node* n = new Node(std::move(value));
    // Claim the head slot, then link the predecessor to us. The queue is
    // "disconnected" between the two operations — see the header comment.
    Node* prev = head_.exchange(n, std::memory_order_acq_rel);
    prev->next.store(n, std::memory_order_release);
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Dequeues into `out`. Single consumer only. Returns false when the
  /// queue is (momentarily) empty.
  bool Pop(T* out) {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    *out = std::move(next->value);
    tail_ = next;
    delete tail;
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// True when no fully-published element is visible to the consumer.
  bool Empty() const {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

  /// Element count, approximate under concurrent pushes (exact once
  /// producers are quiescent). Monitoring only.
  size_t ApproxSize() const { return size_.load(std::memory_order_relaxed); }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  std::atomic<Node*> head_;  // producers exchange onto this end
  Node* tail_;               // consumer-owned: the stub before the front
  std::atomic<size_t> size_{0};
};

}  // namespace pixels
