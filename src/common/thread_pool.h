// Shared worker pool for morsel-driven parallel execution. One process-wide
// pool is shared by the top-level plan and the CF worker fleet; callers
// express parallelism through `ParallelFor`, which is safe to nest because
// the calling thread participates in draining its own work (no thread ever
// blocks waiting for a queue slot that only it could service).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace pixels {

/// Process-wide default degree of parallelism: the `pixels.parallelism`
/// override when set (see SetDefaultParallelism), else hardware
/// concurrency. Always >= 1.
int DefaultParallelism();

/// Overrides DefaultParallelism() for the process (0 restores the
/// hardware-concurrency default). The deterministic simulation benches set
/// this to 1 to reproduce serial behavior exactly.
void SetDefaultParallelism(int parallelism);

/// Fixed-size worker pool with a FIFO task queue.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Runs one queued task on the calling thread if any is pending.
  /// Returns false when the queue was empty. Lets threads that are
  /// waiting for results make progress instead of blocking (the
  /// work-stealing half of "work-stealing-friendly").
  bool Help();

  /// Runs `body(i)` for every i in [begin, end), distributing chunks of
  /// `grain` consecutive indices across up to `max_parallelism` threads
  /// (<= 1 runs inline, serially, with no synchronization). The calling
  /// thread always participates, so nesting ParallelFor inside a pool
  /// task cannot deadlock. Returns the first non-OK Status encountered
  /// (remaining chunks are skipped); exceptions from `body` are captured
  /// as Internal statuses.
  Status ParallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<Status(size_t)>& body,
                     int max_parallelism = 0);

  /// The process-wide pool, sized to hardware concurrency at first use.
  static ThreadPool* Shared();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace pixels
