// Deterministic query tracing. A Tracer collects parent/child spans that
// follow one query across every subsystem — server hold queue,
// coordinator queue, planning, MV lookup, VM scan or CF sub-plan,
// per-worker attempts, and individual storage operations — and exports
// them as Chrome-trace-event JSON (chrome://tracing, Perfetto).
//
// Spans are stamped with VIRTUAL time, not wall time: the tracer carries
// an atomic virtual-now that the simulation thread advances at event
// boundaries (`SyncTime`), and every span reads that. Two identical runs
// therefore produce byte-identical trace exports (under serial execution;
// a parallel fleet keeps the tree well-formed but may order sibling spans
// differently), which makes traces assertable in tests and diffable
// across commits.
//
// Overhead-when-off guarantee: with `TraceLevel::kOff` (the default)
// `StartSpan` returns 0 without taking the mutex, and every other call on
// span id 0 is a no-op — the billing-exactness paths are untouched.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_clock.h"

namespace pixels {

/// How much the tracing layer records.
///  - kOff:   nothing (zero overhead, the default).
///  - kSpans: span tree + attributes.
///  - kFull:  spans plus per-operator execution profiles (EXPLAIN ANALYZE
///            reports attached to QueryRecord/StatusView).
enum class TraceLevel : int { kOff = 0, kSpans = 1, kFull = 2 };

const char* TraceLevelName(TraceLevel level);

/// One recorded span. `end == -1` means the span was never ended (still
/// open when the trace was exported).
struct TraceSpan {
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = root
  std::string name;
  SimTime start = 0;
  SimTime end = -1;
  /// Creation sequence number: a deterministic total order under serial
  /// execution (ties in virtual time are common — a whole real execution
  /// happens inside one simulation event).
  uint64_t seq = 0;
  /// Ordered key/value attributes (bytes, retries, cache hit/miss, ...).
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Thread-safe span collector. One Tracer is shared by the query server,
/// the coordinator, the CF worker fleet, and the storage decorator; spans
/// from pool threads interleave safely under one mutex.
class Tracer {
 public:
  explicit Tracer(TraceLevel level = TraceLevel::kOff)
      : level_(static_cast<int>(level)) {}

  TraceLevel level() const {
    return static_cast<TraceLevel>(level_.load(std::memory_order_relaxed));
  }
  void set_level(TraceLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  bool enabled() const { return level() != TraceLevel::kOff; }
  /// Per-operator profiling (EXPLAIN ANALYZE reports) requested.
  bool profiling() const { return level() == TraceLevel::kFull; }

  /// Advances the tracer's virtual clock (monotonic max). Called on the
  /// simulation thread at event boundaries; pool threads only read, so
  /// span timestamps are race-free without touching the SimClock from
  /// worker threads.
  void SyncTime(SimTime now);
  SimTime VirtualNow() const {
    return virtual_now_.load(std::memory_order_relaxed);
  }

  /// Opens a span. Returns 0 (the no-op id) when tracing is off.
  uint64_t StartSpan(const std::string& name, uint64_t parent = 0);
  /// Closes a span at the current virtual time. No-op for id 0.
  void EndSpan(uint64_t id);
  /// Attaches an attribute to an open or closed span. No-op for id 0.
  void Annotate(uint64_t id, const std::string& key, const std::string& value);
  void Annotate(uint64_t id, const std::string& key, int64_t value);
  void Annotate(uint64_t id, const std::string& key, uint64_t value);

  /// Ambient parent for spans created by layers that have no span handle
  /// threaded to them (the storage decorator). The coordinator sets this
  /// to the executing query's span for the duration of the execution.
  /// Under a parallel fleet concurrent attempts race the slot: storage
  /// spans then attach to *a* live attempt span (the tree stays
  /// well-formed); serial execution nests exactly.
  void SetActiveParent(uint64_t id) {
    active_parent_.store(id, std::memory_order_relaxed);
  }
  uint64_t ActiveParent() const {
    return active_parent_.load(std::memory_order_relaxed);
  }

  /// Snapshot of every recorded span, in creation (seq) order.
  std::vector<TraceSpan> Snapshot() const;
  /// Spans whose name matches exactly, in creation order.
  std::vector<TraceSpan> FindSpans(const std::string& name) const;
  /// Direct children of `parent_id`, in creation order.
  std::vector<TraceSpan> ChildrenOf(uint64_t parent_id) const;
  size_t size() const;
  /// Drops every span (the virtual clock and level are kept).
  void Clear();

  /// Chrome trace-event JSON ("traceEvents" array of complete events,
  /// timestamps in microseconds of virtual time). Deterministic: spans are
  /// emitted in seq order with sorted attribute objects.
  std::string ToChromeTraceJson() const;

 private:
  std::atomic<int> level_;
  std::atomic<SimTime> virtual_now_{0};
  std::atomic<uint64_t> active_parent_{0};
  mutable std::mutex mutex_;
  uint64_t next_id_ = 1;
  std::vector<TraceSpan> spans_;  // index = id - 1
};

/// RAII helper: ends the span on scope exit (tolerates id 0).
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, uint64_t id) : tracer_(tracer), id_(id) {}
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  uint64_t id() const { return id_; }

 private:
  Tracer* tracer_;
  uint64_t id_;
};

}  // namespace pixels
