#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace pixels {

namespace {

std::atomic<int> g_default_parallelism{0};

int HardwareParallelism() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace

int DefaultParallelism() {
  int p = g_default_parallelism.load(std::memory_order_relaxed);
  return p > 0 ? p : HardwareParallelism();
}

void SetDefaultParallelism(int parallelism) {
  g_default_parallelism.store(parallelism > 0 ? parallelism : 0,
                              std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(num_threads, 1);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::Help() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

Status ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                               const std::function<Status(size_t)>& body,
                               int max_parallelism) {
  if (begin >= end) return Status::OK();
  if (grain == 0) grain = 1;
  int par = max_parallelism > 0 ? max_parallelism : DefaultParallelism();

  const size_t count = end - begin;
  const size_t num_chunks = (count + grain - 1) / grain;
  if (par <= 1 || num_chunks <= 1) {
    for (size_t i = begin; i < end; ++i) {
      PIXELS_RETURN_NOT_OK(body(i));
    }
    return Status::OK();
  }

  // Shared between the caller and helper tasks. Heap-allocated and
  // reference-counted so stray helpers that run after the caller returns
  // (possible only on error-triggered early exit) touch valid memory.
  struct SharedState {
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> chunks_done{0};
    std::atomic<bool> failed{false};
    std::mutex mutex;
    std::condition_variable done_cv;
    Status first_error = Status::OK();
    size_t begin, grain, end, num_chunks;
    const std::function<Status(size_t)>* body;
  };
  auto state = std::make_shared<SharedState>();
  state->begin = begin;
  state->grain = grain;
  state->end = end;
  state->num_chunks = num_chunks;
  state->body = &body;

  auto run_chunks = [](const std::shared_ptr<SharedState>& s) {
    while (true) {
      size_t chunk = s->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= s->num_chunks) return;
      if (!s->failed.load(std::memory_order_acquire)) {
        size_t lo = s->begin + chunk * s->grain;
        size_t hi = std::min(lo + s->grain, s->end);
        Status st = Status::OK();
        try {
          for (size_t i = lo; i < hi && st.ok(); ++i) st = (*s->body)(i);
        } catch (const std::exception& e) {
          st = Status::Internal(std::string("ParallelFor body threw: ") +
                                e.what());
        } catch (...) {
          st = Status::Internal("ParallelFor body threw a non-std exception");
        }
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(s->mutex);
          if (!s->failed.exchange(true, std::memory_order_release)) {
            s->first_error = std::move(st);
          }
        }
      }
      size_t done = s->chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (done == s->num_chunks) {
        std::lock_guard<std::mutex> lock(s->mutex);
        s->done_cv.notify_all();
      }
    }
  };

  // Helpers beyond the caller itself; capped so a tiny range does not
  // enqueue useless no-op tasks.
  const size_t helpers = std::min(
      {static_cast<size_t>(par - 1), num_chunks - 1,
       static_cast<size_t>(num_threads())});
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state, run_chunks] { run_chunks(state); });
  }

  // The caller drains chunks too — this is what makes nesting safe: even
  // if every pool thread is busy (or blocked in an outer ParallelFor),
  // the range still completes on the calling thread.
  run_chunks(state);

  // While stragglers finish their claimed chunks, keep the pool moving by
  // executing other queued tasks instead of blocking cold.
  while (state->chunks_done.load(std::memory_order_acquire) <
         state->num_chunks) {
    if (!Help()) {
      std::unique_lock<std::mutex> lock(state->mutex);
      state->done_cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return state->chunks_done.load(std::memory_order_acquire) >=
               state->num_chunks;
      });
    }
  }

  std::lock_guard<std::mutex> lock(state->mutex);
  return state->first_error;
}

ThreadPool* ThreadPool::Shared() {
  static ThreadPool pool(HardwareParallelism());
  return &pool;
}

}  // namespace pixels
