#include "plan/binder.h"

#include <map>
#include <set>

#include "sql/parser.h"

namespace pixels {

namespace {

/// Name-resolution scope: the tables visible to column references.
class Scope {
 public:
  Status AddTable(const std::string& qualifier, const TableSchema* schema) {
    if (by_qualifier_.count(qualifier) > 0) {
      return Status::InvalidArgument("duplicate table alias: " + qualifier);
    }
    by_qualifier_[qualifier] = schema;
    order_.push_back(qualifier);
    return Status::OK();
  }

  /// Resolves a column reference; fills the qualifier for bare names.
  Status ResolveColumn(Expr* ref) const {
    if (!ref->qualifier.empty()) {
      auto it = by_qualifier_.find(ref->qualifier);
      if (it == by_qualifier_.end()) {
        return Status::InvalidArgument("unknown table alias '" +
                                       ref->qualifier + "'");
      }
      if (it->second->FindColumn(ref->name) < 0) {
        return Status::InvalidArgument("no column '" + ref->name +
                                       "' in table " + ref->qualifier);
      }
      return Status::OK();
    }
    std::string found;
    for (const auto& q : order_) {
      if (by_qualifier_.at(q)->FindColumn(ref->name) >= 0) {
        if (!found.empty()) {
          return Status::InvalidArgument("ambiguous column '" + ref->name +
                                         "' (in " + found + " and " + q + ")");
        }
        found = q;
      }
    }
    if (found.empty()) {
      return Status::InvalidArgument("unknown column '" + ref->name + "'");
    }
    ref->qualifier = found;
    return Status::OK();
  }

  /// All columns in FROM order, qualified.
  std::vector<std::pair<std::string, std::string>> AllColumns() const {
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto& q : order_) {
      for (const auto& col : by_qualifier_.at(q)->columns) {
        out.emplace_back(q, col.name);
      }
    }
    return out;
  }

 private:
  std::map<std::string, const TableSchema*> by_qualifier_;
  std::vector<std::string> order_;
};

/// Recursively resolves all column refs in an expression.
Status ResolveExpr(Expr* e, const Scope& scope) {
  if (e->kind == Expr::Kind::kColumnRef) return scope.ResolveColumn(e);
  if (e->kind == Expr::Kind::kStar) {
    // Only COUNT(*) reaches here (SELECT * is expanded earlier).
    return Status::OK();
  }
  for (auto& a : e->args) PIXELS_RETURN_NOT_OK(ResolveExpr(a.get(), scope));
  return Status::OK();
}

/// Collects aggregate calls in an expression into `out` (deduplicated by
/// canonical string).
void CollectAggregates(const Expr& e, std::map<std::string, const Expr*>* out) {
  if (e.kind == Expr::Kind::kFunction && IsAggregateFunction(e.name)) {
    out->emplace(e.ToString(), &e);
    return;  // no nested aggregates
  }
  for (const auto& a : e.args) CollectAggregates(*a, out);
}

/// Rewrites an expression for evaluation above an Aggregate node:
/// aggregate subtrees become column refs to their canonical output name;
/// subtrees equal to a group expression become refs to the group output.
/// Returns an error if a bare column survives (not grouped, not aggregated).
Result<ExprPtr> RewriteOverAggregate(
    const Expr& e, const std::vector<ExprPtr>& group_exprs,
    const std::vector<std::string>& group_names,
    const std::map<std::string, std::string>& agg_name_of) {
  // Group expression match first (a group key used verbatim).
  for (size_t g = 0; g < group_exprs.size(); ++g) {
    if (e.Equals(*group_exprs[g])) {
      return MakeColumnRef("", group_names[g]);
    }
  }
  if (e.kind == Expr::Kind::kFunction && IsAggregateFunction(e.name)) {
    auto it = agg_name_of.find(e.ToString());
    if (it == agg_name_of.end()) {
      return Status::Internal("aggregate not collected: " + e.ToString());
    }
    return MakeColumnRef("", it->second);
  }
  if (e.kind == Expr::Kind::kColumnRef) {
    return Status::InvalidArgument(
        "column '" + e.QualifiedName() +
        "' must appear in GROUP BY or inside an aggregate");
  }
  ExprPtr out = e.Clone();
  for (size_t i = 0; i < out->args.size(); ++i) {
    PIXELS_ASSIGN_OR_RETURN(
        out->args[i], RewriteOverAggregate(*e.args[i], group_exprs, group_names,
                                           agg_name_of));
  }
  return out;
}

/// Output name for a select item without an explicit alias.
std::string DefaultItemName(const Expr& e) {
  if (e.kind == Expr::Kind::kColumnRef) return e.name;
  return e.ToString();
}

}  // namespace

Result<PlanPtr> BindSelect(const SelectStmt& stmt, const Catalog& catalog,
                           const std::string& db) {
  if (!stmt.has_from) {
    // SELECT <literals>: bind as a projection over a one-row dummy view.
    auto one_row = std::make_shared<Table>();
    auto batch = std::make_shared<RowBatch>();
    auto col = MakeVector(TypeId::kInt64);
    col->AppendInt(1);
    batch->AddColumn("$dummy", std::move(col));
    one_row->AddBatch(std::move(batch));
    PlanPtr plan = MakeMaterializedView(std::move(one_row));
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (const auto& item : stmt.items) {
      if (item.expr->kind == Expr::Kind::kStar) {
        return Status::InvalidArgument("SELECT * requires FROM");
      }
      if (item.expr->ContainsAggregate()) {
        return Status::InvalidArgument("aggregates require FROM");
      }
      names.push_back(item.alias.empty() ? DefaultItemName(*item.expr)
                                         : item.alias);
      exprs.push_back(item.expr->Clone());
    }
    return MakeProject(std::move(plan), std::move(exprs), std::move(names));
  }

  // 1. Build the scope and scan/join tree.
  Scope scope;
  auto add_table = [&](const TableRef& ref) -> Result<PlanPtr> {
    PIXELS_ASSIGN_OR_RETURN(const TableSchema* schema,
                            catalog.GetTable(db, ref.table));
    const std::string qualifier = ref.EffectiveName();
    PIXELS_RETURN_NOT_OK(scope.AddTable(qualifier, schema));
    PlanPtr scan = MakeScan(db, ref.table, qualifier);
    for (const auto& col : schema->columns) scan->columns.push_back(col.name);
    return scan;
  };

  PIXELS_ASSIGN_OR_RETURN(PlanPtr plan, add_table(stmt.from));
  for (const auto& join : stmt.joins) {
    PIXELS_ASSIGN_OR_RETURN(PlanPtr right, add_table(join.table));
    ExprPtr cond;
    if (join.on) {
      cond = join.on->Clone();
      PIXELS_RETURN_NOT_OK(ResolveExpr(cond.get(), scope));
    }
    plan = MakeJoin(std::move(plan), std::move(right), join.type,
                    std::move(cond));
  }

  // 2. WHERE.
  if (stmt.where) {
    ExprPtr where = stmt.where->Clone();
    if (where->ContainsAggregate()) {
      return Status::InvalidArgument("aggregates are not allowed in WHERE");
    }
    PIXELS_RETURN_NOT_OK(ResolveExpr(where.get(), scope));
    plan = MakeFilter(std::move(plan), std::move(where));
  }

  // 3. Expand SELECT * and resolve select expressions.
  std::vector<SelectItem> items;
  for (const auto& item : stmt.items) {
    if (item.expr->kind == Expr::Kind::kStar) {
      for (const auto& [q, c] : scope.AllColumns()) {
        items.push_back(SelectItem{MakeColumnRef(q, c), ""});
      }
      continue;
    }
    SelectItem copy;
    copy.expr = item.expr->Clone();
    copy.alias = item.alias;
    PIXELS_RETURN_NOT_OK(ResolveExpr(copy.expr.get(), scope));
    items.push_back(std::move(copy));
  }
  if (items.empty()) return Status::InvalidArgument("empty select list");

  // 4. Aggregation.
  bool has_aggregates = !stmt.group_by.empty() || stmt.having != nullptr;
  for (const auto& item : items) {
    has_aggregates = has_aggregates || item.expr->ContainsAggregate();
  }

  ExprPtr having;
  if (stmt.having) {
    having = stmt.having->Clone();
    PIXELS_RETURN_NOT_OK(ResolveExpr(having.get(), scope));
  }

  std::vector<ExprPtr> final_exprs;
  std::vector<std::string> final_names;
  std::shared_ptr<LogicalPlan> agg_node;
  std::map<std::string, std::string> agg_name_of;

  if (has_aggregates) {
    auto agg = std::make_shared<LogicalPlan>();
    agg->kind = LogicalPlan::Kind::kAggregate;
    agg->children.push_back(plan);

    for (const auto& g : stmt.group_by) {
      ExprPtr ge = g->Clone();
      PIXELS_RETURN_NOT_OK(ResolveExpr(ge.get(), scope));
      if (ge->ContainsAggregate()) {
        return Status::InvalidArgument("aggregates not allowed in GROUP BY");
      }
      agg->group_names.push_back(ge->kind == Expr::Kind::kColumnRef
                                     ? ge->QualifiedName()
                                     : ge->ToString());
      agg->group_exprs.push_back(std::move(ge));
    }

    // Collect aggregate calls from select items, HAVING, and ORDER BY.
    std::map<std::string, const Expr*> agg_calls;
    for (const auto& item : items) CollectAggregates(*item.expr, &agg_calls);
    if (having) CollectAggregates(*having, &agg_calls);
    std::vector<ExprPtr> resolved_order;
    for (const auto& o : stmt.order_by) {
      ExprPtr oe = o.expr->Clone();
      if (oe->kind != Expr::Kind::kLiteral) {
        // Resolution may fail when it references an output alias; that is
        // handled later, so ignore errors here for non-aggregate refs.
        Status st = ResolveExpr(oe.get(), scope);
        if (st.ok()) CollectAggregates(*oe, &agg_calls);
      }
      resolved_order.push_back(std::move(oe));
    }

    for (const auto& [canon, call] : agg_calls) {
      agg_name_of[canon] = canon;  // output column named by canonical string
      agg->agg_names.push_back(canon);
      agg->agg_exprs.push_back(call->Clone());
    }
    agg_node = agg;
    plan = agg;

    // HAVING becomes a filter over aggregate outputs.
    if (having) {
      PIXELS_ASSIGN_OR_RETURN(
          ExprPtr rewritten,
          RewriteOverAggregate(*having, agg->group_exprs, agg->group_names,
                               agg_name_of));
      plan = MakeFilter(std::move(plan), std::move(rewritten));
    }

    for (auto& item : items) {
      PIXELS_ASSIGN_OR_RETURN(
          ExprPtr rewritten,
          RewriteOverAggregate(*item.expr, agg->group_exprs, agg->group_names,
                               agg_name_of));
      final_names.push_back(item.alias.empty() ? DefaultItemName(*item.expr)
                                               : item.alias);
      final_exprs.push_back(std::move(rewritten));
    }
  } else {
    for (auto& item : items) {
      final_names.push_back(item.alias.empty() ? DefaultItemName(*item.expr)
                                               : item.alias);
      final_exprs.push_back(item.expr->Clone());
    }
  }

  // Keep originals for ORDER BY matching before moving into the project.
  std::vector<ExprPtr> select_originals;
  for (const auto& item : items) select_originals.push_back(item.expr->Clone());

  plan = MakeProject(std::move(plan), std::move(final_exprs),
                     std::move(final_names));
  LogicalPlan* project_node = plan.get();
  const std::vector<std::string>& out_names = plan->names;
  const size_t visible_columns = out_names.size();

  if (stmt.distinct) {
    auto d = std::make_shared<LogicalPlan>();
    d->kind = LogicalPlan::Kind::kDistinct;
    d->children.push_back(plan);
    plan = d;
  }

  // 5. ORDER BY: positional, by output alias/name, by select expression,
  // or (for plain queries) by any resolvable expression via a hidden
  // projection column dropped after the sort.
  // Appends `resolved` as a hidden projection column and returns a
  // reference to it usable as a sort key.
  auto add_hidden_sort_key = [&](const Expr& resolved) -> Result<ExprPtr> {
    if (stmt.distinct) {
      return Status::InvalidArgument(
          "ORDER BY of a DISTINCT query must reference the select list");
    }
    ExprPtr proj_expr;
    if (has_aggregates) {
      PIXELS_ASSIGN_OR_RETURN(
          proj_expr,
          RewriteOverAggregate(resolved, agg_node->group_exprs,
                               agg_node->group_names, agg_name_of));
    } else {
      proj_expr = resolved.Clone();
    }
    std::string hidden = "$sort" + std::to_string(project_node->names.size());
    project_node->exprs.push_back(std::move(proj_expr));
    project_node->names.push_back(hidden);
    return MakeColumnRef("", hidden);
  };

  if (!stmt.order_by.empty()) {
    auto sort = std::make_shared<LogicalPlan>();
    sort->kind = LogicalPlan::Kind::kSort;
    sort->children.push_back(plan);
    for (const auto& o : stmt.order_by) {
      ExprPtr key;
      if (o.expr->kind == Expr::Kind::kLiteral &&
          o.expr->literal.kind == Value::Kind::kInt) {
        int64_t pos = o.expr->literal.i;
        if (pos < 1 || pos > static_cast<int64_t>(out_names.size())) {
          return Status::InvalidArgument("ORDER BY position out of range");
        }
        key = MakeColumnRef("", out_names[static_cast<size_t>(pos - 1)]);
      } else if (o.expr->kind == Expr::Kind::kColumnRef &&
                 o.expr->qualifier.empty()) {
        // Try alias / output-name match first.
        bool matched = false;
        for (const auto& n : out_names) {
          if (n == o.expr->name) {
            key = MakeColumnRef("", n);
            matched = true;
            break;
          }
        }
        if (!matched) {
          ExprPtr oe = o.expr->Clone();
          PIXELS_RETURN_NOT_OK(ResolveExpr(oe.get(), scope));
          // Match against the original select expressions.
          for (size_t i = 0; i < select_originals.size(); ++i) {
            if (oe->Equals(*select_originals[i])) {
              key = MakeColumnRef("", out_names[i]);
              matched = true;
              break;
            }
          }
          if (!matched) {
            PIXELS_ASSIGN_OR_RETURN(key, add_hidden_sort_key(*oe));
          }
        }
      } else {
        // Expression: match against select expressions, else hidden key.
        ExprPtr oe = o.expr->Clone();
        PIXELS_RETURN_NOT_OK(ResolveExpr(oe.get(), scope));
        bool matched = false;
        for (size_t i = 0; i < select_originals.size(); ++i) {
          if (oe->Equals(*select_originals[i])) {
            key = MakeColumnRef("", out_names[i]);
            matched = true;
            break;
          }
        }
        if (!matched) {
          PIXELS_ASSIGN_OR_RETURN(key, add_hidden_sort_key(*oe));
        }
      }
      sort->order_by.push_back(OrderItem{std::move(key), o.ascending});
    }
    plan = sort;
  }

  // Drop hidden sort columns after the sort.
  if (project_node->names.size() > visible_columns) {
    std::vector<ExprPtr> vis_exprs;
    std::vector<std::string> vis_names;
    for (size_t i = 0; i < visible_columns; ++i) {
      vis_exprs.push_back(MakeColumnRef("", project_node->names[i]));
      vis_names.push_back(project_node->names[i]);
    }
    plan = MakeProject(std::move(plan), std::move(vis_exprs),
                       std::move(vis_names));
  }

  if (stmt.limit >= 0) plan = MakeLimit(std::move(plan), stmt.limit);
  return plan;
}

Result<PlanPtr> PlanQuery(const std::string& sql, const Catalog& catalog,
                          const std::string& db) {
  PIXELS_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelect(sql));
  return BindSelect(*stmt, catalog, db);
}

}  // namespace pixels
