// Binder: resolves a parsed SelectStmt against the catalog and produces a
// logical plan — name resolution, aggregate extraction, and validation.
#pragma once

#include "catalog/catalog.h"
#include "plan/logical_plan.h"
#include "sql/ast.h"

namespace pixels {

/// Binds `stmt` against `catalog`, resolving unqualified tables in
/// database `db`. Produces an unoptimized logical plan:
///   Scan/Join → Filter(where) → [Aggregate → Filter(having)] → Project
///   → [Distinct] → [Sort] → [Limit]
Result<PlanPtr> BindSelect(const SelectStmt& stmt, const Catalog& catalog,
                           const std::string& db);

/// Convenience: parse + bind.
Result<PlanPtr> PlanQuery(const std::string& sql, const Catalog& catalog,
                          const std::string& db);

}  // namespace pixels
