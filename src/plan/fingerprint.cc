#include "plan/fingerprint.h"

#include <algorithm>

#include "plan/optimizer.h"

namespace pixels {

namespace {

// Two independent FNV-1a streams; both must collide for a key collision.
constexpr uint64_t kFnvOffset1 = 14695981039346656037ULL;
constexpr uint64_t kFnvOffset2 = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Fnv1a(const std::string& text, uint64_t h) {
  for (unsigned char c : text) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::string Hex16(uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// True for operators where (a op b) == (b op a).
bool IsCommutative(const std::string& op) {
  return op == "+" || op == "*" || op == "=" || op == "<>" || op == "AND" ||
         op == "OR";
}

std::string JoinSorted(std::vector<std::string> parts, const char* sep) {
  std::sort(parts.begin(), parts.end());
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace

std::string PlanFingerprint::ToHex() const { return Hex16(hi) + Hex16(lo); }

std::string CanonicalExprText(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral: {
      // The kind tag keeps 1 and '1' distinct even if their renderings
      // matched. Short literals embed verbatim, length-prefixed so the
      // bytes are self-delimiting and cannot impersonate surrounding
      // grammar; only long constants are hashed, and then with both FNV
      // streams so a single 64-bit collision cannot merge two keys.
      std::string payload;
      payload += static_cast<char>('0' + static_cast<int>(expr.literal.kind));
      payload += expr.literal.ToString();
      if (payload.size() <= 64) {
        return "lit{" + std::to_string(payload.size()) + ":" + payload + "}";
      }
      return "lit#" + Hex16(Fnv1a(payload, kFnvOffset1)) +
             Hex16(Fnv1a(payload, kFnvOffset2));
    }
    case Expr::Kind::kColumnRef:
      return "col:" + expr.QualifiedName();
    case Expr::Kind::kStar:
      return "*";
    case Expr::Kind::kUnary:
      return expr.op + "(" + CanonicalExprText(*expr.args[0]) + ")";
    case Expr::Kind::kBinary: {
      std::string a = CanonicalExprText(*expr.args[0]);
      std::string b = CanonicalExprText(*expr.args[1]);
      std::string op = expr.op;
      // (a > b) and (b < a) are the same predicate: normalize every
      // greater-than comparison to its flipped less-than form.
      if (op == ">" || op == ">=") {
        op = op == ">" ? "<" : "<=";
        std::swap(a, b);
      }
      if (IsCommutative(op) && b < a) std::swap(a, b);
      return "(" + a + " " + op + " " + b + ")";
    }
    case Expr::Kind::kFunction: {
      std::string s = expr.name;
      if (expr.distinct) s += " distinct";
      s += "(";
      for (size_t i = 0; i < expr.args.size(); ++i) {
        if (i > 0) s += ",";
        s += CanonicalExprText(*expr.args[i]);
      }
      return s + ")";
    }
    case Expr::Kind::kBetween:
      return "(" + CanonicalExprText(*expr.args[0]) +
             (expr.negated ? " not" : "") + " between " +
             CanonicalExprText(*expr.args[1]) + " and " +
             CanonicalExprText(*expr.args[2]) + ")";
    case Expr::Kind::kInList: {
      // IN-list membership is order-insensitive.
      std::vector<std::string> items;
      for (size_t i = 1; i < expr.args.size(); ++i) {
        items.push_back(CanonicalExprText(*expr.args[i]));
      }
      return "(" + CanonicalExprText(*expr.args[0]) +
             (expr.negated ? " not" : "") + " in [" +
             JoinSorted(std::move(items), ",") + "])";
    }
    case Expr::Kind::kIsNull:
      return "(" + CanonicalExprText(*expr.args[0]) + " is" +
             (expr.negated ? " not" : "") + " null)";
    case Expr::Kind::kCase: {
      std::string s = "case(";
      for (size_t i = 0; i < expr.args.size(); ++i) {
        if (i > 0) s += ",";
        s += CanonicalExprText(*expr.args[i]);
      }
      return s + (expr.has_else ? ",else" : "") + ")";
    }
  }
  return "?";
}

Result<std::string> CanonicalPlanText(const LogicalPlan& plan) {
  switch (plan.kind) {
    case LogicalPlan::Kind::kScan: {
      std::string s = "scan(" + plan.db + "." + plan.table;
      const std::string& alias =
          plan.table_alias.empty() ? plan.table : plan.table_alias;
      s += " as " + alias;
      // Projection order is irrelevant — downstream operators resolve
      // columns by name — so it is sorted out of the key.
      s += "|cols=[" + JoinSorted(plan.columns, ",") + "]";
      std::vector<std::string> preds;
      for (const auto& p : plan.pushed) {
        preds.push_back(p.column + " " + p.op + " " +
                        CanonicalExprText(*MakeLiteral(p.literal)));
      }
      s += "|pred=[" + JoinSorted(std::move(preds), ";") + "]";
      // The CF partitioner restricts workers to file subsets; partitions
      // must never share a key with each other or with the full scan.
      if (!plan.file_subset.empty()) {
        s += "|files=[" + JoinSorted(plan.file_subset, ",") + "]";
      }
      return s + ")";
    }
    case LogicalPlan::Kind::kFilter: {
      PIXELS_ASSIGN_OR_RETURN(std::string child,
                              CanonicalPlanText(*plan.children[0]));
      // AND-conjunct order is commutative: sort the canonical conjuncts.
      std::vector<std::string> parts;
      for (const auto& c : SplitConjuncts(*plan.predicate)) {
        parts.push_back(CanonicalExprText(*c));
      }
      return "filter{" + JoinSorted(std::move(parts), ";") + "}(" + child +
             ")";
    }
    case LogicalPlan::Kind::kProject: {
      PIXELS_ASSIGN_OR_RETURN(std::string child,
                              CanonicalPlanText(*plan.children[0]));
      // Output columns are addressed by name, so (name, expr) pairs are
      // sorted: SELECT a, b and SELECT b, a share a key.
      std::vector<std::string> parts;
      for (size_t i = 0; i < plan.exprs.size(); ++i) {
        parts.push_back(plan.names[i] + "=" +
                        CanonicalExprText(*plan.exprs[i]));
      }
      return "project{" + JoinSorted(std::move(parts), ";") + "}(" + child +
             ")";
    }
    case LogicalPlan::Kind::kJoin: {
      PIXELS_ASSIGN_OR_RETURN(std::string left,
                              CanonicalPlanText(*plan.children[0]));
      PIXELS_ASSIGN_OR_RETURN(std::string right,
                              CanonicalPlanText(*plan.children[1]));
      std::string s = "join:";
      s += plan.join_type == JoinClause::Type::kLeft
               ? "left"
               : (plan.join_type == JoinClause::Type::kCross ? "cross"
                                                             : "inner");
      if (plan.join_condition != nullptr) {
        s += "{" + CanonicalExprText(*plan.join_condition) + "}";
      }
      return s + "(" + left + ")(" + right + ")";
    }
    case LogicalPlan::Kind::kAggregate: {
      PIXELS_ASSIGN_OR_RETURN(std::string child,
                              CanonicalPlanText(*plan.children[0]));
      std::vector<std::string> groups;
      for (size_t i = 0; i < plan.group_exprs.size(); ++i) {
        groups.push_back(plan.group_names[i] + "=" +
                         CanonicalExprText(*plan.group_exprs[i]));
      }
      std::vector<std::string> aggs;
      for (size_t i = 0; i < plan.agg_exprs.size(); ++i) {
        aggs.push_back(plan.agg_names[i] + "=" +
                       CanonicalExprText(*plan.agg_exprs[i]));
      }
      std::string s = "agg";
      if (plan.partial) s += ":partial";
      if (plan.merge_partials) s += ":merge";
      return s + "{" + JoinSorted(std::move(groups), ";") + "}{" +
             JoinSorted(std::move(aggs), ";") + "}(" + child + ")";
    }
    case LogicalPlan::Kind::kSort: {
      PIXELS_ASSIGN_OR_RETURN(std::string child,
                              CanonicalPlanText(*plan.children[0]));
      // Sort-key order is significant (primary vs secondary key).
      std::string s = "sort{";
      for (size_t i = 0; i < plan.order_by.size(); ++i) {
        if (i > 0) s += ",";
        s += CanonicalExprText(*plan.order_by[i].expr);
        s += plan.order_by[i].ascending ? " asc" : " desc";
      }
      return s + "}(" + child + ")";
    }
    case LogicalPlan::Kind::kLimit: {
      PIXELS_ASSIGN_OR_RETURN(std::string child,
                              CanonicalPlanText(*plan.children[0]));
      return "limit:" + std::to_string(plan.limit) + "(" + child + ")";
    }
    case LogicalPlan::Kind::kDistinct: {
      PIXELS_ASSIGN_OR_RETURN(std::string child,
                              CanonicalPlanText(*plan.children[0]));
      return "distinct(" + child + ")";
    }
    case LogicalPlan::Kind::kMaterializedView:
      return Status::InvalidArgument(
          "plan with an inlined materialized view is not fingerprintable");
  }
  return Status::Internal("unknown plan node kind");
}

Result<PlanFingerprint> FingerprintPlan(const LogicalPlan& plan) {
  PIXELS_ASSIGN_OR_RETURN(std::string text, CanonicalPlanText(plan));
  PlanFingerprint fp;
  fp.hi = Fnv1a(text, kFnvOffset1);
  fp.lo = Fnv1a(text, kFnvOffset2);
  return fp;
}

namespace {

Status CollectPins(const LogicalPlan& plan, const Catalog& catalog,
                   std::vector<TableVersionPin>* out) {
  if (plan.kind == LogicalPlan::Kind::kScan) {
    PIXELS_ASSIGN_OR_RETURN(uint64_t version,
                            catalog.GetTableVersion(plan.db, plan.table));
    out->push_back(TableVersionPin{plan.db, plan.table, version});
  }
  for (const auto& c : plan.children) {
    PIXELS_RETURN_NOT_OK(CollectPins(*c, catalog, out));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<TableVersionPin>> CollectTableVersionPins(
    const LogicalPlan& plan, const Catalog& catalog) {
  std::vector<TableVersionPin> pins;
  PIXELS_RETURN_NOT_OK(CollectPins(plan, catalog, &pins));
  std::sort(pins.begin(), pins.end(),
            [](const TableVersionPin& a, const TableVersionPin& b) {
              if (a.db != b.db) return a.db < b.db;
              if (a.table != b.table) return a.table < b.table;
              return a.version < b.version;
            });
  pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
  return pins;
}

}  // namespace pixels
