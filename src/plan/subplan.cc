#include "plan/subplan.h"

namespace pixels {

namespace {

bool IsHeavy(const LogicalPlan& node) {
  switch (node.kind) {
    case LogicalPlan::Kind::kScan:
    case LogicalPlan::Kind::kJoin:
    case LogicalPlan::Kind::kAggregate:
      return true;
    default:
      return false;
  }
}

bool HasDistinctAggregate(const LogicalPlan& agg) {
  for (const auto& e : agg.agg_exprs) {
    if (e->distinct) return true;
  }
  return false;
}

/// Finds the first heavy node walking down through unary light nodes.
/// Returns the owning child slot (or nullptr when root itself is heavy,
/// signalled via *root_is_heavy).
PlanPtr* FindHeavyBoundary(PlanPtr* root, bool* root_is_heavy) {
  *root_is_heavy = false;
  if (IsHeavy(**root)) {
    *root_is_heavy = true;
    return root;
  }
  PlanPtr* slot = root;
  while (true) {
    LogicalPlan& node = **slot;
    if (node.children.size() != 1) return nullptr;  // view/leaf: nothing heavy
    PlanPtr* child_slot = &node.children[0];
    if (IsHeavy(**child_slot)) return child_slot;
    slot = child_slot;
  }
}

}  // namespace

Result<SubPlanSplit> SplitForCf(const PlanPtr& plan) {
  SubPlanSplit split;
  split.final_plan = plan->Clone();

  bool root_is_heavy = false;
  PlanPtr* slot = FindHeavyBoundary(&split.final_plan, &root_is_heavy);
  if (slot == nullptr) {
    // Nothing heavy: the whole plan runs top-level.
    split.subplan = nullptr;
    return split;
  }

  PlanPtr heavy = *slot;

  if (heavy->kind == LogicalPlan::Kind::kAggregate &&
      !HasDistinctAggregate(*heavy) && !heavy->partial &&
      !heavy->merge_partials) {
    // Split into partial (CF) + final merge (top-level).
    PlanPtr partial = heavy->Clone();
    partial->partial = true;

    auto final_agg = std::make_shared<LogicalPlan>();
    final_agg->kind = LogicalPlan::Kind::kAggregate;
    final_agg->merge_partials = true;
    // Group by the partial output group columns.
    for (const auto& gname : heavy->group_names) {
      final_agg->group_exprs.push_back(MakeColumnRef("", gname));
      final_agg->group_names.push_back(gname);
    }
    for (size_t i = 0; i < heavy->agg_exprs.size(); ++i) {
      final_agg->agg_exprs.push_back(heavy->agg_exprs[i]->Clone());
      final_agg->agg_names.push_back(heavy->agg_names[i]);
    }
    auto placeholder = MakeMaterializedView(nullptr);
    placeholder->view_columns = partial->OutputColumns();
    final_agg->children.push_back(std::move(placeholder));
    *slot = final_agg;

    split.subplan = std::move(partial);
    split.partial_agg = true;
    return split;
  }

  if (heavy->kind == LogicalPlan::Kind::kAggregate) {
    // Non-mergeable aggregate: push its child instead.
    PlanPtr child = heavy->children[0];
    auto placeholder = MakeMaterializedView(nullptr);
    placeholder->view_columns = child->OutputColumns();
    heavy->children[0] = std::move(placeholder);
    split.subplan = child;
    return split;
  }

  // Scan / Join / Filter-over-scan subtree: push it entirely.
  auto placeholder = MakeMaterializedView(nullptr);
  placeholder->view_columns = heavy->OutputColumns();
  *slot = std::move(placeholder);
  split.subplan = heavy;
  return split;
}

namespace {

Status InjectViewImpl(LogicalPlan* node, TablePtr* view, bool* injected) {
  if (node->kind == LogicalPlan::Kind::kMaterializedView &&
      node->view == nullptr) {
    if (*injected) return Status::Internal("multiple view placeholders");
    node->view = *view;
    // Keep the declared columns from the split (worker results use the
    // same names); fall back to the table's own names.
    if (node->view_columns.empty() && node->view != nullptr) {
      node->view_columns = node->view->ColumnNames();
    }
    *injected = true;
    return Status::OK();
  }
  for (auto& c : node->children) {
    PIXELS_RETURN_NOT_OK(InjectViewImpl(c.get(), view, injected));
  }
  return Status::OK();
}

void FindScans(const PlanPtr& node, std::vector<LogicalPlan*>* scans) {
  if (node->kind == LogicalPlan::Kind::kScan) scans->push_back(node.get());
  for (const auto& c : node->children) FindScans(c, scans);
}

}  // namespace

Status InjectView(const PlanPtr& final_plan, TablePtr view) {
  bool injected = false;
  PIXELS_RETURN_NOT_OK(InjectViewImpl(final_plan.get(), &view, &injected));
  if (!injected) {
    return Status::FailedPrecondition("plan has no view placeholder");
  }
  return Status::OK();
}

Result<std::vector<PlanPtr>> PartitionSubplan(const PlanPtr& subplan,
                                              int num_workers,
                                              const Catalog& catalog) {
  if (num_workers <= 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  std::vector<LogicalPlan*> scans;
  FindScans(subplan, &scans);
  if (scans.empty()) {
    return Status::InvalidArgument("sub-plan has no scan to partition");
  }
  // Pick the largest base table as the partitioned side.
  LogicalPlan* largest = nullptr;
  uint64_t largest_bytes = 0;
  for (auto* scan : scans) {
    PIXELS_ASSIGN_OR_RETURN(const TableSchema* schema,
                            catalog.GetTable(scan->db, scan->table));
    if (largest == nullptr || schema->total_bytes >= largest_bytes) {
      largest = scan;
      largest_bytes = schema->total_bytes;
    }
  }
  PIXELS_ASSIGN_OR_RETURN(const TableSchema* part_schema,
                          catalog.GetTable(largest->db, largest->table));
  const auto& files = part_schema->files;
  if (files.empty()) {
    return Status::FailedPrecondition("partitioned table has no files: " +
                                      largest->table);
  }
  const int workers =
      std::min<int>(num_workers, static_cast<int>(files.size()));
  std::vector<PlanPtr> out;
  for (int w = 0; w < workers; ++w) {
    PlanPtr worker_plan = subplan->Clone();
    std::vector<LogicalPlan*> worker_scans;
    FindScans(worker_plan, &worker_scans);
    // Locate the clone of `largest` by table identity (db+table+alias).
    for (auto* scan : worker_scans) {
      if (scan->db == largest->db && scan->table == largest->table &&
          scan->table_alias == largest->table_alias) {
        for (size_t f = static_cast<size_t>(w); f < files.size();
             f += static_cast<size_t>(workers)) {
          scan->file_subset.push_back(files[f]);
        }
        break;
      }
    }
    out.push_back(std::move(worker_plan));
  }
  return out;
}

}  // namespace pixels
