// CF sub-plan splitting (paper §3.1): the expensive operators (scans,
// joins, aggregations) at the bottom of a plan are cut into a sub-plan
// that ephemeral CF workers execute; its result re-enters the top-level
// plan as a materialized view.
//
// When the sub-plan root is an aggregation with mergeable functions, it is
// split into a partial aggregate (per worker) and a final merge aggregate
// (top-level). Partial state layout, for an aggregate call with canonical
// output name N:
//   sum/min/max: one state column named N
//   count:       one state column named N (merged with sum)
//   avg:         two state columns N$sum and N$cnt (final: sum/cnt)
// COUNT(DISTINCT ...) is not mergeable; the split then happens below the
// aggregation and the whole aggregate runs top-level.
#pragma once

#include "catalog/catalog.h"
#include "plan/logical_plan.h"

namespace pixels {

/// Result of splitting a plan at the materialized-view seam.
struct SubPlanSplit {
  /// The pushed-down sub-plan (runs in CF workers). Null when the plan has
  /// no heavy subtree worth pushing (e.g. a pure SELECT of literals).
  PlanPtr subplan;
  /// The top-level plan with a MaterializedView placeholder; call
  /// `InjectView` to fill it with the CF result.
  PlanPtr final_plan;
  /// True when subplan's root is a partial aggregate and final_plan
  /// contains the matching merge aggregate.
  bool partial_agg = false;
};

/// Splits `plan` (post-optimization) for CF execution.
Result<SubPlanSplit> SplitForCf(const PlanPtr& plan);

/// Replaces the (single) MaterializedView placeholder in `final_plan` with
/// the given table. Fails if the plan has no empty placeholder.
Status InjectView(const PlanPtr& final_plan, TablePtr view);

/// Partitions a sub-plan for `num_workers` CF workers: the largest scan's
/// files are distributed round-robin; other scans replicate. Returns one
/// plan per worker (fewer when the largest table has fewer files).
Result<std::vector<PlanPtr>> PartitionSubplan(const PlanPtr& subplan,
                                              int num_workers,
                                              const Catalog& catalog);

}  // namespace pixels
