// Rule-based logical optimizer: constant folding, predicate pushdown
// (into joins and scan zone maps), and projection pruning.
#pragma once

#include "catalog/catalog.h"
#include "plan/logical_plan.h"

namespace pixels {

struct OptimizerOptions {
  bool fold_constants = true;
  bool pushdown_predicates = true;
  bool prune_projections = true;
  /// Swap inner equi-join inputs so the smaller estimated side becomes
  /// the hash build side.
  bool optimize_join_order = true;
  /// Annotate inner equi-joins and their probe-side scans for runtime
  /// bloom/range filters (published at execution after the hash build).
  /// Superset-safe: results are identical with the pass off.
  bool runtime_filters = true;
};

/// Optimizes `plan` in place (returns the possibly-new root).
Result<PlanPtr> Optimize(PlanPtr plan, const Catalog& catalog,
                         OptimizerOptions options = {});

/// Folds literal-only subtrees of an expression into literals. Exposed
/// for tests and the NL benchmark's equivalence checks.
ExprPtr FoldConstants(ExprPtr expr);

/// Evaluates an expression of literals; non-constant nodes yield an error.
Result<Value> EvaluateConstant(const Expr& expr);

/// Collects top-level AND-conjuncts of an expression (clones).
std::vector<ExprPtr> SplitConjuncts(const Expr& expr);

/// Rebuilds a conjunction from conjuncts (nullptr when empty).
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts);

/// The set of "qualifier.column" names an expression references.
void CollectColumnRefs(const Expr& expr, std::vector<std::string>* out);

/// Rough output-cardinality estimate of a plan subtree, from catalog row
/// counts with fixed selectivity factors (filter 0.25, join 1.0 of the
/// larger side). Used by the join-order rule; exposed for tests.
uint64_t EstimateRows(const LogicalPlan& plan, const Catalog& catalog);

}  // namespace pixels
