// Plan canonicalization and fingerprinting for the materialized-view
// store. Two optimized plans that are semantically equivalent up to
// commutative reordering — conjunct order in filters, operand order of
// commutative operators, projection/aggregate output order (results are
// addressed by column name), scan projection order, IN-list order — must
// render to the same canonical text and therefore the same fingerprint;
// any change to a literal, table, column, or structural shape must change
// it. Short literal values enter the text verbatim (length-prefixed);
// long constants enter as dual-stream hashes, so keys stay bounded no
// matter how long the constants are without a single 64-bit collision
// being able to merge two keys.
//
// The fingerprint deliberately does NOT include table version epochs:
// versions are pinned per MV entry and validated at lookup time, so a
// write bumps the pin, not the key (see mv/mv_store.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "plan/logical_plan.h"

namespace pixels {

/// 128-bit plan identity: two independent 64-bit FNV-1a streams over the
/// canonical plan text. Collisions require both halves to collide.
struct PlanFingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const PlanFingerprint& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const PlanFingerprint& other) const {
    return !(*this == other);
  }
  bool operator<(const PlanFingerprint& other) const {
    return hi != other.hi ? hi < other.hi : lo < other.lo;
  }

  /// 32 hex chars; used as the store key and spill object name.
  std::string ToHex() const;
};

/// Canonical text of a plan subtree. Fails for plans containing an
/// inlined materialized view (its contents have no stable identity), so
/// already-injected final plans are never mistaken for reusable ones.
Result<std::string> CanonicalPlanText(const LogicalPlan& plan);

/// Canonical text of one expression (exposed for tests).
std::string CanonicalExprText(const Expr& expr);

/// Fingerprint of a plan subtree (hash of CanonicalPlanText).
Result<PlanFingerprint> FingerprintPlan(const LogicalPlan& plan);

/// One base table a plan read, with the catalog version epoch current at
/// read time. An MV entry stores these pins; a lookup whose current
/// versions mismatch is stale.
struct TableVersionPin {
  std::string db;
  std::string table;
  uint64_t version = 0;

  bool operator==(const TableVersionPin& other) const {
    return version == other.version && db == other.db && table == other.table;
  }
};

/// Collects the (db, table, version) pins of every scan in the subtree,
/// deduplicated and sorted. Fails if a scanned table is missing from the
/// catalog.
Result<std::vector<TableVersionPin>> CollectTableVersionPins(
    const LogicalPlan& plan, const Catalog& catalog);

}  // namespace pixels
