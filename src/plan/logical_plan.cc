#include "plan/logical_plan.h"

namespace pixels {

std::vector<std::string> LogicalPlan::OutputColumns() const {
  switch (kind) {
    case Kind::kScan: {
      std::vector<std::string> out;
      const std::string& q = table_alias.empty() ? table : table_alias;
      for (const auto& c : columns) out.push_back(q + "." + c);
      return out;
    }
    case Kind::kFilter:
    case Kind::kSort:
    case Kind::kLimit:
    case Kind::kDistinct:
      return children[0]->OutputColumns();
    case Kind::kProject:
      return names;
    case Kind::kJoin: {
      auto out = children[0]->OutputColumns();
      auto right = children[1]->OutputColumns();
      out.insert(out.end(), right.begin(), right.end());
      return out;
    }
    case Kind::kAggregate: {
      std::vector<std::string> out = group_names;
      if (partial) {
        // Partial aggregates additionally expose their state columns in
        // agg_names order; the executor defines the exact layout.
        out.insert(out.end(), agg_names.begin(), agg_names.end());
      } else {
        out.insert(out.end(), agg_names.begin(), agg_names.end());
      }
      return out;
    }
    case Kind::kMaterializedView:
      return view_columns;
  }
  return {};
}

std::string LogicalPlan::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string s = pad;
  switch (kind) {
    case Kind::kScan: {
      s += "Scan " + db + "." + table;
      if (!table_alias.empty() && table_alias != table) s += " AS " + table_alias;
      if (!columns.empty()) {
        s += " [";
        for (size_t i = 0; i < columns.size(); ++i) {
          if (i > 0) s += ", ";
          s += columns[i];
        }
        s += "]";
      }
      for (const auto& p : pushed) {
        s += " {" + p.column + " " + p.op + " " + p.literal.ToString() + "}";
      }
      for (const auto& rf : runtime_filters) {
        s += " <rf" + std::to_string(rf.id) + ":" + rf.column + ">";
      }
      break;
    }
    case Kind::kFilter:
      s += "Filter " + predicate->ToString();
      break;
    case Kind::kProject: {
      s += "Project ";
      for (size_t i = 0; i < exprs.size(); ++i) {
        if (i > 0) s += ", ";
        s += exprs[i]->ToString() + " AS " + names[i];
      }
      break;
    }
    case Kind::kJoin:
      s += join_type == JoinClause::Type::kLeft
               ? "LeftJoin"
               : (join_type == JoinClause::Type::kCross ? "CrossJoin" : "Join");
      if (join_condition) s += " ON " + join_condition->ToString();
      if (rf_id >= 0) {
        s += " <rf" + std::to_string(rf_id) + " build " + rf_build_column + ">";
      }
      break;
    case Kind::kAggregate: {
      s += partial ? "PartialAggregate" : (merge_partials ? "FinalAggregate"
                                                          : "Aggregate");
      s += " groups=[";
      for (size_t i = 0; i < group_exprs.size(); ++i) {
        if (i > 0) s += ", ";
        s += group_exprs[i]->ToString();
      }
      s += "] aggs=[";
      for (size_t i = 0; i < agg_exprs.size(); ++i) {
        if (i > 0) s += ", ";
        s += agg_exprs[i]->ToString();
      }
      s += "]";
      break;
    }
    case Kind::kSort: {
      s += "Sort ";
      for (size_t i = 0; i < order_by.size(); ++i) {
        if (i > 0) s += ", ";
        s += order_by[i].expr->ToString();
        s += order_by[i].ascending ? " ASC" : " DESC";
      }
      break;
    }
    case Kind::kLimit:
      s += "Limit " + std::to_string(limit);
      break;
    case Kind::kDistinct:
      s += "Distinct";
      break;
    case Kind::kMaterializedView:
      s += "MaterializedView rows=" +
           std::to_string(view ? view->num_rows() : 0);
      break;
  }
  s += "\n";
  for (const auto& c : children) s += c->ToString(indent + 1);
  return s;
}

PlanPtr LogicalPlan::Clone() const {
  auto out = std::make_shared<LogicalPlan>();
  out->kind = kind;
  for (const auto& c : children) out->children.push_back(c->Clone());
  out->db = db;
  out->table = table;
  out->table_alias = table_alias;
  out->columns = columns;
  out->pushed = pushed;
  out->file_subset = file_subset;
  out->runtime_filters = runtime_filters;
  out->predicate = predicate ? predicate->Clone() : nullptr;
  for (const auto& e : exprs) out->exprs.push_back(e->Clone());
  out->names = names;
  out->join_type = join_type;
  out->join_condition = join_condition ? join_condition->Clone() : nullptr;
  out->rf_id = rf_id;
  out->rf_build_column = rf_build_column;
  for (const auto& e : group_exprs) out->group_exprs.push_back(e->Clone());
  out->group_names = group_names;
  for (const auto& e : agg_exprs) out->agg_exprs.push_back(e->Clone());
  out->agg_names = agg_names;
  out->partial = partial;
  out->merge_partials = merge_partials;
  for (const auto& o : order_by) {
    out->order_by.push_back(OrderItem{o.expr->Clone(), o.ascending});
  }
  out->limit = limit;
  out->view = view;
  out->view_columns = view_columns;
  return out;
}

bool LogicalPlan::Contains(Kind k) const {
  if (kind == k) return true;
  for (const auto& c : children) {
    if (c->Contains(k)) return true;
  }
  return false;
}

uint64_t LogicalPlan::EstimatedScanBytes(
    const std::function<uint64_t(const std::string&, const std::string&)>&
        table_bytes) const {
  uint64_t total = 0;
  if (kind == Kind::kScan) total += table_bytes(db, table);
  for (const auto& c : children) total += c->EstimatedScanBytes(table_bytes);
  return total;
}

PlanPtr MakeScan(std::string db, std::string table, std::string alias) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = LogicalPlan::Kind::kScan;
  p->db = std::move(db);
  p->table = std::move(table);
  p->table_alias = std::move(alias);
  return p;
}

PlanPtr MakeFilter(PlanPtr child, ExprPtr predicate) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = LogicalPlan::Kind::kFilter;
  p->children.push_back(std::move(child));
  p->predicate = std::move(predicate);
  return p;
}

PlanPtr MakeProject(PlanPtr child, std::vector<ExprPtr> exprs,
                    std::vector<std::string> names) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = LogicalPlan::Kind::kProject;
  p->children.push_back(std::move(child));
  p->exprs = std::move(exprs);
  p->names = std::move(names);
  return p;
}

PlanPtr MakeJoin(PlanPtr left, PlanPtr right, JoinClause::Type type,
                 ExprPtr condition) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = LogicalPlan::Kind::kJoin;
  p->children.push_back(std::move(left));
  p->children.push_back(std::move(right));
  p->join_type = type;
  p->join_condition = std::move(condition);
  return p;
}

PlanPtr MakeLimit(PlanPtr child, int64_t limit) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = LogicalPlan::Kind::kLimit;
  p->children.push_back(std::move(child));
  p->limit = limit;
  return p;
}

PlanPtr MakeMaterializedView(TablePtr table) {
  auto p = std::make_shared<LogicalPlan>();
  p->kind = LogicalPlan::Kind::kMaterializedView;
  p->view = std::move(table);
  if (p->view) p->view_columns = p->view->ColumnNames();
  return p;
}

}  // namespace pixels
