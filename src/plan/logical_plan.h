// Logical query plan. The executor interprets this tree directly; the
// CF sub-plan splitter (subplan.h) cuts it at the materialized-view seam
// described in the paper (§3.1).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "format/batch.h"
#include "format/reader.h"
#include "sql/ast.h"

namespace pixels {

struct LogicalPlan;
using PlanPtr = std::shared_ptr<LogicalPlan>;

/// A node of the logical plan tree.
struct LogicalPlan {
  enum class Kind : uint8_t {
    kScan,        // base-table scan with projection + pushed predicates
    kFilter,      // row filter by predicate expression
    kProject,     // compute expressions, rename columns
    kJoin,        // children[0] ⋈ children[1]
    kAggregate,   // group by + aggregate functions
    kSort,        // order by
    kLimit,       // first n rows
    kDistinct,    // duplicate elimination over all columns
    kMaterializedView,  // inlined table (result of a CF sub-plan)
  };

  Kind kind;
  std::vector<PlanPtr> children;

  // kScan
  std::string db;
  std::string table;
  std::string table_alias;              // qualifier of output columns
  std::vector<std::string> columns;     // projection; empty = all
  std::vector<ScanPredicate> pushed;    // zone-map pruning predicates
  /// Optional restriction to a subset of files / row groups (set by the
  /// CF partitioner). Empty = all.
  std::vector<std::string> file_subset;
  /// Runtime filters this scan should poll from the hub (annotated by the
  /// optimizer's PlanRuntimeFilters pass): `id` is the hub slot published
  /// by the matching join's build, `column` the bare probe-key column of
  /// this table. Advisory: a scan that finds no published filter reads
  /// everything.
  struct ScanRuntimeFilter {
    int id = -1;
    std::string column;
  };
  std::vector<ScanRuntimeFilter> runtime_filters;

  // kFilter
  ExprPtr predicate;

  // kProject
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;

  // kJoin
  JoinClause::Type join_type = JoinClause::Type::kInner;
  ExprPtr join_condition;  // null for cross join
  /// Runtime-filter annotation (inner joins only): after the hash build
  /// completes, publish a bloom + range filter on the build-side key
  /// whose qualified name is `rf_build_column` under hub slot `rf_id`.
  int rf_id = -1;
  std::string rf_build_column;

  // kAggregate
  std::vector<ExprPtr> group_exprs;
  std::vector<std::string> group_names;
  std::vector<ExprPtr> agg_exprs;       // each a kFunction aggregate call
  std::vector<std::string> agg_names;
  /// Partial mode: emit raw partial states (per-worker); final mode merges
  /// partials (used above a CF-partitioned sub-plan).
  bool partial = false;
  bool merge_partials = false;

  // kSort
  std::vector<OrderItem> order_by;

  // kLimit
  int64_t limit = -1;

  // kMaterializedView
  TablePtr view;
  std::vector<std::string> view_columns;

  /// Output column names of this node.
  std::vector<std::string> OutputColumns() const;

  /// Single-line tree rendering for EXPLAIN and tests.
  std::string ToString(int indent = 0) const;

  /// Deep copy (shares materialized-view tables, clones expressions).
  PlanPtr Clone() const;

  /// True when the subtree contains a node of the given kind.
  bool Contains(Kind k) const;

  /// Sum of base-table bytes referenced by scans in this subtree; used by
  /// the coordinator to estimate work and by billing as scan upper bound.
  uint64_t EstimatedScanBytes(
      const std::function<uint64_t(const std::string&, const std::string&)>&
          table_bytes) const;
};

/// Factory helpers used by binder/optimizer/tests.
PlanPtr MakeScan(std::string db, std::string table, std::string alias);
PlanPtr MakeFilter(PlanPtr child, ExprPtr predicate);
PlanPtr MakeProject(PlanPtr child, std::vector<ExprPtr> exprs,
                    std::vector<std::string> names);
PlanPtr MakeJoin(PlanPtr left, PlanPtr right, JoinClause::Type type,
                 ExprPtr condition);
PlanPtr MakeLimit(PlanPtr child, int64_t limit);
PlanPtr MakeMaterializedView(TablePtr table);

}  // namespace pixels
