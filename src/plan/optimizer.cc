#include "plan/optimizer.h"

#include <cmath>
#include <set>

namespace pixels {

namespace {

bool IsLiteral(const Expr& e) { return e.kind == Expr::Kind::kLiteral; }

/// LIKE pattern matching with % (any run) and _ (any char).
bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative two-pointer algorithm with backtracking on '%'.
  size_t t = 0, p = 0, star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace

Result<Value> EvaluateConstant(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kUnary: {
      PIXELS_ASSIGN_OR_RETURN(Value v, EvaluateConstant(*e.args[0]));
      if (e.op == "NOT") {
        if (v.is_null()) return Value::Null();
        return Value::Bool(!v.AsBool());
      }
      if (e.op == "-") {
        if (v.is_null()) return Value::Null();
        if (v.kind == Value::Kind::kDouble) return Value::Double(-v.d);
        return Value::Int(-v.i);
      }
      return Status::NotImplemented("constant unary op " + e.op);
    }
    case Expr::Kind::kBinary: {
      PIXELS_ASSIGN_OR_RETURN(Value a, EvaluateConstant(*e.args[0]));
      // Short-circuit logic with SQL three-valued semantics approximated.
      if (e.op == "AND") {
        if (!a.is_null() && !a.AsBool()) return Value::Bool(false);
        PIXELS_ASSIGN_OR_RETURN(Value b2, EvaluateConstant(*e.args[1]));
        if (!b2.is_null() && !b2.AsBool()) return Value::Bool(false);
        if (a.is_null() || b2.is_null()) return Value::Null();
        return Value::Bool(true);
      }
      if (e.op == "OR") {
        if (!a.is_null() && a.AsBool()) return Value::Bool(true);
        PIXELS_ASSIGN_OR_RETURN(Value b2, EvaluateConstant(*e.args[1]));
        if (!b2.is_null() && b2.AsBool()) return Value::Bool(true);
        if (a.is_null() || b2.is_null()) return Value::Null();
        return Value::Bool(false);
      }
      PIXELS_ASSIGN_OR_RETURN(Value b, EvaluateConstant(*e.args[1]));
      if (a.is_null() || b.is_null()) return Value::Null();
      if (e.op == "=") return Value::Bool(a.Compare(b) == 0);
      if (e.op == "<>") return Value::Bool(a.Compare(b) != 0);
      if (e.op == "<") return Value::Bool(a.Compare(b) < 0);
      if (e.op == "<=") return Value::Bool(a.Compare(b) <= 0);
      if (e.op == ">") return Value::Bool(a.Compare(b) > 0);
      if (e.op == ">=") return Value::Bool(a.Compare(b) >= 0);
      if (e.op == "LIKE") {
        if (a.kind != Value::Kind::kString || b.kind != Value::Kind::kString) {
          return Status::TypeError("LIKE requires strings");
        }
        return Value::Bool(LikeMatch(a.s, b.s));
      }
      if (e.op == "||") {
        if (a.kind != Value::Kind::kString || b.kind != Value::Kind::kString) {
          return Status::TypeError("|| requires strings");
        }
        return Value::String(a.s + b.s);
      }
      // Arithmetic.
      const bool dbl =
          a.kind == Value::Kind::kDouble || b.kind == Value::Kind::kDouble;
      if (e.op == "+") {
        return dbl ? Value::Double(a.AsDouble() + b.AsDouble())
                   : Value::Int(a.i + b.i);
      }
      if (e.op == "-") {
        return dbl ? Value::Double(a.AsDouble() - b.AsDouble())
                   : Value::Int(a.i - b.i);
      }
      if (e.op == "*") {
        return dbl ? Value::Double(a.AsDouble() * b.AsDouble())
                   : Value::Int(a.i * b.i);
      }
      if (e.op == "/") {
        if (dbl) {
          if (b.AsDouble() == 0) return Value::Null();
          return Value::Double(a.AsDouble() / b.AsDouble());
        }
        if (b.i == 0) return Value::Null();
        return Value::Int(a.i / b.i);
      }
      if (e.op == "%") {
        if (b.AsInt() == 0) return Value::Null();
        return Value::Int(a.AsInt() % b.AsInt());
      }
      return Status::NotImplemented("constant binary op " + e.op);
    }
    case Expr::Kind::kBetween: {
      PIXELS_ASSIGN_OR_RETURN(Value v, EvaluateConstant(*e.args[0]));
      PIXELS_ASSIGN_OR_RETURN(Value lo, EvaluateConstant(*e.args[1]));
      PIXELS_ASSIGN_OR_RETURN(Value hi, EvaluateConstant(*e.args[2]));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      bool in = v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
      return Value::Bool(e.negated ? !in : in);
    }
    case Expr::Kind::kInList: {
      PIXELS_ASSIGN_OR_RETURN(Value v, EvaluateConstant(*e.args[0]));
      if (v.is_null()) return Value::Null();
      bool found = false;
      for (size_t i = 1; i < e.args.size(); ++i) {
        PIXELS_ASSIGN_OR_RETURN(Value item, EvaluateConstant(*e.args[i]));
        if (!item.is_null() && v.Compare(item) == 0) {
          found = true;
          break;
        }
      }
      return Value::Bool(e.negated ? !found : found);
    }
    case Expr::Kind::kIsNull: {
      PIXELS_ASSIGN_OR_RETURN(Value v, EvaluateConstant(*e.args[0]));
      return Value::Bool(e.negated ? !v.is_null() : v.is_null());
    }
    case Expr::Kind::kCase: {
      size_t pairs = (e.args.size() - (e.has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        PIXELS_ASSIGN_OR_RETURN(Value cond, EvaluateConstant(*e.args[2 * i]));
        if (!cond.is_null() && cond.AsBool()) {
          return EvaluateConstant(*e.args[2 * i + 1]);
        }
      }
      if (e.has_else) return EvaluateConstant(*e.args.back());
      return Value::Null();
    }
    default:
      return Status::InvalidArgument("not a constant expression");
  }
}

ExprPtr FoldConstants(ExprPtr expr) {
  for (auto& a : expr->args) a = FoldConstants(std::move(a));
  if (expr->kind == Expr::Kind::kLiteral ||
      expr->kind == Expr::Kind::kColumnRef ||
      expr->kind == Expr::Kind::kStar) {
    return expr;
  }
  // Aggregates are never folded.
  if (expr->kind == Expr::Kind::kFunction) return expr;
  bool all_literal = true;
  for (const auto& a : expr->args) all_literal &= IsLiteral(*a);
  if (!all_literal) return expr;
  auto value = EvaluateConstant(*expr);
  if (!value.ok()) return expr;
  return MakeLiteral(std::move(value).ValueOrDie());
}

std::vector<ExprPtr> SplitConjuncts(const Expr& expr) {
  std::vector<ExprPtr> out;
  if (expr.kind == Expr::Kind::kBinary && expr.op == "AND") {
    auto left = SplitConjuncts(*expr.args[0]);
    auto right = SplitConjuncts(*expr.args[1]);
    for (auto& e : left) out.push_back(std::move(e));
    for (auto& e : right) out.push_back(std::move(e));
    return out;
  }
  out.push_back(expr.Clone());
  return out;
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr out = std::move(conjuncts[0]);
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    out = MakeBinary("AND", std::move(out), std::move(conjuncts[i]));
  }
  return out;
}

void CollectColumnRefs(const Expr& expr, std::vector<std::string>* out) {
  if (expr.kind == Expr::Kind::kColumnRef) {
    out->push_back(expr.QualifiedName());
    return;
  }
  for (const auto& a : expr.args) CollectColumnRefs(*a, out);
}

namespace {

/// The qualifiers (table aliases) referenced by an expression.
std::set<std::string> Qualifiers(const Expr& e) {
  std::vector<std::string> refs;
  CollectColumnRefs(e, &refs);
  std::set<std::string> out;
  for (const auto& r : refs) {
    size_t dot = r.rfind('.');
    out.insert(dot == std::string::npos ? r : r.substr(0, dot));
  }
  return out;
}

/// The set of qualifiers produced by a plan subtree.
void PlanQualifiers(const LogicalPlan& plan, std::set<std::string>* out) {
  if (plan.kind == LogicalPlan::Kind::kScan) {
    out->insert(plan.table_alias.empty() ? plan.table : plan.table_alias);
  }
  for (const auto& c : plan.children) PlanQualifiers(*c, out);
}

/// Tries to convert a conjunct into a scan predicate (col op literal /
/// literal op col / BETWEEN literals). Returns predicates to add.
std::vector<ScanPredicate> ToScanPredicates(const Expr& e) {
  std::vector<ScanPredicate> out;
  auto flip = [](const std::string& op) -> std::string {
    if (op == "<") return ">";
    if (op == "<=") return ">=";
    if (op == ">") return "<";
    if (op == ">=") return "<=";
    return op;  // = and <> are symmetric
  };
  if (e.kind == Expr::Kind::kBinary) {
    static const std::set<std::string> kOps = {"=", "<>", "<", "<=", ">", ">="};
    if (kOps.count(e.op) == 0) return out;
    const Expr& l = *e.args[0];
    const Expr& r = *e.args[1];
    if (l.kind == Expr::Kind::kColumnRef && IsLiteral(r)) {
      out.push_back(ScanPredicate{l.name, e.op, r.literal});
    } else if (r.kind == Expr::Kind::kColumnRef && IsLiteral(l)) {
      out.push_back(ScanPredicate{r.name, flip(e.op), l.literal});
    }
    return out;
  }
  if (e.kind == Expr::Kind::kBetween && !e.negated &&
      e.args[0]->kind == Expr::Kind::kColumnRef && IsLiteral(*e.args[1]) &&
      IsLiteral(*e.args[2])) {
    out.push_back(ScanPredicate{e.args[0]->name, ">=", e.args[1]->literal});
    out.push_back(ScanPredicate{e.args[0]->name, "<=", e.args[2]->literal});
  }
  return out;
}

/// Pushes filter conjuncts down through joins toward scans. Conjuncts that
/// reference a single side of a join move below it; single-scan conjuncts
/// that are simple comparisons also register as zone-map predicates (the
/// filter itself remains, since zone maps only prune row groups).
PlanPtr PushdownFilters(PlanPtr plan) {
  for (auto& c : plan->children) c = PushdownFilters(std::move(c));
  if (plan->kind != LogicalPlan::Kind::kFilter) return plan;

  PlanPtr child = plan->children[0];
  std::vector<ExprPtr> conjuncts = SplitConjuncts(*plan->predicate);

  if (child->kind == LogicalPlan::Kind::kJoin &&
      child->join_type != JoinClause::Type::kLeft) {
    std::set<std::string> left_q, right_q;
    PlanQualifiers(*child->children[0], &left_q);
    PlanQualifiers(*child->children[1], &right_q);
    std::vector<ExprPtr> stay, to_left, to_right;
    for (auto& cj : conjuncts) {
      auto quals = Qualifiers(*cj);
      bool in_left = true, in_right = true;
      for (const auto& q : quals) {
        if (left_q.count(q) == 0) in_left = false;
        if (right_q.count(q) == 0) in_right = false;
      }
      if (in_left && !quals.empty()) {
        to_left.push_back(std::move(cj));
      } else if (in_right && !quals.empty()) {
        to_right.push_back(std::move(cj));
      } else {
        stay.push_back(std::move(cj));
      }
    }
    if (!to_left.empty()) {
      child->children[0] = PushdownFilters(
          MakeFilter(child->children[0], CombineConjuncts(std::move(to_left))));
    }
    if (!to_right.empty()) {
      child->children[1] = PushdownFilters(MakeFilter(
          child->children[1], CombineConjuncts(std::move(to_right))));
    }
    if (stay.empty()) return child;
    plan->predicate = CombineConjuncts(std::move(stay));
    return plan;
  }

  if (child->kind == LogicalPlan::Kind::kScan) {
    for (const auto& cj : conjuncts) {
      for (auto& sp : ToScanPredicates(*cj)) {
        child->pushed.push_back(std::move(sp));
      }
    }
    return plan;  // filter retained for exact row filtering
  }
  return plan;
}

void FoldPlanExprs(LogicalPlan* plan) {
  if (plan->predicate) plan->predicate = FoldConstants(std::move(plan->predicate));
  if (plan->join_condition) {
    plan->join_condition = FoldConstants(std::move(plan->join_condition));
  }
  for (auto& e : plan->exprs) e = FoldConstants(std::move(e));
  for (auto& e : plan->group_exprs) e = FoldConstants(std::move(e));
  for (auto& o : plan->order_by) o.expr = FoldConstants(std::move(o.expr));
  for (auto& c : plan->children) FoldPlanExprs(c.get());
}

/// Collects every column name (qualified) used above each scan, then
/// narrows scan projections to the used set.
void CollectUsedColumns(const LogicalPlan& plan, std::set<std::string>* used) {
  auto add_expr = [&](const Expr& e) {
    std::vector<std::string> refs;
    CollectColumnRefs(e, &refs);
    for (auto& r : refs) used->insert(std::move(r));
  };
  if (plan.predicate) add_expr(*plan.predicate);
  if (plan.join_condition) add_expr(*plan.join_condition);
  for (const auto& e : plan.exprs) add_expr(*e);
  for (const auto& e : plan.group_exprs) add_expr(*e);
  for (const auto& e : plan.agg_exprs) add_expr(*e);
  for (const auto& o : plan.order_by) add_expr(*o.expr);
  for (const auto& c : plan.children) CollectUsedColumns(*c, used);
}

void PruneProjections(LogicalPlan* plan, const std::set<std::string>& used,
                      bool all_needed) {
  if (plan->kind == LogicalPlan::Kind::kScan && !all_needed) {
    const std::string q =
        plan->table_alias.empty() ? plan->table : plan->table_alias;
    std::vector<std::string> kept;
    for (const auto& col : plan->columns) {
      if (used.count(q + "." + col) > 0 || used.count(col) > 0) {
        kept.push_back(col);
      }
    }
    // A scan must produce at least one column to carry row count.
    if (kept.empty() && !plan->columns.empty()) kept.push_back(plan->columns[0]);
    plan->columns = std::move(kept);
  }
  // A Distinct over the raw scan output needs all columns below it only if
  // there is no project in between; projects reset the needed set.
  for (auto& c : plan->children) {
    PruneProjections(c.get(), used,
                     all_needed && plan->kind != LogicalPlan::Kind::kProject &&
                         plan->kind != LogicalPlan::Kind::kAggregate);
  }
}

/// Swaps inner equi-join children so the smaller side builds the hash
/// table. Left joins and cross joins are left untouched (not symmetric /
/// no keys).
void ReorderJoins(LogicalPlan* plan, const Catalog& catalog) {
  for (auto& c : plan->children) ReorderJoins(c.get(), catalog);
  if (plan->kind != LogicalPlan::Kind::kJoin ||
      plan->join_type != JoinClause::Type::kInner ||
      plan->join_condition == nullptr) {
    return;
  }
  uint64_t left_rows = EstimateRows(*plan->children[0], catalog);
  uint64_t right_rows = EstimateRows(*plan->children[1], catalog);
  // The right child is the build side; keep the smaller input there.
  if (right_rows > left_rows) {
    std::swap(plan->children[0], plan->children[1]);
  }
}

/// Finds the scan that produces `qual`.`col` walking down from `node`,
/// descending only through nodes where pre-filtering rows is safe for an
/// inner-join probe: filters (commute), and join children whose rows the
/// filtered column flows through unchanged (any child of an inner/cross
/// join — dropping a definitely-non-matching row only removes output rows
/// the annotated join would discard anyway — and the probe child of a
/// left join; the padded side must stay complete). Projects, aggregates,
/// sorts, and limits stop the walk.
LogicalPlan* FindScanForRef(LogicalPlan* node, const std::string& qual,
                            const std::string& col) {
  switch (node->kind) {
    case LogicalPlan::Kind::kScan: {
      const std::string q =
          node->table_alias.empty() ? node->table : node->table_alias;
      if (q != qual) return nullptr;
      if (!node->columns.empty()) {
        bool have = false;
        for (const auto& c : node->columns) have = have || c == col;
        if (!have) return nullptr;
      }
      return node;
    }
    case LogicalPlan::Kind::kFilter:
      return FindScanForRef(node->children[0].get(), qual, col);
    case LogicalPlan::Kind::kJoin: {
      const size_t last =
          node->join_type == JoinClause::Type::kLeft ? 1 : node->children.size();
      for (size_t i = 0; i < last; ++i) {
        std::set<std::string> quals;
        PlanQualifiers(*node->children[i], &quals);
        if (quals.count(qual) > 0) {
          return FindScanForRef(node->children[i].get(), qual, col);
        }
      }
      return nullptr;
    }
    default:
      return nullptr;
  }
}

/// Annotates inner equi-joins with a runtime-filter id and build key, and
/// the probe-side scan feeding the key with the matching hub slot. One
/// filter per join (the first simple column = column conjunct).
void PlanRuntimeFilters(LogicalPlan* plan, int* next_id) {
  for (auto& c : plan->children) PlanRuntimeFilters(c.get(), next_id);
  if (plan->kind != LogicalPlan::Kind::kJoin ||
      plan->join_type != JoinClause::Type::kInner ||
      plan->join_condition == nullptr) {
    return;
  }
  std::set<std::string> left_q, right_q;
  PlanQualifiers(*plan->children[0], &left_q);
  PlanQualifiers(*plan->children[1], &right_q);
  for (const auto& cj : SplitConjuncts(*plan->join_condition)) {
    if (cj->kind != Expr::Kind::kBinary || cj->op != "=" ||
        cj->args[0]->kind != Expr::Kind::kColumnRef ||
        cj->args[1]->kind != Expr::Kind::kColumnRef) {
      continue;
    }
    const Expr* a = cj->args[0].get();
    const Expr* b = cj->args[1].get();
    if (a->qualifier.empty() || b->qualifier.empty()) continue;
    // Orient: probe ref on the left (outer) side, build ref on the right.
    const Expr* probe = nullptr;
    const Expr* build = nullptr;
    if (left_q.count(a->qualifier) > 0 && right_q.count(b->qualifier) > 0) {
      probe = a;
      build = b;
    } else if (left_q.count(b->qualifier) > 0 &&
               right_q.count(a->qualifier) > 0) {
      probe = b;
      build = a;
    } else {
      continue;
    }
    LogicalPlan* scan =
        FindScanForRef(plan->children[0].get(), probe->qualifier, probe->name);
    if (scan == nullptr) continue;
    plan->rf_id = (*next_id)++;
    plan->rf_build_column = build->QualifiedName();
    scan->runtime_filters.push_back(
        LogicalPlan::ScanRuntimeFilter{plan->rf_id, probe->name});
    return;
  }
}

}  // namespace

uint64_t EstimateRows(const LogicalPlan& plan, const Catalog& catalog) {
  switch (plan.kind) {
    case LogicalPlan::Kind::kScan: {
      auto table = catalog.GetTable(plan.db, plan.table);
      uint64_t rows = table.ok() ? (*table)->row_count : 1000;
      // Each pushed zone-map predicate is assumed to halve the scan.
      for (size_t i = 0; i < plan.pushed.size() && rows > 1; ++i) rows /= 2;
      return std::max<uint64_t>(rows, 1);
    }
    case LogicalPlan::Kind::kFilter:
      return std::max<uint64_t>(
          EstimateRows(*plan.children[0], catalog) / 4, 1);
    case LogicalPlan::Kind::kJoin: {
      uint64_t l = EstimateRows(*plan.children[0], catalog);
      uint64_t r = EstimateRows(*plan.children[1], catalog);
      if (plan.join_type == JoinClause::Type::kCross) return l * r;
      return std::max(l, r);
    }
    case LogicalPlan::Kind::kAggregate:
      return plan.group_exprs.empty()
                 ? 1
                 : std::max<uint64_t>(
                       EstimateRows(*plan.children[0], catalog) / 10, 1);
    case LogicalPlan::Kind::kLimit: {
      uint64_t child = EstimateRows(*plan.children[0], catalog);
      return plan.limit >= 0
                 ? std::min<uint64_t>(child, static_cast<uint64_t>(plan.limit))
                 : child;
    }
    case LogicalPlan::Kind::kMaterializedView:
      return plan.view != nullptr ? std::max<uint64_t>(plan.view->num_rows(), 1)
                                  : 1;
    default:
      return plan.children.empty()
                 ? 1
                 : EstimateRows(*plan.children[0], catalog);
  }
}

Result<PlanPtr> Optimize(PlanPtr plan, const Catalog& catalog,
                         OptimizerOptions options) {
  if (options.fold_constants) FoldPlanExprs(plan.get());
  if (options.pushdown_predicates) plan = PushdownFilters(std::move(plan));
  if (options.optimize_join_order) ReorderJoins(plan.get(), catalog);
  if (options.runtime_filters) {
    // After join reordering: the build side (children[1]) is final here.
    int next_rf_id = 0;
    PlanRuntimeFilters(plan.get(), &next_rf_id);
  }
  if (options.prune_projections) {
    std::set<std::string> used;
    CollectUsedColumns(*plan, &used);
    // If the root (or any node up to the first project) needs all columns
    // (e.g. SELECT * handled via explicit projection, so normally not),
    // we start with all_needed=false: the binder always adds a Project.
    PruneProjections(plan.get(), used, false);
  }
  return plan;
}

}  // namespace pixels
