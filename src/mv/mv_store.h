// MvStore: the materialized-view store (paper §3.1 generalized to
// cross-query reuse). CF pushdown already materializes sub-plan results
// as views that re-enter the top-level plan; this store keeps those views
// — and full query results — across queries, keyed by the canonical plan
// fingerprint, so a repeated dashboard query is answered without touching
// the object store.
//
// Tiers:
//  - memory: byte-bounded, thread-safe, shared by the top-level plan, the
//    CF worker fleet, and concurrent queries. Eviction is LRU biased by
//    rebuild cost: among the least-recently-used entries, the one that is
//    cheapest to rebuild (fewest scan bytes saved) goes first.
//  - spill (optional): entries evicted from memory persist as .pxl
//    objects through the Storage interface (paper: S3) and are read back
//    on a later hit — a few GETs instead of a full rescan.
//
// Invalidation is catalog-driven: every entry pins the version epoch of
// each base table it read; a lookup whose pins mismatch the catalog's
// current epochs deletes the entry (memory and spill object both). There
// is no TTL — correctness comes from versions, not clocks.
//
// Billing: the store never touches `bytes_scanned`. A hit reports the
// entry's rebuild cost as `saved_scan_bytes`; the query server bills that
// at the reuse discount, so a warm hit is strictly cheaper but not free.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "format/batch.h"
#include "plan/fingerprint.h"

namespace pixels {

class Storage;

/// Configuration of one MvStore instance.
struct MvStoreOptions {
  /// Byte budget of the in-memory tier (result-table payload bytes).
  uint64_t capacity_bytes = 256ULL << 20;
  /// Spill tier storage; null disables spilling (evictions just drop).
  /// The spill index is memory-only, so construction sweeps any objects
  /// left under `spill_prefix` by a prior process — do not point two
  /// live stores at the same storage + prefix.
  Storage* spill_storage = nullptr;
  /// Path prefix for spilled .pxl objects.
  std::string spill_prefix = "mv/spill";
  /// Eviction examines this many LRU-tail entries and evicts the one with
  /// the smallest rebuild cost (1 = plain LRU).
  int eviction_window = 4;
};

/// Counter snapshot. Monotonic except the occupancy gauges.
struct MvStoreStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;          // memory + spill
  uint64_t spill_hits = 0;    // subset of hits served from the spill tier
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;     // entries dropped from memory
  uint64_t spill_writes = 0;  // evictions persisted to the spill tier
  uint64_t invalidations = 0; // entries killed by version-pin mismatch
  /// Cumulative scan bytes avoided by hits (the saved-scan audit trail).
  uint64_t saved_scan_bytes = 0;
  /// Current occupancy of the memory tier.
  uint64_t bytes_cached = 0;
  uint64_t entries = 0;
  uint64_t spill_entries = 0;
};

/// A successful lookup.
struct MvLookupResult {
  TablePtr table;
  /// Scan bytes the hit avoided (the entry's recorded rebuild cost).
  uint64_t saved_scan_bytes = 0;
  bool from_spill = false;
};

/// Thread-safe materialized-view store with versioned invalidation.
class MvStore {
 public:
  explicit MvStore(MvStoreOptions options = {});

  MvStore(const MvStore&) = delete;
  MvStore& operator=(const MvStore&) = delete;

  /// Looks up a plan's cached result. Validates the entry's table-version
  /// pins against `catalog`; a stale entry is erased (spill object
  /// included) and the lookup misses. A spill-tier hit re-admits the
  /// entry to memory.
  std::optional<MvLookupResult> Lookup(const PlanFingerprint& fp,
                                       const Catalog& catalog);

  /// Inserts (or refreshes) a plan's result. `rebuild_scan_bytes` is the
  /// scan cost the entry saves per future hit — it drives both eviction
  /// priority and the saved-scan billing discount. `pins` are the table
  /// versions the result was built from.
  void Insert(const PlanFingerprint& fp, TablePtr result,
              uint64_t rebuild_scan_bytes, std::vector<TableVersionPin> pins);

  /// Drops every entry (memory and spill index) that pins the given
  /// table, regardless of version. Used by tests and explicit DDL paths;
  /// normal invalidation happens lazily at lookup.
  void InvalidateTable(const std::string& db, const std::string& table);

  MvStoreStats stats() const;
  uint64_t capacity_bytes() const { return options_.capacity_bytes; }

 private:
  struct Entry {
    TablePtr table;
    uint64_t bytes = 0;
    uint64_t rebuild_scan_bytes = 0;
    std::vector<TableVersionPin> pins;
    uint64_t lru_tick = 0;
  };
  struct SpillEntry {
    std::string path;
    uint64_t rebuild_scan_bytes = 0;
    std::vector<TableVersionPin> pins;
  };

  /// True when every pin matches the catalog's current version.
  static bool PinsCurrent(const std::vector<TableVersionPin>& pins,
                          const Catalog& catalog);

  /// Unlocked helpers (caller holds mutex_).
  void InsertLocked(const std::string& key, TablePtr result,
                    uint64_t rebuild_scan_bytes,
                    std::vector<TableVersionPin> pins);
  void EvictUntilFitsLocked(uint64_t incoming_bytes);
  void SpillLocked(const std::string& key, const Entry& entry);
  void DropSpillLocked(const std::string& key);
  std::string SpillPath(const std::string& key) const;

  MvStoreOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;        // key = fingerprint hex
  std::map<std::string, SpillEntry> spilled_;   // spill-tier index
  uint64_t bytes_cached_ = 0;
  uint64_t lru_clock_ = 0;
  MvStoreStats stats_;
};

/// Payload bytes of a result table (the memory-tier charge).
uint64_t TablePayloadBytes(const Table& table);

}  // namespace pixels
