#include "mv/mv_store.h"

#include <algorithm>

#include "format/reader.h"
#include "format/writer.h"
#include "storage/storage.h"

namespace pixels {

uint64_t TablePayloadBytes(const Table& table) {
  uint64_t bytes = 0;
  for (const auto& batch : table.batches()) bytes += batch->ApproxBytes();
  return bytes;
}

MvStore::MvStore(MvStoreOptions options) : options_(std::move(options)) {
  if (options_.eviction_window < 1) options_.eviction_window = 1;
}

bool MvStore::PinsCurrent(const std::vector<TableVersionPin>& pins,
                          const Catalog& catalog) {
  for (const auto& pin : pins) {
    auto version = catalog.GetTableVersion(pin.db, pin.table);
    if (!version.ok() || *version != pin.version) return false;
  }
  return true;
}

std::string MvStore::SpillPath(const std::string& key) const {
  return options_.spill_prefix + "/" + key + ".pxl";
}

std::optional<MvLookupResult> MvStore::Lookup(const PlanFingerprint& fp,
                                              const Catalog& catalog) {
  const std::string key = fp.ToHex();
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.lookups;

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (!PinsCurrent(it->second.pins, catalog)) {
      bytes_cached_ -= it->second.bytes;
      entries_.erase(it);
      DropSpillLocked(key);
      ++stats_.invalidations;
      ++stats_.misses;
      return std::nullopt;
    }
    it->second.lru_tick = ++lru_clock_;
    ++stats_.hits;
    stats_.saved_scan_bytes += it->second.rebuild_scan_bytes;
    return MvLookupResult{it->second.table, it->second.rebuild_scan_bytes,
                          /*from_spill=*/false};
  }

  auto sit = spilled_.find(key);
  if (sit != spilled_.end()) {
    if (!PinsCurrent(sit->second.pins, catalog)) {
      DropSpillLocked(key);
      ++stats_.invalidations;
      ++stats_.misses;
      return std::nullopt;
    }
    // Read the spilled view back (a few GETs instead of a rescan) and
    // re-admit it to the memory tier.
    auto reader = PixelsReader::Open(options_.spill_storage, sit->second.path);
    if (!reader.ok()) {
      // The object went missing underneath us; treat as a plain miss.
      spilled_.erase(sit);
      ++stats_.misses;
      return std::nullopt;
    }
    auto table = std::make_shared<Table>();
    for (size_t g = 0; g < (*reader)->NumRowGroups(); ++g) {
      auto batch = (*reader)->ReadRowGroup(g, {});
      if (!batch.ok()) {
        spilled_.erase(sit);
        ++stats_.misses;
        return std::nullopt;
      }
      table->AddBatch(std::move(*batch));
    }
    const uint64_t rebuild = sit->second.rebuild_scan_bytes;
    std::vector<TableVersionPin> pins = sit->second.pins;
    InsertLocked(key, table, rebuild, std::move(pins));
    ++stats_.hits;
    ++stats_.spill_hits;
    stats_.saved_scan_bytes += rebuild;
    return MvLookupResult{std::move(table), rebuild, /*from_spill=*/true};
  }

  ++stats_.misses;
  return std::nullopt;
}

void MvStore::Insert(const PlanFingerprint& fp, TablePtr result,
                     uint64_t rebuild_scan_bytes,
                     std::vector<TableVersionPin> pins) {
  if (result == nullptr) return;
  const std::string key = fp.ToHex();
  std::lock_guard<std::mutex> lock(mutex_);
  InsertLocked(key, std::move(result), rebuild_scan_bytes, std::move(pins));
}

void MvStore::InsertLocked(const std::string& key, TablePtr result,
                           uint64_t rebuild_scan_bytes,
                           std::vector<TableVersionPin> pins) {
  Entry entry;
  entry.table = std::move(result);
  entry.bytes = TablePayloadBytes(*entry.table);
  entry.rebuild_scan_bytes = rebuild_scan_bytes;
  entry.pins = std::move(pins);
  entry.lru_tick = ++lru_clock_;

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_cached_ -= it->second.bytes;
    entries_.erase(it);
  }
  if (entry.bytes > options_.capacity_bytes) {
    // Too large for the memory tier entirely: straight to spill.
    if (options_.spill_storage != nullptr) {
      SpillLocked(key, entry);
    }
    return;
  }
  EvictUntilFitsLocked(entry.bytes);
  bytes_cached_ += entry.bytes;
  // A fresh insert supersedes any spilled copy built from older pins.
  spilled_.erase(key);
  entries_[key] = std::move(entry);
  ++stats_.inserts;
}

void MvStore::EvictUntilFitsLocked(uint64_t incoming_bytes) {
  while (!entries_.empty() &&
         bytes_cached_ + incoming_bytes > options_.capacity_bytes) {
    // Rank by recency, then evict the cheapest-to-rebuild entry among the
    // `eviction_window` least recently used: a stale-but-expensive view
    // outlives a stale-and-cheap one.
    std::vector<std::map<std::string, Entry>::iterator> tail;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      tail.push_back(it);
    }
    std::sort(tail.begin(), tail.end(), [](const auto& a, const auto& b) {
      return a->second.lru_tick < b->second.lru_tick;
    });
    if (tail.size() > static_cast<size_t>(options_.eviction_window)) {
      tail.resize(static_cast<size_t>(options_.eviction_window));
    }
    auto victim = *std::min_element(
        tail.begin(), tail.end(), [](const auto& a, const auto& b) {
          return a->second.rebuild_scan_bytes < b->second.rebuild_scan_bytes;
        });
    if (options_.spill_storage != nullptr) {
      SpillLocked(victim->first, victim->second);
    }
    bytes_cached_ -= victim->second.bytes;
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

void MvStore::SpillLocked(const std::string& key, const Entry& entry) {
  if (entry.table->batches().empty()) return;  // nothing worth persisting
  const RowBatch& first = *entry.table->batches()[0];
  FileSchema schema;
  for (size_t c = 0; c < first.num_columns(); ++c) {
    schema.push_back(ColumnDef{first.name(c), first.column(c)->type()});
  }
  PixelsWriter writer(schema);
  for (const auto& batch : entry.table->batches()) {
    if (!writer.Append(*batch).ok()) return;  // best effort: drop instead
  }
  const std::string path = SpillPath(key);
  if (!writer.Finish(options_.spill_storage, path).ok()) return;
  SpillEntry spill;
  spill.path = path;
  spill.rebuild_scan_bytes = entry.rebuild_scan_bytes;
  spill.pins = entry.pins;
  spilled_[key] = std::move(spill);
  ++stats_.spill_writes;
}

void MvStore::DropSpillLocked(const std::string& key) {
  auto it = spilled_.find(key);
  if (it == spilled_.end()) return;
  if (options_.spill_storage != nullptr) {
    (void)options_.spill_storage->Delete(it->second.path);  // best effort
  }
  spilled_.erase(it);
}

void MvStore::InvalidateTable(const std::string& db, const std::string& table) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto pinned = [&](const std::vector<TableVersionPin>& pins) {
    for (const auto& pin : pins) {
      if (pin.db == db && pin.table == table) return true;
    }
    return false;
  };
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (pinned(it->second.pins)) {
      bytes_cached_ -= it->second.bytes;
      it = entries_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
  for (auto it = spilled_.begin(); it != spilled_.end();) {
    if (pinned(it->second.pins)) {
      if (options_.spill_storage != nullptr) {
        (void)options_.spill_storage->Delete(it->second.path);
      }
      it = spilled_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

MvStoreStats MvStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MvStoreStats out = stats_;
  out.bytes_cached = bytes_cached_;
  out.entries = entries_.size();
  out.spill_entries = spilled_.size();
  return out;
}

}  // namespace pixels
