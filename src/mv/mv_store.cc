#include "mv/mv_store.h"

#include <algorithm>

#include "format/reader.h"
#include "format/writer.h"
#include "storage/storage.h"

namespace pixels {

uint64_t TablePayloadBytes(const Table& table) {
  uint64_t bytes = 0;
  for (const auto& batch : table.batches()) bytes += batch->ApproxBytes();
  return bytes;
}

MvStore::MvStore(MvStoreOptions options) : options_(std::move(options)) {
  if (options_.eviction_window < 1) options_.eviction_window = 1;
  // The spill index lives only in memory, so objects written under this
  // prefix by a prior process are unreachable; sweep them at startup so
  // they do not orphan in storage forever.
  if (options_.spill_storage != nullptr) {
    auto stale = options_.spill_storage->List(options_.spill_prefix);
    if (stale.ok()) {
      for (const auto& path : *stale) {
        (void)options_.spill_storage->Delete(path);  // best effort
      }
    }
  }
}

bool MvStore::PinsCurrent(const std::vector<TableVersionPin>& pins,
                          const Catalog& catalog) {
  for (const auto& pin : pins) {
    auto version = catalog.GetTableVersion(pin.db, pin.table);
    if (!version.ok() || *version != pin.version) return false;
  }
  return true;
}

std::string MvStore::SpillPath(const std::string& key) const {
  return options_.spill_prefix + "/" + key + ".pxl";
}

std::optional<MvLookupResult> MvStore::Lookup(const PlanFingerprint& fp,
                                              const Catalog& catalog) {
  const std::string key = fp.ToHex();
  SpillEntry spill;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.lookups;

    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (!PinsCurrent(it->second.pins, catalog)) {
        bytes_cached_ -= it->second.bytes;
        entries_.erase(it);
        DropSpillLocked(key);
        ++stats_.invalidations;
        ++stats_.misses;
        return std::nullopt;
      }
      it->second.lru_tick = ++lru_clock_;
      ++stats_.hits;
      stats_.saved_scan_bytes += it->second.rebuild_scan_bytes;
      return MvLookupResult{it->second.table, it->second.rebuild_scan_bytes,
                            /*from_spill=*/false};
    }

    auto sit = spilled_.find(key);
    if (sit == spilled_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    if (!PinsCurrent(sit->second.pins, catalog)) {
      DropSpillLocked(key);
      ++stats_.invalidations;
      ++stats_.misses;
      return std::nullopt;
    }
    // Copy the entry and drop the lock for the read-back below: it is
    // object-store I/O, and holding mutex_ across it would serialize
    // every concurrent lookup and insert behind a GET.
    spill = sit->second;
  }

  // Read the spilled view back (a few GETs instead of a rescan).
  auto table = std::make_shared<Table>();
  bool read_ok = false;
  auto reader = PixelsReader::Open(options_.spill_storage, spill.path);
  if (reader.ok()) {
    read_ok = true;
    for (size_t g = 0; g < (*reader)->NumRowGroups(); ++g) {
      auto batch = (*reader)->ReadRowGroup(g, {});
      if (!batch.ok()) {
        read_ok = false;
        break;
      }
      table->AddBatch(std::move(*batch));
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (!read_ok) {
    // The object went missing underneath us; treat as a plain miss. Only
    // drop the index entry if it is still the one we tried to read — a
    // concurrent insert may have superseded it while the lock was down.
    auto sit = spilled_.find(key);
    if (sit != spilled_.end() && sit->second.pins == spill.pins) {
      DropSpillLocked(key);
    }
    ++stats_.misses;
    return std::nullopt;
  }
  // Re-validate: the catalog may have mutated while the lock was dropped.
  if (!PinsCurrent(spill.pins, catalog)) {
    DropSpillLocked(key);
    ++stats_.invalidations;
    ++stats_.misses;
    return std::nullopt;
  }
  // A concurrent insert may have (re)populated the memory tier while we
  // were reading; its entry is at least as fresh, so serve that instead
  // of re-admitting our copy over it.
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.lru_tick = ++lru_clock_;
    ++stats_.hits;
    stats_.saved_scan_bytes += it->second.rebuild_scan_bytes;
    return MvLookupResult{it->second.table, it->second.rebuild_scan_bytes,
                          /*from_spill=*/false};
  }
  const uint64_t rebuild = spill.rebuild_scan_bytes;
  InsertLocked(key, table, rebuild,
               std::vector<TableVersionPin>(spill.pins));
  ++stats_.hits;
  ++stats_.spill_hits;
  stats_.saved_scan_bytes += rebuild;
  return MvLookupResult{std::move(table), rebuild, /*from_spill=*/true};
}

void MvStore::Insert(const PlanFingerprint& fp, TablePtr result,
                     uint64_t rebuild_scan_bytes,
                     std::vector<TableVersionPin> pins) {
  if (result == nullptr) return;
  const std::string key = fp.ToHex();
  std::lock_guard<std::mutex> lock(mutex_);
  InsertLocked(key, std::move(result), rebuild_scan_bytes, std::move(pins));
}

void MvStore::InsertLocked(const std::string& key, TablePtr result,
                           uint64_t rebuild_scan_bytes,
                           std::vector<TableVersionPin> pins) {
  Entry entry;
  entry.table = std::move(result);
  entry.bytes = TablePayloadBytes(*entry.table);
  entry.rebuild_scan_bytes = rebuild_scan_bytes;
  entry.pins = std::move(pins);
  entry.lru_tick = ++lru_clock_;

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_cached_ -= it->second.bytes;
    entries_.erase(it);
  }
  if (entry.bytes > options_.capacity_bytes) {
    // Too large for the memory tier entirely: straight to spill.
    if (options_.spill_storage != nullptr) {
      SpillLocked(key, entry);
    }
    return;
  }
  EvictUntilFitsLocked(entry.bytes);
  bytes_cached_ += entry.bytes;
  // A fresh insert supersedes any spilled copy built from older pins;
  // delete its object too, or it would orphan in storage if the memory
  // entry is later invalidated or evicted without spilling.
  DropSpillLocked(key);
  entries_[key] = std::move(entry);
  ++stats_.inserts;
}

void MvStore::EvictUntilFitsLocked(uint64_t incoming_bytes) {
  if (entries_.empty() ||
      bytes_cached_ + incoming_bytes <= options_.capacity_bytes) {
    return;
  }
  // Rank all entries by recency once, then evict the cheapest-to-rebuild
  // entry among the `eviction_window` least recently used that survive: a
  // stale-but-expensive view outlives a stale-and-cheap one. The sliding
  // window over the sorted order handles any number of evictions without
  // re-sorting — O(n log n + evictions * window), not O(n^2 log n).
  std::vector<std::map<std::string, Entry>::iterator> order;
  order.reserve(entries_.size());
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    order.push_back(it);
  }
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    return a->second.lru_tick < b->second.lru_tick;
  });
  std::vector<bool> gone(order.size(), false);
  const size_t window = static_cast<size_t>(options_.eviction_window);
  size_t head = 0;
  while (bytes_cached_ + incoming_bytes > options_.capacity_bytes) {
    while (head < order.size() && gone[head]) ++head;
    if (head == order.size()) break;
    size_t victim = order.size();
    size_t considered = 0;
    for (size_t i = head; i < order.size() && considered < window; ++i) {
      if (gone[i]) continue;
      ++considered;
      if (victim == order.size() || order[i]->second.rebuild_scan_bytes <
                                        order[victim]->second.rebuild_scan_bytes) {
        victim = i;
      }
    }
    auto it = order[victim];
    if (options_.spill_storage != nullptr) {
      SpillLocked(it->first, it->second);
    }
    bytes_cached_ -= it->second.bytes;
    entries_.erase(it);
    gone[victim] = true;
    ++stats_.evictions;
  }
}

void MvStore::SpillLocked(const std::string& key, const Entry& entry) {
  if (entry.table->batches().empty()) return;  // nothing worth persisting
  const RowBatch& first = *entry.table->batches()[0];
  FileSchema schema;
  for (size_t c = 0; c < first.num_columns(); ++c) {
    schema.push_back(ColumnDef{first.name(c), first.column(c)->type()});
  }
  PixelsWriter writer(schema);
  for (const auto& batch : entry.table->batches()) {
    if (!writer.Append(*batch).ok()) return;  // best effort: drop instead
  }
  const std::string path = SpillPath(key);
  if (!writer.Finish(options_.spill_storage, path).ok()) return;
  SpillEntry spill;
  spill.path = path;
  spill.rebuild_scan_bytes = entry.rebuild_scan_bytes;
  spill.pins = entry.pins;
  spilled_[key] = std::move(spill);
  ++stats_.spill_writes;
}

void MvStore::DropSpillLocked(const std::string& key) {
  auto it = spilled_.find(key);
  if (it == spilled_.end()) return;
  if (options_.spill_storage != nullptr) {
    (void)options_.spill_storage->Delete(it->second.path);  // best effort
  }
  spilled_.erase(it);
}

void MvStore::InvalidateTable(const std::string& db, const std::string& table) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto pinned = [&](const std::vector<TableVersionPin>& pins) {
    for (const auto& pin : pins) {
      if (pin.db == db && pin.table == table) return true;
    }
    return false;
  };
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (pinned(it->second.pins)) {
      bytes_cached_ -= it->second.bytes;
      it = entries_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
  for (auto it = spilled_.begin(); it != spilled_.end();) {
    if (pinned(it->second.pins)) {
      if (options_.spill_storage != nullptr) {
        (void)options_.spill_storage->Delete(it->second.path);
      }
      it = spilled_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

MvStoreStats MvStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MvStoreStats out = stats_;
  out.bytes_cached = bytes_cached_;
  out.entries = entries_.size();
  out.spill_entries = spilled_.size();
  return out;
}

}  // namespace pixels
