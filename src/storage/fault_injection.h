// FaultInjectingStorage: a seeded, deterministic fault-injection decorator
// used to exercise every failure path above the storage layer — retry
// loops, CF worker re-invocation, query-state propagation, and billing
// exactness under errors. The same seed yields the same fault sequence,
// so a chaos run that passes once passes forever.
//
// Faults are decided per underlying request (one ReadRanges call that
// coalesces into three GETs draws three times), which matches where real
// object stores fail. Injected latency spikes accumulate in simulated
// milliseconds only; no wall-clock sleeping, so tests stay fast and the
// discrete-event simulation stays deterministic.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/storage.h"

namespace pixels {

/// A per-path override of the global fault rates. The first rule whose
/// `path_substring` occurs in the request path wins; an empty substring
/// matches every path.
struct FaultRule {
  std::string path_substring;
  /// Probability that a read-side op (Read/ReadRange/Size) fails.
  double read_error_rate = 0;
  /// Probability that a write-side op (Write/Delete) fails.
  double write_error_rate = 0;
  /// The first N matching read ops fail unconditionally, then the rate
  /// applies ("fail-N-then-succeed" — deterministic transient faults).
  int fail_first_reads = 0;
  /// Same for write-side ops.
  int fail_first_writes = 0;
  /// Probability that an op takes a latency spike (accounted, not slept).
  double latency_spike_rate = 0;
  double latency_spike_ms = 250.0;
  /// Fixed latency added to EVERY op whose path matches this rule
  /// (accounted in simulated ms, never slept). Unlike the probabilistic
  /// spikes above this is deterministic per path, so a whole straggler
  /// task — every GET/PUT under one task's object prefix — can be slowed
  /// reproducibly regardless of thread interleaving. The shuffle stage
  /// scheduler also polls it via `PathSlowMs` to price task durations.
  double slow_ms = 0;
};

/// Global injection parameters; `rules` refine them per path.
struct FaultInjectionParams {
  uint64_t seed = 7;
  double read_error_rate = 0;
  double write_error_rate = 0;
  double latency_spike_rate = 0;
  double latency_spike_ms = 250.0;
  std::vector<FaultRule> rules;
};

/// Monotonic counters of what was injected.
struct FaultInjectionStats {
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t injected_read_errors = 0;
  uint64_t injected_write_errors = 0;
  uint64_t injected_latency_spikes = 0;
  /// Ops slowed by a deterministic per-path `slow_ms` rule.
  uint64_t injected_slow_ops = 0;
  /// Simulated milliseconds added by latency spikes and slow rules.
  double injected_latency_ms = 0;
};

/// Storage decorator that injects transient IOError faults and latency
/// spikes in front of `inner`. Thread-safe: concurrent CF workers share
/// one injector (the fault sequence is then deterministic per op count,
/// not per interleaving). Injected errors carry the "injected fault"
/// marker in their message and classify as retryable (IOError).
class FaultInjectingStorage : public Storage {
 public:
  FaultInjectingStorage(std::shared_ptr<Storage> inner,
                        FaultInjectionParams params = {})
      : inner_(std::move(inner)), params_(std::move(params)),
        rng_(params_.seed),
        rule_reads_(params_.rules.size(), 0),
        rule_writes_(params_.rules.size(), 0) {}

  Result<std::vector<uint8_t>> Read(const std::string& path) override;
  Result<std::vector<uint8_t>> ReadRange(const std::string& path,
                                         uint64_t offset,
                                         uint64_t length) override;
  Status Write(const std::string& path,
               const std::vector<uint8_t>& data) override;
  Result<uint64_t> Size(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;
  Status Delete(const std::string& path) override;
  bool Exists(const std::string& path) override;

  FaultInjectionStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  /// Deterministic slow-worker penalty for ops on `path`: the `slow_ms`
  /// of the first matching rule (the same first-match-wins order as
  /// MaybeInject), 0 when no rule matches. Pure — no counters move, no
  /// randomness draws — so schedulers can price a task's simulated
  /// duration without perturbing the fault stream.
  double PathSlowMs(const std::string& path) const;

  /// The wrapped storage (for decorator-stack walks).
  Storage* inner() const { return inner_.get(); }

 private:
  /// Decides the fate of one op; returns non-OK for an injected fault.
  Status MaybeInject(const std::string& path, bool is_write);

  std::shared_ptr<Storage> inner_;
  FaultInjectionParams params_;
  mutable std::mutex mutex_;
  Random rng_;
  /// Per-rule counters driving fail-first-N (index-aligned with rules).
  std::vector<int> rule_reads_;
  std::vector<int> rule_writes_;
  FaultInjectionStats stats_;
};

}  // namespace pixels
