// Simulated cloud object store (S3-like). Wraps any Storage backend and
// adds the dimensions the scheduling study needs: per-request first-byte
// latency, bandwidth-limited transfer time, and request / scanned-byte
// accounting that feeds the $/TB-scan billing of the query server.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "storage/storage.h"

namespace pixels {

/// Latency and pricing parameters of the simulated object store. Defaults
/// approximate S3: ~15 ms first byte, ~90 MB/s per reader stream,
/// $0.0004 per 1000 GETs, $0.005 per 1000 PUTs.
struct ObjectStoreParams {
  double first_byte_latency_ms = 15.0;
  double bandwidth_mbps = 90.0;  // MB per second per stream
  double get_price_per_1000 = 0.0004;
  double put_price_per_1000 = 0.005;
};

/// Accumulated usage counters. Monotonic; callers snapshot and diff.
struct ObjectStoreStats {
  uint64_t get_requests = 0;
  uint64_t put_requests = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  /// GETs that served more than one requested range (coalesced reads).
  uint64_t coalesced_gets = 0;
  /// Bytes fetched only to bridge gaps between coalesced ranges. Counted
  /// in `bytes_read` (they crossed the wire) but never in the scan bytes
  /// the query server bills — billing charges what the query asked for,
  /// not how the I/O layer chose to fetch it.
  uint64_t gap_bytes_fetched = 0;
  /// Simulated wall time spent in reads, had they run against S3.
  double simulated_read_ms = 0;
  /// Request cost in dollars (GET + PUT).
  double request_cost_usd = 0;
  /// Retry counters, merged from a RetryingStorage stacked directly
  /// below this ObjectStore (all zero when no retry layer is present or
  /// no fault ever fired). Retried requests are counted ONCE in the
  /// request/byte counters above: the ObjectStore sees only the final
  /// outcome, so accounting — like billing — is retry-oblivious.
  uint64_t retry_attempts = 0;   // underlying attempts beyond the first
  uint64_t retry_recovered = 0;  // ops that succeeded after >= 1 retry
  uint64_t retry_exhausted = 0;  // transient errors that ran out of budget
  double retry_backoff_ms = 0;   // simulated backoff time
};

/// Storage decorator that forwards to `inner` and records usage.
class ObjectStore : public Storage {
 public:
  ObjectStore(std::shared_ptr<Storage> inner, ObjectStoreParams params = {})
      : inner_(std::move(inner)), params_(params) {}

  Result<std::vector<uint8_t>> Read(const std::string& path) override;
  Result<std::vector<uint8_t>> ReadRange(const std::string& path,
                                         uint64_t offset,
                                         uint64_t length) override;
  Result<std::vector<std::vector<uint8_t>>> ReadRanges(
      const std::string& path, const std::vector<ByteRange>& ranges,
      uint64_t coalesce_gap_bytes = kDefaultCoalesceGapBytes) override;
  Status Write(const std::string& path,
               const std::vector<uint8_t>& data) override;
  Result<uint64_t> Size(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;
  Status Delete(const std::string& path) override;
  bool Exists(const std::string& path) override;

  /// Snapshot of the usage counters (consistent under concurrent access;
  /// concurrent CF workers share one store). When the inner storage is a
  /// RetryingStorage, its counters are folded into the retry_* fields.
  ObjectStoreStats stats() const;
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = ObjectStoreStats{};
  }

  /// Simulated latency of reading `bytes` in one request, in milliseconds.
  double EstimateReadLatencyMs(uint64_t bytes) const;

  /// The wrapped storage (for decorator-stack walks).
  Storage* inner() const { return inner_.get(); }

 private:
  void RecordGet(uint64_t bytes);

  std::shared_ptr<Storage> inner_;
  ObjectStoreParams params_;
  mutable std::mutex mutex_;
  ObjectStoreStats stats_;
};

}  // namespace pixels
