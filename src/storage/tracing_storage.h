// Span-emitting storage decorator. Wraps any Storage and records one
// trace span per data operation (Read/ReadRange/ReadRanges/Write) with
// path and byte-count attributes, parented under the Tracer's ambient
// active span (the executing query/worker attempt). Metadata calls
// (Size/List/Exists/Delete) forward without spans to keep traces small.
//
// Composes with the rest of the decorator stack; the natural placement is
// between ObjectStore and RetryingStorage —
//   ObjectStore( TracingStorage( RetryingStorage( FaultInjecting(...))))
// — so each span is one priced GET (one merged range) including its
// retries, or outermost around ObjectStore (each span then matches the
// reader's request). Whatever the placement, construct the stack before
// the Catalog so cache keys (which include the storage pointer) see one
// consistent identity.
//
// Overhead-when-off guarantee: with the tracer null or at kOff every call
// is a plain forward — no span, no string building.
#pragma once

#include <memory>
#include <utility>

#include "common/trace.h"
#include "storage/storage.h"

namespace pixels {

class TracingStorage : public Storage {
 public:
  TracingStorage(std::shared_ptr<Storage> inner, Tracer* tracer)
      : inner_(std::move(inner)), tracer_(tracer) {}

  Result<std::vector<uint8_t>> Read(const std::string& path) override;
  Result<std::vector<uint8_t>> ReadRange(const std::string& path,
                                         uint64_t offset,
                                         uint64_t length) override;
  /// Forwards to the inner ReadRanges (NOT the base-class default, which
  /// would re-dispatch through this decorator's ReadRange and change how
  /// the inner stack sees merged ranges).
  Result<std::vector<std::vector<uint8_t>>> ReadRanges(
      const std::string& path, const std::vector<ByteRange>& ranges,
      uint64_t coalesce_gap_bytes) override;
  Status Write(const std::string& path,
               const std::vector<uint8_t>& data) override;
  Result<uint64_t> Size(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;
  Status Delete(const std::string& path) override;
  bool Exists(const std::string& path) override;

  Storage* inner() const { return inner_.get(); }
  Tracer* tracer() const { return tracer_; }

 private:
  bool On() const { return tracer_ != nullptr && tracer_->enabled(); }

  std::shared_ptr<Storage> inner_;
  Tracer* tracer_;
};

}  // namespace pixels
