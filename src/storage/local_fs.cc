#include "storage/local_fs.h"

#include <algorithm>
#include <cstdio>
#include <system_error>

namespace pixels {

namespace fs = std::filesystem;

Result<std::unique_ptr<LocalFs>> LocalFs::Open(const std::string& root) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) return Status::IOError("cannot create root " + root + ": " + ec.message());
  return std::unique_ptr<LocalFs>(new LocalFs(fs::path(root)));
}

Result<fs::path> LocalFs::Resolve(const std::string& path) const {
  if (path.empty()) return Status::InvalidArgument("empty path");
  fs::path p(path);
  for (const auto& part : p) {
    if (part == "..") return Status::InvalidArgument("path escapes root: " + path);
  }
  return root_ / p;
}

Result<std::vector<uint8_t>> LocalFs::Read(const std::string& path) {
  PIXELS_ASSIGN_OR_RETURN(fs::path full, Resolve(path));
  std::FILE* f = std::fopen(full.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> data(static_cast<size_t>(size));
  size_t n = size > 0 ? std::fread(data.data(), 1, data.size(), f) : 0;
  std::fclose(f);
  if (n != data.size()) return Status::IOError("short read on " + path);
  return data;
}

Result<std::vector<uint8_t>> LocalFs::ReadRange(const std::string& path,
                                                uint64_t offset,
                                                uint64_t length) {
  PIXELS_ASSIGN_OR_RETURN(fs::path full, Resolve(path));
  std::FILE* f = std::fopen(full.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  uint64_t size = static_cast<uint64_t>(std::ftell(f));
  if (offset + length > size) {
    std::fclose(f);
    return Status::InvalidArgument("read range exceeds file size: " + path);
  }
  std::fseek(f, static_cast<long>(offset), SEEK_SET);
  std::vector<uint8_t> data(static_cast<size_t>(length));
  size_t n = length > 0 ? std::fread(data.data(), 1, data.size(), f) : 0;
  std::fclose(f);
  if (n != data.size()) return Status::IOError("short read on " + path);
  return data;
}

Status LocalFs::Write(const std::string& path,
                      const std::vector<uint8_t>& data) {
  PIXELS_ASSIGN_OR_RETURN(fs::path full, Resolve(path));
  std::error_code ec;
  fs::create_directories(full.parent_path(), ec);
  if (ec) return Status::IOError("mkdir failed for " + path + ": " + ec.message());
  std::FILE* f = std::fopen(full.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + path);
  size_t n = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (n != data.size()) return Status::IOError("short write on " + path);
  return Status::OK();
}

Result<uint64_t> LocalFs::Size(const std::string& path) {
  PIXELS_ASSIGN_OR_RETURN(fs::path full, Resolve(path));
  std::error_code ec;
  uint64_t size = fs::file_size(full, ec);
  if (ec) return Status::NotFound("cannot stat " + path + ": " + ec.message());
  return size;
}

Result<std::vector<std::string>> LocalFs::List(const std::string& prefix) {
  std::vector<std::string> out;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    std::string rel = fs::relative(it->path(), root_, ec).generic_string();
    if (rel.compare(0, prefix.size(), prefix) == 0) out.push_back(rel);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status LocalFs::Delete(const std::string& path) {
  PIXELS_ASSIGN_OR_RETURN(fs::path full, Resolve(path));
  std::error_code ec;
  if (!fs::remove(full, ec) || ec) {
    return Status::NotFound("cannot delete " + path);
  }
  return Status::OK();
}

bool LocalFs::Exists(const std::string& path) {
  auto full = Resolve(path);
  if (!full.ok()) return false;
  std::error_code ec;
  return fs::is_regular_file(*full, ec);
}

}  // namespace pixels
