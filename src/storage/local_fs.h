// Local-filesystem Storage backend, rooted at a directory.
#pragma once

#include <filesystem>

#include "storage/storage.h"

namespace pixels {

/// Maps object paths to files under a root directory. Parent directories
/// are created on write. Paths may not escape the root ("..").
class LocalFs : public Storage {
 public:
  /// `root` is created if it does not exist.
  static Result<std::unique_ptr<LocalFs>> Open(const std::string& root);

  Result<std::vector<uint8_t>> Read(const std::string& path) override;
  Result<std::vector<uint8_t>> ReadRange(const std::string& path,
                                         uint64_t offset,
                                         uint64_t length) override;
  Status Write(const std::string& path,
               const std::vector<uint8_t>& data) override;
  Result<uint64_t> Size(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;
  Status Delete(const std::string& path) override;
  bool Exists(const std::string& path) override;

 private:
  explicit LocalFs(std::filesystem::path root) : root_(std::move(root)) {}

  Result<std::filesystem::path> Resolve(const std::string& path) const;

  std::filesystem::path root_;
};

}  // namespace pixels
