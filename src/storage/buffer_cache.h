// Bounded, sharded, thread-safe LRU cache for column-chunk buffers.
// Shared by the top-level plan and the CF worker fleet so a chunk fetched
// once (by any worker, any query) is decoded many times but paid for on
// the object store only once. Capacity is a byte budget; eviction is LRU
// per shard. Entries are keyed by (storage instance, path, offset,
// length); `PixelsWriter::Finish` invalidates every live cache for the
// object it overwrites, so warm entries can never outlive the bytes they
// were read from.
//
// Billing invariant: the cache sits below `ScanStats::bytes_scanned`
// accounting — a cache hit still bills the chunk's bytes, so cold and
// warm runs produce identical $/TB-scan bills; only request counts and
// latency change.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/read_coalescer.h"

namespace pixels {

class Storage;

/// Snapshot of cache counters. Monotonic except the occupancy gauges.
struct BufferCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  /// Current occupancy.
  uint64_t bytes_cached = 0;
  uint64_t entries = 0;
};

/// Sharded LRU over immutable byte buffers.
class BufferCache {
 public:
  using Buffer = std::shared_ptr<const std::vector<uint8_t>>;

  /// `capacity_bytes` is split evenly across `num_shards` independent
  /// LRUs (sharding keeps concurrent morsels off one mutex).
  explicit BufferCache(uint64_t capacity_bytes, int num_shards = 8);
  ~BufferCache();

  BufferCache(const BufferCache&) = delete;
  BufferCache& operator=(const BufferCache&) = delete;

  /// Returns the cached buffer or null; a hit refreshes LRU recency.
  Buffer Get(const Storage* storage, const std::string& path,
             uint64_t offset, uint64_t length);

  /// Inserts (or refreshes) an entry, evicting LRU tails past capacity.
  /// Buffers larger than a whole shard are not cached.
  void Put(const Storage* storage, const std::string& path, uint64_t offset,
           uint64_t length, Buffer data);

  /// Drops every entry of one object (overwrite/delete invalidation).
  void EraseObject(const Storage* storage, const std::string& path);

  /// Drops the object from every live BufferCache in the process; the
  /// writer calls this whenever it (re)writes an object.
  static void InvalidateAllCaches(const Storage* storage,
                                  const std::string& path);

  BufferCacheStats stats() const;
  uint64_t capacity_bytes() const { return capacity_; }

 private:
  struct Key {
    const Storage* storage;
    std::string path;
    uint64_t offset;
    uint64_t length;

    bool operator==(const Key& other) const {
      return storage == other.storage && offset == other.offset &&
             length == other.length && path == other.path;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<std::pair<Key, Buffer>> lru;  // front = most recently used
    std::unordered_map<Key, std::list<std::pair<Key, Buffer>>::iterator,
                       KeyHash>
        map;
    uint64_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
  };

  static uint64_t Charge(const Key& key, const Buffer& data);
  Shard& ShardFor(const Key& key);

  uint64_t capacity_;
  uint64_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Per-query I/O policy, threaded from `ExecContext` / `CfWorkerOptions`
/// through the scan operators into `PixelsReader`.
struct IoOptions {
  /// Gap tolerance for multi-range chunk reads (0 = one request per
  /// chunk, the pre-coalescing behaviour).
  uint64_t coalesce_gap_bytes = kDefaultCoalesceGapBytes;
  /// Column-chunk cache; null disables chunk caching (and prefetch).
  BufferCache* chunk_cache = nullptr;
  /// Consult the process-wide footer cache on `PixelsReader::Open`.
  bool use_footer_cache = true;
  /// How many morsel windows ahead the streaming scan prefetches into the
  /// chunk cache (0 = no prefetch; needs `chunk_cache`).
  int prefetch_windows = 1;
};

}  // namespace pixels
