// RetryingStorage: transparent retry with exponential backoff + jitter
// for transient storage errors. Sits between the accounting ObjectStore
// (above) and the raw — possibly fault-injected — backend (below):
//
//   ObjectStore( RetryingStorage( FaultInjectingStorage( MemoryStore )))
//
// With that stacking a retried GET is counted once by ObjectStore and
// scanned bytes are counted once by the executor, so billing is identical
// to the fault-free run — the invariant the chaos soak pins.
//
// Backoff is accounted in simulated milliseconds (like the ObjectStore's
// simulated_read_ms): storage calls run on pool threads where sleeping
// or touching the SimClock would be both slow and racy. The jitter comes
// from a seeded Random, so a retry schedule is reproducible.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/storage.h"

namespace pixels {

/// Retry policy: attempt budget, exponential backoff, and the
/// retryable-vs-permanent classification shared by the CF fleet.
struct RetryPolicy {
  /// Total attempts per op, including the first (1 disables retries).
  int max_attempts = 4;
  double initial_backoff_ms = 25.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 2000.0;
  /// Backoff is multiplied by a uniform value in [1-jitter, 1+jitter].
  double jitter_fraction = 0.2;
  /// Seed of the jitter stream (independent of fault-injection seeds).
  uint64_t jitter_seed = 17;

  /// Transient, worth retrying: IOError, Timeout, ResourceExhausted.
  /// Everything else (NotFound, Corruption, InvalidArgument, ...) is
  /// permanent and surfaces immediately.
  static bool IsRetryable(const Status& s);

  /// Backoff before retry `retry_index` (1-based), jittered via `rng`.
  double BackoffMs(int retry_index, Random* rng) const;
};

/// Monotonic retry counters; merged into ObjectStoreStats by an
/// ObjectStore stacked directly above (see object_store.h).
struct RetryStats {
  uint64_t operations = 0;       // user-level ops
  uint64_t attempts = 0;         // underlying attempts (>= operations)
  uint64_t retries = 0;          // attempts beyond an op's first
  uint64_t recovered_ops = 0;    // ops that succeeded after >= 1 retry
  uint64_t exhausted_ops = 0;    // retryable errors that ran out of budget
  uint64_t permanent_errors = 0; // non-retryable errors (not retried)
  double backoff_simulated_ms = 0;
};

/// Storage decorator that retries transient errors from `inner` under a
/// RetryPolicy. Thread-safe; shared by concurrent CF workers.
class RetryingStorage : public Storage {
 public:
  RetryingStorage(std::shared_ptr<Storage> inner, RetryPolicy policy = {})
      : inner_(std::move(inner)), policy_(policy), rng_(policy.jitter_seed) {}

  Result<std::vector<uint8_t>> Read(const std::string& path) override;
  Result<std::vector<uint8_t>> ReadRange(const std::string& path,
                                         uint64_t offset,
                                         uint64_t length) override;
  Status Write(const std::string& path,
               const std::vector<uint8_t>& data) override;
  Result<uint64_t> Size(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;
  Status Delete(const std::string& path) override;
  bool Exists(const std::string& path) override;

  RetryStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }
  const RetryPolicy& policy() const { return policy_; }
  /// The wrapped storage (for decorator-stack walks).
  Storage* inner() const { return inner_.get(); }

 private:
  /// Runs `op` under the retry policy, recording attempts and backoff.
  template <typename Op>
  auto WithRetries(const Op& op) -> decltype(op());

  /// Accounts the outcome of one attempt; returns true to retry.
  bool RecordAttempt(const Status& s, int attempt);

  std::shared_ptr<Storage> inner_;
  RetryPolicy policy_;
  mutable std::mutex mutex_;
  Random rng_;
  RetryStats stats_;
};

}  // namespace pixels
