#include "storage/tracing_storage.h"

namespace pixels {

namespace {

void AnnotateStatus(Tracer* tracer, uint64_t span, const Status& status) {
  if (!status.ok()) tracer->Annotate(span, "error", status.ToString());
}

}  // namespace

Result<std::vector<uint8_t>> TracingStorage::Read(const std::string& path) {
  if (!On()) return inner_->Read(path);
  const uint64_t span = tracer_->StartSpan("storage-read",
                                           tracer_->ActiveParent());
  tracer_->Annotate(span, "path", path);
  auto result = inner_->Read(path);
  if (result.ok()) {
    tracer_->Annotate(span, "bytes", static_cast<uint64_t>(result->size()));
  }
  AnnotateStatus(tracer_, span, result.status());
  tracer_->EndSpan(span);
  return result;
}

Result<std::vector<uint8_t>> TracingStorage::ReadRange(const std::string& path,
                                                       uint64_t offset,
                                                       uint64_t length) {
  if (!On()) return inner_->ReadRange(path, offset, length);
  const uint64_t span = tracer_->StartSpan("storage-read-range",
                                           tracer_->ActiveParent());
  tracer_->Annotate(span, "path", path);
  tracer_->Annotate(span, "offset", offset);
  tracer_->Annotate(span, "bytes", length);
  auto result = inner_->ReadRange(path, offset, length);
  AnnotateStatus(tracer_, span, result.status());
  tracer_->EndSpan(span);
  return result;
}

Result<std::vector<std::vector<uint8_t>>> TracingStorage::ReadRanges(
    const std::string& path, const std::vector<ByteRange>& ranges,
    uint64_t coalesce_gap_bytes) {
  if (!On()) return inner_->ReadRanges(path, ranges, coalesce_gap_bytes);
  const uint64_t span = tracer_->StartSpan("storage-read-ranges",
                                           tracer_->ActiveParent());
  tracer_->Annotate(span, "path", path);
  tracer_->Annotate(span, "ranges", static_cast<uint64_t>(ranges.size()));
  uint64_t bytes = 0;
  for (const auto& r : ranges) bytes += r.length;
  tracer_->Annotate(span, "bytes", bytes);
  auto result = inner_->ReadRanges(path, ranges, coalesce_gap_bytes);
  AnnotateStatus(tracer_, span, result.status());
  tracer_->EndSpan(span);
  return result;
}

Status TracingStorage::Write(const std::string& path,
                             const std::vector<uint8_t>& data) {
  if (!On()) return inner_->Write(path, data);
  const uint64_t span = tracer_->StartSpan("storage-write",
                                           tracer_->ActiveParent());
  tracer_->Annotate(span, "path", path);
  tracer_->Annotate(span, "bytes", static_cast<uint64_t>(data.size()));
  Status status = inner_->Write(path, data);
  AnnotateStatus(tracer_, span, status);
  tracer_->EndSpan(span);
  return status;
}

Result<uint64_t> TracingStorage::Size(const std::string& path) {
  return inner_->Size(path);
}

Result<std::vector<std::string>> TracingStorage::List(
    const std::string& prefix) {
  return inner_->List(prefix);
}

Status TracingStorage::Delete(const std::string& path) {
  return inner_->Delete(path);
}

bool TracingStorage::Exists(const std::string& path) {
  return inner_->Exists(path);
}

}  // namespace pixels
