#include "storage/storage.h"

namespace pixels {

Status WriteString(Storage* storage, const std::string& path,
                   const std::string& data) {
  std::vector<uint8_t> bytes(data.begin(), data.end());
  return storage->Write(path, bytes);
}

Result<std::string> ReadString(Storage* storage, const std::string& path) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, storage->Read(path));
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace pixels
