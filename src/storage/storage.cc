#include "storage/storage.h"

namespace pixels {

Result<std::vector<std::vector<uint8_t>>> Storage::ReadRanges(
    const std::string& path, const std::vector<ByteRange>& ranges,
    uint64_t coalesce_gap_bytes) {
  const CoalescePlan plan = CoalesceRanges(ranges, coalesce_gap_bytes);
  std::vector<std::vector<uint8_t>> merged;
  merged.reserve(plan.merged.size());
  for (const ByteRange& r : plan.merged) {
    PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> buf,
                            ReadRange(path, r.offset, r.length));
    merged.push_back(std::move(buf));
  }
  return SliceCoalesced(plan, merged, ranges);
}

Status WriteString(Storage* storage, const std::string& path,
                   const std::string& data) {
  std::vector<uint8_t> bytes(data.begin(), data.end());
  return storage->Write(path, bytes);
}

Result<std::string> ReadString(Storage* storage, const std::string& path) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, storage->Read(path));
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace pixels
