#include "storage/object_store.h"

#include "storage/retrying_storage.h"

namespace pixels {

ObjectStoreStats ObjectStore::stats() const {
  ObjectStoreStats snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = stats_;
  }
  if (auto* retrying = dynamic_cast<RetryingStorage*>(inner_.get())) {
    const RetryStats rs = retrying->stats();
    snapshot.retry_attempts = rs.retries;
    snapshot.retry_recovered = rs.recovered_ops;
    snapshot.retry_exhausted = rs.exhausted_ops;
    snapshot.retry_backoff_ms = rs.backoff_simulated_ms;
  }
  return snapshot;
}

double ObjectStore::EstimateReadLatencyMs(uint64_t bytes) const {
  const double transfer_ms =
      static_cast<double>(bytes) / (params_.bandwidth_mbps * 1e6) * 1000.0;
  return params_.first_byte_latency_ms + transfer_ms;
}

void ObjectStore::RecordGet(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.get_requests;
  stats_.bytes_read += bytes;
  stats_.simulated_read_ms += EstimateReadLatencyMs(bytes);
  stats_.request_cost_usd += params_.get_price_per_1000 / 1000.0;
}

Result<std::vector<uint8_t>> ObjectStore::Read(const std::string& path) {
  auto r = inner_->Read(path);
  if (r.ok()) RecordGet(r.ValueOrDie().size());
  return r;
}

Result<std::vector<uint8_t>> ObjectStore::ReadRange(const std::string& path,
                                                    uint64_t offset,
                                                    uint64_t length) {
  auto r = inner_->ReadRange(path, offset, length);
  if (r.ok()) RecordGet(r.ValueOrDie().size());
  return r;
}

Result<std::vector<std::vector<uint8_t>>> ObjectStore::ReadRanges(
    const std::string& path, const std::vector<ByteRange>& ranges,
    uint64_t coalesce_gap_bytes) {
  const CoalescePlan plan = CoalesceRanges(ranges, coalesce_gap_bytes);
  std::vector<std::vector<uint8_t>> merged;
  merged.reserve(plan.merged.size());
  for (size_t m = 0; m < plan.merged.size(); ++m) {
    PIXELS_ASSIGN_OR_RETURN(
        std::vector<uint8_t> buf,
        inner_->ReadRange(path, plan.merged[m].offset, plan.merged[m].length));
    RecordGet(buf.size());
    if (plan.ranges_served[m] > 1) {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.coalesced_gets;
    }
    merged.push_back(std::move(buf));
  }
  if (plan.gap_bytes > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.gap_bytes_fetched += plan.gap_bytes;
  }
  return SliceCoalesced(plan, merged, ranges);
}

Status ObjectStore::Write(const std::string& path,
                          const std::vector<uint8_t>& data) {
  Status s = inner_->Write(path, data);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.put_requests;
    stats_.bytes_written += data.size();
    stats_.request_cost_usd += params_.put_price_per_1000 / 1000.0;
  }
  return s;
}

Result<uint64_t> ObjectStore::Size(const std::string& path) {
  return inner_->Size(path);
}

Result<std::vector<std::string>> ObjectStore::List(const std::string& prefix) {
  return inner_->List(prefix);
}

Status ObjectStore::Delete(const std::string& path) {
  return inner_->Delete(path);
}

bool ObjectStore::Exists(const std::string& path) { return inner_->Exists(path); }

}  // namespace pixels
