#include "storage/fault_injection.h"

namespace pixels {

Status FaultInjectingStorage::MaybeInject(const std::string& path,
                                          bool is_write) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t op_index;
  double error_rate;
  double spike_rate = params_.latency_spike_rate;
  double spike_ms = params_.latency_spike_ms;
  double slow_ms = 0;
  bool fail_first = false;
  if (is_write) {
    op_index = ++stats_.write_ops;
    error_rate = params_.write_error_rate;
  } else {
    op_index = ++stats_.read_ops;
    error_rate = params_.read_error_rate;
  }
  for (size_t i = 0; i < params_.rules.size(); ++i) {
    const FaultRule& rule = params_.rules[i];
    if (!rule.path_substring.empty() &&
        path.find(rule.path_substring) == std::string::npos) {
      continue;
    }
    error_rate = is_write ? rule.write_error_rate : rule.read_error_rate;
    spike_rate = rule.latency_spike_rate;
    spike_ms = rule.latency_spike_ms;
    slow_ms = rule.slow_ms;
    if (is_write) {
      fail_first = ++rule_writes_[i] <= rule.fail_first_writes;
    } else {
      fail_first = ++rule_reads_[i] <= rule.fail_first_reads;
    }
    break;  // first matching rule wins
  }
  if (spike_rate > 0 && rng_.Bernoulli(spike_rate)) {
    ++stats_.injected_latency_spikes;
    stats_.injected_latency_ms += spike_ms;
  }
  if (slow_ms > 0) {
    ++stats_.injected_slow_ops;
    stats_.injected_latency_ms += slow_ms;
  }
  if (fail_first || (error_rate > 0 && rng_.Bernoulli(error_rate))) {
    if (is_write) {
      ++stats_.injected_write_errors;
      return Status::IOError("injected fault: transient write error #" +
                             std::to_string(op_index) + " on " + path);
    }
    ++stats_.injected_read_errors;
    return Status::IOError("injected fault: transient read error #" +
                           std::to_string(op_index) + " on " + path);
  }
  return Status::OK();
}

double FaultInjectingStorage::PathSlowMs(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const FaultRule& rule : params_.rules) {
    if (!rule.path_substring.empty() &&
        path.find(rule.path_substring) == std::string::npos) {
      continue;
    }
    return rule.slow_ms;  // first matching rule wins, like MaybeInject
  }
  return 0;
}

Result<std::vector<uint8_t>> FaultInjectingStorage::Read(
    const std::string& path) {
  PIXELS_RETURN_NOT_OK(MaybeInject(path, /*is_write=*/false));
  return inner_->Read(path);
}

Result<std::vector<uint8_t>> FaultInjectingStorage::ReadRange(
    const std::string& path, uint64_t offset, uint64_t length) {
  PIXELS_RETURN_NOT_OK(MaybeInject(path, /*is_write=*/false));
  return inner_->ReadRange(path, offset, length);
}

Status FaultInjectingStorage::Write(const std::string& path,
                                    const std::vector<uint8_t>& data) {
  PIXELS_RETURN_NOT_OK(MaybeInject(path, /*is_write=*/true));
  return inner_->Write(path, data);
}

Result<uint64_t> FaultInjectingStorage::Size(const std::string& path) {
  PIXELS_RETURN_NOT_OK(MaybeInject(path, /*is_write=*/false));
  return inner_->Size(path);
}

Result<std::vector<std::string>> FaultInjectingStorage::List(
    const std::string& prefix) {
  return inner_->List(prefix);
}

Status FaultInjectingStorage::Delete(const std::string& path) {
  PIXELS_RETURN_NOT_OK(MaybeInject(path, /*is_write=*/true));
  return inner_->Delete(path);
}

bool FaultInjectingStorage::Exists(const std::string& path) {
  return inner_->Exists(path);
}

}  // namespace pixels
