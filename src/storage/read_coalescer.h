// Gap-tolerant read coalescing: merges a set of requested byte ranges
// into fewer, larger reads when the gap between neighbours is below a
// threshold, and slices the merged buffers back into per-range results.
// On object storage every request pays a first-byte latency and a request
// fee, so fetching a small gap is cheaper than issuing a second GET.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace pixels {

/// A byte range inside one object.
struct ByteRange {
  uint64_t offset = 0;
  uint64_t length = 0;

  bool operator==(const ByteRange& other) const {
    return offset == other.offset && length == other.length;
  }
};

/// Default gap tolerance. 256 KiB transfers in ~3 ms at the simulated
/// 90 MB/s stream, well under the ~15 ms first-byte latency a separate
/// request would pay.
inline constexpr uint64_t kDefaultCoalesceGapBytes = 256 * 1024;

/// The result of planning a coalesced multi-range read: the merged ranges
/// to fetch, and for every input range, where its bytes live inside them.
struct CoalescePlan {
  /// One input range's location inside the merged reads.
  struct Slice {
    /// Index into `merged`; kEmptyRange for zero-length input ranges,
    /// which are never fetched.
    size_t merged_index = 0;
    /// Byte offset of the input range within the merged buffer.
    uint64_t offset_in_merged = 0;
  };
  static constexpr size_t kEmptyRange = static_cast<size_t>(-1);

  /// Merged ranges, sorted by offset, pairwise gaps > the tolerance.
  std::vector<ByteRange> merged;
  /// Parallel to the input ranges (original order preserved).
  std::vector<Slice> slices;
  /// How many input ranges each merged range serves (parallel to
  /// `merged`); > 1 means the read was genuinely coalesced.
  std::vector<size_t> ranges_served;
  /// Bytes fetched that no input range asked for (the tolerated gaps).
  /// These are transfer overhead, never billed as scanned bytes.
  uint64_t gap_bytes = 0;
};

/// Plans a coalesced read: input ranges may be unsorted and may overlap;
/// two ranges merge when the gap between them is <= `gap_bytes`
/// (overlapping ranges always merge). Zero-length ranges produce empty
/// slices and no reads.
CoalescePlan CoalesceRanges(const std::vector<ByteRange>& ranges,
                            uint64_t gap_bytes);

/// Slices the fetched merged buffers back into one buffer per input
/// range, in input order. `merged_buffers` must be the contents of
/// `plan.merged`, element for element.
Result<std::vector<std::vector<uint8_t>>> SliceCoalesced(
    const CoalescePlan& plan,
    const std::vector<std::vector<uint8_t>>& merged_buffers,
    const std::vector<ByteRange>& ranges);

}  // namespace pixels
