#include "storage/retrying_storage.h"

#include <algorithm>
#include <type_traits>

namespace pixels {

bool RetryPolicy::IsRetryable(const Status& s) {
  switch (s.code()) {
    case StatusCode::kIOError:
    case StatusCode::kTimeout:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

double RetryPolicy::BackoffMs(int retry_index, Random* rng) const {
  double base = initial_backoff_ms;
  for (int i = 1; i < retry_index; ++i) base *= backoff_multiplier;
  base = std::min(base, max_backoff_ms);
  if (jitter_fraction > 0 && rng != nullptr) {
    base *= rng->UniformDouble(1.0 - jitter_fraction, 1.0 + jitter_fraction);
  }
  return base;
}

bool RetryingStorage::RecordAttempt(const Status& s, int attempt) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.attempts;
  if (attempt > 1) ++stats_.retries;
  if (s.ok()) {
    if (attempt > 1) ++stats_.recovered_ops;
    return false;
  }
  if (!RetryPolicy::IsRetryable(s)) {
    ++stats_.permanent_errors;
    return false;
  }
  if (attempt >= std::max(policy_.max_attempts, 1)) {
    ++stats_.exhausted_ops;
    return false;
  }
  stats_.backoff_simulated_ms += policy_.BackoffMs(attempt, &rng_);
  return true;
}

template <typename Op>
auto RetryingStorage::WithRetries(const Op& op) -> decltype(op()) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.operations;
  }
  int attempt = 0;
  while (true) {
    ++attempt;
    auto result = op();
    const Status st = [&result] {
      if constexpr (std::is_same_v<decltype(op()), Status>) {
        return result;
      } else {
        return result.status();
      }
    }();
    if (!RecordAttempt(st, attempt)) return result;
  }
}

Result<std::vector<uint8_t>> RetryingStorage::Read(const std::string& path) {
  return WithRetries([&] { return inner_->Read(path); });
}

Result<std::vector<uint8_t>> RetryingStorage::ReadRange(
    const std::string& path, uint64_t offset, uint64_t length) {
  return WithRetries([&] { return inner_->ReadRange(path, offset, length); });
}

Status RetryingStorage::Write(const std::string& path,
                              const std::vector<uint8_t>& data) {
  return WithRetries([&] { return inner_->Write(path, data); });
}

Result<uint64_t> RetryingStorage::Size(const std::string& path) {
  return WithRetries([&] { return inner_->Size(path); });
}

Result<std::vector<std::string>> RetryingStorage::List(
    const std::string& prefix) {
  return WithRetries([&] { return inner_->List(prefix); });
}

Status RetryingStorage::Delete(const std::string& path) {
  return WithRetries([&] { return inner_->Delete(path); });
}

bool RetryingStorage::Exists(const std::string& path) {
  return inner_->Exists(path);
}

}  // namespace pixels
