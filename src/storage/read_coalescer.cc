#include "storage/read_coalescer.h"

#include <algorithm>
#include <numeric>

namespace pixels {

CoalescePlan CoalesceRanges(const std::vector<ByteRange>& ranges,
                            uint64_t gap_bytes) {
  CoalescePlan plan;
  plan.slices.resize(ranges.size());

  // Sort non-empty ranges by offset, remembering their input positions.
  std::vector<size_t> order;
  order.reserve(ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (ranges[i].length == 0) {
      plan.slices[i].merged_index = CoalescePlan::kEmptyRange;
    } else {
      order.push_back(i);
    }
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (ranges[a].offset != ranges[b].offset) {
      return ranges[a].offset < ranges[b].offset;
    }
    return ranges[a].length < ranges[b].length;
  });

  uint64_t covered = 0;  // bytes of the current merged range some input asked for
  for (size_t k = 0; k < order.size(); ++k) {
    const ByteRange& r = ranges[order[k]];
    const uint64_t r_end = r.offset + r.length;
    if (!plan.merged.empty()) {
      ByteRange& cur = plan.merged.back();
      const uint64_t cur_end = cur.offset + cur.length;
      // Merge when overlapping or when the hole between them fits the
      // tolerance.
      if (r.offset <= cur_end + gap_bytes) {
        // Union of requested bytes grows only by the part past cur_end
        // (overlap was already counted).
        covered += r_end > cur_end ? std::min(r.length, r_end - cur_end) : 0;
        cur.length = std::max(cur_end, r_end) - cur.offset;
        plan.slices[order[k]] = {plan.merged.size() - 1,
                                 r.offset - cur.offset};
        ++plan.ranges_served.back();
        continue;
      }
      plan.gap_bytes += cur.length - covered;
    }
    plan.merged.push_back(r);
    plan.ranges_served.push_back(1);
    plan.slices[order[k]] = {plan.merged.size() - 1, 0};
    covered = r.length;
  }
  if (!plan.merged.empty()) {
    plan.gap_bytes += plan.merged.back().length - covered;
  }
  return plan;
}

Result<std::vector<std::vector<uint8_t>>> SliceCoalesced(
    const CoalescePlan& plan,
    const std::vector<std::vector<uint8_t>>& merged_buffers,
    const std::vector<ByteRange>& ranges) {
  if (merged_buffers.size() != plan.merged.size() ||
      plan.slices.size() != ranges.size()) {
    return Status::InvalidArgument("coalesce plan does not match buffers");
  }
  std::vector<std::vector<uint8_t>> out(ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    const CoalescePlan::Slice& slice = plan.slices[i];
    if (slice.merged_index == CoalescePlan::kEmptyRange) continue;
    const std::vector<uint8_t>& buf = merged_buffers[slice.merged_index];
    if (slice.offset_in_merged + ranges[i].length > buf.size()) {
      return Status::Internal("coalesced buffer shorter than planned");
    }
    const auto begin =
        buf.begin() + static_cast<ptrdiff_t>(slice.offset_in_merged);
    out[i].assign(begin, begin + static_cast<ptrdiff_t>(ranges[i].length));
  }
  return out;
}

}  // namespace pixels
