#include "storage/buffer_cache.h"

#include <algorithm>
#include <functional>

namespace pixels {

namespace {

/// Live-cache registry so the writer can invalidate overwritten objects
/// in every cache, not just one it happens to know about.
std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

std::vector<BufferCache*>& Registry() {
  static std::vector<BufferCache*> caches;
  return caches;
}

/// Fixed per-entry bookkeeping charge (list/map nodes, key).
constexpr uint64_t kEntryOverheadBytes = 64;

}  // namespace

size_t BufferCache::KeyHash::operator()(const Key& k) const {
  size_t h = std::hash<std::string>()(k.path);
  h ^= std::hash<const void*>()(k.storage) + 0x9e3779b97f4a7c15ULL + (h << 6);
  h ^= std::hash<uint64_t>()(k.offset) + 0x9e3779b97f4a7c15ULL + (h << 6);
  h ^= std::hash<uint64_t>()(k.length) + 0x9e3779b97f4a7c15ULL + (h << 6);
  return h;
}

BufferCache::BufferCache(uint64_t capacity_bytes, int num_shards)
    : capacity_(capacity_bytes) {
  const int shards = std::max(num_shards, 1);
  shard_capacity_ = capacity_ / static_cast<uint64_t>(shards);
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Registry().push_back(this);
}

BufferCache::~BufferCache() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto& caches = Registry();
  caches.erase(std::remove(caches.begin(), caches.end(), this), caches.end());
}

uint64_t BufferCache::Charge(const Key& key, const Buffer& data) {
  return (data ? data->size() : 0) + key.path.size() + kEntryOverheadBytes;
}

BufferCache::Shard& BufferCache::ShardFor(const Key& key) {
  return *shards_[KeyHash()(key) % shards_.size()];
}

BufferCache::Buffer BufferCache::Get(const Storage* storage,
                                     const std::string& path, uint64_t offset,
                                     uint64_t length) {
  Key key{storage, path, offset, length};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void BufferCache::Put(const Storage* storage, const std::string& path,
                      uint64_t offset, uint64_t length, Buffer data) {
  if (data == nullptr) return;
  Key key{storage, path, offset, length};
  const uint64_t charge = Charge(key, data);
  if (charge > shard_capacity_) return;  // would evict an entire shard
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Refresh: same chunk raced in from two morsels; keep one copy.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(data));
  shard.map[key] = shard.lru.begin();
  shard.bytes += charge;
  ++shard.inserts;
  while (shard.bytes > shard_capacity_ && !shard.lru.empty()) {
    auto& tail = shard.lru.back();
    shard.bytes -= Charge(tail.first, tail.second);
    shard.map.erase(tail.first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void BufferCache::EraseObject(const Storage* storage,
                              const std::string& path) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->first.storage == storage && it->first.path == path) {
        shard.bytes -= Charge(it->first, it->second);
        shard.map.erase(it->first);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void BufferCache::InvalidateAllCaches(const Storage* storage,
                                      const std::string& path) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (BufferCache* cache : Registry()) {
    cache->EraseObject(storage, path);
  }
}

BufferCacheStats BufferCache::stats() const {
  BufferCacheStats out;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.inserts += shard.inserts;
    out.evictions += shard.evictions;
    out.bytes_cached += shard.bytes;
    out.entries += shard.lru.size();
  }
  return out;
}

}  // namespace pixels
