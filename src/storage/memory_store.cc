#include "storage/memory_store.h"

namespace pixels {

Result<std::vector<uint8_t>> MemoryStore::Read(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(path);
  if (it == objects_.end()) return Status::NotFound("no such object: " + path);
  return it->second;
}

Result<std::vector<uint8_t>> MemoryStore::ReadRange(const std::string& path,
                                                    uint64_t offset,
                                                    uint64_t length) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(path);
  if (it == objects_.end()) return Status::NotFound("no such object: " + path);
  const auto& obj = it->second;
  if (offset + length > obj.size()) {
    return Status::InvalidArgument("read range [" + std::to_string(offset) +
                                   ", +" + std::to_string(length) +
                                   ") exceeds object size " +
                                   std::to_string(obj.size()) + ": " + path);
  }
  return std::vector<uint8_t>(obj.begin() + static_cast<ptrdiff_t>(offset),
                              obj.begin() + static_cast<ptrdiff_t>(offset + length));
}

Status MemoryStore::Write(const std::string& path,
                          const std::vector<uint8_t>& data) {
  std::lock_guard<std::mutex> lock(mutex_);
  objects_[path] = data;
  return Status::OK();
}

Result<uint64_t> MemoryStore::Size(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(path);
  if (it == objects_.end()) return Status::NotFound("no such object: " + path);
  return static_cast<uint64_t>(it->second.size());
}

Result<std::vector<std::string>> MemoryStore::List(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

Status MemoryStore::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (objects_.erase(path) == 0) {
    return Status::NotFound("no such object: " + path);
  }
  return Status::OK();
}

bool MemoryStore::Exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  return objects_.count(path) > 0;
}

uint64_t MemoryStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [_, v] : objects_) total += v.size();
  return total;
}

}  // namespace pixels
