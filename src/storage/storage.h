// Storage abstraction. The Pixels file format reads and writes through
// this interface, so the same reader code runs against the local file
// system, an in-memory store (tests), or the simulated cloud object store
// (which adds S3-like latency and request/scan accounting).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/read_coalescer.h"

namespace pixels {

/// A byte-addressable object/file store keyed by path.
class Storage {
 public:
  virtual ~Storage() = default;

  /// Reads the whole object.
  virtual Result<std::vector<uint8_t>> Read(const std::string& path) = 0;

  /// Reads `length` bytes starting at `offset`. Fails if the range exceeds
  /// the object size.
  virtual Result<std::vector<uint8_t>> ReadRange(const std::string& path,
                                                 uint64_t offset,
                                                 uint64_t length) = 0;

  /// Reads several ranges of one object, returning one buffer per range
  /// in input order. Ranges whose gap is <= `coalesce_gap_bytes` are
  /// fetched in a single underlying read (gap-tolerant coalescing) and
  /// sliced apart, so the result is byte-identical to per-range
  /// `ReadRange` calls while issuing far fewer requests. Zero-length
  /// ranges yield empty buffers and are never fetched; any fetched range
  /// exceeding the object size fails like `ReadRange` does. The default
  /// implementation dispatches through `ReadRange`, so each merged range
  /// is one underlying request as far as the decorator stack (see
  /// fault_injection.h / retrying_storage.h / object_store.h) is
  /// concerned: FaultInjectingStorage draws one fault decision per merged
  /// range, RetryingStorage retries each merged range independently, and
  /// ObjectStore records one GET per merged range. A transient mid-call
  /// failure therefore re-fetches only the failing merged range, and the
  /// returned buffers are byte-identical whether or not retries fired.
  virtual Result<std::vector<std::vector<uint8_t>>> ReadRanges(
      const std::string& path, const std::vector<ByteRange>& ranges,
      uint64_t coalesce_gap_bytes = kDefaultCoalesceGapBytes);

  /// Creates or replaces the object.
  virtual Status Write(const std::string& path,
                       const std::vector<uint8_t>& data) = 0;

  /// Object size in bytes.
  virtual Result<uint64_t> Size(const std::string& path) = 0;

  /// Paths with the given prefix, sorted.
  virtual Result<std::vector<std::string>> List(const std::string& prefix) = 0;

  virtual Status Delete(const std::string& path) = 0;

  virtual bool Exists(const std::string& path) = 0;
};

/// Helper: writes a string payload.
Status WriteString(Storage* storage, const std::string& path,
                   const std::string& data);

/// Helper: reads an object as a string.
Result<std::string> ReadString(Storage* storage, const std::string& path);

}  // namespace pixels
