// In-memory Storage backend; the default substrate for tests and for the
// simulated object store.
#pragma once

#include <map>
#include <mutex>

#include "storage/storage.h"

namespace pixels {

/// Thread-safe map-backed object store.
class MemoryStore : public Storage {
 public:
  Result<std::vector<uint8_t>> Read(const std::string& path) override;
  Result<std::vector<uint8_t>> ReadRange(const std::string& path,
                                         uint64_t offset,
                                         uint64_t length) override;
  Status Write(const std::string& path,
               const std::vector<uint8_t>& data) override;
  Result<uint64_t> Size(const std::string& path) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;
  Status Delete(const std::string& path) override;
  bool Exists(const std::string& path) override;

  /// Total bytes across all stored objects.
  uint64_t TotalBytes() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<uint8_t>> objects_;
};

}  // namespace pixels
