#include "exec/hash_table.h"

#include <algorithm>

namespace pixels {

namespace {

/// The (kind, payload-word) pair of one key component, mirroring
/// ColumnVector::GetValue's kind mapping without building a Value.
/// `word` is unset for strings (compared through the pool).
struct KeyComponent {
  uint8_t kind;
  uint64_t word;
};

inline uint64_t DoubleBits(double v) {
  uint64_t bits;
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline KeyComponent ComponentAt(const ColumnVector& col, uint32_t row) {
  if (col.IsNull(row)) {
    return {static_cast<uint8_t>(Value::Kind::kNull), 0};
  }
  switch (col.type()) {
    case TypeId::kBool:
      return {static_cast<uint8_t>(Value::Kind::kBool),
              col.GetBool(row) ? 1ull : 0ull};
    case TypeId::kDouble:
      return {static_cast<uint8_t>(Value::Kind::kDouble),
              DoubleBits(col.GetDouble(row))};
    case TypeId::kString:
      return {static_cast<uint8_t>(Value::Kind::kString), 0};
    default:  // kInt32 / kInt64 / kDate / kTimestamp
      return {static_cast<uint8_t>(Value::Kind::kInt),
              static_cast<uint64_t>(col.GetInt(row))};
  }
}

size_t NextPow2(size_t v) {
  size_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

void KeyStore::AppendRow(const std::vector<ColumnVectorPtr>& cols,
                         uint32_t row) {
  for (size_t c = 0; c < cols_.size(); ++c) {
    Col& dst = cols_[c];
    const ColumnVector& src = *cols[c];
    KeyComponent kc = ComponentAt(src, row);
    if (kc.kind == static_cast<uint8_t>(Value::Kind::kString)) {
      kc.word = dst.strings.size();
      dst.strings.push_back(src.GetString(row));
    }
    dst.kind.push_back(kc.kind);
    dst.word.push_back(kc.word);
  }
  ++rows_;
}

bool KeyStore::RowEquals(size_t entry,
                         const std::vector<ColumnVectorPtr>& cols,
                         uint32_t row) const {
  for (size_t c = 0; c < cols_.size(); ++c) {
    const Col& stored = cols_[c];
    const ColumnVector& src = *cols[c];
    const KeyComponent kc = ComponentAt(src, row);
    if (stored.kind[entry] != kc.kind) return false;
    if (kc.kind == static_cast<uint8_t>(Value::Kind::kNull)) continue;
    if (kc.kind == static_cast<uint8_t>(Value::Kind::kString)) {
      if (stored.strings[stored.word[entry]] != src.GetString(row)) {
        return false;
      }
    } else if (stored.word[entry] != kc.word) {
      return false;
    }
  }
  return true;
}

Value KeyStore::GetValue(size_t entry, size_t col) const {
  const Col& c = cols_[col];
  switch (static_cast<Value::Kind>(c.kind[entry])) {
    case Value::Kind::kNull:
      return Value::Null();
    case Value::Kind::kBool:
      return Value::Bool(c.word[entry] != 0);
    case Value::Kind::kDouble: {
      double d;
      uint64_t bits = c.word[entry];
      __builtin_memcpy(&d, &bits, sizeof(d));
      return Value::Double(d);
    }
    case Value::Kind::kString:
      return Value::String(c.strings[c.word[entry]]);
    case Value::Kind::kInt:
      return Value::Int(static_cast<int64_t>(c.word[entry]));
  }
  return Value::Null();
}

GroupTable::GroupTable(size_t num_key_cols, double load_factor)
    : keys_(num_key_cols),
      load_factor_(std::min(0.95, std::max(0.1, load_factor))) {}

void GroupTable::Reserve(size_t expected) {
  if (expected <= max_entries_) return;
  Grow(expected);
  keys_.Reserve(expected);
  entry_hash_.reserve(expected);
}

void GroupTable::Grow(size_t min_capacity) {
  const size_t cap = NextPow2(static_cast<size_t>(
      static_cast<double>(std::max<size_t>(min_capacity, 1)) / load_factor_));
  slots_.assign(cap, kNotFound);
  mask_ = cap - 1;
  max_entries_ = static_cast<size_t>(static_cast<double>(cap) * load_factor_);
  // Reindex existing entries from their stored hashes: no key compares
  // are needed because every entry is already distinct.
  for (uint32_t e = 0; e < entry_hash_.size(); ++e) {
    size_t i = entry_hash_[e] & mask_;
    while (slots_[i] != kNotFound) i = (i + 1) & mask_;
    slots_[i] = e;
  }
  if (!entry_hash_.empty()) ++rehashes_;
}

uint32_t GroupTable::FindOrInsert(uint64_t hash,
                                  const std::vector<ColumnVectorPtr>& cols,
                                  uint32_t row) {
  if (keys_.num_rows() >= max_entries_) Grow(keys_.num_rows() + 1);
  size_t i = hash & mask_;
  while (true) {
    const uint32_t e = slots_[i];
    if (e == kNotFound) {
      const uint32_t id = static_cast<uint32_t>(keys_.num_rows());
      slots_[i] = id;
      keys_.AppendRow(cols, row);
      entry_hash_.push_back(hash);
      return id;
    }
    if (entry_hash_[e] == hash && keys_.RowEquals(e, cols, row)) return e;
    i = (i + 1) & mask_;
  }
}

uint32_t GroupTable::Find(uint64_t hash,
                          const std::vector<ColumnVectorPtr>& cols,
                          uint32_t row) const {
  if (slots_.empty()) return kNotFound;
  size_t i = hash & mask_;
  while (true) {
    const uint32_t e = slots_[i];
    if (e == kNotFound) return kNotFound;
    if (entry_hash_[e] == hash && keys_.RowEquals(e, cols, row)) return e;
    i = (i + 1) & mask_;
  }
}

void JoinTable::Insert(uint64_t hash, const std::vector<ColumnVectorPtr>& cols,
                       uint32_t row, uint64_t payload) {
  const uint32_t before = static_cast<uint32_t>(index_.num_entries());
  const uint32_t k = index_.FindOrInsert(hash, cols, row);
  const uint32_t entry = static_cast<uint32_t>(payloads_.size());
  payloads_.push_back(payload);
  next_.push_back(GroupTable::kNotFound);
  if (k == before) {  // first row of a new distinct key
    head_.push_back(entry);
    tail_.push_back(entry);
  } else {
    next_[tail_[k]] = entry;
    tail_[k] = entry;
  }
}

size_t JoinTable::Probe(uint64_t hash,
                        const std::vector<ColumnVectorPtr>& cols,
                        uint32_t row, std::vector<uint64_t>* out) const {
  const uint32_t k = index_.Find(hash, cols, row);
  if (k == GroupTable::kNotFound) return 0;
  size_t n = 0;
  for (uint32_t e = head_[k]; e != GroupTable::kNotFound; e = next_[e]) {
    out->push_back(payloads_[e]);
    ++n;
  }
  return n;
}

}  // namespace pixels
