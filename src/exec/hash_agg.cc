#include "exec/hash_agg.h"

#include "exec/expression.h"
#include "exec/operators.h"

namespace pixels {

void HashAggOperator::AggState::Update(const Value& v, bool distinct) {
  if (v.is_null()) return;
  if (distinct) {
    distinct_keys.insert(ValuesKey({v}));
    return;
  }
  ++count;
  if (v.kind == Value::Kind::kDouble) {
    any_double = true;
    sum_d += v.d;
  } else {
    sum_i += v.i;
    sum_d += static_cast<double>(v.i);
  }
  if (!has_minmax) {
    min = v;
    max = v;
    has_minmax = true;
  } else {
    if (v.Compare(min) < 0) min = v;
    if (v.Compare(max) > 0) max = v;
  }
}

void HashAggOperator::UpdateGroup(Group* group,
                                  const std::vector<ColumnVectorPtr>& arg_cols,
                                  size_t row) {
  for (size_t a = 0; a < plan_.agg_exprs.size(); ++a) {
    const Expr& call = *plan_.agg_exprs[a];
    if (call.name == "count" &&
        (call.args.empty() || call.args[0]->kind == Expr::Kind::kStar)) {
      group->states[a].UpdateCountStar();
    } else {
      group->states[a].Update(arg_cols[a]->GetValue(row), call.distinct);
    }
  }
}

namespace {

/// Per-batch precomputed inputs shared by the parallel phases.
struct AggBatchInputs {
  RowBatchPtr batch;
  std::vector<ColumnVectorPtr> key_cols;
  std::vector<ColumnVectorPtr> arg_cols;
  std::vector<std::string> row_keys;  // serialized group key per row
};

}  // namespace

Status HashAggOperator::Consume() {
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, child_->Next());
    if (batch == nullptr) break;
    if (batch->num_rows() == 0) continue;
    // Evaluate group keys and aggregate arguments for the whole batch.
    std::vector<ColumnVectorPtr> key_cols;
    for (const auto& g : plan_.group_exprs) {
      PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvaluateExpr(*g, *batch));
      key_cols.push_back(std::move(col));
    }
    std::vector<ColumnVectorPtr> arg_cols(plan_.agg_exprs.size());
    for (size_t a = 0; a < plan_.agg_exprs.size(); ++a) {
      const Expr& call = *plan_.agg_exprs[a];
      if (call.args.empty() || call.args[0]->kind == Expr::Kind::kStar) {
        continue;  // COUNT(*): no argument
      }
      PIXELS_ASSIGN_OR_RETURN(arg_cols[a],
                              EvaluateExpr(*call.args[0], *batch));
    }
    for (size_t r = 0; r < batch->num_rows(); ++r) {
      std::vector<Value> keys;
      keys.reserve(key_cols.size());
      for (const auto& col : key_cols) keys.push_back(col->GetValue(r));
      std::string key = ValuesKey(keys);
      auto [it, inserted] = group_index_.emplace(key, groups_.size());
      if (inserted) {
        Group g;
        g.keys = std::move(keys);
        g.states.resize(plan_.agg_exprs.size());
        groups_.push_back(std::move(g));
      }
      UpdateGroup(&groups_[it->second], arg_cols, r);
    }
  }
  return Status::OK();
}

Status HashAggOperator::ConsumeParallel(int par) {
  std::vector<AggBatchInputs> inputs;
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, child_->Next());
    if (batch == nullptr) break;
    if (batch->num_rows() == 0) continue;
    AggBatchInputs in;
    in.batch = std::move(batch);
    inputs.push_back(std::move(in));
  }
  ThreadPool* pool = ctx_->EffectivePool();

  // Phase 1 (batch-parallel): expression evaluation and key
  // serialization, the CPU-heavy part of aggregation.
  PIXELS_RETURN_NOT_OK(pool->ParallelFor(
      0, inputs.size(), /*grain=*/1,
      [&](size_t bi) -> Status {
        AggBatchInputs& in = inputs[bi];
        const RowBatch& batch = *in.batch;
        for (const auto& g : plan_.group_exprs) {
          PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                                  EvaluateExpr(*g, batch));
          in.key_cols.push_back(std::move(col));
        }
        in.arg_cols.resize(plan_.agg_exprs.size());
        for (size_t a = 0; a < plan_.agg_exprs.size(); ++a) {
          const Expr& call = *plan_.agg_exprs[a];
          if (call.args.empty() || call.args[0]->kind == Expr::Kind::kStar) {
            continue;  // COUNT(*): no argument
          }
          PIXELS_ASSIGN_OR_RETURN(in.arg_cols[a],
                                  EvaluateExpr(*call.args[0], batch));
        }
        in.row_keys.resize(batch.num_rows());
        std::vector<Value> keys(in.key_cols.size());
        for (size_t r = 0; r < batch.num_rows(); ++r) {
          for (size_t k = 0; k < in.key_cols.size(); ++k) {
            keys[k] = in.key_cols[k]->GetValue(r);
          }
          in.row_keys[r] = ValuesKey(keys);
        }
        return Status::OK();
      },
      par));

  // Phase 2 (partition-parallel): each partition owns the groups whose
  // key hashes to it and scans all batches in order, so group contents
  // and first-occurrence order are independent of thread scheduling.
  struct Partition {
    std::map<std::string, size_t> index;
    std::vector<Group> groups;
  };
  std::vector<Partition> parts(static_cast<size_t>(par));
  std::hash<std::string> hasher;
  PIXELS_RETURN_NOT_OK(pool->ParallelFor(
      0, parts.size(), /*grain=*/1,
      [&](size_t p) -> Status {
        Partition& part = parts[p];
        for (const auto& in : inputs) {
          for (size_t r = 0; r < in.row_keys.size(); ++r) {
            const std::string& key = in.row_keys[r];
            if (hasher(key) % parts.size() != p) continue;
            auto [it, inserted] = part.index.emplace(key, part.groups.size());
            if (inserted) {
              Group g;
              g.keys.reserve(in.key_cols.size());
              for (const auto& col : in.key_cols) {
                g.keys.push_back(col->GetValue(r));
              }
              g.states.resize(plan_.agg_exprs.size());
              part.groups.push_back(std::move(g));
            }
            UpdateGroup(&part.groups[it->second], in.arg_cols, r);
          }
        }
        return Status::OK();
      },
      par));

  // Merge: concatenate partitions in order (deterministic; Emit order may
  // differ from the serial first-occurrence order, which is fine — SQL
  // group order is unspecified without ORDER BY).
  for (auto& part : parts) {
    for (auto& g : part.groups) groups_.push_back(std::move(g));
  }
  return Status::OK();
}

Status HashAggOperator::ConsumeMerge() {
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, child_->Next());
    if (batch == nullptr) break;
    if (batch->num_rows() == 0) continue;
    // Locate group columns and state columns by name.
    std::vector<int> key_idx;
    for (const auto& gname : plan_.group_names) {
      int idx = batch->FindColumn(gname);
      if (idx < 0) {
        return Status::Internal("merge: missing group column " + gname);
      }
      key_idx.push_back(idx);
    }
    struct StateCols {
      int primary = -1;  // N (sum/count/min/max) or N$sum (avg)
      int cnt = -1;      // N$cnt (avg only)
    };
    std::vector<StateCols> state_idx(plan_.agg_exprs.size());
    for (size_t a = 0; a < plan_.agg_exprs.size(); ++a) {
      const std::string& name = plan_.agg_names[a];
      if (plan_.agg_exprs[a]->name == "avg") {
        state_idx[a].primary = batch->FindColumn(name + "$sum");
        state_idx[a].cnt = batch->FindColumn(name + "$cnt");
        if (state_idx[a].primary < 0 || state_idx[a].cnt < 0) {
          return Status::Internal("merge: missing avg state for " + name);
        }
      } else {
        state_idx[a].primary = batch->FindColumn(name);
        if (state_idx[a].primary < 0) {
          return Status::Internal("merge: missing state column " + name);
        }
      }
    }
    for (size_t r = 0; r < batch->num_rows(); ++r) {
      std::vector<Value> keys;
      for (int idx : key_idx) {
        keys.push_back(batch->column(static_cast<size_t>(idx))->GetValue(r));
      }
      std::string key = ValuesKey(keys);
      auto [it, inserted] = group_index_.emplace(key, groups_.size());
      if (inserted) {
        Group g;
        g.keys = std::move(keys);
        g.states.resize(plan_.agg_exprs.size());
        groups_.push_back(std::move(g));
      }
      Group& group = groups_[it->second];
      for (size_t a = 0; a < plan_.agg_exprs.size(); ++a) {
        const std::string& fn = plan_.agg_exprs[a]->name;
        AggState& st = group.states[a];
        Value v = batch->column(static_cast<size_t>(state_idx[a].primary))
                      ->GetValue(r);
        if (fn == "count") {
          // Partial counts merge by summation into the final count.
          if (!v.is_null()) st.count += v.AsInt();
        } else if (fn == "sum") {
          st.Update(v, false);  // merged via summation
        } else if (fn == "min" || fn == "max") {
          st.Update(v, false);
        } else if (fn == "avg") {
          Value cnt = batch->column(static_cast<size_t>(state_idx[a].cnt))
                          ->GetValue(r);
          if (!v.is_null()) {
            st.any_double = true;
            st.sum_d += v.AsDouble();
          }
          if (!cnt.is_null()) st.count += cnt.AsInt();
        }
      }
    }
  }
  return Status::OK();
}

Status HashAggOperator::Open() {
  PIXELS_RETURN_NOT_OK(child_->Open());
  if (plan_.merge_partials) return ConsumeMerge();  // small inputs: serial
  const int par = ctx_ != nullptr ? ctx_->EffectiveParallelism() : 1;
  if (par > 1) return ConsumeParallel(par);
  return Consume();
}

Result<RowBatchPtr> HashAggOperator::Emit() {
  // Global aggregation over an empty input still emits one row.
  if (groups_.empty() && plan_.group_exprs.empty()) {
    Group g;
    g.states.resize(plan_.agg_exprs.size());
    groups_.push_back(std::move(g));
  }

  auto out = std::make_shared<RowBatch>();
  // Group key columns.
  for (size_t k = 0; k < plan_.group_names.size(); ++k) {
    std::vector<Value> vals;
    vals.reserve(groups_.size());
    for (const auto& g : groups_) vals.push_back(g.keys[k]);
    PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col, BuildVectorFromValues(vals));
    out->AddColumn(plan_.group_names[k], std::move(col));
  }

  // Aggregate columns.
  for (size_t a = 0; a < plan_.agg_exprs.size(); ++a) {
    const std::string& fn = plan_.agg_exprs[a]->name;
    const std::string& name = plan_.agg_names[a];
    const bool distinct = plan_.agg_exprs[a]->distinct;

    auto finalize = [&](const AggState& st) -> Value {
      if (fn == "count") {
        if (distinct) return Value::Int(static_cast<int64_t>(st.distinct_keys.size()));
        return Value::Int(st.count);
      }
      if (st.count == 0) return Value::Null();
      if (fn == "sum") {
        return st.any_double ? Value::Double(st.sum_d) : Value::Int(st.sum_i);
      }
      if (fn == "avg") {
        return Value::Double(st.sum_d / static_cast<double>(st.count));
      }
      if (fn == "min") return st.min;
      if (fn == "max") return st.max;
      return Value::Null();
    };

    if (plan_.partial && fn == "avg") {
      // Two state columns: N$sum, N$cnt.
      std::vector<Value> sums, cnts;
      for (const auto& g : groups_) {
        const AggState& st = g.states[a];
        sums.push_back(st.count == 0 ? Value::Null() : Value::Double(st.sum_d));
        cnts.push_back(Value::Int(st.count));
      }
      PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr sum_col,
                              BuildVectorFromValues(sums));
      PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr cnt_col,
                              BuildVectorFromValues(cnts));
      out->AddColumn(name + "$sum", std::move(sum_col));
      out->AddColumn(name + "$cnt", std::move(cnt_col));
      continue;
    }

    std::vector<Value> vals;
    vals.reserve(groups_.size());
    for (const auto& g : groups_) vals.push_back(finalize(g.states[a]));
    PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col, BuildVectorFromValues(vals));
    out->AddColumn(name, std::move(col));
  }
  return out;
}

Result<RowBatchPtr> HashAggOperator::Next() {
  if (emitted_) return RowBatchPtr(nullptr);
  emitted_ = true;
  return Emit();
}

}  // namespace pixels
