#include "exec/hash_agg.h"

#include "exec/expression.h"
#include "exec/kernels.h"
#include "exec/operators.h"

namespace pixels {

namespace {

/// Typed min/max updates mirroring AggState::Update's use of
/// Value::Compare: same-class comparisons run unboxed; mixed-kind states
/// (e.g. an int batch after a double batch) fall back to boxed Compare.
/// Storing Value::Int where the scalar path stored Value::Bool is
/// output-identical (payloads equal, Compare is numeric across both,
/// and BuildVectorFromValues maps both to int64).
inline void MinMaxInt(HashAggOperator::AggState* st, int64_t x) {
  if (!st->has_minmax) {
    st->min = Value::Int(x);
    st->max = Value::Int(x);
    st->has_minmax = true;
    return;
  }
  if (st->min.kind != Value::Kind::kDouble &&
      st->min.kind != Value::Kind::kString) {
    if (x < st->min.i) st->min = Value::Int(x);
  } else {
    Value v = Value::Int(x);
    if (v.Compare(st->min) < 0) st->min = std::move(v);
  }
  if (st->max.kind != Value::Kind::kDouble &&
      st->max.kind != Value::Kind::kString) {
    if (x > st->max.i) st->max = Value::Int(x);
  } else {
    Value v = Value::Int(x);
    if (v.Compare(st->max) > 0) st->max = std::move(v);
  }
}

inline void MinMaxDouble(HashAggOperator::AggState* st, double x) {
  if (!st->has_minmax) {
    st->min = Value::Double(x);
    st->max = Value::Double(x);
    st->has_minmax = true;
    return;
  }
  if (st->min.kind == Value::Kind::kDouble) {
    if (x < st->min.d) st->min.d = x;
  } else {
    Value v = Value::Double(x);
    if (v.Compare(st->min) < 0) st->min = std::move(v);
  }
  if (st->max.kind == Value::Kind::kDouble) {
    if (x > st->max.d) st->max.d = x;
  } else {
    Value v = Value::Double(x);
    if (v.Compare(st->max) > 0) st->max = std::move(v);
  }
}

inline void MinMaxString(HashAggOperator::AggState* st, const std::string& x) {
  if (!st->has_minmax) {
    st->min = Value::String(x);
    st->max = Value::String(x);
    st->has_minmax = true;
    return;
  }
  if (st->min.kind == Value::Kind::kString) {
    if (x < st->min.s) st->min.s = x;
  } else {
    Value v = Value::String(x);
    if (v.Compare(st->min) < 0) st->min = std::move(v);
  }
  if (st->max.kind == Value::Kind::kString) {
    if (x > st->max.s) st->max.s = x;
  } else {
    Value v = Value::String(x);
    if (v.Compare(st->max) > 0) st->max = std::move(v);
  }
}

}  // namespace

void HashAggOperator::AggState::Update(const Value& v, bool distinct) {
  if (v.is_null()) return;
  if (distinct) {
    distinct_keys.insert(ValuesKey({v}));
    return;
  }
  ++count;
  if (v.kind == Value::Kind::kDouble) {
    any_double = true;
    sum_d += v.d;
  } else {
    sum_i += v.i;
    sum_d += static_cast<double>(v.i);
  }
  if (!has_minmax) {
    min = v;
    max = v;
    has_minmax = true;
  } else {
    if (v.Compare(min) < 0) min = v;
    if (v.Compare(max) > 0) max = v;
  }
}

void HashAggOperator::UpdateGroup(Group* group,
                                  const std::vector<ColumnVectorPtr>& arg_cols,
                                  size_t row) {
  for (size_t a = 0; a < plan_.agg_exprs.size(); ++a) {
    const Expr& call = *plan_.agg_exprs[a];
    if (call.name == "count" &&
        (call.args.empty() || call.args[0]->kind == Expr::Kind::kStar)) {
      group->states[a].UpdateCountStar();
    } else {
      group->states[a].Update(arg_cols[a]->GetValue(row), call.distinct);
    }
  }
}

namespace {

/// Per-batch precomputed inputs shared by the parallel phases.
struct AggBatchInputs {
  RowBatchPtr batch;
  std::vector<ColumnVectorPtr> key_cols;
  std::vector<ColumnVectorPtr> arg_cols;
  std::vector<std::string> row_keys;  // serialized group key per row
};

}  // namespace

Status HashAggOperator::Consume() {
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, child_->Next());
    if (batch == nullptr) break;
    if (batch->num_rows() == 0) continue;
    // Evaluate group keys and aggregate arguments for the whole batch.
    std::vector<ColumnVectorPtr> key_cols;
    for (const auto& g : plan_.group_exprs) {
      PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvaluateExpr(*g, *batch));
      key_cols.push_back(std::move(col));
    }
    std::vector<ColumnVectorPtr> arg_cols(plan_.agg_exprs.size());
    for (size_t a = 0; a < plan_.agg_exprs.size(); ++a) {
      const Expr& call = *plan_.agg_exprs[a];
      if (call.args.empty() || call.args[0]->kind == Expr::Kind::kStar) {
        continue;  // COUNT(*): no argument
      }
      PIXELS_ASSIGN_OR_RETURN(arg_cols[a],
                              EvaluateExpr(*call.args[0], *batch));
    }
    for (size_t r = 0; r < batch->num_rows(); ++r) {
      std::vector<Value> keys;
      keys.reserve(key_cols.size());
      for (const auto& col : key_cols) keys.push_back(col->GetValue(r));
      std::string key = ValuesKey(keys);
      auto [it, inserted] = group_index_.emplace(key, groups_.size());
      if (inserted) {
        Group g;
        g.keys = std::move(keys);
        g.states.resize(plan_.agg_exprs.size());
        groups_.push_back(std::move(g));
      }
      UpdateGroup(&groups_[it->second], arg_cols, r);
    }
  }
  return Status::OK();
}

Status HashAggOperator::ConsumeParallel(int par) {
  std::vector<AggBatchInputs> inputs;
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, child_->Next());
    if (batch == nullptr) break;
    if (batch->num_rows() == 0) continue;
    AggBatchInputs in;
    in.batch = std::move(batch);
    inputs.push_back(std::move(in));
  }
  ThreadPool* pool = ctx_->EffectivePool();

  // Phase 1 (batch-parallel): expression evaluation and key
  // serialization, the CPU-heavy part of aggregation.
  PIXELS_RETURN_NOT_OK(pool->ParallelFor(
      0, inputs.size(), /*grain=*/1,
      [&](size_t bi) -> Status {
        AggBatchInputs& in = inputs[bi];
        const RowBatch& batch = *in.batch;
        for (const auto& g : plan_.group_exprs) {
          PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                                  EvaluateExpr(*g, batch));
          in.key_cols.push_back(std::move(col));
        }
        in.arg_cols.resize(plan_.agg_exprs.size());
        for (size_t a = 0; a < plan_.agg_exprs.size(); ++a) {
          const Expr& call = *plan_.agg_exprs[a];
          if (call.args.empty() || call.args[0]->kind == Expr::Kind::kStar) {
            continue;  // COUNT(*): no argument
          }
          PIXELS_ASSIGN_OR_RETURN(in.arg_cols[a],
                                  EvaluateExpr(*call.args[0], batch));
        }
        in.row_keys.resize(batch.num_rows());
        std::vector<Value> keys(in.key_cols.size());
        for (size_t r = 0; r < batch.num_rows(); ++r) {
          for (size_t k = 0; k < in.key_cols.size(); ++k) {
            keys[k] = in.key_cols[k]->GetValue(r);
          }
          in.row_keys[r] = ValuesKey(keys);
        }
        return Status::OK();
      },
      par));

  // Phase 2 (partition-parallel): each partition owns the groups whose
  // key hashes to it and scans all batches in order, so group contents
  // and first-occurrence order are independent of thread scheduling.
  struct Partition {
    std::map<std::string, size_t> index;
    std::vector<Group> groups;
  };
  std::vector<Partition> parts(static_cast<size_t>(par));
  std::hash<std::string> hasher;
  PIXELS_RETURN_NOT_OK(pool->ParallelFor(
      0, parts.size(), /*grain=*/1,
      [&](size_t p) -> Status {
        Partition& part = parts[p];
        for (const auto& in : inputs) {
          for (size_t r = 0; r < in.row_keys.size(); ++r) {
            const std::string& key = in.row_keys[r];
            if (hasher(key) % parts.size() != p) continue;
            auto [it, inserted] = part.index.emplace(key, part.groups.size());
            if (inserted) {
              Group g;
              g.keys.reserve(in.key_cols.size());
              for (const auto& col : in.key_cols) {
                g.keys.push_back(col->GetValue(r));
              }
              g.states.resize(plan_.agg_exprs.size());
              part.groups.push_back(std::move(g));
            }
            UpdateGroup(&part.groups[it->second], in.arg_cols, r);
          }
        }
        return Status::OK();
      },
      par));

  // Merge: concatenate partitions in order (deterministic; Emit order may
  // differ from the serial first-occurrence order, which is fine — SQL
  // group order is unspecified without ORDER BY).
  for (auto& part : parts) {
    for (auto& g : part.groups) groups_.push_back(std::move(g));
  }
  return Status::OK();
}

Status HashAggOperator::PrepareTypedBatch(TypedBatch* tb) const {
  const RowBatch& batch = *tb->batch;
  for (const auto& g : plan_.group_exprs) {
    PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvaluateExpr(*g, batch));
    tb->key_cols.push_back(std::move(col));
  }
  tb->arg_cols.resize(plan_.agg_exprs.size());
  for (size_t a = 0; a < plan_.agg_exprs.size(); ++a) {
    const Expr& call = *plan_.agg_exprs[a];
    if (call.args.empty() || call.args[0]->kind == Expr::Kind::kStar) {
      continue;  // COUNT(*): no argument
    }
    PIXELS_ASSIGN_OR_RETURN(tb->arg_cols[a],
                            EvaluateExpr(*call.args[0], batch));
  }
  tb->hashes = HashKeyColumns(tb->key_cols, batch.num_rows(), nullptr);
  return Status::OK();
}

Status HashAggOperator::ApplyTypedBatch(TypedPart* part, const TypedBatch& tb,
                                        size_t p, size_t num_parts) {
  const size_t num_aggs = plan_.agg_exprs.size();

  // Pass 1: group ids for the rows this partition owns, in selection
  // order. FindOrInsert only compares keys on hash collisions.
  std::vector<uint32_t> rows;
  std::vector<uint32_t> gids;
  auto take = [&](uint32_t r) {
    if (num_parts > 1 && tb.hashes[r] % num_parts != p) return;
    rows.push_back(r);
    gids.push_back(part->table.FindOrInsert(tb.hashes[r], tb.key_cols, r));
  };
  if (tb.sel != nullptr) {
    rows.reserve(tb.sel->size());
    gids.reserve(tb.sel->size());
    for (uint32_t r : *tb.sel) take(r);
  } else {
    const uint32_t n = static_cast<uint32_t>(tb.batch->num_rows());
    rows.reserve(n);
    gids.reserve(n);
    for (uint32_t r = 0; r < n; ++r) take(r);
  }
  if (rows.empty()) return Status::OK();
  const size_t ne = part->table.num_entries();

  // Pass 2: per-aggregate typed update loops over this partition's rows.
  // Aggregates run against the densest state their history permits:
  // a bare count array for COUNT(*), one-cache-line NumAggState while
  // argument batches stay a single numeric family, and boxed AggState
  // only for strings, DISTINCT, and family flips.
  for (size_t a = 0; a < num_aggs; ++a) {
    const Expr& call = *plan_.agg_exprs[a];
    if (part->modes[a] == AggMode::kCountStar) {
      auto& cnt = part->counts[a];
      cnt.resize(ne);
      int64_t* c = cnt.data();
      for (size_t i = 0; i < rows.size(); ++i) ++c[gids[i]];
      continue;
    }
    const ColumnVector& col = *tb.arg_cols[a];
    const uint8_t* ok = col.valid_data();
    AggMode batch_mode;
    switch (col.type()) {
      case TypeId::kDouble: batch_mode = AggMode::kDouble; break;
      case TypeId::kString: batch_mode = AggMode::kGeneral; break;
      default: batch_mode = AggMode::kInt; break;
    }
    AggMode& mode = part->modes[a];
    if (mode == AggMode::kUnset) {
      mode = batch_mode;
    } else if (mode != batch_mode && mode != AggMode::kGeneral) {
      // Numeric family changed mid-stream (e.g. int batches then double
      // batches): rebox the accumulated compact state and continue on
      // the general loops, whose mixed-kind min/max matches the scalar
      // path's Value::Compare fallback.
      ConvertTypedAggToGeneral(part, a);
    }
    if (mode == AggMode::kInt) {
      auto& ns = part->nums[a];
      ns.resize(ne);
      NumAggState* st0 = ns.data();
      const int64_t* v = col.ints_data();
      const bool is_bool = col.type() == TypeId::kBool;
      for (size_t i = 0; i < rows.size(); ++i) {
        const uint32_t r = rows[i];
        if (!ok[r]) continue;
        NumAggState& st = st0[gids[i]];
        const int64_t x = is_bool ? (v[r] != 0 ? 1 : 0) : v[r];
        ++st.count;
        st.sum_i += x;
        st.sum_d += static_cast<double>(x);
        if (!st.has_minmax) {
          st.min_i = x;
          st.max_i = x;
          st.has_minmax = true;
        } else {
          if (x < st.min_i) st.min_i = x;
          if (x > st.max_i) st.max_i = x;
        }
      }
      continue;
    }
    if (mode == AggMode::kDouble) {
      auto& ns = part->nums[a];
      ns.resize(ne);
      NumAggState* st0 = ns.data();
      const double* v = col.doubles_data();
      for (size_t i = 0; i < rows.size(); ++i) {
        const uint32_t r = rows[i];
        if (!ok[r]) continue;
        NumAggState& st = st0[gids[i]];
        const double x = v[r];
        ++st.count;
        st.sum_d += x;
        if (!st.has_minmax) {
          st.min_d = x;
          st.max_d = x;
          st.has_minmax = true;
        } else {
          if (x < st.min_d) st.min_d = x;
          if (x > st.max_d) st.max_d = x;
        }
      }
      continue;
    }

    // kGeneral: boxed AggState slots, same update loops as before.
    if (part->states.size() < ne * num_aggs) {
      part->states.resize(ne * num_aggs);
    }
    AggState* states = part->states.data();
    if (call.distinct) {
      // COUNT(DISTINCT): cold path, stays on serialized keys.
      for (size_t i = 0; i < rows.size(); ++i) {
        const uint32_t r = rows[i];
        if (!ok[r]) continue;
        states[gids[i] * num_aggs + a].distinct_keys.insert(
            ValuesKey({col.GetValue(r)}));
      }
      continue;
    }
    switch (col.type()) {
      case TypeId::kDouble: {
        const double* v = col.doubles_data();
        for (size_t i = 0; i < rows.size(); ++i) {
          const uint32_t r = rows[i];
          if (!ok[r]) continue;
          AggState& st = states[gids[i] * num_aggs + a];
          ++st.count;
          st.any_double = true;
          st.sum_d += v[r];
          MinMaxDouble(&st, v[r]);
        }
        break;
      }
      case TypeId::kString: {
        const std::string* v = col.strings_data();
        // Strings contribute nothing to sums (Value::String has i == 0).
        for (size_t i = 0; i < rows.size(); ++i) {
          const uint32_t r = rows[i];
          if (!ok[r]) continue;
          AggState& st = states[gids[i] * num_aggs + a];
          ++st.count;
          MinMaxString(&st, v[r]);
        }
        break;
      }
      default: {  // kBool / kInt32 / kInt64 / kDate / kTimestamp
        const int64_t* v = col.ints_data();
        const bool is_bool = col.type() == TypeId::kBool;
        for (size_t i = 0; i < rows.size(); ++i) {
          const uint32_t r = rows[i];
          if (!ok[r]) continue;
          AggState& st = states[gids[i] * num_aggs + a];
          const int64_t x = is_bool ? (v[r] != 0 ? 1 : 0) : v[r];
          ++st.count;
          st.sum_i += x;
          st.sum_d += static_cast<double>(x);
          MinMaxInt(&st, x);
        }
        break;
      }
    }
  }
  return Status::OK();
}

void HashAggOperator::ConvertTypedAggToGeneral(TypedPart* part, size_t a) {
  const size_t num_aggs = plan_.agg_exprs.size();
  const size_t ne = part->table.num_entries();
  if (part->states.size() < ne * num_aggs) {
    part->states.resize(ne * num_aggs);
  }
  const bool dbl = part->modes[a] == AggMode::kDouble;
  auto& ns = part->nums[a];
  for (size_t g = 0; g < ns.size(); ++g) {
    const NumAggState& s = ns[g];
    AggState& st = part->states[g * num_aggs + a];
    st.count = s.count;
    st.sum_i = s.sum_i;
    st.sum_d = s.sum_d;
    st.any_double = dbl && s.count > 0;
    st.has_minmax = s.has_minmax;
    if (s.has_minmax) {
      st.min = dbl ? Value::Double(s.min_d) : Value::Int(s.min_i);
      st.max = dbl ? Value::Double(s.max_d) : Value::Int(s.max_i);
    }
  }
  ns.clear();
  ns.shrink_to_fit();
  part->modes[a] = AggMode::kGeneral;
}

Status HashAggOperator::ConsumeTyped(int par) {
  const double lf = ctx_ != nullptr ? ctx_->hash_table_load_factor : 0.7;
  const size_t num_keys = plan_.group_exprs.size();
  const size_t num_aggs = plan_.agg_exprs.size();

  // COUNT(*) and DISTINCT modes are known up front; the numeric modes
  // resolve from the first argument batch each partition sees.
  auto make_part = [&]() {
    TypedPart part{GroupTable(num_keys, lf), {}, {}, {}, {}};
    part.modes.assign(num_aggs, AggMode::kUnset);
    part.counts.resize(num_aggs);
    part.nums.resize(num_aggs);
    for (size_t a = 0; a < num_aggs; ++a) {
      const Expr& call = *plan_.agg_exprs[a];
      if (call.name == "count" &&
          (call.args.empty() || call.args[0]->kind == Expr::Kind::kStar)) {
        part.modes[a] = AggMode::kCountStar;
      } else if (call.distinct) {
        part.modes[a] = AggMode::kGeneral;
      }
    }
    return part;
  };

  // Whether key/argument expressions may be evaluated over a batch's
  // deselected rows; if not, gather before evaluating.
  bool safe = true;
  for (const auto& g : plan_.group_exprs) {
    safe = safe && ExprSafeToEvalUnselected(*g);
  }
  for (const auto& call : plan_.agg_exprs) {
    if (!call->args.empty() && call->args[0]->kind != Expr::Kind::kStar) {
      safe = safe && ExprSafeToEvalUnselected(*call->args[0]);
    }
  }

  if (par <= 1) {
    // Streaming: one batch resident at a time, like the scalar path.
    typed_parts_.push_back(make_part());
    while (true) {
      PIXELS_ASSIGN_OR_RETURN(SelBatch in, child_->NextSel());
      if (in.batch == nullptr) break;
      if (in.num_selected() == 0) continue;
      TypedBatch tb;
      if (in.sel != nullptr && !safe) {
        tb.batch = in.Materialize();
      } else {
        tb.batch = std::move(in.batch);
        tb.sel = std::move(in.sel);
      }
      PIXELS_RETURN_NOT_OK(PrepareTypedBatch(&tb));
      PIXELS_RETURN_NOT_OK(ApplyTypedBatch(&typed_parts_[0], tb, 0, 1));
    }
    return Status::OK();
  }

  // Parallel: collect, prepare batch-parallel, then build each hash
  // partition in batch-then-row order (deterministic contents and order
  // regardless of thread scheduling, exactly like the scalar path).
  std::vector<TypedBatch> inputs;
  size_t total_rows = 0;
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(SelBatch in, child_->NextSel());
    if (in.batch == nullptr) break;
    if (in.num_selected() == 0) continue;
    TypedBatch tb;
    if (in.sel != nullptr && !safe) {
      tb.batch = in.Materialize();
    } else {
      tb.batch = std::move(in.batch);
      tb.sel = std::move(in.sel);
    }
    total_rows += tb.sel != nullptr ? tb.sel->size() : tb.batch->num_rows();
    inputs.push_back(std::move(tb));
  }
  ThreadPool* pool = ctx_->EffectivePool();
  PIXELS_RETURN_NOT_OK(pool->ParallelFor(
      0, inputs.size(), /*grain=*/1,
      [&](size_t bi) { return PrepareTypedBatch(&inputs[bi]); }, par));

  const size_t num_parts = static_cast<size_t>(par);
  typed_parts_.reserve(num_parts);
  for (size_t p = 0; p < num_parts; ++p) {
    typed_parts_.push_back(make_part());
    // Pre-size from the exact input row count: entries per partition are
    // bounded by rows / P in expectation (hash spreads distinct keys),
    // so mid-build rehashes only happen under heavy hash skew.
    typed_parts_[p].table.Reserve(total_rows / num_parts + 16);
  }
  PIXELS_RETURN_NOT_OK(pool->ParallelFor(
      0, num_parts, /*grain=*/1,
      [&](size_t p) -> Status {
        for (const auto& tb : inputs) {
          PIXELS_RETURN_NOT_OK(
              ApplyTypedBatch(&typed_parts_[p], tb, p, num_parts));
        }
        return Status::OK();
      },
      par));
  return Status::OK();
}

Status HashAggOperator::ConsumeMerge() {
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, child_->Next());
    if (batch == nullptr) break;
    if (batch->num_rows() == 0) continue;
    // Locate group columns and state columns by name.
    std::vector<int> key_idx;
    for (const auto& gname : plan_.group_names) {
      int idx = batch->FindColumn(gname);
      if (idx < 0) {
        return Status::Internal("merge: missing group column " + gname);
      }
      key_idx.push_back(idx);
    }
    struct StateCols {
      int primary = -1;  // N (sum/count/min/max) or N$sum (avg)
      int cnt = -1;      // N$cnt (avg only)
    };
    std::vector<StateCols> state_idx(plan_.agg_exprs.size());
    for (size_t a = 0; a < plan_.agg_exprs.size(); ++a) {
      const std::string& name = plan_.agg_names[a];
      if (plan_.agg_exprs[a]->name == "avg") {
        state_idx[a].primary = batch->FindColumn(name + "$sum");
        state_idx[a].cnt = batch->FindColumn(name + "$cnt");
        if (state_idx[a].primary < 0 || state_idx[a].cnt < 0) {
          return Status::Internal("merge: missing avg state for " + name);
        }
      } else {
        state_idx[a].primary = batch->FindColumn(name);
        if (state_idx[a].primary < 0) {
          return Status::Internal("merge: missing state column " + name);
        }
      }
    }
    for (size_t r = 0; r < batch->num_rows(); ++r) {
      std::vector<Value> keys;
      for (int idx : key_idx) {
        keys.push_back(batch->column(static_cast<size_t>(idx))->GetValue(r));
      }
      std::string key = ValuesKey(keys);
      auto [it, inserted] = group_index_.emplace(key, groups_.size());
      if (inserted) {
        Group g;
        g.keys = std::move(keys);
        g.states.resize(plan_.agg_exprs.size());
        groups_.push_back(std::move(g));
      }
      Group& group = groups_[it->second];
      for (size_t a = 0; a < plan_.agg_exprs.size(); ++a) {
        const std::string& fn = plan_.agg_exprs[a]->name;
        AggState& st = group.states[a];
        Value v = batch->column(static_cast<size_t>(state_idx[a].primary))
                      ->GetValue(r);
        if (fn == "count") {
          // Partial counts merge by summation into the final count.
          if (!v.is_null()) st.count += v.AsInt();
        } else if (fn == "sum") {
          st.Update(v, false);  // merged via summation
        } else if (fn == "min" || fn == "max") {
          st.Update(v, false);
        } else if (fn == "avg") {
          Value cnt = batch->column(static_cast<size_t>(state_idx[a].cnt))
                          ->GetValue(r);
          if (!v.is_null()) {
            st.any_double = true;
            st.sum_d += v.AsDouble();
          }
          if (!cnt.is_null()) st.count += cnt.AsInt();
        }
      }
    }
  }
  return Status::OK();
}

Status HashAggOperator::Open() {
  PIXELS_RETURN_NOT_OK(child_->Open());
  if (plan_.merge_partials) return ConsumeMerge();  // small inputs: serial
  const int par = ctx_ != nullptr ? ctx_->EffectiveParallelism() : 1;
  if (ctx_ != nullptr && ctx_->vectorized_hash) {
    PIXELS_RETURN_NOT_OK(ConsumeTyped(par));
    typed_done_ = true;
    return Status::OK();
  }
  if (par > 1) return ConsumeParallel(par);
  return Consume();
}

Result<RowBatchPtr> HashAggOperator::Emit() {
  // Global aggregation over an empty input still emits one row.
  if (groups_.empty() && plan_.group_exprs.empty()) {
    Group g;
    g.states.resize(plan_.agg_exprs.size());
    groups_.push_back(std::move(g));
  }

  auto out = std::make_shared<RowBatch>();
  // Group key columns.
  for (size_t k = 0; k < plan_.group_names.size(); ++k) {
    std::vector<Value> vals;
    vals.reserve(groups_.size());
    for (const auto& g : groups_) vals.push_back(g.keys[k]);
    PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col, BuildVectorFromValues(vals));
    out->AddColumn(plan_.group_names[k], std::move(col));
  }

  // Aggregate columns.
  for (size_t a = 0; a < plan_.agg_exprs.size(); ++a) {
    const std::string& fn = plan_.agg_exprs[a]->name;
    const std::string& name = plan_.agg_names[a];
    const bool distinct = plan_.agg_exprs[a]->distinct;

    auto finalize = [&](const AggState& st) -> Value {
      if (fn == "count") {
        if (distinct) return Value::Int(static_cast<int64_t>(st.distinct_keys.size()));
        return Value::Int(st.count);
      }
      if (st.count == 0) return Value::Null();
      if (fn == "sum") {
        return st.any_double ? Value::Double(st.sum_d) : Value::Int(st.sum_i);
      }
      if (fn == "avg") {
        return Value::Double(st.sum_d / static_cast<double>(st.count));
      }
      if (fn == "min") return st.min;
      if (fn == "max") return st.max;
      return Value::Null();
    };

    if (plan_.partial && fn == "avg") {
      // Two state columns: N$sum, N$cnt.
      std::vector<Value> sums, cnts;
      for (const auto& g : groups_) {
        const AggState& st = g.states[a];
        sums.push_back(st.count == 0 ? Value::Null() : Value::Double(st.sum_d));
        cnts.push_back(Value::Int(st.count));
      }
      PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr sum_col,
                              BuildVectorFromValues(sums));
      PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr cnt_col,
                              BuildVectorFromValues(cnts));
      out->AddColumn(name + "$sum", std::move(sum_col));
      out->AddColumn(name + "$cnt", std::move(cnt_col));
      continue;
    }

    std::vector<Value> vals;
    vals.reserve(groups_.size());
    for (const auto& g : groups_) vals.push_back(finalize(g.states[a]));
    PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col, BuildVectorFromValues(vals));
    out->AddColumn(name, std::move(col));
  }
  return out;
}

Result<RowBatchPtr> HashAggOperator::TypedEmit() {
  size_t total = 0;
  for (const auto& part : typed_parts_) total += part.table.num_entries();
  if (total == 0) {
    // Emit's empty-groups handling covers both the global-aggregation
    // one-default-row case and the grouped zero-row case exactly.
    typed_parts_.clear();
    return Emit();
  }

  const size_t num_aggs = plan_.agg_exprs.size();
  auto out = std::make_shared<RowBatch>();

  // Group key columns: rebox each stored key component once, straight
  // from the KeyStore (partitions in order, entries in first-insertion
  // order — the same group order the boxed path produced).
  for (size_t k = 0; k < plan_.group_names.size(); ++k) {
    std::vector<Value> vals;
    vals.reserve(total);
    for (const auto& part : typed_parts_) {
      const KeyStore& keys = part.table.keys();
      for (size_t g = 0; g < part.table.num_entries(); ++g) {
        vals.push_back(keys.GetValue(g, k));
      }
    }
    PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col, BuildVectorFromValues(vals));
    out->AddColumn(plan_.group_names[k], std::move(col));
  }

  // Aggregate columns, finalized directly from the flat state arrays.
  for (size_t a = 0; a < num_aggs; ++a) {
    const std::string& fn = plan_.agg_exprs[a]->name;
    const std::string& name = plan_.agg_names[a];
    const bool distinct = plan_.agg_exprs[a]->distinct;

    auto finalize = [&](const AggState& st) -> Value {
      if (fn == "count") {
        if (distinct) {
          return Value::Int(static_cast<int64_t>(st.distinct_keys.size()));
        }
        return Value::Int(st.count);
      }
      if (st.count == 0) return Value::Null();
      if (fn == "sum") {
        return st.any_double ? Value::Double(st.sum_d) : Value::Int(st.sum_i);
      }
      if (fn == "avg") {
        return Value::Double(st.sum_d / static_cast<double>(st.count));
      }
      if (fn == "min") return st.min;
      if (fn == "max") return st.max;
      return Value::Null();
    };
    auto state_value = [&](const TypedPart& part, size_t g) -> Value {
      const AggMode mode = part.modes[a];
      if (mode == AggMode::kGeneral) {
        return finalize(part.states[g * num_aggs + a]);
      }
      if (mode == AggMode::kCountStar) return Value::Int(part.counts[a][g]);
      if (mode == AggMode::kUnset) {
        return fn == "count" ? Value::Int(0) : Value::Null();
      }
      const NumAggState& st = part.nums[a][g];
      if (fn == "count") return Value::Int(st.count);
      if (st.count == 0) return Value::Null();
      const bool dbl = mode == AggMode::kDouble;
      if (fn == "sum") {
        return dbl ? Value::Double(st.sum_d) : Value::Int(st.sum_i);
      }
      if (fn == "avg") {
        return Value::Double(st.sum_d / static_cast<double>(st.count));
      }
      if (fn == "min") {
        return dbl ? Value::Double(st.min_d) : Value::Int(st.min_i);
      }
      if (fn == "max") {
        return dbl ? Value::Double(st.max_d) : Value::Int(st.max_i);
      }
      return Value::Null();
    };

    if (plan_.partial && fn == "avg") {
      // Two state columns: N$sum, N$cnt.
      std::vector<Value> sums, cnts;
      sums.reserve(total);
      cnts.reserve(total);
      for (const auto& part : typed_parts_) {
        for (size_t g = 0; g < part.table.num_entries(); ++g) {
          int64_t cnt = 0;
          double sum_d = 0;
          switch (part.modes[a]) {
            case AggMode::kGeneral: {
              const AggState& st = part.states[g * num_aggs + a];
              cnt = st.count;
              sum_d = st.sum_d;
              break;
            }
            case AggMode::kInt:
            case AggMode::kDouble: {
              const NumAggState& st = part.nums[a][g];
              cnt = st.count;
              sum_d = st.sum_d;
              break;
            }
            default:  // kCountStar is unreachable (avg has an argument)
              break;
          }
          sums.push_back(cnt == 0 ? Value::Null() : Value::Double(sum_d));
          cnts.push_back(Value::Int(cnt));
        }
      }
      PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr sum_col,
                              BuildVectorFromValues(sums));
      PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr cnt_col,
                              BuildVectorFromValues(cnts));
      out->AddColumn(name + "$sum", std::move(sum_col));
      out->AddColumn(name + "$cnt", std::move(cnt_col));
      continue;
    }

    std::vector<Value> vals;
    vals.reserve(total);
    for (const auto& part : typed_parts_) {
      for (size_t g = 0; g < part.table.num_entries(); ++g) {
        vals.push_back(state_value(part, g));
      }
    }
    PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col, BuildVectorFromValues(vals));
    out->AddColumn(name, std::move(col));
  }
  typed_parts_.clear();
  return out;
}

Result<RowBatchPtr> HashAggOperator::Next() {
  if (emitted_) return RowBatchPtr(nullptr);
  emitted_ = true;
  return typed_done_ ? TypedEmit() : Emit();
}

}  // namespace pixels
