// Executor: builds the physical operator tree from a logical plan and
// drives it to a materialized result table. This is the query runtime
// shared by VM workers and CF workers.
#pragma once

#include "exec/operator.h"
#include "plan/logical_plan.h"

namespace pixels {

/// Builds the operator tree for `plan`.
Result<OperatorPtr> BuildOperator(const PlanPtr& plan, ExecContext* ctx);

/// Executes `plan` to completion, returning the result table.
Result<TablePtr> ExecutePlan(const PlanPtr& plan, ExecContext* ctx);

/// Parse → bind → optimize → execute, in one call. Fills `ctx` counters.
/// A statement of the form `EXPLAIN <select>` is not executed; it returns
/// a one-column table ("plan") holding the optimized plan rendering.
/// `EXPLAIN ANALYZE <select>` executes the query with per-operator
/// profiling and returns the rolled-up report the same way (the context's
/// billing counters fill exactly as a plain execution would).
Result<TablePtr> ExecuteQuery(const std::string& sql, const std::string& db,
                              ExecContext* ctx);

/// Returns the optimized logical plan of `sql` as indented text (the
/// output of `EXPLAIN`).
Result<std::string> ExplainQuery(const std::string& sql, const std::string& db,
                                 const Catalog& catalog);

/// True when the statement is an EXPLAIN; `*inner` receives the SELECT
/// text that follows.
bool IsExplainStatement(const std::string& sql, std::string* inner);

}  // namespace pixels
