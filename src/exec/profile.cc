#include "exec/profile.h"

#include <chrono>
#include <cstdio>

namespace pixels {

OperatorProfile* QueryProfile::AddNode(const std::string& name,
                                       OperatorProfile* parent,
                                       bool measures_io) {
  std::lock_guard<std::mutex> lock(mutex_);
  arena_.emplace_back();
  OperatorProfile* node = &arena_.back();
  node->name = name;
  node->parent = parent;
  node->measures_io = measures_io;
  if (parent != nullptr) parent->children.push_back(node);
  return node;
}

uint64_t QueryProfile::TotalBytesScanned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& node : arena_) {
    if (node.measures_io) {
      total += node.bytes_scanned.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::vector<const OperatorProfile*> QueryProfile::Roots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const OperatorProfile*> roots;
  for (const auto& node : arena_) {
    if (node.parent == nullptr) roots.push_back(&node);
  }
  return roots;
}

size_t QueryProfile::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return arena_.size();
}

namespace {

void RenderNode(const OperatorProfile* node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node->name;
  *out += "  rows=" + std::to_string(node->rows_out.load());
  *out += " batches=" + std::to_string(node->batches_out.load());
  if (node->measures_io) {
    *out += " bytes_scanned=" + std::to_string(node->bytes_scanned.load());
    *out += " cache_hits=" + std::to_string(node->cache_hits.load());
    *out += " cache_misses=" + std::to_string(node->cache_misses.load());
  }
  // Runtime-filter counters appear only when a filter actually probed or
  // pruned something, so plans without filters render unchanged.
  if (node->rf_probe_rows.load() != 0 || node->rf_pruned_row_groups.load() != 0) {
    *out += " rf_probe_rows=" + std::to_string(node->rf_probe_rows.load());
    *out += " rf_pruned_rows=" + std::to_string(node->rf_pruned_rows.load());
    *out += " rf_pruned_row_groups=" +
            std::to_string(node->rf_pruned_row_groups.load());
    *out += " rf_skipped_bytes=" + std::to_string(node->rf_skipped_bytes.load());
    const uint64_t probed = node->rf_probe_rows.load();
    if (probed != 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f",
                    1.0 - static_cast<double>(node->rf_pruned_rows.load()) /
                              static_cast<double>(probed));
      *out += std::string(" rf_selectivity=") + buf;
    }
  }
  // Per-operator selectivity: rows out over rows in (children's rows out).
  uint64_t rows_in = 0;
  for (const OperatorProfile* child : node->children) {
    rows_in += child->rows_out.load();
  }
  if (!node->children.empty() && rows_in != 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(node->rows_out.load()) /
                      static_cast<double>(rows_in));
    *out += std::string(" sel=") + buf;
  }
  *out += " wall_us=" + std::to_string(node->wall_us.load());
  *out += "\n";
  for (const OperatorProfile* child : node->children) {
    RenderNode(child, depth + 1, out);
  }
}

}  // namespace

std::string QueryProfile::ToText() const {
  const auto roots = Roots();
  if (roots.empty()) {
    return "EXPLAIN ANALYZE\n(no operators executed: result served without "
           "a scan, e.g. from the materialized-view store)\n";
  }
  std::string out = "EXPLAIN ANALYZE\n";
  for (const OperatorProfile* root : roots) RenderNode(root, 0, &out);
  out += "total bytes_scanned=" + std::to_string(TotalBytesScanned()) + "\n";
  return out;
}

namespace {

class ScopedWall {
 public:
  explicit ScopedWall(OperatorProfile* node)
      : node_(node), start_(std::chrono::steady_clock::now()) {}
  ~ScopedWall() {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    node_->wall_us.fetch_add(static_cast<uint64_t>(us),
                             std::memory_order_relaxed);
  }

 private:
  OperatorProfile* node_;
  std::chrono::steady_clock::time_point start_;
};

/// Deltas of the context's scan counters around one Open/Next call,
/// attributed to `node`. Valid because pulls are serial from the root:
/// nothing else moves the counters while an io-measuring call runs.
class ScopedIoDelta {
 public:
  ScopedIoDelta(OperatorProfile* node, ExecContext* ctx)
      : node_(node),
        ctx_(ctx),
        bytes_(ctx->bytes_scanned.load()),
        hits_(ctx->cache_hits.load()),
        misses_(ctx->cache_misses.load()),
        rf_probe_(ctx->rf_probe_rows.load()),
        rf_pruned_(ctx->rf_pruned_rows.load()),
        rf_groups_(ctx->rf_pruned_row_groups.load()),
        rf_bytes_(ctx->rf_skipped_bytes.load()) {}
  ~ScopedIoDelta() {
    node_->bytes_scanned.fetch_add(ctx_->bytes_scanned.load() - bytes_,
                                   std::memory_order_relaxed);
    node_->cache_hits.fetch_add(ctx_->cache_hits.load() - hits_,
                                std::memory_order_relaxed);
    node_->cache_misses.fetch_add(ctx_->cache_misses.load() - misses_,
                                  std::memory_order_relaxed);
    node_->rf_probe_rows.fetch_add(ctx_->rf_probe_rows.load() - rf_probe_,
                                   std::memory_order_relaxed);
    node_->rf_pruned_rows.fetch_add(ctx_->rf_pruned_rows.load() - rf_pruned_,
                                    std::memory_order_relaxed);
    node_->rf_pruned_row_groups.fetch_add(
        ctx_->rf_pruned_row_groups.load() - rf_groups_,
        std::memory_order_relaxed);
    node_->rf_skipped_bytes.fetch_add(ctx_->rf_skipped_bytes.load() - rf_bytes_,
                                      std::memory_order_relaxed);
  }

 private:
  OperatorProfile* node_;
  ExecContext* ctx_;
  uint64_t bytes_;
  uint64_t hits_;
  uint64_t misses_;
  uint64_t rf_probe_;
  uint64_t rf_pruned_;
  uint64_t rf_groups_;
  uint64_t rf_bytes_;
};

}  // namespace

Status ProfilingOperator::Open() {
  ScopedWall wall(node_);
  if (node_->measures_io && ctx_ != nullptr) {
    ScopedIoDelta io(node_, ctx_);
    return child_->Open();
  }
  return child_->Open();
}

Result<RowBatchPtr> ProfilingOperator::Next() {
  ScopedWall wall(node_);
  Result<RowBatchPtr> result = [&] {
    if (node_->measures_io && ctx_ != nullptr) {
      ScopedIoDelta io(node_, ctx_);
      return child_->Next();
    }
    return child_->Next();
  }();
  if (result.ok() && *result != nullptr) {
    node_->rows_out.fetch_add((*result)->num_rows(),
                              std::memory_order_relaxed);
    node_->batches_out.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

Result<SelBatch> ProfilingOperator::NextSel() {
  ScopedWall wall(node_);
  Result<SelBatch> result = [&] {
    if (node_->measures_io && ctx_ != nullptr) {
      ScopedIoDelta io(node_, ctx_);
      return child_->NextSel();
    }
    return child_->NextSel();
  }();
  if (result.ok() && result->batch != nullptr) {
    node_->rows_out.fetch_add(result->num_selected(),
                              std::memory_order_relaxed);
    node_->batches_out.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

}  // namespace pixels
