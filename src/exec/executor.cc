#include "exec/executor.h"

#include <cctype>

#include "common/trace.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/operators.h"
#include "exec/profile.h"
#include "exec/sort.h"
#include "mv/mv_store.h"
#include "plan/binder.h"
#include "plan/fingerprint.h"
#include "plan/optimizer.h"

namespace pixels {

namespace {

Result<OperatorPtr> BuildOperatorNode(const PlanPtr& plan, ExecContext* ctx) {
  switch (plan->kind) {
    case LogicalPlan::Kind::kScan:
      return OperatorPtr(new ScanOperator(*plan, ctx));
    case LogicalPlan::Kind::kFilter: {
      PIXELS_ASSIGN_OR_RETURN(OperatorPtr child,
                              BuildOperator(plan->children[0], ctx));
      return OperatorPtr(new FilterOperator(std::move(child), *plan->predicate));
    }
    case LogicalPlan::Kind::kProject: {
      PIXELS_ASSIGN_OR_RETURN(OperatorPtr child,
                              BuildOperator(plan->children[0], ctx));
      return OperatorPtr(
          new ProjectOperator(std::move(child), plan->exprs, plan->names));
    }
    case LogicalPlan::Kind::kJoin: {
      PIXELS_ASSIGN_OR_RETURN(OperatorPtr left,
                              BuildOperator(plan->children[0], ctx));
      PIXELS_ASSIGN_OR_RETURN(OperatorPtr right,
                              BuildOperator(plan->children[1], ctx));
      return OperatorPtr(new HashJoinOperator(std::move(left),
                                              std::move(right), *plan, ctx));
    }
    case LogicalPlan::Kind::kAggregate: {
      PIXELS_ASSIGN_OR_RETURN(OperatorPtr child,
                              BuildOperator(plan->children[0], ctx));
      return OperatorPtr(new HashAggOperator(std::move(child), *plan, ctx));
    }
    case LogicalPlan::Kind::kSort: {
      PIXELS_ASSIGN_OR_RETURN(OperatorPtr child,
                              BuildOperator(plan->children[0], ctx));
      return OperatorPtr(new SortOperator(std::move(child), *plan));
    }
    case LogicalPlan::Kind::kLimit: {
      PIXELS_ASSIGN_OR_RETURN(OperatorPtr child,
                              BuildOperator(plan->children[0], ctx));
      return OperatorPtr(new LimitOperator(std::move(child), plan->limit));
    }
    case LogicalPlan::Kind::kDistinct: {
      PIXELS_ASSIGN_OR_RETURN(OperatorPtr child,
                              BuildOperator(plan->children[0], ctx));
      return OperatorPtr(new DistinctOperator(std::move(child)));
    }
    case LogicalPlan::Kind::kMaterializedView:
      return OperatorPtr(new ViewOperator(*plan));
  }
  return Status::Internal("unknown plan node kind");
}

std::string ProfileNodeName(const LogicalPlan& plan) {
  switch (plan.kind) {
    case LogicalPlan::Kind::kScan:
      return "Scan(" + plan.db + "." + plan.table + ")";
    case LogicalPlan::Kind::kFilter:
      return "Filter";
    case LogicalPlan::Kind::kProject:
      return "Project";
    case LogicalPlan::Kind::kJoin:
      return "HashJoin";
    case LogicalPlan::Kind::kAggregate:
      return "HashAgg";
    case LogicalPlan::Kind::kSort:
      return "Sort";
    case LogicalPlan::Kind::kLimit:
      return "Limit";
    case LogicalPlan::Kind::kDistinct:
      return "Distinct";
    case LogicalPlan::Kind::kMaterializedView:
      return "MaterializedView";
  }
  return "?";
}

}  // namespace

Result<OperatorPtr> BuildOperator(const PlanPtr& plan, ExecContext* ctx) {
  if (ctx->profile == nullptr) return BuildOperatorNode(plan, ctx);
  // Scans attribute I/O: their measured deltas partition the context's
  // bytes_scanned, so per-operator bytes sum exactly to the query total.
  const bool measures_io = plan->kind == LogicalPlan::Kind::kScan;
  OperatorProfile* node = ctx->profile->AddNode(
      ProfileNodeName(*plan), ctx->profile_parent, measures_io);
  OperatorProfile* saved = ctx->profile_parent;
  ctx->profile_parent = node;
  Result<OperatorPtr> child = BuildOperatorNode(plan, ctx);
  ctx->profile_parent = saved;
  if (!child.ok()) return child;
  return OperatorPtr(
      new ProfilingOperator(std::move(*child), node, ctx));
}

Result<TablePtr> ExecutePlan(const PlanPtr& plan, ExecContext* ctx) {
  PIXELS_ASSIGN_OR_RETURN(OperatorPtr root, BuildOperator(plan, ctx));
  PIXELS_RETURN_NOT_OK(root->Open());
  auto table = std::make_shared<Table>();
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, root->Next());
    if (batch == nullptr) break;
    if (batch->num_rows() > 0 || table->batches().empty()) {
      table->AddBatch(std::move(batch));
    }
  }
  root->Close();
  return table;
}

namespace {

/// Matches one leading keyword (case-insensitive, whole word); on match
/// `*rest` receives everything after it.
bool ConsumeKeyword(const std::string& sql, const char* keyword,
                    std::string* rest) {
  size_t i = 0;
  while (i < sql.size() && std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  size_t j = 0;
  while (keyword[j] != '\0' && i + j < sql.size() &&
         std::tolower(static_cast<unsigned char>(sql[i + j])) == keyword[j]) {
    ++j;
  }
  if (keyword[j] != '\0') return false;
  if (i + j < sql.size() &&
      (std::isalnum(static_cast<unsigned char>(sql[i + j])) ||
       sql[i + j] == '_')) {
    return false;  // prefix of a longer identifier
  }
  if (rest != nullptr) *rest = sql.substr(i + j);
  return true;
}

/// Renders multi-line text as the one-column "plan" table EXPLAIN-style
/// statements return.
TablePtr TextAsPlanTable(const std::string& text) {
  auto table = std::make_shared<Table>();
  auto batch = std::make_shared<RowBatch>();
  auto col = MakeVector(TypeId::kString);
  // One row per line keeps the output readable in clients.
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    col->AppendString(text.substr(start, end - start));
    start = end + 1;
  }
  batch->AddColumn("plan", std::move(col));
  table->AddBatch(std::move(batch));
  return table;
}

/// The non-EXPLAIN execution path: plan, optimize, consult the MV store,
/// execute. Emits plan/mv-lookup spans when the context carries a tracer.
Result<TablePtr> ExecuteSelect(const std::string& sql, const std::string& db,
                               ExecContext* ctx) {
  Tracer* tracer =
      ctx->tracer != nullptr && ctx->tracer->enabled() ? ctx->tracer : nullptr;

  uint64_t plan_span = 0;
  if (tracer != nullptr) {
    plan_span = tracer->StartSpan("plan", ctx->trace_parent);
  }
  auto planned = PlanQuery(sql, *ctx->catalog, db);
  Result<PlanPtr> optimized =
      planned.ok() ? Optimize(std::move(planned).ValueOrDie(), *ctx->catalog)
                   : std::move(planned);
  if (tracer != nullptr) {
    if (!optimized.ok()) {
      tracer->Annotate(plan_span, "error", optimized.status().ToString());
    }
    tracer->EndSpan(plan_span);
  }
  PIXELS_ASSIGN_OR_RETURN(PlanPtr plan, std::move(optimized));

  if (ctx->mv_store == nullptr) return ExecutePlan(plan, ctx);

  // Full-query MV reuse: planning above touched only catalog metadata, so
  // a hit answers the query with zero storage requests and zero scanned
  // bytes. Plans that cannot be fingerprinted just execute normally.
  auto fp = FingerprintPlan(*plan);
  if (fp.ok()) {
    uint64_t mv_span = 0;
    if (tracer != nullptr) {
      mv_span = tracer->StartSpan("mv-lookup", ctx->trace_parent);
      tracer->Annotate(mv_span, "granularity", "full-query");
    }
    auto hit = ctx->mv_store->Lookup(*fp, *ctx->catalog);
    if (tracer != nullptr) {
      tracer->Annotate(mv_span, "hit", hit ? "true" : "false");
      if (hit) {
        tracer->Annotate(mv_span, "saved_bytes", hit->saved_scan_bytes);
      }
      tracer->EndSpan(mv_span);
    }
    if (hit) {
      ctx->mv_hits.fetch_add(1, std::memory_order_relaxed);
      ctx->mv_saved_bytes.fetch_add(hit->saved_scan_bytes,
                                    std::memory_order_relaxed);
      return hit->table;
    }
  }
  // Pins MUST be snapshotted before execution: the scan resolves its file
  // list at Open(), i.e. at or after this point, so any catalog mutation
  // that could have changed what the scan read also bumps a version past
  // the snapshot and the stored entry conservatively fails validation.
  // (Collected after execution, a mutation landing mid-query would stamp
  // a stale result with the new epoch — a silently poisoned cache.)
  auto pins = fp.ok() ? CollectTableVersionPins(*plan, *ctx->catalog)
                      : Result<std::vector<TableVersionPin>>(fp.status());
  const uint64_t scanned_before = ctx->bytes_scanned.load();
  PIXELS_ASSIGN_OR_RETURN(TablePtr table, ExecutePlan(plan, ctx));
  if (fp.ok() && pins.ok()) {
    // Rebuild cost = what this execution scanned.
    ctx->mv_store->Insert(*fp, table,
                          ctx->bytes_scanned.load() - scanned_before,
                          std::move(*pins));
  }
  return table;
}

}  // namespace

bool IsExplainStatement(const std::string& sql, std::string* inner) {
  return ConsumeKeyword(sql, "explain", inner);
}

Result<std::string> ExplainQuery(const std::string& sql, const std::string& db,
                                 const Catalog& catalog) {
  std::string inner = sql;
  IsExplainStatement(sql, &inner);
  PIXELS_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(inner, catalog, db));
  PIXELS_ASSIGN_OR_RETURN(plan, Optimize(std::move(plan), catalog));
  return plan->ToString();
}

Result<TablePtr> ExecuteQuery(const std::string& sql, const std::string& db,
                              ExecContext* ctx) {
  std::string inner;
  if (IsExplainStatement(sql, &inner)) {
    std::string select;
    if (ConsumeKeyword(inner, "analyze", &select)) {
      // EXPLAIN ANALYZE executes the query with every operator profiled
      // and returns the rolled-up report instead of the result rows. The
      // context's billing counters fill exactly as a plain execution
      // would — the report is a view over them, not a different path.
      QueryProfile profile;
      QueryProfile* saved_profile = ctx->profile;
      OperatorProfile* saved_parent = ctx->profile_parent;
      ctx->profile = &profile;
      ctx->profile_parent = nullptr;
      Result<TablePtr> executed = ExecuteSelect(select, db, ctx);
      ctx->profile = saved_profile;
      ctx->profile_parent = saved_parent;
      PIXELS_RETURN_NOT_OK(executed.status());
      return TextAsPlanTable(profile.ToText());
    }
    PIXELS_ASSIGN_OR_RETURN(std::string text,
                            ExplainQuery(inner, db, *ctx->catalog));
    return TextAsPlanTable(text);
  }
  return ExecuteSelect(sql, db, ctx);
}

}  // namespace pixels
