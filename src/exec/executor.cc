#include "exec/executor.h"

#include <cctype>

#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/operators.h"
#include "exec/sort.h"
#include "mv/mv_store.h"
#include "plan/binder.h"
#include "plan/fingerprint.h"
#include "plan/optimizer.h"

namespace pixels {

Result<OperatorPtr> BuildOperator(const PlanPtr& plan, ExecContext* ctx) {
  switch (plan->kind) {
    case LogicalPlan::Kind::kScan:
      return OperatorPtr(new ScanOperator(*plan, ctx));
    case LogicalPlan::Kind::kFilter: {
      PIXELS_ASSIGN_OR_RETURN(OperatorPtr child,
                              BuildOperator(plan->children[0], ctx));
      return OperatorPtr(new FilterOperator(std::move(child), *plan->predicate));
    }
    case LogicalPlan::Kind::kProject: {
      PIXELS_ASSIGN_OR_RETURN(OperatorPtr child,
                              BuildOperator(plan->children[0], ctx));
      return OperatorPtr(
          new ProjectOperator(std::move(child), plan->exprs, plan->names));
    }
    case LogicalPlan::Kind::kJoin: {
      PIXELS_ASSIGN_OR_RETURN(OperatorPtr left,
                              BuildOperator(plan->children[0], ctx));
      PIXELS_ASSIGN_OR_RETURN(OperatorPtr right,
                              BuildOperator(plan->children[1], ctx));
      return OperatorPtr(new HashJoinOperator(std::move(left),
                                              std::move(right), *plan, ctx));
    }
    case LogicalPlan::Kind::kAggregate: {
      PIXELS_ASSIGN_OR_RETURN(OperatorPtr child,
                              BuildOperator(plan->children[0], ctx));
      return OperatorPtr(new HashAggOperator(std::move(child), *plan, ctx));
    }
    case LogicalPlan::Kind::kSort: {
      PIXELS_ASSIGN_OR_RETURN(OperatorPtr child,
                              BuildOperator(plan->children[0], ctx));
      return OperatorPtr(new SortOperator(std::move(child), *plan));
    }
    case LogicalPlan::Kind::kLimit: {
      PIXELS_ASSIGN_OR_RETURN(OperatorPtr child,
                              BuildOperator(plan->children[0], ctx));
      return OperatorPtr(new LimitOperator(std::move(child), plan->limit));
    }
    case LogicalPlan::Kind::kDistinct: {
      PIXELS_ASSIGN_OR_RETURN(OperatorPtr child,
                              BuildOperator(plan->children[0], ctx));
      return OperatorPtr(new DistinctOperator(std::move(child)));
    }
    case LogicalPlan::Kind::kMaterializedView:
      return OperatorPtr(new ViewOperator(*plan));
  }
  return Status::Internal("unknown plan node kind");
}

Result<TablePtr> ExecutePlan(const PlanPtr& plan, ExecContext* ctx) {
  PIXELS_ASSIGN_OR_RETURN(OperatorPtr root, BuildOperator(plan, ctx));
  PIXELS_RETURN_NOT_OK(root->Open());
  auto table = std::make_shared<Table>();
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, root->Next());
    if (batch == nullptr) break;
    if (batch->num_rows() > 0 || table->batches().empty()) {
      table->AddBatch(std::move(batch));
    }
  }
  root->Close();
  return table;
}

bool IsExplainStatement(const std::string& sql, std::string* inner) {
  size_t i = 0;
  while (i < sql.size() && std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  const char* kExplain = "explain";
  size_t j = 0;
  while (j < 7 && i + j < sql.size() &&
         std::tolower(static_cast<unsigned char>(sql[i + j])) == kExplain[j]) {
    ++j;
  }
  if (j != 7) return false;
  // Must be a whole word.
  if (i + 7 < sql.size() &&
      (std::isalnum(static_cast<unsigned char>(sql[i + 7])) ||
       sql[i + 7] == '_')) {
    return false;
  }
  if (inner != nullptr) *inner = sql.substr(i + 7);
  return true;
}

Result<std::string> ExplainQuery(const std::string& sql, const std::string& db,
                                 const Catalog& catalog) {
  std::string inner = sql;
  IsExplainStatement(sql, &inner);
  PIXELS_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(inner, catalog, db));
  PIXELS_ASSIGN_OR_RETURN(plan, Optimize(std::move(plan), catalog));
  return plan->ToString();
}

Result<TablePtr> ExecuteQuery(const std::string& sql, const std::string& db,
                              ExecContext* ctx) {
  std::string inner;
  if (IsExplainStatement(sql, &inner)) {
    PIXELS_ASSIGN_OR_RETURN(std::string text,
                            ExplainQuery(inner, db, *ctx->catalog));
    auto table = std::make_shared<Table>();
    auto batch = std::make_shared<RowBatch>();
    auto col = MakeVector(TypeId::kString);
    // One row per plan line keeps the EXPLAIN output readable in clients.
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      col->AppendString(text.substr(start, end - start));
      start = end + 1;
    }
    batch->AddColumn("plan", std::move(col));
    table->AddBatch(std::move(batch));
    return table;
  }
  PIXELS_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(sql, *ctx->catalog, db));
  PIXELS_ASSIGN_OR_RETURN(plan, Optimize(std::move(plan), *ctx->catalog));

  if (ctx->mv_store == nullptr) return ExecutePlan(plan, ctx);

  // Full-query MV reuse: planning above touched only catalog metadata, so
  // a hit answers the query with zero storage requests and zero scanned
  // bytes. Plans that cannot be fingerprinted just execute normally.
  auto fp = FingerprintPlan(*plan);
  if (fp.ok()) {
    if (auto hit = ctx->mv_store->Lookup(*fp, *ctx->catalog)) {
      ctx->mv_hits.fetch_add(1, std::memory_order_relaxed);
      ctx->mv_saved_bytes.fetch_add(hit->saved_scan_bytes,
                                    std::memory_order_relaxed);
      return hit->table;
    }
  }
  // Pins MUST be snapshotted before execution: the scan resolves its file
  // list at Open(), i.e. at or after this point, so any catalog mutation
  // that could have changed what the scan read also bumps a version past
  // the snapshot and the stored entry conservatively fails validation.
  // (Collected after execution, a mutation landing mid-query would stamp
  // a stale result with the new epoch — a silently poisoned cache.)
  auto pins = fp.ok() ? CollectTableVersionPins(*plan, *ctx->catalog)
                      : Result<std::vector<TableVersionPin>>(fp.status());
  const uint64_t scanned_before = ctx->bytes_scanned.load();
  PIXELS_ASSIGN_OR_RETURN(TablePtr table, ExecutePlan(plan, ctx));
  if (fp.ok() && pins.ok()) {
    // Rebuild cost = what this execution scanned.
    ctx->mv_store->Insert(*fp, table,
                          ctx->bytes_scanned.load() - scanned_before,
                          std::move(*pins));
  }
  return table;
}

}  // namespace pixels
