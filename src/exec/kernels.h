// Vectorized kernels: flat, auto-vectorizable loops over the typed
// payload arrays of ColumnVector, producing reusable selection vectors —
// no per-row Value boxing on the hot path. A predicate is "compiled" once
// per operator (CompiledPredicate) by lowering its conjunct AST into a
// kernel program; conjuncts outside the kernel shapes stay in a residual
// expression evaluated row-wise on the survivors only, so EvaluateExpr
// remains the general/fallback evaluator with identical semantics.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "exec/bloom_filter.h"
#include "format/batch.h"
#include "format/compare.h"
#include "sql/ast.h"

namespace pixels {

/// A filter predicate lowered into typed kernel steps. Kernel-shaped
/// conjuncts (col op literal, BETWEEN, IN literal-list, IS [NOT] NULL,
/// bare/NOT boolean column) evaluate as flat selection-refining loops;
/// the rest combine into one residual expression evaluated per surviving
/// row. Selection semantics match FilterOperator's scalar path exactly:
/// a row passes when every conjunct is true (null is not true).
class CompiledPredicate {
 public:
  /// Lowers `predicate`'s conjuncts. The expression must outlive the
  /// compiled program (steps keep literal copies but the residual holds
  /// clones, so the program is self-contained).
  static CompiledPredicate Compile(const Expr& predicate);

  /// Number of conjuncts lowered to kernel steps (observability/tests).
  size_t num_kernel_steps() const { return steps_.size(); }
  bool has_residual() const { return residual_ != nullptr; }

  /// Selects the rows of `batch` that satisfy the predicate. When `in`
  /// is non-null only those rows are considered (selection refinement —
  /// lets a Filter stack on an upstream selection without a gather).
  Result<SelectionVector> Select(const RowBatch& batch,
                                 const SelectionVector* in) const;
  Result<SelectionVector> Select(const RowBatch& batch) const {
    return Select(batch, nullptr);
  }

 private:
  struct Step {
    enum class Kind : uint8_t { kCompare, kBetween, kInList, kIsNull, kTruthy };
    Kind kind;
    std::string column;  // qualified name, resolved per batch
    CmpOp op = CmpOp::kEq;        // kCompare
    Value lit;                    // kCompare
    Value lo, hi;                 // kBetween
    std::vector<Value> in_list;   // kInList (non-null items)
    bool negated = false;         // kBetween / kInList / kIsNull / kTruthy
  };

  Status EvalStep(const Step& step, const RowBatch& batch,
                  const SelectionVector* in, SelectionVector* out) const;

  std::vector<Step> steps_;
  /// A conjunct that is constant-false (e.g. BETWEEN with a null bound):
  /// nothing can pass.
  bool never_matches_ = false;
  ExprPtr residual_;  // null when fully compiled
};

/// Vectorized expression evaluation for projections: column refs, literal
/// broadcasts, unary minus, binary arithmetic and comparisons run as flat
/// typed loops; any unsupported subtree falls back to EvaluateExpr for
/// the whole expression. Results (values, nulls, and output vector type)
/// are identical to EvaluateExpr.
Result<ColumnVectorPtr> EvaluateExprVectorized(const Expr& expr,
                                               const RowBatch& batch);

/// Hashes every non-null row of a key column with the kind-tagged
/// runtime-filter hash (flat per-type loops). Null rows get hash 0 and
/// must be masked by the caller via the validity mask.
std::vector<uint64_t> RfHashColumn(const ColumnVector& col);

/// Batch hash kernel for join/agg keys: hashes row `i` of all `cols`
/// into one 64-bit hash (kind-tagged per-column hashes from
/// bloom_filter.h, order-sensitive multi-key combine), so equal keys in
/// ValuesKey semantics always hash equal. Null components hash to a
/// fixed tag (nulls form aggregation groups); when `any_null` is
/// non-null it is set to 1 for rows with any null component so join
/// builds/probes can skip them (nulls never join). `num_rows` covers the
/// zero-key case (global aggregation): every row hashes identically.
std::vector<uint64_t> HashKeyColumns(const std::vector<ColumnVectorPtr>& cols,
                                     size_t num_rows,
                                     std::vector<uint8_t>* any_null);

/// True when evaluating `expr` cannot fail on any row of a batch whose
/// column refs resolve: literals, column refs, NOT/negate, and the
/// known binary operators are total (division by zero yields NULL);
/// functions and LIKE type-check per row and may error. Selection-aware
/// operators evaluate such expressions over a batch's deselected rows
/// without changing error behavior; anything else forces a gather first.
bool ExprSafeToEvalUnselected(const Expr& expr);

/// Keeps the rows of `sel` (or all rows when `sel` is null) whose key is
/// non-null and may be in the bloom filter. Nulls never pass: runtime
/// filters apply only to inner-join probe sides, where null keys cannot
/// join.
SelectionVector BloomFilterSelect(const ColumnVector& col,
                                  const BloomFilter& bloom,
                                  const SelectionVector* sel);

}  // namespace pixels
