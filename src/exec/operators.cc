#include "exec/operators.h"

#include "common/bytes.h"
#include "exec/expression.h"
#include "format/stats.h"

namespace pixels {

std::string RowKey(const RowBatch& batch, size_t row,
                   const std::vector<int>& columns) {
  ByteWriter w;
  for (int c : columns) {
    Value v = batch.column(static_cast<size_t>(c))->GetValue(row);
    stats_internal::SerializeValue(v, &w);
  }
  const auto& bytes = w.data();
  return std::string(bytes.begin(), bytes.end());
}

std::string ValuesKey(const std::vector<Value>& values) {
  ByteWriter w;
  for (const auto& v : values) stats_internal::SerializeValue(v, &w);
  const auto& bytes = w.data();
  return std::string(bytes.begin(), bytes.end());
}

Status ScanOperator::Open() {
  PIXELS_ASSIGN_OR_RETURN(const TableSchema* schema,
                          ctx_->catalog->GetTable(plan_.db, plan_.table));
  const std::vector<std::string>& files =
      plan_.file_subset.empty() ? schema->files : plan_.file_subset;
  ScanOptions options;
  options.columns = plan_.columns;
  options.predicates = plan_.pushed;
  const std::string& qualifier =
      plan_.table_alias.empty() ? plan_.table : plan_.table_alias;
  for (const auto& path : files) {
    PIXELS_ASSIGN_OR_RETURN(auto reader,
                            PixelsReader::Open(ctx_->catalog->storage(), path));
    PIXELS_ASSIGN_OR_RETURN(auto batches, reader->Scan(options));
    ctx_->bytes_scanned += reader->scan_stats().bytes_scanned;
    ctx_->rows_scanned += reader->scan_stats().rows_read;
    for (auto& b : batches) {
      // Qualify column names with the scan alias.
      auto qualified = std::make_shared<RowBatch>();
      for (size_t c = 0; c < b->num_columns(); ++c) {
        qualified->AddColumn(qualifier + "." + b->name(c), b->column(c));
      }
      batches_.push_back(std::move(qualified));
    }
  }
  return Status::OK();
}

Result<RowBatchPtr> ScanOperator::Next() {
  if (next_ >= batches_.size()) return RowBatchPtr(nullptr);
  return batches_[next_++];
}

Result<RowBatchPtr> FilterOperator::Next() {
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, child_->Next());
    if (batch == nullptr) return RowBatchPtr(nullptr);
    if (batch->num_rows() == 0) continue;
    PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr mask,
                            EvaluateExpr(predicate_, *batch));
    std::vector<uint32_t> sel;
    sel.reserve(batch->num_rows());
    for (size_t i = 0; i < mask->size(); ++i) {
      if (!mask->IsNull(i) && mask->GetValue(i).AsBool()) {
        sel.push_back(static_cast<uint32_t>(i));
      }
    }
    if (sel.empty()) continue;
    if (sel.size() == batch->num_rows()) return batch;
    return batch->Gather(sel);
  }
}

Result<RowBatchPtr> ProjectOperator::Next() {
  PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, child_->Next());
  if (batch == nullptr) return RowBatchPtr(nullptr);
  auto out = std::make_shared<RowBatch>();
  for (size_t i = 0; i < exprs_.size(); ++i) {
    PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                            EvaluateExpr(*exprs_[i], *batch));
    out->AddColumn(names_[i], std::move(col));
  }
  return out;
}

Result<RowBatchPtr> LimitOperator::Next() {
  if (remaining_ <= 0) return RowBatchPtr(nullptr);
  PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, child_->Next());
  if (batch == nullptr) return RowBatchPtr(nullptr);
  if (static_cast<int64_t>(batch->num_rows()) <= remaining_) {
    remaining_ -= static_cast<int64_t>(batch->num_rows());
    return batch;
  }
  std::vector<uint32_t> sel;
  for (int64_t i = 0; i < remaining_; ++i) {
    sel.push_back(static_cast<uint32_t>(i));
  }
  remaining_ = 0;
  return batch->Gather(sel);
}

Result<RowBatchPtr> DistinctOperator::Next() {
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, child_->Next());
    if (batch == nullptr) return RowBatchPtr(nullptr);
    std::vector<int> all_cols;
    for (size_t c = 0; c < batch->num_columns(); ++c) {
      all_cols.push_back(static_cast<int>(c));
    }
    std::vector<uint32_t> sel;
    for (size_t r = 0; r < batch->num_rows(); ++r) {
      if (seen_.insert(RowKey(*batch, r, all_cols)).second) {
        sel.push_back(static_cast<uint32_t>(r));
      }
    }
    if (sel.empty()) continue;
    if (sel.size() == batch->num_rows()) return batch;
    return batch->Gather(sel);
  }
}

Status ViewOperator::Open() {
  if (plan_.view == nullptr) {
    return Status::FailedPrecondition(
        "materialized view placeholder not injected");
  }
  return Status::OK();
}

Result<RowBatchPtr> ViewOperator::Next() {
  const auto& batches = plan_.view->batches();
  if (next_ >= batches.size()) return RowBatchPtr(nullptr);
  return batches[next_++];
}

}  // namespace pixels
