#include "exec/operators.h"

#include "common/bytes.h"
#include "exec/expression.h"
#include "format/stats.h"

namespace pixels {

namespace {

/// Appends one length-prefixed serialized component. SerializeValue is
/// already prefix-free per component (kind tag + varint-framed payload),
/// but the explicit length makes the concatenation self-delimiting by
/// construction — no split of the key bytes other than the original one
/// can parse, independent of the payload encoding's details.
void AppendKeyComponent(const Value& v, ByteWriter* w) {
  ByteWriter component;
  stats_internal::SerializeValue(v, &component);
  w->PutVarint(component.size());
  w->PutBytes(component.data().data(), component.size());
}

}  // namespace

std::string RowKey(const RowBatch& batch, size_t row,
                   const std::vector<int>& columns) {
  ByteWriter w;
  for (int c : columns) {
    AppendKeyComponent(batch.column(static_cast<size_t>(c))->GetValue(row),
                       &w);
  }
  const auto& bytes = w.data();
  return std::string(bytes.begin(), bytes.end());
}

std::string ValuesKey(const std::vector<Value>& values) {
  ByteWriter w;
  for (const auto& v : values) AppendKeyComponent(v, &w);
  const auto& bytes = w.data();
  return std::string(bytes.begin(), bytes.end());
}

Status ScanOperator::Open() {
  PIXELS_ASSIGN_OR_RETURN(const TableSchema* schema,
                          ctx_->catalog->GetTable(plan_.db, plan_.table));
  const std::vector<std::string>& files =
      plan_.file_subset.empty() ? schema->files : plan_.file_subset;
  columns_ = plan_.columns;
  qualifier_ = plan_.table_alias.empty() ? plan_.table : plan_.table_alias;
  // Metadata only: open footers and prune row groups; no chunk is fetched
  // or decoded until Next() demands its morsel.
  for (const auto& path : files) {
    PIXELS_ASSIGN_OR_RETURN(
        auto reader,
        PixelsReader::Open(ctx_->catalog->storage(), path, ctx_->io));
    for (size_t g : reader->PruneRowGroups(plan_.pushed)) {
      morsels_.push_back(Morsel{readers_.size(), g});
    }
    readers_.push_back(std::move(reader));
  }
  return Status::OK();
}

Result<RowBatchPtr> ScanOperator::DecodeMorsel(const Morsel& morsel,
                                               ScanStats* stats) const {
  const PixelsReader& reader = *readers_[morsel.reader_index];
  RowBatchPtr batch;
  if (ctx_->fused_decode && !plan_.pushed.empty()) {
    // Fused decode+filter: pushed predicates are evaluated on the encoded
    // chunks and only surviving rows materialize. Billing and
    // rows_scanned stay identical to the unfused path (all projected
    // chunk bytes are charged, all row-group rows counted).
    PIXELS_ASSIGN_OR_RETURN(
        batch, reader.ReadRowGroupFiltered(morsel.row_group, columns_,
                                           plan_.pushed, stats));
    stats->rows_read += reader.RowGroupRows(morsel.row_group);
  } else {
    PIXELS_ASSIGN_OR_RETURN(
        batch, reader.ReadRowGroup(morsel.row_group, columns_, stats));
    stats->rows_read += batch->num_rows();
  }
  // Qualify column names with the scan alias.
  auto qualified = std::make_shared<RowBatch>();
  for (size_t c = 0; c < batch->num_columns(); ++c) {
    qualified->AddColumn(qualifier_ + "." + batch->name(c), batch->column(c));
  }
  // Row-level runtime-filter probe: keep only rows whose join key may be
  // in a published build side. Superset-safe (bloom has no false
  // negatives; nulls never inner-join), so the join output is unchanged.
  for (const auto& rf : resolved_rfs_) {
    if (qualified->num_rows() == 0) break;
    const int idx = qualified->FindColumn(rf.qualified_column);
    if (idx < 0) continue;
    const size_t before = qualified->num_rows();
    std::vector<uint32_t> sel = BloomFilterSelect(
        *qualified->column(static_cast<size_t>(idx)), rf.filter->bloom,
        nullptr);
    ctx_->rf_probe_rows.fetch_add(before, std::memory_order_relaxed);
    ctx_->rf_pruned_rows.fetch_add(before - sel.size(),
                                   std::memory_order_relaxed);
    if (sel.size() == before) continue;
    qualified = qualified->Gather(sel);
  }
  return qualified;
}

void ScanOperator::ResolveRuntimeFilters() {
  rf_resolved_ = true;
  if (!ctx_->runtime_filters) return;
  for (const auto& rf : plan_.runtime_filters) {
    RuntimeFilterPtr f = ctx_->rf_hub.Get(rf.id);
    if (f == nullptr) continue;  // not published (yet): read everything
    resolved_rfs_.push_back(
        ResolvedFilter{std::move(f), rf.column, qualifier_ + "." + rf.column});
  }
  if (resolved_rfs_.empty()) return;
  // Morsel pruning: a row group whose zone map cannot intersect the
  // build keys' [min, max] — or any row group when the build side is
  // empty — is dropped before its chunks are ever fetched, so its billed
  // bytes are genuinely avoided (credited to rf_skipped_bytes).
  std::vector<Morsel> kept;
  kept.reserve(morsels_.size());
  for (const auto& m : morsels_) {
    bool keep = true;
    for (const auto& rf : resolved_rfs_) {
      if (rf.filter->key_count == 0) {
        keep = false;  // inner join with empty build: nothing can match
        break;
      }
      if (!rf.filter->has_range) continue;
      const std::vector<ScanPredicate> range = {
          ScanPredicate{rf.column, ">=", rf.filter->min_key},
          ScanPredicate{rf.column, "<=", rf.filter->max_key},
      };
      if (!readers_[m.reader_index]->RowGroupMayMatch(m.row_group, range)) {
        keep = false;
        break;
      }
    }
    if (keep) {
      kept.push_back(m);
      continue;
    }
    ctx_->rf_pruned_row_groups.fetch_add(1, std::memory_order_relaxed);
    auto bytes =
        readers_[m.reader_index]->RowGroupProjectedBytes(m.row_group, columns_);
    if (bytes.ok()) {
      ctx_->rf_skipped_bytes.fetch_add(*bytes, std::memory_order_relaxed);
    }
  }
  morsels_ = std::move(kept);
}

Status ScanOperator::RefillWindow() {
  window_.clear();
  window_pos_ = 0;
  // Resolve hub filters once, before the first morsel decodes; frozen
  // thereafter so serial and parallel runs prune identically.
  if (!rf_resolved_) ResolveRuntimeFilters();
  if (next_morsel_ >= morsels_.size()) return Status::OK();
  const int par = ctx_->EffectiveParallelism();
  const size_t remaining = morsels_.size() - next_morsel_;
  if (par <= 1) {
    // Serial: stream exactly one morsel — constant memory regardless of
    // table size, and early-terminating consumers (LIMIT) bill only what
    // they actually decoded.
    ScanStats stats;
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch,
                            DecodeMorsel(morsels_[next_morsel_], &stats));
    ++next_morsel_;
    ctx_->bytes_scanned += stats.bytes_scanned;
    ctx_->rows_scanned += stats.rows_read;
    ctx_->cache_hits += stats.cache_hits;
    ctx_->cache_misses += stats.cache_misses;
    window_.push_back(std::move(batch));
    return Status::OK();
  }
  // Parallel: decode a window of morsels concurrently. Slot-indexed
  // outputs keep batch order identical to the serial scan; per-morsel
  // stats merged in order keep billing exact and deterministic.
  const size_t window = std::min(remaining, static_cast<size_t>(par) * 2);
  const size_t base = next_morsel_;
  // Warm the cache for the window after this one while this one decodes.
  LaunchPrefetch(base + window,
                 std::min(morsels_.size() - (base + window),
                          window * static_cast<size_t>(
                                       std::max(ctx_->io.prefetch_windows, 0))));
  window_.resize(window);
  std::vector<ScanStats> stats(window);
  PIXELS_RETURN_NOT_OK(ctx_->EffectivePool()->ParallelFor(
      0, window, /*grain=*/1,
      [&](size_t i) -> Status {
        PIXELS_ASSIGN_OR_RETURN(window_[i],
                                DecodeMorsel(morsels_[base + i], &stats[i]));
        return Status::OK();
      },
      par));
  next_morsel_ += window;
  for (const auto& s : stats) {
    ctx_->bytes_scanned += s.bytes_scanned;
    ctx_->rows_scanned += s.rows_read;
    ctx_->cache_hits += s.cache_hits;
    ctx_->cache_misses += s.cache_misses;
  }
  return Status::OK();
}

void ScanOperator::LaunchPrefetch(size_t begin, size_t count) {
  if (ctx_->io.chunk_cache == nullptr || ctx_->io.prefetch_windows <= 0 ||
      count == 0 || begin >= morsels_.size()) {
    return;
  }
  // One prefetch in flight at a time: wait out the previous window's
  // task before reading next_morsel_-adjacent state again.
  WaitPrefetch();
  {
    std::lock_guard<std::mutex> lock(prefetch_mu_);
    prefetch_inflight_ = true;
  }
  const size_t end = std::min(begin + count, morsels_.size());
  ctx_->EffectivePool()->Submit([this, begin, end] {
    for (size_t m = begin; m < end; ++m) {
      const Morsel& morsel = morsels_[m];
      // Advisory: a failed prefetch just means the decode pays the GET.
      Status ignored = readers_[morsel.reader_index]->PrefetchRowGroup(
          morsel.row_group, columns_);
      (void)ignored;
    }
    std::lock_guard<std::mutex> lock(prefetch_mu_);
    prefetch_inflight_ = false;
    prefetch_cv_.notify_all();
  });
}

void ScanOperator::WaitPrefetch() {
  std::unique_lock<std::mutex> lock(prefetch_mu_);
  prefetch_cv_.wait(lock, [this] { return !prefetch_inflight_; });
}

Result<RowBatchPtr> ScanOperator::Next() {
  if (window_pos_ >= window_.size()) {
    PIXELS_RETURN_NOT_OK(RefillWindow());
    if (window_.empty()) return RowBatchPtr(nullptr);
  }
  return window_[window_pos_++];
}

void ScanOperator::Close() {
  WaitPrefetch();  // the task touches readers_/morsels_; don't race teardown
  window_.clear();
  readers_.clear();
  morsels_.clear();
}

Status FilterOperator::Open() {
  // One-time predicate compilation: conjuncts lower into typed kernel
  // steps; whatever cannot lower stays as a scalar residual.
  compiled_ = CompiledPredicate::Compile(predicate_);
  return child_->Open();
}

Result<RowBatchPtr> FilterOperator::Next() {
  PIXELS_ASSIGN_OR_RETURN(SelBatch out, NextSel());
  return out.Materialize();
}

Result<SelBatch> FilterOperator::NextSel() {
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(SelBatch in, child_->NextSel());
    if (in.batch == nullptr) return SelBatch{};
    if (in.num_selected() == 0) continue;
    PIXELS_ASSIGN_OR_RETURN(SelectionVector sel,
                            compiled_.Select(*in.batch, in.sel.get()));
    if (sel.empty()) continue;
    return SelBatch{std::move(in.batch),
                    std::make_shared<SelectionVector>(std::move(sel))};
  }
}

Status ProjectOperator::Open() {
  selvec_safe_ = true;
  for (const auto& e : exprs_) {
    selvec_safe_ = selvec_safe_ && ExprSafeToEvalUnselected(*e);
  }
  return child_->Open();
}

Result<RowBatchPtr> ProjectOperator::Next() {
  PIXELS_ASSIGN_OR_RETURN(SelBatch out, NextSel());
  return out.Materialize();
}

Result<SelBatch> ProjectOperator::NextSel() {
  PIXELS_ASSIGN_OR_RETURN(SelBatch in, child_->NextSel());
  if (in.batch == nullptr) return SelBatch{};
  // Project the full batch and forward the selection only when that is
  // semantically safe AND not wasteful: a sparse selection (< 1/4 of the
  // rows) makes gathering once cheaper than evaluating deselected rows.
  RowBatchPtr input = in.batch;
  std::shared_ptr<SelectionVector> sel = in.sel;
  if (sel != nullptr &&
      (!selvec_safe_ || sel->size() * 4 < in.batch->num_rows())) {
    input = in.Materialize();
    sel = nullptr;
  }
  auto out = std::make_shared<RowBatch>();
  for (size_t i = 0; i < exprs_.size(); ++i) {
    PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                            EvaluateExprVectorized(*exprs_[i], *input));
    out->AddColumn(names_[i], std::move(col));
  }
  return SelBatch{std::move(out), std::move(sel)};
}

Result<RowBatchPtr> LimitOperator::Next() {
  if (remaining_ <= 0) return RowBatchPtr(nullptr);
  PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, child_->Next());
  if (batch == nullptr) return RowBatchPtr(nullptr);
  if (static_cast<int64_t>(batch->num_rows()) <= remaining_) {
    remaining_ -= static_cast<int64_t>(batch->num_rows());
    return batch;
  }
  std::vector<uint32_t> sel;
  for (int64_t i = 0; i < remaining_; ++i) {
    sel.push_back(static_cast<uint32_t>(i));
  }
  remaining_ = 0;
  return batch->Gather(sel);
}

Result<RowBatchPtr> DistinctOperator::Next() {
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, child_->Next());
    if (batch == nullptr) return RowBatchPtr(nullptr);
    std::vector<int> all_cols;
    for (size_t c = 0; c < batch->num_columns(); ++c) {
      all_cols.push_back(static_cast<int>(c));
    }
    std::vector<uint32_t> sel;
    for (size_t r = 0; r < batch->num_rows(); ++r) {
      if (seen_.insert(RowKey(*batch, r, all_cols)).second) {
        sel.push_back(static_cast<uint32_t>(r));
      }
    }
    if (sel.empty()) continue;
    if (sel.size() == batch->num_rows()) return batch;
    return batch->Gather(sel);
  }
}

Status ViewOperator::Open() {
  if (plan_.view == nullptr) {
    return Status::FailedPrecondition(
        "materialized view placeholder not injected");
  }
  return Status::OK();
}

Result<RowBatchPtr> ViewOperator::Next() {
  const auto& batches = plan_.view->batches();
  if (next_ >= batches.size()) return RowBatchPtr(nullptr);
  return batches[next_++];
}

}  // namespace pixels
