#include "exec/operators.h"

#include "common/bytes.h"
#include "exec/expression.h"
#include "format/stats.h"

namespace pixels {

std::string RowKey(const RowBatch& batch, size_t row,
                   const std::vector<int>& columns) {
  ByteWriter w;
  for (int c : columns) {
    Value v = batch.column(static_cast<size_t>(c))->GetValue(row);
    stats_internal::SerializeValue(v, &w);
  }
  const auto& bytes = w.data();
  return std::string(bytes.begin(), bytes.end());
}

std::string ValuesKey(const std::vector<Value>& values) {
  ByteWriter w;
  for (const auto& v : values) stats_internal::SerializeValue(v, &w);
  const auto& bytes = w.data();
  return std::string(bytes.begin(), bytes.end());
}

Status ScanOperator::Open() {
  PIXELS_ASSIGN_OR_RETURN(const TableSchema* schema,
                          ctx_->catalog->GetTable(plan_.db, plan_.table));
  const std::vector<std::string>& files =
      plan_.file_subset.empty() ? schema->files : plan_.file_subset;
  columns_ = plan_.columns;
  qualifier_ = plan_.table_alias.empty() ? plan_.table : plan_.table_alias;
  // Metadata only: open footers and prune row groups; no chunk is fetched
  // or decoded until Next() demands its morsel.
  for (const auto& path : files) {
    PIXELS_ASSIGN_OR_RETURN(
        auto reader,
        PixelsReader::Open(ctx_->catalog->storage(), path, ctx_->io));
    for (size_t g : reader->PruneRowGroups(plan_.pushed)) {
      morsels_.push_back(Morsel{readers_.size(), g});
    }
    readers_.push_back(std::move(reader));
  }
  return Status::OK();
}

Result<RowBatchPtr> ScanOperator::DecodeMorsel(const Morsel& morsel,
                                               ScanStats* stats) const {
  PIXELS_ASSIGN_OR_RETURN(
      RowBatchPtr batch,
      readers_[morsel.reader_index]->ReadRowGroup(morsel.row_group, columns_,
                                                  stats));
  stats->rows_read += batch->num_rows();
  // Qualify column names with the scan alias.
  auto qualified = std::make_shared<RowBatch>();
  for (size_t c = 0; c < batch->num_columns(); ++c) {
    qualified->AddColumn(qualifier_ + "." + batch->name(c), batch->column(c));
  }
  return qualified;
}

Status ScanOperator::RefillWindow() {
  window_.clear();
  window_pos_ = 0;
  if (next_morsel_ >= morsels_.size()) return Status::OK();
  const int par = ctx_->EffectiveParallelism();
  const size_t remaining = morsels_.size() - next_morsel_;
  if (par <= 1) {
    // Serial: stream exactly one morsel — constant memory regardless of
    // table size, and early-terminating consumers (LIMIT) bill only what
    // they actually decoded.
    ScanStats stats;
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch,
                            DecodeMorsel(morsels_[next_morsel_], &stats));
    ++next_morsel_;
    ctx_->bytes_scanned += stats.bytes_scanned;
    ctx_->rows_scanned += stats.rows_read;
    ctx_->cache_hits += stats.cache_hits;
    ctx_->cache_misses += stats.cache_misses;
    window_.push_back(std::move(batch));
    return Status::OK();
  }
  // Parallel: decode a window of morsels concurrently. Slot-indexed
  // outputs keep batch order identical to the serial scan; per-morsel
  // stats merged in order keep billing exact and deterministic.
  const size_t window = std::min(remaining, static_cast<size_t>(par) * 2);
  const size_t base = next_morsel_;
  // Warm the cache for the window after this one while this one decodes.
  LaunchPrefetch(base + window,
                 std::min(morsels_.size() - (base + window),
                          window * static_cast<size_t>(
                                       std::max(ctx_->io.prefetch_windows, 0))));
  window_.resize(window);
  std::vector<ScanStats> stats(window);
  PIXELS_RETURN_NOT_OK(ctx_->EffectivePool()->ParallelFor(
      0, window, /*grain=*/1,
      [&](size_t i) -> Status {
        PIXELS_ASSIGN_OR_RETURN(window_[i],
                                DecodeMorsel(morsels_[base + i], &stats[i]));
        return Status::OK();
      },
      par));
  next_morsel_ += window;
  for (const auto& s : stats) {
    ctx_->bytes_scanned += s.bytes_scanned;
    ctx_->rows_scanned += s.rows_read;
    ctx_->cache_hits += s.cache_hits;
    ctx_->cache_misses += s.cache_misses;
  }
  return Status::OK();
}

void ScanOperator::LaunchPrefetch(size_t begin, size_t count) {
  if (ctx_->io.chunk_cache == nullptr || ctx_->io.prefetch_windows <= 0 ||
      count == 0 || begin >= morsels_.size()) {
    return;
  }
  // One prefetch in flight at a time: wait out the previous window's
  // task before reading next_morsel_-adjacent state again.
  WaitPrefetch();
  {
    std::lock_guard<std::mutex> lock(prefetch_mu_);
    prefetch_inflight_ = true;
  }
  const size_t end = std::min(begin + count, morsels_.size());
  ctx_->EffectivePool()->Submit([this, begin, end] {
    for (size_t m = begin; m < end; ++m) {
      const Morsel& morsel = morsels_[m];
      // Advisory: a failed prefetch just means the decode pays the GET.
      Status ignored = readers_[morsel.reader_index]->PrefetchRowGroup(
          morsel.row_group, columns_);
      (void)ignored;
    }
    std::lock_guard<std::mutex> lock(prefetch_mu_);
    prefetch_inflight_ = false;
    prefetch_cv_.notify_all();
  });
}

void ScanOperator::WaitPrefetch() {
  std::unique_lock<std::mutex> lock(prefetch_mu_);
  prefetch_cv_.wait(lock, [this] { return !prefetch_inflight_; });
}

Result<RowBatchPtr> ScanOperator::Next() {
  if (window_pos_ >= window_.size()) {
    PIXELS_RETURN_NOT_OK(RefillWindow());
    if (window_.empty()) return RowBatchPtr(nullptr);
  }
  return window_[window_pos_++];
}

void ScanOperator::Close() {
  WaitPrefetch();  // the task touches readers_/morsels_; don't race teardown
  window_.clear();
  readers_.clear();
  morsels_.clear();
}

Result<RowBatchPtr> FilterOperator::Next() {
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, child_->Next());
    if (batch == nullptr) return RowBatchPtr(nullptr);
    if (batch->num_rows() == 0) continue;
    PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr mask,
                            EvaluateExpr(predicate_, *batch));
    std::vector<uint32_t> sel;
    sel.reserve(batch->num_rows());
    for (size_t i = 0; i < mask->size(); ++i) {
      if (!mask->IsNull(i) && mask->GetValue(i).AsBool()) {
        sel.push_back(static_cast<uint32_t>(i));
      }
    }
    if (sel.empty()) continue;
    if (sel.size() == batch->num_rows()) return batch;
    return batch->Gather(sel);
  }
}

Result<RowBatchPtr> ProjectOperator::Next() {
  PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, child_->Next());
  if (batch == nullptr) return RowBatchPtr(nullptr);
  auto out = std::make_shared<RowBatch>();
  for (size_t i = 0; i < exprs_.size(); ++i) {
    PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                            EvaluateExpr(*exprs_[i], *batch));
    out->AddColumn(names_[i], std::move(col));
  }
  return out;
}

Result<RowBatchPtr> LimitOperator::Next() {
  if (remaining_ <= 0) return RowBatchPtr(nullptr);
  PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, child_->Next());
  if (batch == nullptr) return RowBatchPtr(nullptr);
  if (static_cast<int64_t>(batch->num_rows()) <= remaining_) {
    remaining_ -= static_cast<int64_t>(batch->num_rows());
    return batch;
  }
  std::vector<uint32_t> sel;
  for (int64_t i = 0; i < remaining_; ++i) {
    sel.push_back(static_cast<uint32_t>(i));
  }
  remaining_ = 0;
  return batch->Gather(sel);
}

Result<RowBatchPtr> DistinctOperator::Next() {
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, child_->Next());
    if (batch == nullptr) return RowBatchPtr(nullptr);
    std::vector<int> all_cols;
    for (size_t c = 0; c < batch->num_columns(); ++c) {
      all_cols.push_back(static_cast<int>(c));
    }
    std::vector<uint32_t> sel;
    for (size_t r = 0; r < batch->num_rows(); ++r) {
      if (seen_.insert(RowKey(*batch, r, all_cols)).second) {
        sel.push_back(static_cast<uint32_t>(r));
      }
    }
    if (sel.empty()) continue;
    if (sel.size() == batch->num_rows()) return batch;
    return batch->Gather(sel);
  }
}

Status ViewOperator::Open() {
  if (plan_.view == nullptr) {
    return Status::FailedPrecondition(
        "materialized view placeholder not injected");
  }
  return Status::OK();
}

Result<RowBatchPtr> ViewOperator::Next() {
  const auto& batches = plan_.view->batches();
  if (next_ >= batches.size()) return RowBatchPtr(nullptr);
  return batches[next_++];
}

}  // namespace pixels
