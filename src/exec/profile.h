// Per-operator execution profiles (EXPLAIN ANALYZE). When profiling is
// requested — `trace_level=full` on the coordinator, or an
// `EXPLAIN ANALYZE <select>` statement — every built operator is wrapped
// in a ProfilingOperator that counts rows/batches out and, for scan
// nodes, attributes the query's scanned bytes and chunk-cache traffic to
// the operator that caused them. The counters roll up into a plan-shaped
// text report attached to QueryRecord/StatusView.
//
// Attribution invariant: scan nodes measure deltas of the shared
// ExecContext counters around their own Open/Next calls. Pulls are
// serial from the root and a scan's morsel ParallelFor completes inside
// its Next (prefetch is advisory and never touches the counters), so
// per-operator `bytes_scanned` sums exactly to ExecContext::bytes_scanned.
//
// Counters are atomic so a future parallel driver stays safe; node
// creation is mutex-guarded in the arena.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace pixels {

/// Counters for one physical operator in the plan tree.
struct OperatorProfile {
  std::string name;  // e.g. "Scan(tpch.lineitem)", "HashJoin"
  OperatorProfile* parent = nullptr;
  std::vector<OperatorProfile*> children;  // creation order
  /// True for nodes that attribute I/O (scans, CF worker aggregates):
  /// their `bytes_scanned` partitions the context's total.
  bool measures_io = false;

  std::atomic<uint64_t> rows_out{0};
  std::atomic<uint64_t> batches_out{0};
  std::atomic<uint64_t> bytes_scanned{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  /// Runtime-filter work attributed to this node (scans only; all zero
  /// when no filter was published). `rf_skipped_bytes` counts billed
  /// bytes genuinely avoided by pruning whole row groups — it is NOT part
  /// of `bytes_scanned`, which keeps summing exactly to the context total.
  std::atomic<uint64_t> rf_probe_rows{0};
  std::atomic<uint64_t> rf_pruned_rows{0};
  std::atomic<uint64_t> rf_pruned_row_groups{0};
  std::atomic<uint64_t> rf_skipped_bytes{0};
  /// Cumulative wall time inside this operator's Open+Next (includes
  /// children — the usual EXPLAIN ANALYZE convention).
  std::atomic<uint64_t> wall_us{0};
};

/// Arena + report for one query's operator profiles. Node addresses are
/// stable for the life of the profile (deque arena), so operators on pool
/// threads can hold bare pointers.
class QueryProfile {
 public:
  /// Creates a node under `parent` (null = a root). Thread-safe.
  OperatorProfile* AddNode(const std::string& name, OperatorProfile* parent,
                           bool measures_io = false);

  /// Sum of `bytes_scanned` over every io-measuring node — by the
  /// attribution invariant, equal to ExecContext::bytes_scanned.
  uint64_t TotalBytesScanned() const;

  std::vector<const OperatorProfile*> Roots() const;
  size_t size() const;
  bool empty() const { return size() == 0; }

  /// Plan-shaped indented report, one line per operator:
  ///   HashAgg  rows=4 batches=1 wall_us=123
  ///     Scan(tpch.lineitem)  rows=6005 ... bytes_scanned=52114 cache_hits=3
  /// Row/byte counters are deterministic; wall_us is measured.
  std::string ToText() const;

 private:
  mutable std::mutex mutex_;
  std::deque<OperatorProfile> arena_;
};

/// Decorator counting rows/batches (and, for io-measuring nodes, deltas
/// of the context's scan counters) around the wrapped operator.
class ProfilingOperator : public Operator {
 public:
  ProfilingOperator(OperatorPtr child, OperatorProfile* node,
                    ExecContext* ctx)
      : child_(std::move(child)), node_(node), ctx_(ctx) {}

  Status Open() override;
  Result<RowBatchPtr> Next() override;
  /// Forwards the wrapped operator's selection-aware path so profiling
  /// never forces a gather; rows_out counts selected (logical) rows,
  /// identical to what Next() would have produced.
  Result<SelBatch> NextSel() override;
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  OperatorProfile* node_;
  ExecContext* ctx_;
};

}  // namespace pixels
