// Typed open-addressing hash tables for vectorized hash join and hash
// aggregation. The scalar seed paths serialize every group/join key into
// a std::string per row and look it up in a std::map /
// unordered_multimap; these tables instead key on batch-precomputed
// 64-bit hashes (exec/kernels.h HashKeyColumns) with columnar key
// storage and typed equality, so the hot loop never boxes a Value and
// never allocates per row.
//
// Key semantics replicate ValuesKey equality exactly: a key component is
// the (Value::Kind, payload) pair of ColumnVector::GetValue, so
// Int(1) != Double(1.0) != Bool(true) != String("1"), doubles compare
// bitwise (-0.0 != +0.0, NaN == NaN of the same bit pattern), and nulls
// equal each other (aggregation groups nulls; join builds must skip
// null keys before insertion, as the scalar path does).
//
// Layout: slots_ is a power-of-two linear-probing index of entry ids;
// per-entry hashes and key payloads live in dense side arrays (KeyStore:
// one kind byte + one 64-bit word per key column per entry, strings in a
// per-column pool). Growth doubles the slot array and reindexes from the
// stored hashes — keys are never rehashed or compared on growth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "format/batch.h"

namespace pixels {

/// Columnar storage for the distinct keys inserted into a table.
/// Each column stores a Value kind byte and a 64-bit payload word per
/// entry: integer kinds keep the value, doubles keep the bit pattern,
/// strings keep an index into a per-column string pool.
class KeyStore {
 public:
  explicit KeyStore(size_t num_cols) : cols_(num_cols) {}

  size_t num_rows() const { return rows_; }
  size_t num_cols() const { return cols_.size(); }

  void Reserve(size_t rows) {
    for (auto& c : cols_) {
      c.kind.reserve(rows);
      c.word.reserve(rows);
    }
  }

  /// Appends row `row` of the probe-side key columns as a new entry.
  void AppendRow(const std::vector<ColumnVectorPtr>& cols, uint32_t row);

  /// Typed equality of stored entry `entry` against row `row` of the
  /// probe-side key columns (ValuesKey semantics; null == null).
  bool RowEquals(size_t entry, const std::vector<ColumnVectorPtr>& cols,
                 uint32_t row) const;

  /// Reboxes one component of a stored key (emit path only).
  Value GetValue(size_t entry, size_t col) const;

 private:
  struct Col {
    std::vector<uint8_t> kind;   // Value::Kind per entry
    std::vector<uint64_t> word;  // payload bits / string pool index
    std::vector<std::string> strings;  // pool; only string entries push
  };
  std::vector<Col> cols_;
  size_t rows_ = 0;
};

/// Linear-probing table mapping hashed keys to dense entry ids
/// [0, num_entries) in first-insertion order. Backs both aggregation
/// groups and the distinct-key index of the join table.
class GroupTable {
 public:
  /// `load_factor` is clamped to [0.1, 0.95]; the slot array doubles
  /// whenever entries exceed capacity * load_factor.
  GroupTable(size_t num_key_cols, double load_factor);

  /// Pre-sizes the slot array for `expected` distinct keys so inserts up
  /// to that count never rehash (the pre-size satellite: join builds know
  /// their exact row count, parallel agg knows its input row count).
  void Reserve(size_t expected);

  /// Returns the entry id for the key at `cols[...][row]`, inserting a
  /// new entry when absent. `hash` must come from HashKeyColumns (or any
  /// function where equal keys hash equal).
  uint32_t FindOrInsert(uint64_t hash,
                        const std::vector<ColumnVectorPtr>& cols,
                        uint32_t row);

  /// Lookup without insertion; returns kNotFound when absent.
  uint32_t Find(uint64_t hash, const std::vector<ColumnVectorPtr>& cols,
                uint32_t row) const;

  static constexpr uint32_t kNotFound = 0xffffffffu;

  size_t num_entries() const { return keys_.num_rows(); }
  const KeyStore& keys() const { return keys_; }
  /// Slot-array rebuilds since construction (tests assert Reserve
  /// prevents rehash storms).
  size_t rehashes() const { return rehashes_; }

 private:
  void Grow(size_t min_capacity);

  KeyStore keys_;
  std::vector<uint64_t> entry_hash_;  // per entry, for reindex on growth
  std::vector<uint32_t> slots_;       // entry id or kNotFound (empty)
  size_t mask_ = 0;                   // slots_.size() - 1 (power of two)
  size_t max_entries_ = 0;            // grow threshold
  double load_factor_;
  size_t rehashes_ = 0;
};

/// Multimap flavor for the join build side: distinct keys in a
/// GroupTable, payloads chained per key in insertion order (batch-then-
/// row when driven that way, so contents are deterministic under the
/// partition-parallel build).
class JoinTable {
 public:
  JoinTable(size_t num_key_cols, double load_factor)
      : index_(num_key_cols, load_factor) {}

  /// Pre-size for `expected_rows` build rows (distinct keys <= rows).
  void Reserve(size_t expected_rows) {
    index_.Reserve(expected_rows);
    payloads_.reserve(expected_rows);
    next_.reserve(expected_rows);
  }

  /// Inserts a build row under the key at `cols[...][row]`. Callers skip
  /// null keys (nulls never join).
  void Insert(uint64_t hash, const std::vector<ColumnVectorPtr>& cols,
              uint32_t row, uint64_t payload);

  /// Appends the payloads of every build row whose key equals the probe
  /// row, in insertion order; returns how many matched.
  size_t Probe(uint64_t hash, const std::vector<ColumnVectorPtr>& cols,
               uint32_t row, std::vector<uint64_t>* out) const;

  size_t num_rows() const { return payloads_.size(); }
  size_t num_keys() const { return index_.num_entries(); }
  size_t rehashes() const { return index_.rehashes(); }

 private:
  GroupTable index_;
  std::vector<uint32_t> head_;  // per distinct key: first payload entry
  std::vector<uint32_t> tail_;  // per distinct key: last payload entry
  std::vector<uint32_t> next_;  // per payload entry: chain link
  std::vector<uint64_t> payloads_;
};

}  // namespace pixels
