// Runtime filters (paper §3.1 economics: bytes are the product): after a
// hash-join build completes it publishes a bloom filter + key range on
// the build keys; probe-side scans consult the hub and prune row groups
// (fewer billed bytes) and rows (smaller batches and partials) that
// cannot possibly join. Filters are conservative supersets — they may
// pass a non-matching key, never drop a matching one — so query results
// are byte-identical with filters on or off.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "format/type.h"

namespace pixels {

/// 64-bit mix (splitmix64 finalizer): turns key payloads into well-spread
/// hashes for the bloom probes.
inline uint64_t RfMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Kind-tagged hashes. Join-key equality is byte equality of the
/// serialized (kind, payload) pair, so hashing the same pair on both
/// sides guarantees no false negatives: equal keys always hash equal.
inline uint64_t RfHashInt(int64_t v) {
  return RfMix64(static_cast<uint64_t>(v) ^ 0x01ULL << 56);
}
inline uint64_t RfHashDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return RfMix64(bits ^ 0x02ULL << 56);
}
inline uint64_t RfHashString(std::string_view s) {
  uint64_t h = 0x03ULL << 56;  // FNV-1a body, mixed at the end
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return RfMix64(h);
}
inline uint64_t RfHashBool(bool v) {
  return RfMix64((v ? 1ULL : 0ULL) ^ 0x04ULL << 56);
}

/// Hashes a non-null scalar by kind (dispatch once per value; the typed
/// kernels hash whole payload arrays without building Values).
inline uint64_t RfHashValue(const Value& v) {
  switch (v.kind) {
    case Value::Kind::kDouble: return RfHashDouble(v.d);
    case Value::Kind::kString: return RfHashString(v.s);
    case Value::Kind::kBool: return RfHashBool(v.i != 0);
    default: return RfHashInt(v.i);
  }
}

/// Split-block-free classic bloom filter, double hashing with k probes.
/// Built single-threaded by the join build; safe for concurrent probes
/// once published (readers see it only through the hub's mutex, which
/// orders the build's writes before any probe).
class BloomFilter {
 public:
  BloomFilter(size_t expected_keys, int bits_per_key);

  void Add(uint64_t hash);
  bool MayContain(uint64_t hash) const;

  size_t num_bits() const { return words_.size() * 64; }

 private:
  int num_probes_;
  std::vector<uint64_t> words_;
};

/// What a completed join build publishes for one annotated join.
struct RuntimeFilter {
  explicit RuntimeFilter(size_t expected_keys, int bits_per_key)
      : bloom(expected_keys, bits_per_key) {}

  BloomFilter bloom;
  /// Distinct-insensitive count of non-null build keys. 0 means the build
  /// side was empty: an inner-join probe can skip every row group.
  uint64_t key_count = 0;
  /// Min/max build key for zone-map row-group pruning (numeric or string;
  /// unset when the build had no non-null keys).
  bool has_range = false;
  Value min_key;
  Value max_key;
};

using RuntimeFilterPtr = std::shared_ptr<const RuntimeFilter>;

/// Per-query registry keyed by the optimizer-assigned filter id. Joins
/// publish, scans poll. A scan that finds no filter (not yet published,
/// or the join skipped publishing) simply reads everything — filters are
/// a pure optimization, never a correctness dependency.
class RuntimeFilterHub {
 public:
  void Publish(int id, RuntimeFilterPtr filter) {
    std::lock_guard<std::mutex> lock(mutex_);
    filters_[id] = std::move(filter);
  }

  RuntimeFilterPtr Get(int id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = filters_.find(id);
    return it == filters_.end() ? nullptr : it->second;
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<int, RuntimeFilterPtr> filters_;
};

}  // namespace pixels
