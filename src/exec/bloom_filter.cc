#include "exec/bloom_filter.h"

namespace pixels {

BloomFilter::BloomFilter(size_t expected_keys, int bits_per_key) {
  if (bits_per_key < 1) bits_per_key = 1;
  if (expected_keys < 1) expected_keys = 1;
  size_t bits = expected_keys * static_cast<size_t>(bits_per_key);
  words_.assign((bits + 63) / 64, 0);
  // k ≈ bits_per_key * ln 2, clamped to a sane range.
  num_probes_ = static_cast<int>(bits_per_key * 0.69);
  if (num_probes_ < 1) num_probes_ = 1;
  if (num_probes_ > 8) num_probes_ = 8;
}

void BloomFilter::Add(uint64_t hash) {
  const uint64_t delta = (hash >> 17) | (hash << 47);  // double hashing
  const size_t bits = num_bits();
  for (int i = 0; i < num_probes_; ++i) {
    const size_t bit = hash % bits;
    words_[bit >> 6] |= 1ULL << (bit & 63);
    hash += delta;
  }
}

bool BloomFilter::MayContain(uint64_t hash) const {
  const uint64_t delta = (hash >> 17) | (hash << 47);
  const size_t bits = num_bits();
  for (int i = 0; i < num_probes_; ++i) {
    const size_t bit = hash % bits;
    if ((words_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
    hash += delta;
  }
  return true;
}

}  // namespace pixels
