#include "exec/expression.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace pixels {

bool LikeMatch(const std::string& text, const std::string& pattern) {
  size_t t = 0, p = 0, star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

std::string ToLower(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string ToUpper(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

Result<Value> EvalFunction(const Expr& e, const RowBatch& batch, size_t row) {
  // Aggregates must have been rewritten away by the binder.
  if (IsAggregateFunction(e.name)) {
    return Status::Internal("aggregate '" + e.name +
                            "' reached scalar evaluation");
  }
  std::vector<Value> args;
  args.reserve(e.args.size());
  for (const auto& a : e.args) {
    PIXELS_ASSIGN_OR_RETURN(Value v, EvaluateExprRow(*a, batch, row));
    args.push_back(std::move(v));
  }
  auto need_args = [&](size_t lo, size_t hi) -> Status {
    if (args.size() < lo || args.size() > hi) {
      return Status::InvalidArgument("function " + e.name +
                                     ": wrong argument count");
    }
    return Status::OK();
  };

  if (e.name == "coalesce") {
    for (auto& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  // All remaining functions are null-propagating.
  for (const auto& v : args) {
    if (v.is_null()) return Value::Null();
  }

  if (e.name == "abs") {
    PIXELS_RETURN_NOT_OK(need_args(1, 1));
    if (args[0].kind == Value::Kind::kDouble) {
      return Value::Double(std::fabs(args[0].d));
    }
    return Value::Int(args[0].i < 0 ? -args[0].i : args[0].i);
  }
  if (e.name == "round") {
    PIXELS_RETURN_NOT_OK(need_args(1, 2));
    double scale = args.size() == 2 ? std::pow(10.0, args[1].AsDouble()) : 1.0;
    return Value::Double(std::round(args[0].AsDouble() * scale) / scale);
  }
  if (e.name == "floor") {
    PIXELS_RETURN_NOT_OK(need_args(1, 1));
    return Value::Double(std::floor(args[0].AsDouble()));
  }
  if (e.name == "ceil" || e.name == "ceiling") {
    PIXELS_RETURN_NOT_OK(need_args(1, 1));
    return Value::Double(std::ceil(args[0].AsDouble()));
  }
  if (e.name == "sqrt") {
    PIXELS_RETURN_NOT_OK(need_args(1, 1));
    if (args[0].AsDouble() < 0) return Value::Null();
    return Value::Double(std::sqrt(args[0].AsDouble()));
  }
  if (e.name == "length") {
    PIXELS_RETURN_NOT_OK(need_args(1, 1));
    if (args[0].kind != Value::Kind::kString) {
      return Status::TypeError("length() requires a string");
    }
    return Value::Int(static_cast<int64_t>(args[0].s.size()));
  }
  if (e.name == "lower") {
    PIXELS_RETURN_NOT_OK(need_args(1, 1));
    return Value::String(ToLower(args[0].s));
  }
  if (e.name == "upper") {
    PIXELS_RETURN_NOT_OK(need_args(1, 1));
    return Value::String(ToUpper(args[0].s));
  }
  if (e.name == "substr" || e.name == "substring") {
    PIXELS_RETURN_NOT_OK(need_args(2, 3));
    if (args[0].kind != Value::Kind::kString) {
      return Status::TypeError("substr() requires a string");
    }
    const std::string& s = args[0].s;
    int64_t start = args[1].AsInt();  // 1-based
    if (start < 1) start = 1;
    if (static_cast<size_t>(start) > s.size()) return Value::String("");
    size_t pos = static_cast<size_t>(start - 1);
    size_t len = args.size() == 3
                     ? static_cast<size_t>(std::max<int64_t>(args[2].AsInt(), 0))
                     : std::string::npos;
    return Value::String(s.substr(pos, len));
  }
  if (e.name == "concat") {
    std::string out;
    for (const auto& v : args) {
      out += v.kind == Value::Kind::kString ? v.s : v.ToString();
    }
    return Value::String(std::move(out));
  }
  if (e.name == "year" || e.name == "month" || e.name == "day") {
    PIXELS_RETURN_NOT_OK(need_args(1, 1));
    // Interprets the int payload as days since epoch.
    std::string date = FormatDate(static_cast<int32_t>(args[0].AsInt()));
    if (e.name == "year") return Value::Int(std::stoll(date.substr(0, 4)));
    if (e.name == "month") return Value::Int(std::stoll(date.substr(5, 2)));
    return Value::Int(std::stoll(date.substr(8, 2)));
  }
  if (e.name == "cast_int" || e.name == "cast_integer" ||
      e.name == "cast_bigint") {
    PIXELS_RETURN_NOT_OK(need_args(1, 1));
    if (args[0].kind == Value::Kind::kString) {
      char* end = nullptr;
      long long v = std::strtoll(args[0].s.c_str(), &end, 10);
      if (end == args[0].s.c_str()) return Value::Null();
      return Value::Int(v);
    }
    return Value::Int(args[0].AsInt());
  }
  if (e.name == "cast_double") {
    PIXELS_RETURN_NOT_OK(need_args(1, 1));
    if (args[0].kind == Value::Kind::kString) {
      char* end = nullptr;
      double v = std::strtod(args[0].s.c_str(), &end);
      if (end == args[0].s.c_str()) return Value::Null();
      return Value::Double(v);
    }
    return Value::Double(args[0].AsDouble());
  }
  if (e.name == "cast_varchar" || e.name == "cast_string") {
    PIXELS_RETURN_NOT_OK(need_args(1, 1));
    if (args[0].kind == Value::Kind::kString) return args[0];
    return Value::String(args[0].ToString());
  }
  return Status::NotImplemented("unknown function: " + e.name);
}

}  // namespace

Result<Value> EvaluateExprRow(const Expr& e, const RowBatch& batch, size_t row) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kColumnRef: {
      int idx = batch.FindColumn(e.QualifiedName());
      if (idx < 0) {
        return Status::InvalidArgument("column not found at execution: " +
                                       e.QualifiedName());
      }
      return batch.column(static_cast<size_t>(idx))->GetValue(row);
    }
    case Expr::Kind::kStar:
      return Status::Internal("bare * reached evaluation");
    case Expr::Kind::kUnary: {
      PIXELS_ASSIGN_OR_RETURN(Value v, EvaluateExprRow(*e.args[0], batch, row));
      if (v.is_null()) return Value::Null();
      if (e.op == "NOT") return Value::Bool(!v.AsBool());
      if (e.op == "-") {
        if (v.kind == Value::Kind::kDouble) return Value::Double(-v.d);
        return Value::Int(-v.i);
      }
      return Status::NotImplemented("unary op " + e.op);
    }
    case Expr::Kind::kBinary: {
      if (e.op == "AND") {
        PIXELS_ASSIGN_OR_RETURN(Value a, EvaluateExprRow(*e.args[0], batch, row));
        if (!a.is_null() && !a.AsBool()) return Value::Bool(false);
        PIXELS_ASSIGN_OR_RETURN(Value b, EvaluateExprRow(*e.args[1], batch, row));
        if (!b.is_null() && !b.AsBool()) return Value::Bool(false);
        if (a.is_null() || b.is_null()) return Value::Null();
        return Value::Bool(true);
      }
      if (e.op == "OR") {
        PIXELS_ASSIGN_OR_RETURN(Value a, EvaluateExprRow(*e.args[0], batch, row));
        if (!a.is_null() && a.AsBool()) return Value::Bool(true);
        PIXELS_ASSIGN_OR_RETURN(Value b, EvaluateExprRow(*e.args[1], batch, row));
        if (!b.is_null() && b.AsBool()) return Value::Bool(true);
        if (a.is_null() || b.is_null()) return Value::Null();
        return Value::Bool(false);
      }
      PIXELS_ASSIGN_OR_RETURN(Value a, EvaluateExprRow(*e.args[0], batch, row));
      PIXELS_ASSIGN_OR_RETURN(Value b, EvaluateExprRow(*e.args[1], batch, row));
      if (a.is_null() || b.is_null()) return Value::Null();
      if (e.op == "=") return Value::Bool(a.Compare(b) == 0);
      if (e.op == "<>") return Value::Bool(a.Compare(b) != 0);
      if (e.op == "<") return Value::Bool(a.Compare(b) < 0);
      if (e.op == "<=") return Value::Bool(a.Compare(b) <= 0);
      if (e.op == ">") return Value::Bool(a.Compare(b) > 0);
      if (e.op == ">=") return Value::Bool(a.Compare(b) >= 0);
      if (e.op == "LIKE") {
        if (a.kind != Value::Kind::kString || b.kind != Value::Kind::kString) {
          return Status::TypeError("LIKE requires strings");
        }
        return Value::Bool(LikeMatch(a.s, b.s));
      }
      if (e.op == "||") {
        std::string lhs = a.kind == Value::Kind::kString ? a.s : a.ToString();
        std::string rhs = b.kind == Value::Kind::kString ? b.s : b.ToString();
        return Value::String(lhs + rhs);
      }
      const bool dbl =
          a.kind == Value::Kind::kDouble || b.kind == Value::Kind::kDouble;
      if (e.op == "+") {
        return dbl ? Value::Double(a.AsDouble() + b.AsDouble())
                   : Value::Int(a.i + b.i);
      }
      if (e.op == "-") {
        return dbl ? Value::Double(a.AsDouble() - b.AsDouble())
                   : Value::Int(a.i - b.i);
      }
      if (e.op == "*") {
        return dbl ? Value::Double(a.AsDouble() * b.AsDouble())
                   : Value::Int(a.i * b.i);
      }
      if (e.op == "/") {
        if (dbl) {
          if (b.AsDouble() == 0) return Value::Null();
          return Value::Double(a.AsDouble() / b.AsDouble());
        }
        if (b.i == 0) return Value::Null();
        return Value::Int(a.i / b.i);
      }
      if (e.op == "%") {
        if (b.AsInt() == 0) return Value::Null();
        return Value::Int(a.AsInt() % b.AsInt());
      }
      return Status::NotImplemented("binary op " + e.op);
    }
    case Expr::Kind::kFunction:
      return EvalFunction(e, batch, row);
    case Expr::Kind::kBetween: {
      PIXELS_ASSIGN_OR_RETURN(Value v, EvaluateExprRow(*e.args[0], batch, row));
      PIXELS_ASSIGN_OR_RETURN(Value lo, EvaluateExprRow(*e.args[1], batch, row));
      PIXELS_ASSIGN_OR_RETURN(Value hi, EvaluateExprRow(*e.args[2], batch, row));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      bool in = v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
      return Value::Bool(e.negated ? !in : in);
    }
    case Expr::Kind::kInList: {
      PIXELS_ASSIGN_OR_RETURN(Value v, EvaluateExprRow(*e.args[0], batch, row));
      if (v.is_null()) return Value::Null();
      bool found = false;
      for (size_t i = 1; i < e.args.size() && !found; ++i) {
        PIXELS_ASSIGN_OR_RETURN(Value item,
                                EvaluateExprRow(*e.args[i], batch, row));
        found = !item.is_null() && v.Compare(item) == 0;
      }
      return Value::Bool(e.negated ? !found : found);
    }
    case Expr::Kind::kIsNull: {
      PIXELS_ASSIGN_OR_RETURN(Value v, EvaluateExprRow(*e.args[0], batch, row));
      return Value::Bool(e.negated ? !v.is_null() : v.is_null());
    }
    case Expr::Kind::kCase: {
      size_t pairs = (e.args.size() - (e.has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        PIXELS_ASSIGN_OR_RETURN(Value cond,
                                EvaluateExprRow(*e.args[2 * i], batch, row));
        if (!cond.is_null() && cond.AsBool()) {
          return EvaluateExprRow(*e.args[2 * i + 1], batch, row);
        }
      }
      if (e.has_else) return EvaluateExprRow(*e.args.back(), batch, row);
      return Value::Null();
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<ColumnVectorPtr> BuildVectorFromValues(const std::vector<Value>& values) {
  TypeId type = TypeId::kInt64;
  bool saw_string = false, saw_double = false, saw_numeric = false;
  for (const auto& v : values) {
    if (v.is_null()) continue;
    if (v.kind == Value::Kind::kString) {
      saw_string = true;
    } else {
      saw_numeric = true;
      if (v.kind == Value::Kind::kDouble) saw_double = true;
    }
  }
  if (saw_string && saw_numeric) {
    return Status::TypeError("expression produced mixed string/numeric values");
  }
  if (saw_string) {
    type = TypeId::kString;
  } else if (saw_double) {
    type = TypeId::kDouble;
  }
  auto col = MakeVector(type);
  col->Reserve(values.size());
  for (const auto& v : values) {
    PIXELS_RETURN_NOT_OK(col->AppendValue(v));
  }
  return col;
}

Result<ColumnVectorPtr> EvaluateExpr(const Expr& expr, const RowBatch& batch) {
  // Fast path: direct column reference copies the vector.
  if (expr.kind == Expr::Kind::kColumnRef) {
    int idx = batch.FindColumn(expr.QualifiedName());
    if (idx < 0) {
      return Status::InvalidArgument("column not found at execution: " +
                                     expr.QualifiedName());
    }
    return batch.column(static_cast<size_t>(idx));
  }
  const size_t n = batch.num_rows();
  std::vector<Value> values;
  values.reserve(n);
  for (size_t row = 0; row < n; ++row) {
    PIXELS_ASSIGN_OR_RETURN(Value v, EvaluateExprRow(expr, batch, row));
    values.push_back(std::move(v));
  }
  return BuildVectorFromValues(values);
}

}  // namespace pixels
