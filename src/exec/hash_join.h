// Hash join (equi-keys extracted from the condition) with nested-loop
// fallback for non-equi and cross joins. Inner and left-outer supported.
#pragma once

#include <unordered_map>

#include "exec/operator.h"
#include "plan/logical_plan.h"

namespace pixels {

/// Joins children[0] (probe/left) with children[1] (build/right).
class HashJoinOperator : public Operator {
 public:
  HashJoinOperator(OperatorPtr left, OperatorPtr right,
                   const LogicalPlan& plan)
      : left_(std::move(left)), right_(std::move(right)), plan_(plan) {}

  Status Open() override;
  Result<RowBatchPtr> Next() override;
  void Close() override;

 private:
  struct BuildRow {
    size_t batch_index;
    uint32_t row;
  };

  Status BuildSide();
  Status ExtractKeys(const RowBatch& left_sample, const RowBatch& right_sample);

  OperatorPtr left_;
  OperatorPtr right_;
  const LogicalPlan& plan_;

  std::vector<RowBatchPtr> build_batches_;
  std::unordered_multimap<std::string, BuildRow> hash_table_;
  bool keys_extracted_ = false;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  ExprPtr residual_;  // non-equi parts of the condition (may be null)
  bool use_hash_ = false;
  std::vector<std::string> right_names_;  // output columns of build side
  std::vector<TypeId> right_types_;
};

}  // namespace pixels
