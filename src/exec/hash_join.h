// Hash join (equi-keys extracted from the condition) with nested-loop
// fallback for non-equi and cross joins. Inner and left-outer supported.
#pragma once

#include <unordered_map>

#include "exec/hash_table.h"
#include "exec/operator.h"
#include "plan/logical_plan.h"

namespace pixels {

/// Joins children[0] (probe/left) with children[1] (build/right).
///
/// The build side is partitioned by key hash: key expressions are
/// evaluated batch-parallel, then each of the P partitions builds its own
/// table in parallel (P = the query's parallelism degree). Insertion
/// order within a partition is batch-then-row order regardless of thread
/// scheduling, so results are deterministic; P = 1 reproduces the serial
/// single-table build exactly.
///
/// With `ExecContext::vectorized_hash` (the default) the build rows go
/// into typed open-addressing tables (exec/hash_table.h) keyed on batch-
/// precomputed hashes, pre-sized from the exact build row count, and the
/// probe iterates the child's selection vector directly — no Value
/// boxing, key serialization, or post-Filter gather on either side. The
/// scalar path remains for equivalence tests; both emit the same rows
/// (the order of duplicate build-key matches within a probe row is
/// insertion order in the typed table, unspecified in the scalar one).
class HashJoinOperator : public Operator {
 public:
  HashJoinOperator(OperatorPtr left, OperatorPtr right,
                   const LogicalPlan& plan, ExecContext* ctx)
      : left_(std::move(left)),
        right_(std::move(right)),
        plan_(plan),
        ctx_(ctx) {}

  Status Open() override;
  Result<RowBatchPtr> Next() override;
  void Close() override;

 private:
  struct BuildRow {
    size_t batch_index;
    uint32_t row;
  };

  Status BuildSide();
  /// Typed build: per-batch key hashes, then partition-parallel inserts
  /// into JoinTables in batch-then-row order. Payload = batch << 32 | row.
  Status BuildSideTyped(int par, ThreadPool* pool);
  /// Typed probe loop (selection-aware); tail shared via CombineAndFilter.
  Result<RowBatchPtr> NextTyped();
  /// Gathers matched probe rows, appends build columns, and applies the
  /// residual condition. Returns null when every pair was filtered out
  /// (caller pulls the next probe batch).
  Result<RowBatchPtr> CombineAndFilter(
      const RowBatchPtr& probe, const std::vector<uint32_t>& probe_sel,
      const std::vector<ColumnVectorPtr>& build_out);
  Status ExtractKeys(const RowBatch& left_sample, const RowBatch& right_sample);
  /// After the hash build, publish a bloom + min/max filter on the
  /// annotated build key (plan_.rf_id) so probe-side scans can prune rows
  /// and whole row groups. No-op when the annotation is absent, the key
  /// is not a simple column, or runtime filters are disabled.
  Status PublishRuntimeFilter();

  OperatorPtr left_;
  OperatorPtr right_;
  const LogicalPlan& plan_;
  ExecContext* ctx_;

  std::vector<RowBatchPtr> build_batches_;
  /// Hash table partitioned by std::hash(key) % hash_parts_.size().
  std::vector<std::unordered_multimap<std::string, BuildRow>> hash_parts_;
  /// Typed tables (vectorized_hash), partitioned by hash % size.
  std::vector<JoinTable> typed_parts_;
  bool typed_build_ = false;
  /// Probe keys may be evaluated over deselected rows (total exprs).
  bool probe_safe_ = true;
  bool keys_extracted_ = false;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  ExprPtr residual_;  // non-equi parts of the condition (may be null)
  bool use_hash_ = false;
  std::vector<std::string> right_names_;  // output columns of build side
  std::vector<TypeId> right_types_;
};

}  // namespace pixels
