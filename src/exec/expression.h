// Expression evaluation over row batches. Supports the full AST: scalar
// arithmetic/comparison/logic, LIKE, BETWEEN, IN, IS NULL, CASE, string
// and date scalar functions, and CAST.
#pragma once

#include "common/result.h"
#include "format/batch.h"
#include "sql/ast.h"

namespace pixels {

/// Evaluates `expr` against every row of `batch`, returning a vector of
/// the same length. Column references resolve by qualified name with the
/// batch's relaxed matching rules.
Result<ColumnVectorPtr> EvaluateExpr(const Expr& expr, const RowBatch& batch);

/// Evaluates `expr` for a single row.
Result<Value> EvaluateExprRow(const Expr& expr, const RowBatch& batch,
                              size_t row);

/// SQL LIKE with % and _ wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

/// Builds a typed vector from scalar values: strings force kString, any
/// double forces kDouble, otherwise kInt64 (all-null defaults to kInt64).
Result<ColumnVectorPtr> BuildVectorFromValues(const std::vector<Value>& values);

}  // namespace pixels
