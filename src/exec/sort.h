// Full-materialization sort operator (ORDER BY).
#pragma once

#include "exec/operator.h"
#include "plan/logical_plan.h"

namespace pixels {

/// Materializes the child stream, sorts rows by the plan's order keys
/// (nulls first on ASC, last on DESC; stable), and emits one batch.
class SortOperator : public Operator {
 public:
  SortOperator(OperatorPtr child, const LogicalPlan& plan)
      : child_(std::move(child)), plan_(plan) {}

  Status Open() override;
  Result<RowBatchPtr> Next() override;
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  const LogicalPlan& plan_;
  RowBatchPtr sorted_;
  bool emitted_ = false;
};

}  // namespace pixels
