// Pull-based (Volcano-style, vectorized) physical operator interface.
#pragma once

#include <atomic>
#include <memory>

#include "catalog/catalog.h"
#include "common/thread_pool.h"
#include "exec/bloom_filter.h"
#include "format/batch.h"
#include "storage/buffer_cache.h"

namespace pixels {

class MvStore;
class Tracer;
class QueryProfile;
struct OperatorProfile;

/// Shared execution state: catalog access, the query's parallelism policy,
/// and scan accounting that feeds billing ($/TB-scan) and the benches.
/// Scan counters are atomic so concurrent morsels and CF workers can bill
/// into one context without losing updates.
struct ExecContext {
  Catalog* catalog = nullptr;
  /// Encoded bytes fetched from storage by scans in this query.
  std::atomic<uint64_t> bytes_scanned{0};
  /// Rows produced by scans (post zone-map pruning, pre filtering).
  std::atomic<uint64_t> rows_scanned{0};
  /// Degree of intra-query parallelism: 0 = DefaultParallelism(),
  /// 1 = fully serial (deterministic single-thread execution).
  int parallelism = 0;
  /// Pool to run on; null = the process-wide ThreadPool::Shared().
  ThreadPool* pool = nullptr;
  /// I/O policy for scans: coalescing gap, shared chunk cache, footer
  /// cache, prefetch depth. Caching never changes `bytes_scanned` — a
  /// chunk served warm bills exactly like one fetched cold.
  IoOptions io;
  /// Chunk reads served from / missed in the shared buffer cache.
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  /// Materialized-view store consulted by `ExecuteQuery` for full-query
  /// reuse (null disables MV reuse). Unlike the chunk cache, a hit here
  /// skips the scan entirely, so `bytes_scanned` stays 0 and the query
  /// server bills the saved bytes at the reuse discount instead.
  MvStore* mv_store = nullptr;
  /// MV reuse audit counters (flow into coordinator/server metrics).
  std::atomic<uint64_t> mv_hits{0};
  std::atomic<uint64_t> mv_saved_bytes{0};

  /// Vectorization / runtime-filter knobs. Both paths are superset-safe:
  /// results are byte-identical with them on or off.
  /// Evaluate pushed-down predicates on encoded chunks (dictionary codes,
  /// RLE runs) and materialize only selected rows. Billing is unchanged:
  /// the same chunks are fetched either way.
  bool fused_decode = true;
  /// Join-build bloom/range filters pushed into probe-side scans. Range
  /// pruning skips whole row groups — genuinely fewer billed bytes, which
  /// is the point (the deltas are audited via rf_skipped_bytes).
  bool runtime_filters = true;
  /// Bloom filter size per distinct-insensitive build key.
  int rf_bloom_bits_per_key = 8;
  /// Typed open-addressing hash tables + batch hash kernels for hash
  /// join and aggregation (exec/hash_table.h). The scalar Value-boxed
  /// path is retained for equivalence tests and benches; results,
  /// bills, and bytes_scanned are byte-identical on or off.
  bool vectorized_hash = true;
  /// Maximum load factor of the join/agg hash tables (clamped to
  /// [0.1, 0.95]; lower = fewer probe steps, more slot memory).
  double hash_table_load_factor = 0.7;
  /// Per-query registry: joins publish filters after build, scans poll.
  RuntimeFilterHub rf_hub;
  /// Runtime-filter audit counters. Row counters cover bloom probes on
  /// decoded batches; the row-group/byte counters cover zone-map pruning
  /// from the published key range (bytes that were never fetched).
  std::atomic<uint64_t> rf_probe_rows{0};
  std::atomic<uint64_t> rf_pruned_rows{0};
  std::atomic<uint64_t> rf_pruned_row_groups{0};
  std::atomic<uint64_t> rf_skipped_bytes{0};

  /// Observability (all null/0 = off, the default; billing-exactness
  /// paths are untouched when off). `tracer` + `trace_parent` parent the
  /// executor's plan/MV-lookup spans; `profile` switches BuildOperator to
  /// wrapping every node in a ProfilingOperator (EXPLAIN ANALYZE), with
  /// `profile_parent` as the recursive build cursor.
  Tracer* tracer = nullptr;
  uint64_t trace_parent = 0;
  QueryProfile* profile = nullptr;
  OperatorProfile* profile_parent = nullptr;

  int EffectiveParallelism() const {
    return parallelism > 0 ? parallelism : DefaultParallelism();
  }
  ThreadPool* EffectivePool() const {
    return pool != nullptr ? pool : ThreadPool::Shared();
  }
};

/// A batch plus an optional selection vector: when `sel` is non-null,
/// only the listed rows (ascending) are logically present. Filter
/// produces these without gathering; selection-aware consumers (Project,
/// HashAgg consume, HashJoin probe) iterate `sel` directly, and
/// everything else materializes at the seam via `Materialize()`.
struct SelBatch {
  RowBatchPtr batch;                     // null = end of stream
  std::shared_ptr<SelectionVector> sel;  // null = every row selected

  size_t num_selected() const {
    if (batch == nullptr) return 0;
    return sel != nullptr ? sel->size() : batch->num_rows();
  }

  /// Gathers the selected rows into a plain batch (zero-copy when
  /// everything is selected or at end of stream).
  RowBatchPtr Materialize() const {
    if (batch == nullptr || sel == nullptr) return batch;
    if (sel->size() == batch->num_rows()) return batch;
    return batch->Gather(*sel);
  }
};

/// A physical operator producing a stream of row batches.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator (recursively opens children).
  virtual Status Open() = 0;

  /// Produces the next batch, or nullptr at end of stream.
  virtual Result<RowBatchPtr> Next() = 0;

  /// Produces the next batch together with an optional selection vector.
  /// Selection-aware producers override this to skip the gather; the
  /// default wraps Next() with an all-rows selection. End of stream is a
  /// null batch, exactly like Next().
  virtual Result<SelBatch> NextSel() {
    Result<RowBatchPtr> batch = Next();
    if (!batch.ok()) return batch.status();
    return SelBatch{std::move(*batch), nullptr};
  }

  /// Releases resources.
  virtual void Close() {}
};

using OperatorPtr = std::unique_ptr<Operator>;

}  // namespace pixels
