// Pull-based (Volcano-style, vectorized) physical operator interface.
#pragma once

#include <memory>

#include "catalog/catalog.h"
#include "format/batch.h"

namespace pixels {

/// Shared execution state: catalog access plus scan accounting that feeds
/// billing ($/TB-scan) and the benches.
struct ExecContext {
  Catalog* catalog = nullptr;
  /// Encoded bytes fetched from storage by scans in this query.
  uint64_t bytes_scanned = 0;
  /// Rows produced by scans (post zone-map pruning, pre filtering).
  uint64_t rows_scanned = 0;
};

/// A physical operator producing a stream of row batches.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator (recursively opens children).
  virtual Status Open() = 0;

  /// Produces the next batch, or nullptr at end of stream.
  virtual Result<RowBatchPtr> Next() = 0;

  /// Releases resources.
  virtual void Close() {}
};

using OperatorPtr = std::unique_ptr<Operator>;

}  // namespace pixels
