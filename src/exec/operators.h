// Basic physical operators: scan, filter, project, limit, distinct, and
// materialized-view iteration. Join / aggregate / sort live in their own
// translation units.
#pragma once

#include <condition_variable>
#include <mutex>
#include <set>

#include "exec/kernels.h"
#include "exec/operator.h"
#include "plan/logical_plan.h"

namespace pixels {

/// Scans a base table through the Pixels readers: projection + zone-map
/// pruning, output columns qualified with the scan alias.
///
/// Morsel-driven: Open() only opens file footers and prunes row groups;
/// each surviving row group is one morsel, decoded on demand from Next().
/// At parallelism 1 exactly one morsel is resident at a time (no O(table)
/// buffering); at parallelism N a sliding window of morsels is decoded
/// concurrently on the pool, preserving serial batch order and billing.
class ScanOperator : public Operator {
 public:
  ScanOperator(const LogicalPlan& scan, ExecContext* ctx)
      : plan_(scan), ctx_(ctx) {}

  Status Open() override;
  Result<RowBatchPtr> Next() override;
  void Close() override;

 private:
  /// One unit of scan work: a surviving row group of one file.
  struct Morsel {
    size_t reader_index;
    size_t row_group;
  };

  /// A runtime filter the hub had published when this scan started
  /// decoding; resolved once at the first RefillWindow and frozen so
  /// serial and parallel runs see the same filters.
  struct ResolvedFilter {
    RuntimeFilterPtr filter;
    std::string column;            // bare column name (zone maps)
    std::string qualified_column;  // name in decoded batches
  };

  Result<RowBatchPtr> DecodeMorsel(const Morsel& morsel, ScanStats* stats) const;
  Status RefillWindow();
  /// Polls the hub for published runtime filters and prunes pending
  /// morsels via zone maps on the filters' key ranges, crediting
  /// rf_pruned_row_groups / rf_skipped_bytes for work avoided.
  void ResolveRuntimeFilters();
  /// Warms the chunk cache for morsels [begin, begin + count) on the pool
  /// while the current window decodes. At most one prefetch in flight;
  /// advisory only (errors surface when the morsel is actually decoded).
  void LaunchPrefetch(size_t begin, size_t count);
  void WaitPrefetch();

  const LogicalPlan& plan_;
  ExecContext* ctx_;
  std::string qualifier_;
  std::vector<std::string> columns_;
  std::vector<std::unique_ptr<PixelsReader>> readers_;
  std::vector<Morsel> morsels_;
  size_t next_morsel_ = 0;
  bool rf_resolved_ = false;
  std::vector<ResolvedFilter> resolved_rfs_;
  std::vector<RowBatchPtr> window_;  // decoded, not yet emitted
  size_t window_pos_ = 0;
  std::mutex prefetch_mu_;
  std::condition_variable prefetch_cv_;
  bool prefetch_inflight_ = false;
};

/// Emits only rows whose predicate evaluates to true (SQL semantics:
/// null is not true). The predicate is compiled once at Open into a
/// kernel program (typed flat loops over payload arrays); conjuncts the
/// compiler cannot lower fall back to the scalar evaluator per row.
class FilterOperator : public Operator {
 public:
  FilterOperator(OperatorPtr child, const Expr& predicate)
      : child_(std::move(child)), predicate_(predicate) {}

  Status Open() override;
  Result<RowBatchPtr> Next() override;
  /// Selection-aware path: hands the child's batch through untouched
  /// with a refined selection vector, so downstream selection-aware
  /// consumers never pay the gather.
  Result<SelBatch> NextSel() override;
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  const Expr& predicate_;
  CompiledPredicate compiled_;
};

/// Computes one output column per expression.
class ProjectOperator : public Operator {
 public:
  ProjectOperator(OperatorPtr child, const std::vector<ExprPtr>& exprs,
                  const std::vector<std::string>& names)
      : child_(std::move(child)), exprs_(exprs), names_(names) {}

  Status Open() override;
  Result<RowBatchPtr> Next() override;
  /// Selection-aware path: when every expression is total (cannot error
  /// on a deselected row) and the selection is not too sparse, projects
  /// the full batch and forwards the selection; otherwise gathers first.
  Result<SelBatch> NextSel() override;
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  const std::vector<ExprPtr>& exprs_;
  const std::vector<std::string>& names_;
  bool selvec_safe_ = false;
};

/// Truncates the stream after n rows.
class LimitOperator : public Operator {
 public:
  LimitOperator(OperatorPtr child, int64_t limit)
      : child_(std::move(child)), remaining_(limit) {}

  Status Open() override { return child_->Open(); }
  Result<RowBatchPtr> Next() override;
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  int64_t remaining_;
};

/// Streaming duplicate elimination over all columns.
class DistinctOperator : public Operator {
 public:
  explicit DistinctOperator(OperatorPtr child) : child_(std::move(child)) {}

  Status Open() override { return child_->Open(); }
  Result<RowBatchPtr> Next() override;
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  std::set<std::string> seen_;
};

/// Iterates a materialized table (CF sub-plan result or inline view).
class ViewOperator : public Operator {
 public:
  explicit ViewOperator(const LogicalPlan& view) : plan_(view) {}

  Status Open() override;
  Result<RowBatchPtr> Next() override;

 private:
  const LogicalPlan& plan_;
  size_t next_ = 0;
};

/// Serializes row `row` of `batch` into a collision-free key (used by
/// distinct, COUNT(DISTINCT) state, and the scalar join/agg paths).
/// Each component is length-prefixed so no concatenation of components
/// can collide with a different split of the same bytes.
std::string RowKey(const RowBatch& batch, size_t row,
                   const std::vector<int>& columns);

/// Serializes a list of Values into a collision-free key (same
/// per-component length-prefixed framing as RowKey).
std::string ValuesKey(const std::vector<Value>& values);

}  // namespace pixels
