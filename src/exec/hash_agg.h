// Hash aggregation supporting sum/count/avg/min/max, COUNT(DISTINCT),
// grouped and global aggregation, and the partial/merge modes used by the
// CF sub-plan split (see plan/subplan.h for the partial-state layout).
#pragma once

#include <map>
#include <set>

#include "exec/hash_table.h"
#include "exec/operator.h"
#include "plan/logical_plan.h"

namespace pixels {

/// At parallelism 1 the input is consumed streaming (one batch resident at
/// a time). At parallelism N, input batches are collected, key/argument
/// expressions are evaluated batch-parallel, and groups are built
/// partition-parallel (partition = hash(key) % N); each partition scans
/// rows in batch-then-row order, so group contents and emit order are
/// deterministic.
///
/// With `ExecContext::vectorized_hash` (the default), groups live in
/// typed open-addressing tables keyed on batch-precomputed hashes
/// (exec/hash_table.h) and SUM/COUNT/MIN/MAX update as typed flat loops —
/// no Value boxing or per-row key serialization on the hot path, and the
/// child's selection vector is iterated directly (no gather after a
/// Filter). The scalar path remains for equivalence tests; both produce
/// identical results. COUNT(DISTINCT) state and the CF partial-merge mode
/// stay on the serialized-key path (cold, cross-worker format).
class HashAggOperator : public Operator {
 public:
  HashAggOperator(OperatorPtr child, const LogicalPlan& plan, ExecContext* ctx)
      : child_(std::move(child)), plan_(plan), ctx_(ctx) {}

  Status Open() override;
  Result<RowBatchPtr> Next() override;
  void Close() override { child_->Close(); }

  /// Running state of one aggregate within one group (public so the
  /// typed update kernels in hash_agg.cc and the tests can touch it).
  struct AggState {
    double sum_d = 0;
    int64_t sum_i = 0;
    bool any_double = false;
    int64_t count = 0;
    bool has_minmax = false;
    Value min;
    Value max;
    std::set<std::string> distinct_keys;

    void Update(const Value& v, bool distinct);
    void UpdateCountStar() { ++count; }
  };

  struct Group {
    std::vector<Value> keys;
    std::vector<AggState> states;
  };

  /// Compact, trivially-copyable per-group state used while an
  /// aggregate's argument batches stay one numeric family (all
  /// int-kinds or all doubles). One cache line instead of ~200 bytes of
  /// AggState, so million-group updates stay dense; strings,
  /// COUNT(DISTINCT), and mid-stream type flips convert the accumulated
  /// state to AggState exactly and continue on the boxed loops.
  struct NumAggState {
    int64_t count = 0;
    int64_t sum_i = 0;
    double sum_d = 0;
    int64_t min_i = 0;
    int64_t max_i = 0;
    double min_d = 0;
    double max_d = 0;
    bool has_minmax = false;
  };

 private:
  /// Per-(partition, aggregate) state representation. kUnset means no
  /// row has reached this aggregate yet (its state is all-default).
  enum class AggMode : uint8_t { kUnset, kCountStar, kInt, kDouble, kGeneral };

  /// One partition of the typed aggregation state (a single partition at
  /// parallelism 1): distinct keys in the table, agg states per mode —
  /// a bare count per group for COUNT(*), a NumAggState per group for
  /// single-family numeric aggs, and boxed AggState (flat
  /// [group * num_aggs + agg]) only for the general fallback.
  struct TypedPart {
    GroupTable table;
    std::vector<AggMode> modes;                 // per aggregate
    std::vector<std::vector<int64_t>> counts;   // per aggregate, kCountStar
    std::vector<std::vector<NumAggState>> nums; // per aggregate, kInt/kDouble
    std::vector<AggState> states;               // kGeneral slots only
  };
  /// A batch prepared for typed aggregation: evaluated key/argument
  /// columns and per-row key hashes, plus the upstream selection.
  struct TypedBatch {
    RowBatchPtr batch;
    std::shared_ptr<SelectionVector> sel;  // null = all rows
    std::vector<ColumnVectorPtr> key_cols;
    std::vector<ColumnVectorPtr> arg_cols;
    std::vector<uint64_t> hashes;
  };

  Status Consume();
  Status ConsumeParallel(int par);
  Status ConsumeMerge();
  /// Typed-table path (vectorized_hash): serial is streaming, parallel
  /// collects batches and builds partitions in batch-then-row order like
  /// the scalar path.
  Status ConsumeTyped(int par);
  Status PrepareTypedBatch(TypedBatch* tb) const;
  /// Folds the rows of `tb` owned by partition `p` (hash % num_parts)
  /// into that partition's table and states.
  Status ApplyTypedBatch(TypedPart* part, const TypedBatch& tb, size_t p,
                         size_t num_parts);
  /// Converts aggregate `a`'s compact states in `part` to boxed AggState
  /// (exact — the boxed state equals what the scalar loops would have
  /// built) and flips its mode to kGeneral.
  void ConvertTypedAggToGeneral(TypedPart* part, size_t a);
  /// Builds the output batch directly from the typed tables: keys are
  /// reboxed once from the KeyStore and aggregates finalize straight
  /// from their flat state arrays — no per-group Group construction.
  /// Output columns/types/order are identical to Emit's.
  Result<RowBatchPtr> TypedEmit();
  /// Applies one input row (precomputed agg argument values in `args`) to
  /// the row's group state.
  void UpdateGroup(Group* group, const std::vector<ColumnVectorPtr>& arg_cols,
                   size_t row);
  Result<RowBatchPtr> Emit();

  OperatorPtr child_;
  const LogicalPlan& plan_;
  ExecContext* ctx_;
  std::map<std::string, size_t> group_index_;
  std::vector<Group> groups_;
  std::vector<TypedPart> typed_parts_;
  bool typed_done_ = false;  // ConsumeTyped ran; emit from typed_parts_
  bool emitted_ = false;
};

}  // namespace pixels
