// Hash aggregation supporting sum/count/avg/min/max, COUNT(DISTINCT),
// grouped and global aggregation, and the partial/merge modes used by the
// CF sub-plan split (see plan/subplan.h for the partial-state layout).
#pragma once

#include <map>
#include <set>

#include "exec/operator.h"
#include "plan/logical_plan.h"

namespace pixels {

class HashAggOperator : public Operator {
 public:
  HashAggOperator(OperatorPtr child, const LogicalPlan& plan)
      : child_(std::move(child)), plan_(plan) {}

  Status Open() override;
  Result<RowBatchPtr> Next() override;
  void Close() override { child_->Close(); }

 private:
  struct AggState {
    double sum_d = 0;
    int64_t sum_i = 0;
    bool any_double = false;
    int64_t count = 0;
    bool has_minmax = false;
    Value min;
    Value max;
    std::set<std::string> distinct_keys;

    void Update(const Value& v, bool distinct);
    void UpdateCountStar() { ++count; }
  };

  struct Group {
    std::vector<Value> keys;
    std::vector<AggState> states;
  };

  Status Consume();
  Status ConsumeMerge();
  Result<RowBatchPtr> Emit();

  OperatorPtr child_;
  const LogicalPlan& plan_;
  std::map<std::string, size_t> group_index_;
  std::vector<Group> groups_;
  bool emitted_ = false;
};

}  // namespace pixels
