// Hash aggregation supporting sum/count/avg/min/max, COUNT(DISTINCT),
// grouped and global aggregation, and the partial/merge modes used by the
// CF sub-plan split (see plan/subplan.h for the partial-state layout).
#pragma once

#include <map>
#include <set>

#include "exec/operator.h"
#include "plan/logical_plan.h"

namespace pixels {

/// At parallelism 1 the input is consumed streaming (one batch resident at
/// a time). At parallelism N, input batches are collected, key/argument
/// expressions are evaluated batch-parallel, and groups are built
/// partition-parallel (partition = hash(key) % N); each partition scans
/// rows in batch-then-row order, so group contents and emit order are
/// deterministic.
class HashAggOperator : public Operator {
 public:
  HashAggOperator(OperatorPtr child, const LogicalPlan& plan, ExecContext* ctx)
      : child_(std::move(child)), plan_(plan), ctx_(ctx) {}

  Status Open() override;
  Result<RowBatchPtr> Next() override;
  void Close() override { child_->Close(); }

 private:
  struct AggState {
    double sum_d = 0;
    int64_t sum_i = 0;
    bool any_double = false;
    int64_t count = 0;
    bool has_minmax = false;
    Value min;
    Value max;
    std::set<std::string> distinct_keys;

    void Update(const Value& v, bool distinct);
    void UpdateCountStar() { ++count; }
  };

  struct Group {
    std::vector<Value> keys;
    std::vector<AggState> states;
  };

  Status Consume();
  Status ConsumeParallel(int par);
  Status ConsumeMerge();
  /// Applies one input row (precomputed agg argument values in `args`) to
  /// the row's group state.
  void UpdateGroup(Group* group, const std::vector<ColumnVectorPtr>& arg_cols,
                   size_t row);
  Result<RowBatchPtr> Emit();

  OperatorPtr child_;
  const LogicalPlan& plan_;
  ExecContext* ctx_;
  std::map<std::string, size_t> group_index_;
  std::vector<Group> groups_;
  bool emitted_ = false;
};

}  // namespace pixels
