#include "exec/sort.h"

#include <algorithm>

#include "exec/expression.h"

namespace pixels {

Status SortOperator::Open() {
  PIXELS_RETURN_NOT_OK(child_->Open());
  // Materialize all input into one combined batch.
  std::vector<RowBatchPtr> batches;
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr b, child_->Next());
    if (b == nullptr) break;
    if (b->num_rows() > 0) batches.push_back(std::move(b));
  }
  if (batches.empty()) {
    sorted_ = nullptr;
    return Status::OK();
  }
  RowBatchPtr combined;
  if (batches.size() == 1) {
    combined = batches[0];
  } else {
    combined = std::make_shared<RowBatch>();
    for (size_t c = 0; c < batches[0]->num_columns(); ++c) {
      auto col = MakeVector(batches[0]->column(c)->type());
      for (const auto& b : batches) {
        for (size_t r = 0; r < b->num_rows(); ++r) {
          col->AppendFrom(*b->column(c), r);
        }
      }
      combined->AddColumn(batches[0]->name(c), std::move(col));
    }
  }

  // Evaluate sort keys once per key over the combined batch.
  std::vector<ColumnVectorPtr> keys;
  for (const auto& item : plan_.order_by) {
    PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                            EvaluateExpr(*item.expr, *combined));
    keys.push_back(std::move(col));
  }

  std::vector<uint32_t> order(combined->num_rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<uint32_t>(i);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     for (size_t k = 0; k < keys.size(); ++k) {
                       Value va = keys[k]->GetValue(a);
                       Value vb = keys[k]->GetValue(b);
                       int cmp = va.Compare(vb);
                       if (cmp == 0) continue;
                       return plan_.order_by[k].ascending ? cmp < 0 : cmp > 0;
                     }
                     return false;
                   });
  sorted_ = combined->Gather(order);
  return Status::OK();
}

Result<RowBatchPtr> SortOperator::Next() {
  if (emitted_ || sorted_ == nullptr) return RowBatchPtr(nullptr);
  emitted_ = true;
  return sorted_;
}

}  // namespace pixels
