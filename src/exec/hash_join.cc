#include "exec/hash_join.h"

#include "exec/expression.h"
#include "exec/kernels.h"
#include "exec/operators.h"
#include "plan/optimizer.h"

namespace pixels {

namespace {

/// Relaxed membership: `ref` (qualified name) resolves in `cols`.
bool RefIn(const std::string& ref, const std::vector<std::string>& cols) {
  for (const auto& c : cols) {
    if (c == ref) return true;
  }
  // Basename match (unambiguous).
  auto base = [](const std::string& s) {
    size_t dot = s.rfind('.');
    return dot == std::string::npos ? s : s.substr(dot + 1);
  };
  int hits = 0;
  for (const auto& c : cols) {
    if (base(c) == base(ref)) ++hits;
  }
  return hits == 1;
}

bool AllRefsIn(const Expr& e, const std::vector<std::string>& cols) {
  std::vector<std::string> refs;
  CollectColumnRefs(e, &refs);
  if (refs.empty()) return false;
  for (const auto& r : refs) {
    if (!RefIn(r, cols)) return false;
  }
  return true;
}

}  // namespace

Status HashJoinOperator::ExtractKeys(const RowBatch&, const RowBatch&) {
  keys_extracted_ = true;
  if (plan_.join_condition == nullptr) {
    use_hash_ = false;  // cross join
    return Status::OK();
  }
  const auto left_cols = plan_.children[0]->OutputColumns();
  const auto right_cols = plan_.children[1]->OutputColumns();
  std::vector<ExprPtr> residual_conjuncts;
  for (auto& conjunct : SplitConjuncts(*plan_.join_condition)) {
    if (conjunct->kind == Expr::Kind::kBinary && conjunct->op == "=") {
      Expr& l = *conjunct->args[0];
      Expr& r = *conjunct->args[1];
      if (AllRefsIn(l, left_cols) && AllRefsIn(r, right_cols)) {
        left_keys_.push_back(l.Clone());
        right_keys_.push_back(r.Clone());
        continue;
      }
      if (AllRefsIn(r, left_cols) && AllRefsIn(l, right_cols)) {
        left_keys_.push_back(r.Clone());
        right_keys_.push_back(l.Clone());
        continue;
      }
    }
    residual_conjuncts.push_back(std::move(conjunct));
  }
  residual_ = CombineConjuncts(std::move(residual_conjuncts));
  use_hash_ = !left_keys_.empty();
  if (plan_.join_type == JoinClause::Type::kLeft &&
      (!use_hash_ || residual_ != nullptr)) {
    return Status::NotImplemented(
        "LEFT JOIN requires a pure equi-join condition");
  }
  return Status::OK();
}

Status HashJoinOperator::BuildSide() {
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, right_->Next());
    if (batch == nullptr) break;
    if (batch->num_rows() == 0) continue;
    if (right_names_.empty()) {
      for (size_t c = 0; c < batch->num_columns(); ++c) {
        right_names_.push_back(batch->name(c));
        right_types_.push_back(batch->column(c)->type());
      }
    }
    build_batches_.push_back(batch);
  }
  if (right_names_.empty()) {
    // Empty build side: take declared columns for null padding.
    right_names_ = plan_.children[1]->OutputColumns();
    right_types_.assign(right_names_.size(), TypeId::kInt64);
  }
  if (!use_hash_) return Status::OK();

  const int par = ctx_ != nullptr ? ctx_->EffectiveParallelism() : 1;
  ThreadPool* pool = ctx_ != nullptr ? ctx_->EffectivePool() : nullptr;
  if (ctx_ != nullptr && ctx_->vectorized_hash) {
    typed_build_ = true;
    probe_safe_ = true;
    for (const auto& k : left_keys_) {
      probe_safe_ = probe_safe_ && ExprSafeToEvalUnselected(*k);
    }
    return BuildSideTyped(par, pool);
  }

  // Phase 1 (batch-parallel): evaluate key expressions and serialize each
  // row's join key; empty string marks a null key (nulls never join).
  std::vector<std::vector<std::string>> batch_keys(build_batches_.size());
  auto compute_keys = [&](size_t bi) -> Status {
    const RowBatch& batch = *build_batches_[bi];
    std::vector<ColumnVectorPtr> key_cols;
    for (const auto& k : right_keys_) {
      PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvaluateExpr(*k, batch));
      key_cols.push_back(std::move(col));
    }
    auto& keys = batch_keys[bi];
    keys.resize(batch.num_rows());
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      std::vector<Value> key;
      bool has_null = false;
      for (const auto& col : key_cols) {
        Value v = col->GetValue(r);
        has_null |= v.is_null();
        key.push_back(std::move(v));
      }
      if (!has_null) keys[r] = ValuesKey(key);
    }
    return Status::OK();
  };

  // Phase 2 (partition-parallel): each partition inserts its rows in
  // batch-then-row order, so the table contents never depend on thread
  // scheduling.
  hash_parts_.assign(par > 1 ? static_cast<size_t>(par) : 1, {});
  const size_t num_parts = hash_parts_.size();
  std::hash<std::string> hasher;
  auto build_partition = [&](size_t p) -> Status {
    auto& part = hash_parts_[p];
    for (size_t bi = 0; bi < build_batches_.size(); ++bi) {
      const auto& keys = batch_keys[bi];
      for (size_t r = 0; r < keys.size(); ++r) {
        if (keys[r].empty()) continue;  // null key
        if (hasher(keys[r]) % num_parts != p) continue;
        part.emplace(keys[r], BuildRow{bi, static_cast<uint32_t>(r)});
      }
    }
    return Status::OK();
  };

  if (par <= 1 || pool == nullptr) {
    for (size_t bi = 0; bi < build_batches_.size(); ++bi) {
      PIXELS_RETURN_NOT_OK(compute_keys(bi));
    }
    return build_partition(0);
  }
  PIXELS_RETURN_NOT_OK(pool->ParallelFor(
      0, build_batches_.size(), /*grain=*/1,
      [&](size_t bi) { return compute_keys(bi); }, par));
  return pool->ParallelFor(
      0, num_parts, /*grain=*/1,
      [&](size_t p) { return build_partition(p); }, par);
}

Status HashJoinOperator::BuildSideTyped(int par, ThreadPool* pool) {
  // Phase 1 (batch-parallel): key columns + hashes per batch. No
  // per-row serialization — HashKeyColumns runs typed flat loops.
  struct BatchKeys {
    std::vector<ColumnVectorPtr> key_cols;
    std::vector<uint64_t> hashes;
    std::vector<uint8_t> any_null;
  };
  std::vector<BatchKeys> keys(build_batches_.size());
  size_t total_rows = 0;
  for (const auto& b : build_batches_) total_rows += b->num_rows();
  auto compute_keys = [&](size_t bi) -> Status {
    const RowBatch& batch = *build_batches_[bi];
    BatchKeys& bk = keys[bi];
    for (const auto& k : right_keys_) {
      PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvaluateExpr(*k, batch));
      bk.key_cols.push_back(std::move(col));
    }
    bk.hashes = HashKeyColumns(bk.key_cols, batch.num_rows(), &bk.any_null);
    return Status::OK();
  };

  // Phase 2 (partition-parallel): inserts in batch-then-row order, so
  // table contents — including duplicate-key chains — are deterministic.
  // Pre-sized from the exact build row count (distinct keys <= rows):
  // no rehash storm regardless of key distribution.
  const size_t num_parts = par > 1 ? static_cast<size_t>(par) : 1;
  typed_parts_.reserve(num_parts);
  for (size_t p = 0; p < num_parts; ++p) {
    typed_parts_.emplace_back(right_keys_.size(),
                              ctx_->hash_table_load_factor);
    typed_parts_[p].Reserve(total_rows / num_parts + 16);
  }
  auto build_partition = [&](size_t p) -> Status {
    for (size_t bi = 0; bi < build_batches_.size(); ++bi) {
      const BatchKeys& bk = keys[bi];
      for (uint32_t r = 0; r < bk.hashes.size(); ++r) {
        if (bk.any_null[r]) continue;  // null keys never join
        const uint64_t h = bk.hashes[r];
        if (h % num_parts != p) continue;
        typed_parts_[p].Insert(h, bk.key_cols, r,
                               (static_cast<uint64_t>(bi) << 32) | r);
      }
    }
    return Status::OK();
  };

  if (par <= 1 || pool == nullptr) {
    for (size_t bi = 0; bi < build_batches_.size(); ++bi) {
      PIXELS_RETURN_NOT_OK(compute_keys(bi));
    }
    return build_partition(0);
  }
  PIXELS_RETURN_NOT_OK(pool->ParallelFor(
      0, build_batches_.size(), /*grain=*/1,
      [&](size_t bi) { return compute_keys(bi); }, par));
  return pool->ParallelFor(
      0, num_parts, /*grain=*/1,
      [&](size_t p) { return build_partition(p); }, par);
}

Status HashJoinOperator::PublishRuntimeFilter() {
  if (ctx_ == nullptr || !ctx_->runtime_filters || plan_.rf_id < 0 ||
      !use_hash_ || plan_.join_type != JoinClause::Type::kInner) {
    return Status::OK();
  }
  // Locate the build key the planner annotated. Not finding it (e.g. the
  // key is an expression) just means nothing is published: the probe
  // scan then reads everything, which is always correct.
  const Expr* key = nullptr;
  for (const auto& rk : right_keys_) {
    if (rk->kind == Expr::Kind::kColumnRef &&
        rk->QualifiedName() == plan_.rf_build_column) {
      key = rk.get();
      break;
    }
  }
  if (key == nullptr) return Status::OK();

  std::vector<ColumnVectorPtr> key_cols;
  uint64_t key_count = 0;
  for (const auto& batch : build_batches_) {
    PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvaluateExpr(*key, *batch));
    key_count += col->size() - col->NullCount();
    key_cols.push_back(std::move(col));
  }
  auto rf = std::make_shared<RuntimeFilter>(
      static_cast<size_t>(key_count), ctx_->rf_bloom_bits_per_key);
  rf->key_count = key_count;
  for (const auto& col : key_cols) {
    const std::vector<uint64_t> hashes = RfHashColumn(*col);
    for (size_t i = 0; i < col->size(); ++i) {
      if (col->IsNull(i)) continue;  // null keys never inner-join
      rf->bloom.Add(hashes[i]);
      const Value v = col->GetValue(i);
      if (!rf->has_range) {
        rf->min_key = v;
        rf->max_key = v;
        rf->has_range = true;
      } else {
        if (v.Compare(rf->min_key) < 0) rf->min_key = v;
        if (v.Compare(rf->max_key) > 0) rf->max_key = v;
      }
    }
  }
  ctx_->rf_hub.Publish(plan_.rf_id, std::move(rf));
  return Status::OK();
}

Status HashJoinOperator::Open() {
  PIXELS_RETURN_NOT_OK(left_->Open());
  PIXELS_RETURN_NOT_OK(right_->Open());
  PIXELS_RETURN_NOT_OK(ExtractKeys(RowBatch{}, RowBatch{}));
  PIXELS_RETURN_NOT_OK(BuildSide());
  // Published before the first probe-side morsel decodes: probe scans
  // only poll the hub at their first Next(), which is after Open().
  return PublishRuntimeFilter();
}

Result<RowBatchPtr> HashJoinOperator::CombineAndFilter(
    const RowBatchPtr& probe, const std::vector<uint32_t>& probe_sel,
    const std::vector<ColumnVectorPtr>& build_out) {
  RowBatchPtr left_part = probe->Gather(probe_sel);
  auto combined = std::make_shared<RowBatch>();
  for (size_t c = 0; c < left_part->num_columns(); ++c) {
    combined->AddColumn(left_part->name(c), left_part->column(c));
  }
  for (size_t c = 0; c < build_out.size(); ++c) {
    combined->AddColumn(right_names_[c], build_out[c]);
  }

  // Residual condition (non-equi conjuncts, or the whole condition for
  // nested-loop inner joins).
  const Expr* filter = nullptr;
  if (residual_ != nullptr) {
    filter = residual_.get();
  } else if (!use_hash_ && plan_.join_condition != nullptr) {
    filter = plan_.join_condition.get();
  }
  if (filter != nullptr && combined->num_rows() > 0) {
    PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr mask,
                            EvaluateExpr(*filter, *combined));
    std::vector<uint32_t> sel;
    for (size_t i = 0; i < mask->size(); ++i) {
      if (!mask->IsNull(i) && mask->GetValue(i).AsBool()) {
        sel.push_back(static_cast<uint32_t>(i));
      }
    }
    if (sel.empty()) return RowBatchPtr(nullptr);
    combined = combined->Gather(sel);
  }
  if (combined->num_rows() == 0) return RowBatchPtr(nullptr);
  return combined;
}

Result<RowBatchPtr> HashJoinOperator::NextTyped() {
  std::vector<uint64_t> matches;
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(SelBatch in, left_->NextSel());
    if (in.batch == nullptr) return RowBatchPtr(nullptr);
    if (in.num_selected() == 0) continue;
    RowBatchPtr probe = in.batch;
    std::shared_ptr<SelectionVector> sel = in.sel;
    if (sel != nullptr && !probe_safe_) {
      probe = in.Materialize();
      sel = nullptr;
    }

    std::vector<ColumnVectorPtr> key_cols;
    for (const auto& k : left_keys_) {
      PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvaluateExpr(*k, *probe));
      key_cols.push_back(std::move(col));
    }
    std::vector<uint8_t> any_null;
    const std::vector<uint64_t> hashes =
        HashKeyColumns(key_cols, probe->num_rows(), &any_null);

    std::vector<uint32_t> probe_sel;
    std::vector<ColumnVectorPtr> build_out;
    for (TypeId t : right_types_) build_out.push_back(MakeVector(t));
    auto emit_pair = [&](uint32_t probe_row, const uint64_t* payload) {
      probe_sel.push_back(probe_row);
      for (size_t c = 0; c < build_out.size(); ++c) {
        if (payload == nullptr) {
          build_out[c]->AppendNull();
        } else {
          build_out[c]->AppendFrom(
              *build_batches_[*payload >> 32]->column(c),
              static_cast<uint32_t>(*payload));
        }
      }
    };
    auto probe_row = [&](uint32_t r) {
      bool matched = false;
      if (!any_null[r]) {
        const uint64_t h = hashes[r];
        matches.clear();
        typed_parts_[h % typed_parts_.size()].Probe(h, key_cols, r,
                                                    &matches);
        for (const uint64_t m : matches) emit_pair(r, &m);
        matched = !matches.empty();
      }
      if (!matched && plan_.join_type == JoinClause::Type::kLeft) {
        emit_pair(r, nullptr);
      }
    };
    if (sel != nullptr) {
      for (uint32_t r : *sel) probe_row(r);
    } else {
      const uint32_t n = static_cast<uint32_t>(probe->num_rows());
      for (uint32_t r = 0; r < n; ++r) probe_row(r);
    }

    if (probe_sel.empty()) continue;
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr out,
                            CombineAndFilter(probe, probe_sel, build_out));
    if (out == nullptr) continue;  // residual filtered everything out
    return out;
  }
}

Result<RowBatchPtr> HashJoinOperator::Next() {
  if (typed_build_) return NextTyped();
  while (true) {
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr probe, left_->Next());
    if (probe == nullptr) return RowBatchPtr(nullptr);
    if (probe->num_rows() == 0) continue;

    // Output accumulators: gather probe rows and append build rows.
    std::vector<uint32_t> probe_sel;
    std::vector<ColumnVectorPtr> build_out;
    for (TypeId t : right_types_) build_out.push_back(MakeVector(t));
    auto emit_pair = [&](uint32_t probe_row, const BuildRow* build_row) {
      probe_sel.push_back(probe_row);
      for (size_t c = 0; c < build_out.size(); ++c) {
        if (build_row == nullptr) {
          build_out[c]->AppendNull();
        } else {
          build_out[c]->AppendFrom(
              *build_batches_[build_row->batch_index]->column(c),
              build_row->row);
        }
      }
    };

    if (use_hash_) {
      std::vector<ColumnVectorPtr> key_cols;
      for (const auto& k : left_keys_) {
        PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvaluateExpr(*k, *probe));
        key_cols.push_back(std::move(col));
      }
      for (size_t r = 0; r < probe->num_rows(); ++r) {
        std::vector<Value> key;
        bool has_null = false;
        for (const auto& col : key_cols) {
          Value v = col->GetValue(r);
          has_null |= v.is_null();
          key.push_back(std::move(v));
        }
        bool matched = false;
        if (!has_null) {
          const std::string k = ValuesKey(key);
          const auto& part =
              hash_parts_[std::hash<std::string>{}(k) % hash_parts_.size()];
          auto range = part.equal_range(k);
          for (auto it = range.first; it != range.second; ++it) {
            emit_pair(static_cast<uint32_t>(r), &it->second);
            matched = true;
          }
        }
        if (!matched && plan_.join_type == JoinClause::Type::kLeft) {
          emit_pair(static_cast<uint32_t>(r), nullptr);
        }
      }
    } else {
      // Nested loop: every probe row against every build row.
      for (size_t r = 0; r < probe->num_rows(); ++r) {
        for (size_t bi = 0; bi < build_batches_.size(); ++bi) {
          for (size_t br = 0; br < build_batches_[bi]->num_rows(); ++br) {
            BuildRow row{bi, static_cast<uint32_t>(br)};
            emit_pair(static_cast<uint32_t>(r), &row);
          }
        }
      }
    }

    if (probe_sel.empty()) continue;
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr out,
                            CombineAndFilter(probe, probe_sel, build_out));
    if (out == nullptr) continue;  // residual filtered everything out
    return out;
  }
}

void HashJoinOperator::Close() {
  left_->Close();
  right_->Close();
  build_batches_.clear();
  hash_parts_.clear();
  typed_parts_.clear();
}

}  // namespace pixels
