#include "exec/kernels.h"

#include "exec/expression.h"
#include "plan/optimizer.h"

namespace pixels {

namespace {

enum class PayloadClass { kInt, kDouble, kString };

PayloadClass ClassOf(TypeId t) {
  if (t == TypeId::kDouble) return PayloadClass::kDouble;
  if (t == TypeId::kString) return PayloadClass::kString;
  return PayloadClass::kInt;
}

bool IsLit(const Expr& e) { return e.kind == Expr::Kind::kLiteral; }
bool IsCol(const Expr& e) { return e.kind == Expr::Kind::kColumnRef; }

}  // namespace

CompiledPredicate CompiledPredicate::Compile(const Expr& predicate) {
  CompiledPredicate p;
  std::vector<ExprPtr> residual;
  for (auto& c : SplitConjuncts(predicate)) {
    const Expr& e = *c;
    Step s;
    bool lowered = false;
    switch (e.kind) {
      case Expr::Kind::kBinary: {
        auto op = ParseCmpOp(e.op);
        if (op && e.args.size() == 2) {
          if (IsCol(*e.args[0]) && IsLit(*e.args[1])) {
            s.kind = Step::Kind::kCompare;
            s.column = e.args[0]->QualifiedName();
            s.op = *op;
            s.lit = e.args[1]->literal;
            lowered = true;
          } else if (IsLit(*e.args[0]) && IsCol(*e.args[1])) {
            s.kind = Step::Kind::kCompare;
            s.column = e.args[1]->QualifiedName();
            s.op = FlipCmpOp(*op);
            s.lit = e.args[0]->literal;
            lowered = true;
          }
          if (lowered && s.lit.is_null()) {
            p.never_matches_ = true;  // comparison with null is never true
            return p;
          }
        }
        break;
      }
      case Expr::Kind::kBetween:
        if (IsCol(*e.args[0]) && IsLit(*e.args[1]) && IsLit(*e.args[2])) {
          if (e.args[1]->literal.is_null() || e.args[2]->literal.is_null()) {
            p.never_matches_ = true;  // null bound: result is Null for all rows
            return p;
          }
          s.kind = Step::Kind::kBetween;
          s.column = e.args[0]->QualifiedName();
          s.lo = e.args[1]->literal;
          s.hi = e.args[2]->literal;
          s.negated = e.negated;
          lowered = true;
        }
        break;
      case Expr::Kind::kInList: {
        bool all_lit = IsCol(*e.args[0]);
        for (size_t i = 1; all_lit && i < e.args.size(); ++i) {
          all_lit = IsLit(*e.args[i]);
        }
        if (all_lit) {
          s.kind = Step::Kind::kInList;
          s.column = e.args[0]->QualifiedName();
          for (size_t i = 1; i < e.args.size(); ++i) {
            // Null items can never equal the probe; dropping them here
            // matches the scalar evaluator, which skips them.
            if (!e.args[i]->literal.is_null()) {
              s.in_list.push_back(e.args[i]->literal);
            }
          }
          s.negated = e.negated;
          lowered = true;
        }
        break;
      }
      case Expr::Kind::kIsNull:
        if (IsCol(*e.args[0])) {
          s.kind = Step::Kind::kIsNull;
          s.column = e.args[0]->QualifiedName();
          s.negated = e.negated;
          lowered = true;
        }
        break;
      case Expr::Kind::kColumnRef:
        s.kind = Step::Kind::kTruthy;
        s.column = e.QualifiedName();
        lowered = true;
        break;
      case Expr::Kind::kUnary:
        if (e.op == "NOT" && IsCol(*e.args[0])) {
          s.kind = Step::Kind::kTruthy;
          s.column = e.args[0]->QualifiedName();
          s.negated = true;
          lowered = true;
        }
        break;
      default:
        break;
    }
    if (lowered) {
      p.steps_.push_back(std::move(s));
    } else {
      residual.push_back(std::move(c));
    }
  }
  if (!residual.empty()) p.residual_ = CombineConjuncts(std::move(residual));
  return p;
}

Status CompiledPredicate::EvalStep(const Step& s, const RowBatch& batch,
                                   const SelectionVector* in,
                                   SelectionVector* out) const {
  int idx = batch.FindColumn(s.column);
  if (idx < 0) {
    return Status::InvalidArgument("column not found at execution: " +
                                   s.column);
  }
  const ColumnVector& col = *batch.column(static_cast<size_t>(idx));
  const uint32_t n = static_cast<uint32_t>(batch.num_rows());
  const uint8_t* ok = col.valid_data();

  // Runs `match` over the candidate rows (all rows on the first step, the
  // incoming selection afterwards) and emits survivors.
  auto drive = [&](auto&& match) {
    if (in == nullptr) {
      for (uint32_t i = 0; i < n; ++i) {
        if (match(i)) out->push_back(i);
      }
    } else {
      for (uint32_t i : *in) {
        if (match(i)) out->push_back(i);
      }
    }
  };

  switch (s.kind) {
    case Step::Kind::kCompare: {
      const TypedPredicate p = TypedPredicate::Make(col.type(), s.op, s.lit);
      switch (ClassOf(col.type())) {
        case PayloadClass::kInt: {
          const int64_t* v = col.ints_data();
          drive([&](uint32_t i) { return ok[i] && p.MatchInt(v[i]); });
          break;
        }
        case PayloadClass::kDouble: {
          const double* v = col.doubles_data();
          drive([&](uint32_t i) { return ok[i] && p.MatchDouble(v[i]); });
          break;
        }
        case PayloadClass::kString: {
          const std::string* v = col.strings_data();
          drive([&](uint32_t i) { return ok[i] && p.MatchString(v[i]); });
          break;
        }
      }
      break;
    }
    case Step::Kind::kBetween: {
      const TypedPredicate ge = TypedPredicate::Make(col.type(), CmpOp::kGe, s.lo);
      const TypedPredicate le = TypedPredicate::Make(col.type(), CmpOp::kLe, s.hi);
      const bool neg = s.negated;
      switch (ClassOf(col.type())) {
        case PayloadClass::kInt: {
          const int64_t* v = col.ints_data();
          drive([&](uint32_t i) {
            return ok[i] && ((ge.MatchInt(v[i]) && le.MatchInt(v[i])) != neg);
          });
          break;
        }
        case PayloadClass::kDouble: {
          const double* v = col.doubles_data();
          drive([&](uint32_t i) {
            return ok[i] &&
                   ((ge.MatchDouble(v[i]) && le.MatchDouble(v[i])) != neg);
          });
          break;
        }
        case PayloadClass::kString: {
          const std::string* v = col.strings_data();
          drive([&](uint32_t i) {
            return ok[i] &&
                   ((ge.MatchString(v[i]) && le.MatchString(v[i])) != neg);
          });
          break;
        }
      }
      break;
    }
    case Step::Kind::kInList: {
      std::vector<TypedPredicate> eqs;
      eqs.reserve(s.in_list.size());
      for (const Value& item : s.in_list) {
        eqs.push_back(TypedPredicate::Make(col.type(), CmpOp::kEq, item));
      }
      const bool neg = s.negated;
      auto any = [&](auto&& one) {
        for (const TypedPredicate& p : eqs) {
          if (one(p)) return true;
        }
        return false;
      };
      switch (ClassOf(col.type())) {
        case PayloadClass::kInt: {
          const int64_t* v = col.ints_data();
          drive([&](uint32_t i) {
            return ok[i] && (any([&](const TypedPredicate& p) {
                              return p.MatchInt(v[i]);
                            }) != neg);
          });
          break;
        }
        case PayloadClass::kDouble: {
          const double* v = col.doubles_data();
          drive([&](uint32_t i) {
            return ok[i] && (any([&](const TypedPredicate& p) {
                              return p.MatchDouble(v[i]);
                            }) != neg);
          });
          break;
        }
        case PayloadClass::kString: {
          const std::string* v = col.strings_data();
          drive([&](uint32_t i) {
            return ok[i] && (any([&](const TypedPredicate& p) {
                              return p.MatchString(v[i]);
                            }) != neg);
          });
          break;
        }
      }
      break;
    }
    case Step::Kind::kIsNull: {
      const bool neg = s.negated;
      drive([&](uint32_t i) { return neg ? ok[i] != 0 : ok[i] == 0; });
      break;
    }
    case Step::Kind::kTruthy: {
      const bool neg = s.negated;
      switch (ClassOf(col.type())) {
        case PayloadClass::kInt: {
          const int64_t* v = col.ints_data();
          drive([&](uint32_t i) { return ok[i] && ((v[i] != 0) != neg); });
          break;
        }
        case PayloadClass::kDouble: {
          const double* v = col.doubles_data();
          drive([&](uint32_t i) { return ok[i] && ((v[i] != 0) != neg); });
          break;
        }
        case PayloadClass::kString: {
          // Value::AsBool on a string inspects the (zero) int payload.
          drive([&](uint32_t i) { return ok[i] && neg; });
          break;
        }
      }
      break;
    }
  }
  return Status::OK();
}

Result<SelectionVector> CompiledPredicate::Select(
    const RowBatch& batch, const SelectionVector* in) const {
  SelectionVector sel;
  const size_t n = batch.num_rows();
  if (never_matches_ || n == 0 || (in != nullptr && in->empty())) return sel;
  bool have = in != nullptr;
  if (have) sel = *in;
  for (const Step& s : steps_) {
    SelectionVector next;
    PIXELS_RETURN_NOT_OK(EvalStep(s, batch, have ? &sel : nullptr, &next));
    sel = std::move(next);
    have = true;
    if (sel.empty()) return sel;
  }
  if (!have) {
    sel.resize(n);
    for (size_t i = 0; i < n; ++i) sel[i] = static_cast<uint32_t>(i);
  }
  if (residual_ != nullptr) {
    SelectionVector out;
    out.reserve(sel.size());
    for (uint32_t i : sel) {
      PIXELS_ASSIGN_OR_RETURN(Value v, EvaluateExprRow(*residual_, batch, i));
      if (!v.is_null() && v.AsBool()) out.push_back(i);
    }
    sel = std::move(out);
  }
  return sel;
}

namespace {

ColumnVectorPtr BroadcastLiteral(const Value& v, size_t n) {
  TypeId t = TypeId::kInt64;
  if (v.kind == Value::Kind::kString) {
    t = TypeId::kString;
  } else if (v.kind == Value::Kind::kDouble) {
    t = TypeId::kDouble;
  }
  auto col = MakeVector(t);
  col->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (void)col->AppendValue(v);  // cannot fail: type chosen from the kind
  }
  return col;
}

/// Returns nullptr (not an error) when the subtree is outside the
/// vectorizable shapes; real errors propagate.
Result<ColumnVectorPtr> TryVectorize(const Expr& e, const RowBatch& batch) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return BroadcastLiteral(e.literal, batch.num_rows());
    case Expr::Kind::kColumnRef: {
      int idx = batch.FindColumn(e.QualifiedName());
      if (idx < 0) {
        return Status::InvalidArgument("column not found at execution: " +
                                       e.QualifiedName());
      }
      return batch.column(static_cast<size_t>(idx));
    }
    case Expr::Kind::kUnary: {
      if (e.op != "-") return ColumnVectorPtr();
      PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr a, TryVectorize(*e.args[0], batch));
      if (a == nullptr || ClassOf(a->type()) == PayloadClass::kString) {
        return ColumnVectorPtr();
      }
      const size_t n = a->size();
      const uint8_t* ok = a->valid_data();
      if (a->type() == TypeId::kDouble) {
        auto out = MakeVector(TypeId::kDouble);
        out->Reserve(n);
        const double* v = a->doubles_data();
        for (size_t i = 0; i < n; ++i) {
          if (ok[i]) {
            out->AppendDouble(-v[i]);
          } else {
            out->AppendNull();
          }
        }
        return out;
      }
      auto out = MakeVector(TypeId::kInt64);
      out->Reserve(n);
      const int64_t* v = a->ints_data();
      for (size_t i = 0; i < n; ++i) {
        if (ok[i]) {
          out->AppendInt(-v[i]);
        } else {
          out->AppendNull();
        }
      }
      return out;
    }
    case Expr::Kind::kBinary:
      break;  // handled below
    default:
      return ColumnVectorPtr();
  }

  const std::string& op = e.op;
  const bool is_cmp = ParseCmpOp(op).has_value();
  const bool is_arith =
      op == "+" || op == "-" || op == "*" || op == "/" || op == "%";
  if (!is_cmp && !is_arith) return ColumnVectorPtr();

  PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr a, TryVectorize(*e.args[0], batch));
  if (a == nullptr) return ColumnVectorPtr();
  PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr b, TryVectorize(*e.args[1], batch));
  if (b == nullptr) return ColumnVectorPtr();

  const size_t n = a->size();
  const uint8_t* aok = a->valid_data();
  const uint8_t* bok = b->valid_data();
  const PayloadClass ac = ClassOf(a->type());
  const PayloadClass bc = ClassOf(b->type());

  if (is_cmp) {
    const CmpOp cop = *ParseCmpOp(op);
    auto out = MakeVector(TypeId::kInt64);  // Bool values build int64 vectors
    out->Reserve(n);
    auto emit = [&](size_t i, bool match) {
      if (aok[i] && bok[i]) {
        out->AppendInt(match ? 1 : 0);
      } else {
        out->AppendNull();
      }
    };
    const bool a_str = ac == PayloadClass::kString;
    const bool b_str = bc == PayloadClass::kString;
    if (a_str != b_str) {
      // Value::Compare orders numerics before strings for every value.
      const bool match = ApplyCmp(cop, a_str ? 1 : -1);
      for (size_t i = 0; i < n; ++i) emit(i, match);
    } else if (a_str) {
      const std::string* av = a->strings_data();
      const std::string* bv = b->strings_data();
      for (size_t i = 0; i < n; ++i) {
        const int c = av[i].compare(bv[i]);
        emit(i, ApplyCmp(cop, c < 0 ? -1 : (c > 0 ? 1 : 0)));
      }
    } else if (ac == PayloadClass::kDouble || bc == PayloadClass::kDouble) {
      for (size_t i = 0; i < n; ++i) {
        const double x = ac == PayloadClass::kDouble
                             ? a->doubles_data()[i]
                             : static_cast<double>(a->ints_data()[i]);
        const double y = bc == PayloadClass::kDouble
                             ? b->doubles_data()[i]
                             : static_cast<double>(b->ints_data()[i]);
        emit(i, ApplyCmp(cop, x < y ? -1 : (x > y ? 1 : 0)));
      }
    } else {
      const int64_t* av = a->ints_data();
      const int64_t* bv = b->ints_data();
      for (size_t i = 0; i < n; ++i) {
        emit(i, ApplyCmp(cop, av[i] < bv[i] ? -1 : (av[i] > bv[i] ? 1 : 0)));
      }
    }
    return out;
  }

  // Arithmetic. String operands take the scalar evaluator's odd
  // zero-payload path — fall back so behavior stays identical.
  if (ac == PayloadClass::kString || bc == PayloadClass::kString) {
    return ColumnVectorPtr();
  }
  if (op == "%") {
    // Scalar path: AsInt both sides, null on zero divisor.
    auto out = MakeVector(TypeId::kInt64);
    out->Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (!aok[i] || !bok[i]) {
        out->AppendNull();
        continue;
      }
      const int64_t x = ac == PayloadClass::kDouble
                            ? static_cast<int64_t>(a->doubles_data()[i])
                            : a->ints_data()[i];
      const int64_t y = bc == PayloadClass::kDouble
                            ? static_cast<int64_t>(b->doubles_data()[i])
                            : b->ints_data()[i];
      if (y == 0) {
        out->AppendNull();
      } else {
        out->AppendInt(x % y);
      }
    }
    return out;
  }
  const bool dbl = ac == PayloadClass::kDouble || bc == PayloadClass::kDouble;
  if (dbl) {
    auto out = MakeVector(TypeId::kDouble);
    out->Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (!aok[i] || !bok[i]) {
        out->AppendNull();
        continue;
      }
      const double x = ac == PayloadClass::kDouble
                           ? a->doubles_data()[i]
                           : static_cast<double>(a->ints_data()[i]);
      const double y = bc == PayloadClass::kDouble
                           ? b->doubles_data()[i]
                           : static_cast<double>(b->ints_data()[i]);
      if (op == "+") {
        out->AppendDouble(x + y);
      } else if (op == "-") {
        out->AppendDouble(x - y);
      } else if (op == "*") {
        out->AppendDouble(x * y);
      } else if (y == 0) {
        out->AppendNull();
      } else {
        out->AppendDouble(x / y);
      }
    }
    return out;
  }
  auto out = MakeVector(TypeId::kInt64);
  out->Reserve(n);
  const int64_t* av = a->ints_data();
  const int64_t* bv = b->ints_data();
  for (size_t i = 0; i < n; ++i) {
    if (!aok[i] || !bok[i]) {
      out->AppendNull();
      continue;
    }
    if (op == "+") {
      out->AppendInt(av[i] + bv[i]);
    } else if (op == "-") {
      out->AppendInt(av[i] - bv[i]);
    } else if (op == "*") {
      out->AppendInt(av[i] * bv[i]);
    } else if (bv[i] == 0) {
      out->AppendNull();
    } else {
      out->AppendInt(av[i] / bv[i]);
    }
  }
  return out;
}

}  // namespace

Result<ColumnVectorPtr> EvaluateExprVectorized(const Expr& expr,
                                               const RowBatch& batch) {
  // Direct column references share the scalar fast path (returns the
  // column vector itself, preserving its exact type).
  if (expr.kind == Expr::Kind::kColumnRef) return EvaluateExpr(expr, batch);
  PIXELS_ASSIGN_OR_RETURN(ColumnVectorPtr v, TryVectorize(expr, batch));
  if (v == nullptr) return EvaluateExpr(expr, batch);
  // Mirror BuildVectorFromValues' typing: a result with no non-null
  // values (including the empty batch) is typed kInt64.
  if (v->NullCount() == v->size() && v->type() != TypeId::kInt64) {
    auto nulls = MakeVector(TypeId::kInt64);
    nulls->Reserve(v->size());
    for (size_t i = 0; i < v->size(); ++i) nulls->AppendNull();
    return ColumnVectorPtr(std::move(nulls));
  }
  return v;
}

std::vector<uint64_t> RfHashColumn(const ColumnVector& col) {
  const size_t n = col.size();
  std::vector<uint64_t> out(n, 0);
  switch (ClassOf(col.type())) {
    case PayloadClass::kInt: {
      const int64_t* v = col.ints_data();
      if (col.type() == TypeId::kBool) {
        // Bool columns produce Bool-kind key values, hashed with the
        // bool tag so build and probe sides agree.
        for (size_t i = 0; i < n; ++i) out[i] = RfHashBool(v[i] != 0);
      } else {
        for (size_t i = 0; i < n; ++i) out[i] = RfHashInt(v[i]);
      }
      break;
    }
    case PayloadClass::kDouble: {
      const double* v = col.doubles_data();
      for (size_t i = 0; i < n; ++i) out[i] = RfHashDouble(v[i]);
      break;
    }
    case PayloadClass::kString: {
      const std::string* v = col.strings_data();
      for (size_t i = 0; i < n; ++i) out[i] = RfHashString(v[i]);
      break;
    }
  }
  return out;
}

namespace {

/// Fixed kind tag for a null key component: distinct from every
/// RfHash* output class in practice and identical on both sides of a
/// join/agg, so null == null for grouping.
constexpr uint64_t kNullKeyHash = 0x9ae16a3b2f90404fULL;
/// Hash of the empty key (global aggregation: zero key columns).
constexpr uint64_t kEmptyKeyHash = 0x8445d61a4e774912ULL;

/// Order-sensitive combine of per-column key hashes (boost-style mix
/// re-finalized so probe distribution stays uniform for linear probing).
inline uint64_t HashCombine(uint64_t h, uint64_t next) {
  return RfMix64(h ^ (next + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

}  // namespace

std::vector<uint64_t> HashKeyColumns(const std::vector<ColumnVectorPtr>& cols,
                                     size_t num_rows,
                                     std::vector<uint8_t>* any_null) {
  if (any_null != nullptr) any_null->assign(num_rows, 0);
  if (cols.empty()) return std::vector<uint64_t>(num_rows, kEmptyKeyHash);
  std::vector<uint64_t> out;
  for (size_t c = 0; c < cols.size(); ++c) {
    std::vector<uint64_t> hc = RfHashColumn(*cols[c]);
    if (cols[c]->NullCount() != 0) {
      const uint8_t* ok = cols[c]->valid_data();
      for (size_t i = 0; i < num_rows; ++i) {
        if (!ok[i]) {
          hc[i] = kNullKeyHash;
          if (any_null != nullptr) (*any_null)[i] = 1;
        }
      }
    }
    if (c == 0) {
      out = std::move(hc);
    } else {
      for (size_t i = 0; i < num_rows; ++i) {
        out[i] = HashCombine(out[i], hc[i]);
      }
    }
  }
  return out;
}

bool ExprSafeToEvalUnselected(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
    case Expr::Kind::kColumnRef:
      return true;
    case Expr::Kind::kStar:
    case Expr::Kind::kFunction:  // length()/substr() type-check per row
      return false;
    case Expr::Kind::kUnary:
      if (expr.op != "NOT" && expr.op != "-") return false;
      break;
    case Expr::Kind::kBinary:
      // LIKE rejects non-string operands per row; every other known
      // operator is total (/ and % by zero yield NULL).
      if (expr.op == "LIKE") return false;
      if (expr.op != "AND" && expr.op != "OR" && expr.op != "=" &&
          expr.op != "<>" && expr.op != "<" && expr.op != "<=" &&
          expr.op != ">" && expr.op != ">=" && expr.op != "||" &&
          expr.op != "+" && expr.op != "-" && expr.op != "*" &&
          expr.op != "/" && expr.op != "%") {
        return false;
      }
      break;
    case Expr::Kind::kBetween:
    case Expr::Kind::kInList:
    case Expr::Kind::kIsNull:
    case Expr::Kind::kCase:
      break;
  }
  for (const auto& arg : expr.args) {
    if (arg != nullptr && !ExprSafeToEvalUnselected(*arg)) return false;
  }
  return true;
}

SelectionVector BloomFilterSelect(const ColumnVector& col,
                                  const BloomFilter& bloom,
                                  const SelectionVector* sel) {
  const std::vector<uint64_t> hashes = RfHashColumn(col);
  const uint8_t* ok = col.valid_data();
  SelectionVector out;
  if (sel == nullptr) {
    const uint32_t n = static_cast<uint32_t>(col.size());
    out.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      if (ok[i] && bloom.MayContain(hashes[i])) out.push_back(i);
    }
  } else {
    out.reserve(sel->size());
    for (uint32_t i : *sel) {
      if (ok[i] && bloom.MayContain(hashes[i])) out.push_back(i);
    }
  }
  return out;
}

}  // namespace pixels
