#include "catalog/catalog.h"

#include <algorithm>

namespace pixels {

Status Catalog::CreateDatabase(const std::string& db) {
  if (databases_.count(db) > 0) {
    return Status::AlreadyExists("database exists: " + db);
  }
  databases_[db] = DatabaseSchema{db, {}};
  return Status::OK();
}

Result<std::vector<std::string>> Catalog::ListDatabases() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : databases_) out.push_back(name);
  return out;
}

Result<const DatabaseSchema*> Catalog::GetDatabase(const std::string& db) const {
  auto it = databases_.find(db);
  if (it == databases_.end()) return Status::NotFound("no database: " + db);
  return &it->second;
}

Status Catalog::CreateTable(const std::string& db, const std::string& table,
                            FileSchema columns) {
  auto it = databases_.find(db);
  if (it == databases_.end()) return Status::NotFound("no database: " + db);
  if (it->second.FindTable(table) != nullptr) {
    return Status::AlreadyExists("table exists: " + db + "." + table);
  }
  if (columns.empty()) {
    return Status::InvalidArgument("table needs at least one column");
  }
  TableSchema schema;
  schema.name = table;
  schema.columns = std::move(columns);
  schema.version = NextVersion();
  it->second.tables.push_back(std::move(schema));
  return Status::OK();
}

Result<TableSchema*> Catalog::GetTableMutable(const std::string& db,
                                              const std::string& table) {
  auto it = databases_.find(db);
  if (it == databases_.end()) return Status::NotFound("no database: " + db);
  TableSchema* t = it->second.FindTable(table);
  if (t == nullptr) return Status::NotFound("no table: " + db + "." + table);
  return t;
}

Status Catalog::AddTableFile(const std::string& db, const std::string& table,
                             const std::string& path) {
  PIXELS_ASSIGN_OR_RETURN(TableSchema * schema, GetTableMutable(db, table));
  PIXELS_ASSIGN_OR_RETURN(auto reader, PixelsReader::Open(storage_.get(), path));
  if (reader->schema() != schema->columns) {
    return Status::InvalidArgument("file schema mismatch for " + path);
  }
  PIXELS_ASSIGN_OR_RETURN(uint64_t size, storage_->Size(path));
  schema->files.push_back(path);
  schema->row_count += reader->NumRows();
  schema->total_bytes += size;
  schema->version = NextVersion();
  return Status::OK();
}

Result<const TableSchema*> Catalog::GetTable(const std::string& db,
                                             const std::string& table) const {
  auto it = databases_.find(db);
  if (it == databases_.end()) return Status::NotFound("no database: " + db);
  const TableSchema* t = it->second.FindTable(table);
  if (t == nullptr) return Status::NotFound("no table: " + db + "." + table);
  return t;
}

Result<uint64_t> Catalog::GetTableVersion(const std::string& db,
                                          const std::string& table) const {
  PIXELS_ASSIGN_OR_RETURN(const TableSchema* schema, GetTable(db, table));
  return schema->version;
}

Status Catalog::DropTable(const std::string& db, const std::string& table) {
  auto it = databases_.find(db);
  if (it == databases_.end()) return Status::NotFound("no database: " + db);
  auto& tables = it->second.tables;
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i].name == table) {
      tables.erase(tables.begin() + static_cast<ptrdiff_t>(i));
      return Status::OK();
    }
  }
  return Status::NotFound("no table: " + db + "." + table);
}

Status Catalog::ReplaceTableFiles(const std::string& db,
                                  const std::string& table,
                                  const std::vector<std::string>& files) {
  PIXELS_ASSIGN_OR_RETURN(TableSchema * schema, GetTableMutable(db, table));
  // Validate before mutating anything.
  uint64_t rows = 0, bytes = 0;
  for (const auto& path : files) {
    PIXELS_ASSIGN_OR_RETURN(auto reader, PixelsReader::Open(storage_.get(), path));
    if (reader->schema() != schema->columns) {
      return Status::InvalidArgument("file schema mismatch for " + path);
    }
    PIXELS_ASSIGN_OR_RETURN(uint64_t size, storage_->Size(path));
    rows += reader->NumRows();
    bytes += size;
  }
  schema->files = files;
  schema->row_count = rows;
  schema->total_bytes = bytes;
  schema->version = NextVersion();
  return Status::OK();
}

Result<std::vector<RowBatchPtr>> Catalog::ScanTable(const std::string& db,
                                                    const std::string& table,
                                                    const ScanOptions& options,
                                                    uint64_t* bytes_scanned,
                                                    const IoOptions& io) {
  PIXELS_ASSIGN_OR_RETURN(const TableSchema* schema, GetTable(db, table));
  std::vector<RowBatchPtr> out;
  for (const auto& path : schema->files) {
    PIXELS_ASSIGN_OR_RETURN(auto reader,
                            PixelsReader::Open(storage_.get(), path, io));
    PIXELS_ASSIGN_OR_RETURN(auto batches, reader->Scan(options));
    if (bytes_scanned != nullptr) {
      *bytes_scanned += reader->scan_stats().bytes_scanned;
    }
    for (auto& b : batches) out.push_back(std::move(b));
  }
  return out;
}

Status Catalog::SaveToStorage(const std::string& path) const {
  Json dbs = Json::Array();
  for (const auto& [_, db] : databases_) dbs.Append(db.ToJson());
  Json doc = Json::Object();
  doc.Set("format_version", 1);
  doc.Set("version_counter", static_cast<int64_t>(version_counter_));
  doc.Set("databases", std::move(dbs));
  return WriteString(storage_.get(), path, doc.Dump());
}

Status Catalog::LoadFromStorage(const std::string& path) {
  PIXELS_ASSIGN_OR_RETURN(std::string text, ReadString(storage_.get(), path));
  PIXELS_ASSIGN_OR_RETURN(Json doc, Json::Parse(text));
  if (doc.Get("format_version").AsInt() != 1) {
    return Status::Corruption("unsupported catalog format version");
  }
  std::map<std::string, DatabaseSchema> loaded;
  const Json& dbs = doc.Get("databases");
  for (size_t i = 0; i < dbs.size(); ++i) {
    PIXELS_ASSIGN_OR_RETURN(DatabaseSchema db,
                            DatabaseSchema::FromJson(dbs.At(i)));
    std::string name = db.name;
    loaded.emplace(std::move(name), std::move(db));
  }
  databases_ = std::move(loaded);
  // Resume the epoch counter past every persisted table version, so the
  // next mutation can never re-issue an epoch some MV entry still pins.
  uint64_t max_version = doc.Has("version_counter")
                             ? static_cast<uint64_t>(
                                   doc.Get("version_counter").AsInt())
                             : 0;
  for (const auto& [_, db] : databases_) {
    for (const auto& t : db.tables) {
      max_version = std::max(max_version, t.version);
    }
  }
  version_counter_ = max_version;
  return Status::OK();
}

}  // namespace pixels
