#include "catalog/schema.h"

namespace pixels {

int TableSchema::FindColumn(const std::string& column) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column) return static_cast<int>(i);
  }
  return -1;
}

Result<TypeId> TableSchema::ColumnType(const std::string& column) const {
  int idx = FindColumn(column);
  if (idx < 0) {
    return Status::NotFound("no column '" + column + "' in table " + name);
  }
  return columns[static_cast<size_t>(idx)].type;
}

Json TableSchema::ToJson() const {
  Json cols = Json::Array();
  for (const auto& c : columns) {
    Json col = Json::Object();
    col.Set("name", c.name);
    col.Set("type", TypeName(c.type));
    cols.Append(std::move(col));
  }
  Json fs = Json::Array();
  for (const auto& f : files) fs.Append(f);
  Json out = Json::Object();
  out.Set("table", name);
  out.Set("columns", std::move(cols));
  out.Set("files", std::move(fs));
  out.Set("row_count", static_cast<int64_t>(row_count));
  out.Set("total_bytes", static_cast<int64_t>(total_bytes));
  out.Set("version", static_cast<int64_t>(version));
  return out;
}

Result<TableSchema> TableSchema::FromJson(const Json& json) {
  if (!json.is_object() || !json.Get("table").is_string()) {
    return Status::ParseError("table json needs a 'table' name");
  }
  TableSchema out;
  out.name = json.Get("table").AsString();
  const Json& cols = json.Get("columns");
  for (size_t i = 0; i < cols.size(); ++i) {
    const Json& col = cols.At(i);
    if (!col.Get("name").is_string() || !col.Get("type").is_string()) {
      return Status::ParseError("column json needs name and type");
    }
    PIXELS_ASSIGN_OR_RETURN(TypeId type,
                            TypeFromName(col.Get("type").AsString()));
    out.columns.push_back(ColumnDef{col.Get("name").AsString(), type});
  }
  if (out.columns.empty()) {
    return Status::ParseError("table '" + out.name + "' has no columns");
  }
  const Json& fs = json.Get("files");
  for (size_t i = 0; i < fs.size(); ++i) {
    out.files.push_back(fs.At(i).AsString());
  }
  out.row_count = static_cast<uint64_t>(json.Get("row_count").AsInt());
  out.total_bytes = static_cast<uint64_t>(json.Get("total_bytes").AsInt());
  // Catalogs persisted before version epochs existed load as epoch 1.
  out.version = json.Has("version")
                    ? static_cast<uint64_t>(json.Get("version").AsInt())
                    : 1;
  return out;
}

const TableSchema* DatabaseSchema::FindTable(const std::string& table) const {
  for (const auto& t : tables) {
    if (t.name == table) return &t;
  }
  return nullptr;
}

TableSchema* DatabaseSchema::FindTable(const std::string& table) {
  for (auto& t : tables) {
    if (t.name == table) return &t;
  }
  return nullptr;
}

Json DatabaseSchema::ToJson() const {
  Json ts = Json::Array();
  for (const auto& t : tables) ts.Append(t.ToJson());
  Json out = Json::Object();
  out.Set("database", name);
  out.Set("tables", std::move(ts));
  return out;
}

Result<DatabaseSchema> DatabaseSchema::FromJson(const Json& json) {
  if (!json.is_object() || !json.Get("database").is_string()) {
    return Status::ParseError("database json needs a 'database' name");
  }
  DatabaseSchema out;
  out.name = json.Get("database").AsString();
  const Json& ts = json.Get("tables");
  for (size_t i = 0; i < ts.size(); ++i) {
    PIXELS_ASSIGN_OR_RETURN(TableSchema table, TableSchema::FromJson(ts.At(i)));
    out.tables.push_back(std::move(table));
  }
  return out;
}

}  // namespace pixels
