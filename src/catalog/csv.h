// CSV import/export: load external data into Pixels tables and render
// query results for download.
#pragma once

#include "catalog/catalog.h"

namespace pixels {

/// CSV parsing options.
struct CsvOptions {
  char delimiter = ',';
  /// First line is a header (validated against the schema when present).
  bool has_header = true;
  /// The spelling that maps to NULL (in addition to the empty field).
  std::string null_literal = "";
  /// Rows buffered per row group in the produced .pxl file.
  size_t row_group_size = 8192;
};

/// Parses `text` as CSV rows matching `schema` (column order). Values are
/// coerced: integer-like columns via strtoll, doubles via strtod, dates
/// via yyyy-mm-dd, booleans via true/false/1/0. Quoted fields with ""
/// escapes are supported. Returns the parsed rows.
Result<std::vector<std::vector<Value>>> ParseCsv(const std::string& text,
                                                 const FileSchema& schema,
                                                 const CsvOptions& options = {});

/// Creates table `db.table` with `schema` (unless it exists), writes the
/// CSV rows as a .pxl file at `path`, and registers it. Returns rows
/// loaded.
Result<uint64_t> LoadCsvTable(Catalog* catalog, const std::string& db,
                              const std::string& table,
                              const FileSchema& schema,
                              const std::string& csv_text,
                              const std::string& path,
                              const CsvOptions& options = {});

/// Renders a result table as CSV (header + rows, RFC-4180 quoting).
std::string TableToCsv(const Table& table, char delimiter = ',');

}  // namespace pixels
