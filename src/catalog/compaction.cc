#include "catalog/compaction.h"

#include "format/writer.h"

namespace pixels {

Result<CompactionResult> CompactTable(Catalog* catalog, const std::string& db,
                                      const std::string& table,
                                      const CompactionOptions& options) {
  PIXELS_ASSIGN_OR_RETURN(const TableSchema* schema,
                          catalog->GetTable(db, table));
  CompactionResult result;
  result.files_before = schema->files.size();
  result.bytes_before = schema->total_bytes;
  const FileSchema columns = schema->columns;
  const std::vector<std::string> old_files = schema->files;

  const std::string prefix = options.path_prefix.empty()
                                 ? db + "/" + table + "/compacted"
                                 : options.path_prefix;

  // Stream old files into new writers.
  std::vector<std::string> new_files;
  WriterOptions wopts;
  wopts.row_group_size = options.row_group_size;
  std::unique_ptr<PixelsWriter> writer;
  uint64_t rows_in_file = 0;
  int file_index = 0;

  auto flush = [&]() -> Status {
    if (writer == nullptr) return Status::OK();
    std::string path = prefix + "." + std::to_string(file_index++) + ".pxl";
    PIXELS_RETURN_NOT_OK(writer->Finish(catalog->storage(), path));
    new_files.push_back(path);
    writer.reset();
    rows_in_file = 0;
    return Status::OK();
  };

  for (const auto& path : old_files) {
    PIXELS_ASSIGN_OR_RETURN(auto reader,
                            PixelsReader::Open(catalog->storage(), path));
    if (reader->schema() != columns) {
      return Status::Corruption("file schema drift in " + path);
    }
    for (size_t g = 0; g < reader->NumRowGroups(); ++g) {
      PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, reader->ReadRowGroup(g, {}));
      size_t offset = 0;
      while (offset < batch->num_rows()) {
        if (writer == nullptr) {
          writer = std::make_unique<PixelsWriter>(columns, wopts);
        }
        const uint64_t room = options.target_rows_per_file - rows_in_file;
        const size_t take = static_cast<size_t>(std::min<uint64_t>(
            room, batch->num_rows() - offset));
        if (take == batch->num_rows() && offset == 0) {
          PIXELS_RETURN_NOT_OK(writer->Append(*batch));
        } else {
          std::vector<uint32_t> sel;
          sel.reserve(take);
          for (size_t i = 0; i < take; ++i) {
            sel.push_back(static_cast<uint32_t>(offset + i));
          }
          PIXELS_RETURN_NOT_OK(writer->Append(*batch->Gather(sel)));
        }
        rows_in_file += take;
        result.rows += take;
        offset += take;
        if (rows_in_file >= options.target_rows_per_file) {
          PIXELS_RETURN_NOT_OK(flush());
        }
      }
    }
  }
  PIXELS_RETURN_NOT_OK(flush());

  // Atomically (from the catalog's point of view) switch the file list.
  // The swap bumps the table's version epoch, so materialized views built
  // over the pre-compaction files invalidate even though the row contents
  // are unchanged — an MV must never outlive the objects it was read from
  // (the old files are deleted just below).
  PIXELS_RETURN_NOT_OK(catalog->ReplaceTableFiles(db, table, new_files));

  if (options.delete_inputs) {
    for (const auto& path : old_files) {
      // Best effort: a stale object is garbage, not corruption.
      (void)catalog->storage()->Delete(path);
    }
  }

  PIXELS_ASSIGN_OR_RETURN(const TableSchema* after,
                          catalog->GetTable(db, table));
  result.files_after = after->files.size();
  result.bytes_after = after->total_bytes;
  return result;
}

}  // namespace pixels
