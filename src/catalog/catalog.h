// Catalog: the metadata service run by the Coordinator. Registers
// databases/tables, tracks file-level statistics, and loads table data
// for the execution engine.
#pragma once

#include <map>
#include <memory>

#include "catalog/schema.h"
#include "format/batch.h"
#include "format/reader.h"
#include "storage/storage.h"

namespace pixels {

/// In-memory catalog over a Storage backend. Table data lives in .pxl
/// files; the catalog records where they are and how big.
class Catalog {
 public:
  explicit Catalog(std::shared_ptr<Storage> storage)
      : storage_(std::move(storage)) {}

  Status CreateDatabase(const std::string& db);
  Result<std::vector<std::string>> ListDatabases() const;
  Result<const DatabaseSchema*> GetDatabase(const std::string& db) const;

  /// Registers a table whose columns are given; data files are added later
  /// via AddTableFile.
  Status CreateTable(const std::string& db, const std::string& table,
                     FileSchema columns);

  /// Attaches a written .pxl file to a table, updating row/byte counts
  /// from the file footer. The file's schema must match the table's.
  Status AddTableFile(const std::string& db, const std::string& table,
                      const std::string& path);

  Result<const TableSchema*> GetTable(const std::string& db,
                                      const std::string& table) const;

  /// Current version epoch of a table. Epochs are catalog-wide monotonic:
  /// every data mutation (AddTableFile, ReplaceTableFiles — and therefore
  /// compaction) moves the table to a fresh, never-reused epoch. The MV
  /// store pins epochs at build time and compares them here at lookup.
  Result<uint64_t> GetTableVersion(const std::string& db,
                                   const std::string& table) const;

  Status DropTable(const std::string& db, const std::string& table);

  /// Replaces a table's file list (compaction switch-over): validates every
  /// new file's schema, then swaps the list and recomputes row/byte stats.
  Status ReplaceTableFiles(const std::string& db, const std::string& table,
                           const std::vector<std::string>& files);

  /// Scans every file of a table with projection + zone-map pruning.
  /// `bytes_scanned` (if non-null) accumulates encoded bytes consumed, the
  /// quantity the query server bills per TB — identical whether chunks
  /// came from storage or the `io` chunk cache.
  Result<std::vector<RowBatchPtr>> ScanTable(const std::string& db,
                                             const std::string& table,
                                             const ScanOptions& options,
                                             uint64_t* bytes_scanned = nullptr,
                                             const IoOptions& io = IoOptions{});

  /// Persists all catalog metadata (databases, tables, file lists,
  /// statistics) as one JSON object at `path` in the catalog's storage.
  /// The coordinator — the only long-running component (paper §2) — calls
  /// this so metadata survives restarts.
  Status SaveToStorage(const std::string& path) const;

  /// Replaces this catalog's contents with metadata previously written by
  /// SaveToStorage. Backing .pxl files are not validated here; reads fail
  /// naturally if objects went missing.
  Status LoadFromStorage(const std::string& path);

  Storage* storage() const { return storage_.get(); }

 private:
  Result<TableSchema*> GetTableMutable(const std::string& db,
                                       const std::string& table);

  /// Hands out the next catalog-wide version epoch.
  uint64_t NextVersion() { return ++version_counter_; }

  std::shared_ptr<Storage> storage_;
  std::map<std::string, DatabaseSchema> databases_;
  uint64_t version_counter_ = 0;
};

}  // namespace pixels
