#include "catalog/csv.h"

#include <cstdlib>

#include "format/writer.h"

namespace pixels {

namespace {

/// Splits one CSV record honoring quotes; advances *pos past the record's
/// terminating newline.
std::vector<std::string> SplitRecord(const std::string& text, size_t* pos,
                                     char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  size_t i = *pos;
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      ++i;
      break;
    } else if (c != '\r') {
      field.push_back(c);
    }
    ++i;
  }
  fields.push_back(std::move(field));
  *pos = i;
  return fields;
}

Result<Value> CoerceField(const std::string& field, TypeId type,
                          const CsvOptions& options, size_t line) {
  if (field.empty() || field == options.null_literal) return Value::Null();
  auto err = [&](const std::string& what) {
    return Status::ParseError("csv line " + std::to_string(line) + ": " + what +
                              " '" + field + "'");
  };
  switch (type) {
    case TypeId::kBool: {
      if (field == "true" || field == "1" || field == "t") return Value::Bool(true);
      if (field == "false" || field == "0" || field == "f") {
        return Value::Bool(false);
      }
      return err("invalid boolean");
    }
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (end != field.c_str() + field.size()) return err("invalid integer");
      return Value::Int(v);
    }
    case TypeId::kDouble: {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end != field.c_str() + field.size()) return err("invalid double");
      return Value::Double(v);
    }
    case TypeId::kDate: {
      auto days = ParseDate(field);
      if (!days.ok()) return err("invalid date");
      return Value::Int(*days);
    }
    case TypeId::kString:
      return Value::String(field);
  }
  return err("unknown type");
}

}  // namespace

Result<std::vector<std::vector<Value>>> ParseCsv(const std::string& text,
                                                 const FileSchema& schema,
                                                 const CsvOptions& options) {
  std::vector<std::vector<Value>> rows;
  size_t pos = 0;
  size_t line = 0;
  if (options.has_header && pos < text.size()) {
    ++line;
    auto header = SplitRecord(text, &pos, options.delimiter);
    if (header.size() != schema.size()) {
      return Status::ParseError("csv header has " +
                                std::to_string(header.size()) +
                                " fields, schema has " +
                                std::to_string(schema.size()));
    }
    for (size_t c = 0; c < schema.size(); ++c) {
      if (header[c] != schema[c].name) {
        return Status::ParseError("csv header field '" + header[c] +
                                  "' does not match column '" +
                                  schema[c].name + "'");
      }
    }
  }
  while (pos < text.size()) {
    ++line;
    auto fields = SplitRecord(text, &pos, options.delimiter);
    if (fields.size() == 1 && fields[0].empty()) continue;  // blank line
    if (fields.size() != schema.size()) {
      return Status::ParseError("csv line " + std::to_string(line) + " has " +
                                std::to_string(fields.size()) +
                                " fields, expected " +
                                std::to_string(schema.size()));
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      PIXELS_ASSIGN_OR_RETURN(
          Value v, CoerceField(fields[c], schema[c].type, options, line));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<uint64_t> LoadCsvTable(Catalog* catalog, const std::string& db,
                              const std::string& table,
                              const FileSchema& schema,
                              const std::string& csv_text,
                              const std::string& path,
                              const CsvOptions& options) {
  PIXELS_ASSIGN_OR_RETURN(auto rows, ParseCsv(csv_text, schema, options));
  Status st = catalog->CreateTable(db, table, schema);
  if (!st.ok() && !st.IsAlreadyExists()) return st;
  WriterOptions wopts;
  wopts.row_group_size = options.row_group_size;
  PixelsWriter writer(schema, wopts);
  for (const auto& row : rows) {
    PIXELS_RETURN_NOT_OK(writer.AppendRow(row));
  }
  PIXELS_RETURN_NOT_OK(writer.Finish(catalog->storage(), path));
  PIXELS_RETURN_NOT_OK(catalog->AddTableFile(db, table, path));
  return static_cast<uint64_t>(rows.size());
}

std::string TableToCsv(const Table& table, char delimiter) {
  auto quote = [&](const std::string& s) -> std::string {
    bool needs = s.find(delimiter) != std::string::npos ||
                 s.find('"') != std::string::npos ||
                 s.find('\n') != std::string::npos;
    if (!needs) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += "\"\"";
      else out.push_back(c);
    }
    out += '"';
    return out;
  };

  std::string out;
  auto names = table.ColumnNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out.push_back(delimiter);
    out += quote(names[i]);
  }
  out.push_back('\n');
  for (const auto& batch : table.batches()) {
    for (size_t r = 0; r < batch->num_rows(); ++r) {
      for (size_t c = 0; c < batch->num_columns(); ++c) {
        if (c > 0) out.push_back(delimiter);
        Value v = batch->column(c)->GetValue(r);
        if (v.is_null()) continue;  // empty field = NULL
        out += quote(v.kind == Value::Kind::kString ? v.s : v.ToString());
      }
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace pixels
