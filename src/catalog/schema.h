// Logical schema objects managed by the catalog (the Coordinator's
// metadata in the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "format/file_format.h"

namespace pixels {

/// A table: name, columns, backing .pxl files, and coarse statistics.
struct TableSchema {
  std::string name;
  FileSchema columns;
  std::vector<std::string> files;  // storage paths of .pxl objects
  uint64_t row_count = 0;
  uint64_t total_bytes = 0;  // encoded bytes across files
  /// Monotonic version epoch, bumped by every mutation of the table's
  /// data (file adds, compaction switch-overs). Values are drawn from a
  /// catalog-wide counter, so a dropped-and-recreated table can never
  /// reuse an old epoch. Materialized views pin the epochs they read and
  /// are invalidated on mismatch.
  uint64_t version = 1;

  /// Index of the named column, or -1.
  int FindColumn(const std::string& column) const;

  /// Type of the named column.
  Result<TypeId> ColumnType(const std::string& column) const;

  /// {"table": name, "columns": [{"name":..,"type":..},..], "files":
  /// [...], ...} — the shape sent to the text-to-SQL service and stored by
  /// catalog persistence.
  Json ToJson() const;

  /// Parses the ToJson shape back into a table schema.
  static Result<TableSchema> FromJson(const Json& json);
};

/// A database: a named set of tables.
struct DatabaseSchema {
  std::string name;
  std::vector<TableSchema> tables;

  const TableSchema* FindTable(const std::string& table) const;
  TableSchema* FindTable(const std::string& table);

  /// {"database": name, "tables": [...]} — the schema message compiled by
  /// Pixels-Rover's backend for CodeS.
  Json ToJson() const;

  /// Parses the ToJson shape back into a database schema.
  static Result<DatabaseSchema> FromJson(const Json& json);
};

}  // namespace pixels
