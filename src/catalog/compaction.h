// Table compaction: rewrites a table's many small .pxl files into fewer
// large ones. Small files are what CF workers leave behind (each worker
// writes its own output); compaction restores scan efficiency and reduces
// per-request object-store cost.
#pragma once

#include "catalog/catalog.h"

namespace pixels {

struct CompactionOptions {
  /// Rows per output file.
  uint64_t target_rows_per_file = 100000;
  /// Rows per row group inside the output files.
  size_t row_group_size = 8192;
  /// Path prefix for the new files; defaults to "<db>/<table>/compacted".
  std::string path_prefix;
  /// Delete the input objects after the catalog switches over.
  bool delete_inputs = true;
};

struct CompactionResult {
  size_t files_before = 0;
  size_t files_after = 0;
  uint64_t rows = 0;
  uint64_t bytes_before = 0;
  uint64_t bytes_after = 0;
};

/// Compacts `db.table`. On success the catalog references only the new
/// files; on failure the table is left untouched (new files may remain as
/// garbage objects, never referenced).
Result<CompactionResult> CompactTable(Catalog* catalog, const std::string& db,
                                      const std::string& table,
                                      const CompactionOptions& options = {});

}  // namespace pixels
