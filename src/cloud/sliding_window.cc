#include "cloud/sliding_window.h"

#include <algorithm>
#include <vector>

#include "cloud/metrics.h"

namespace pixels {

SlidingWindow::SlidingWindow(SimTime window)
    : window_(window <= 0 ? 1 : window) {}

void SlidingWindow::Add(SimTime now, double value) {
  AdvanceTo(now);
  samples_.push_back({now, value});
  sum_ += value;
}

void SlidingWindow::AdvanceTo(SimTime now) {
  const SimTime cutoff = now - window_;
  while (!samples_.empty() && samples_.front().time <= cutoff) {
    sum_ -= samples_.front().value;
    samples_.pop_front();
  }
}

double SlidingWindow::Mean() const {
  if (samples_.empty()) return 0;
  return sum_ / static_cast<double>(samples_.size());
}

double SlidingWindow::Quantile(double p) const {
  if (samples_.empty()) return 0;
  std::vector<double> values;
  values.reserve(samples_.size());
  for (const Entry& e : samples_) values.push_back(e.value);
  return Percentile(std::move(values), p);
}

double SlidingWindow::Max() const {
  double best = 0;
  bool first = true;
  for (const Entry& e : samples_) {
    if (first || e.value > best) best = e.value;
    first = false;
  }
  return best;
}

double SlidingWindow::RatePerSecond() const {
  if (samples_.empty()) return 0;
  return static_cast<double>(samples_.size()) /
         (static_cast<double>(window_) / static_cast<double>(kSeconds));
}

void SlidingWindow::Clear() {
  samples_.clear();
  sum_ = 0;
}

SlidingRatio::SlidingRatio(SimTime window)
    : window_(window <= 0 ? 1 : window) {}

void SlidingRatio::Add(SimTime now, bool hit) {
  AdvanceTo(now);
  outcomes_.push_back({now, hit});
  if (hit) ++hits_;
}

void SlidingRatio::AdvanceTo(SimTime now) {
  const SimTime cutoff = now - window_;
  while (!outcomes_.empty() && outcomes_.front().time <= cutoff) {
    if (outcomes_.front().hit) --hits_;
    outcomes_.pop_front();
  }
}

double SlidingRatio::Rate() const {
  if (outcomes_.empty()) return 0;
  return static_cast<double>(hits_) / static_cast<double>(outcomes_.size());
}

void SlidingRatio::Clear() {
  outcomes_.clear();
  hits_ = 0;
}

}  // namespace pixels
