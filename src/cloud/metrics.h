// Time-series, counter, gauge, and histogram recording. Benches print
// figure-style series through this; the observability layer snapshots the
// whole registry as Prometheus text exposition format.
//
// The registry is thread-safe: the coordinator and CF-fleet paths reach it
// from pool threads, so every accessor locks and the read accessors return
// by value (snapshots), never references into guarded maps.
//
// Label convention: a metric name may embed Prometheus labels directly,
// e.g. `query_latency_ms{level="immediate"}`. The exporter splits at the
// first `{` so all level-variants share one metric family.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_clock.h"

namespace pixels {

/// One (time, value) sample.
struct Sample {
  SimTime time;
  double value;
};

/// A named series of samples, appended in time order.
class TimeSeries {
 public:
  void Record(SimTime t, double value) { samples_.push_back({t, value}); }
  const std::vector<Sample>& samples() const { return samples_; }
  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Min() const;
  double Max() const;
  double Mean() const;
  /// Last value at or before `t` (0 when none). Binary search.
  double ValueAt(SimTime t) const;
  /// Time-weighted average over [t0, t1] treating samples as step changes.
  /// Returns ValueAt(t0) when t1 <= t0. Binary search to the window start.
  double TimeWeightedMean(SimTime t0, SimTime t1) const;

 private:
  std::vector<Sample> samples_;
};

/// A latency/size distribution: cumulative bucket counts for Prometheus
/// export plus the raw samples, so `Quantile` is exact (comparable with the
/// free `Percentile` helper) rather than bucket-interpolated.
class Histogram {
 public:
  /// Default buckets: a 1-2.5-5 decade ladder suited to millisecond
  /// latencies (1ms .. 60s) — also fine for counts.
  Histogram();
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);
  /// Re-observes every sample of `other` into this histogram.
  void Merge(const Histogram& other);

  uint64_t count() const { return static_cast<uint64_t>(samples_.size()); }
  double sum() const { return sum_; }
  /// Upper bounds of the finite buckets, ascending.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative counts; size() == bounds().size() + 1, last = +Inf.
  const std::vector<uint64_t>& bucket_counts() const { return buckets_; }
  const std::vector<double>& samples() const { return samples_; }
  /// Exact percentile over the retained samples (p in [0,100]).
  double Quantile(double p) const;

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> buckets_;
  std::vector<double> samples_;
  double sum_ = 0;
};

/// A registry of named series, scalar counters, gauges, and histograms.
/// Thread-safe; copyable (snapshot semantics).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry& other);
  MetricsRegistry& operator=(const MetricsRegistry& other);

  /// Appends a sample to the named series.
  void Record(const std::string& name, SimTime t, double value);
  /// Snapshot of one series (empty series when unknown).
  TimeSeries GetSeries(const std::string& name) const;
  std::map<std::string, TimeSeries> AllSeries() const;

  void Add(const std::string& counter, double delta);
  double Counter(const std::string& counter) const;
  std::map<std::string, double> AllCounters() const;

  /// Gauges: last-write-wins scalars (depths, cache bytes, hit rates).
  void SetGauge(const std::string& name, double value);
  double Gauge(const std::string& name) const;
  std::map<std::string, double> AllGauges() const;

  /// Observes a value into the named histogram (default buckets on first
  /// touch).
  void Observe(const std::string& name, double value);
  /// Creates the named histogram with explicit bucket bounds if it does not
  /// exist yet (no-op when it does). Needed for distributions the default
  /// millisecond ladder cannot hold, e.g. signed SLO margins.
  void DeclareHistogram(const std::string& name, std::vector<double> bounds);
  /// Merges `h` into the named histogram, adopting `h`'s bucket bounds when
  /// the name is new (plain `Merge` would re-bucket into default bounds).
  void MergeHistogram(const std::string& name, const Histogram& h);
  /// Snapshot of one histogram (empty default histogram when unknown).
  Histogram GetHistogram(const std::string& name) const;
  std::map<std::string, Histogram> AllHistograms() const;

  /// Folds another registry into this one: counters add, gauges
  /// overwrite, series append, histogram samples merge. Used to build the
  /// unified snapshot (server <- coordinator <- storage/caches/MV).
  void MergeFrom(const MetricsRegistry& other);

  /// Renders "name,time_s,value" CSV lines for the given series.
  std::string ToCsv(const std::string& name) const;

  /// Prometheus text exposition format: counters, gauges (including the
  /// last value of every series), and histograms with `_bucket`/`_sum`/
  /// `_count`. Names are prefixed `pixels_`; embedded `{...}` labels are
  /// preserved. Deterministic (sorted maps, fixed float formatting).
  std::string ToPrometheusText() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, TimeSeries> series_;
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Percentile over a sample of doubles (p in [0,100]); 0 for empty input.
double Percentile(std::vector<double> values, double p);

/// Structural check of Prometheus text format: every non-comment line must
/// be `name[{labels}] value`, `# TYPE` lines must declare counter/gauge/
/// histogram, label blocks must balance quotes, values must parse. Returns
/// false and fills `error` (if given) with the first offending line.
bool ValidatePrometheusText(const std::string& text,
                            std::string* error = nullptr);

}  // namespace pixels
