// Time-series and counter recording for the simulation benches: every
// figure-style bench prints series collected through this.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/sim_clock.h"

namespace pixels {

/// One (time, value) sample.
struct Sample {
  SimTime time;
  double value;
};

/// A named series of samples, appended in time order.
class TimeSeries {
 public:
  void Record(SimTime t, double value) { samples_.push_back({t, value}); }
  const std::vector<Sample>& samples() const { return samples_; }
  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Min() const;
  double Max() const;
  double Mean() const;
  /// Last value at or before `t` (0 when none).
  double ValueAt(SimTime t) const;
  /// Time-weighted average over [t0, t1] treating samples as step changes.
  double TimeWeightedMean(SimTime t0, SimTime t1) const;

 private:
  std::vector<Sample> samples_;
};

/// A registry of named series and scalar counters.
class MetricsRegistry {
 public:
  TimeSeries& Series(const std::string& name) { return series_[name]; }
  const std::map<std::string, TimeSeries>& AllSeries() const { return series_; }

  void Add(const std::string& counter, double delta) { counters_[counter] += delta; }
  double Counter(const std::string& counter) const;

  /// Renders "name,time_s,value" CSV lines for the given series.
  std::string ToCsv(const std::string& name) const;

 private:
  std::map<std::string, TimeSeries> series_;
  std::map<std::string, double> counters_;
};

/// Percentile over a sample of doubles (p in [0,100]); 0 for empty input.
double Percentile(std::vector<double> values, double p);

}  // namespace pixels
