#include "cloud/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace pixels {

namespace {

/// First sample strictly after `t`.
std::vector<Sample>::const_iterator UpperBoundByTime(
    const std::vector<Sample>& samples, SimTime t) {
  return std::upper_bound(
      samples.begin(), samples.end(), t,
      [](SimTime lhs, const Sample& s) { return lhs < s.time; });
}

}  // namespace

double TimeSeries::Min() const {
  double m = samples_.empty() ? 0 : samples_[0].value;
  for (const auto& s : samples_) m = std::min(m, s.value);
  return m;
}

double TimeSeries::Max() const {
  double m = samples_.empty() ? 0 : samples_[0].value;
  for (const auto& s : samples_) m = std::max(m, s.value);
  return m;
}

double TimeSeries::Mean() const {
  if (samples_.empty()) return 0;
  double total = 0;
  for (const auto& s : samples_) total += s.value;
  return total / static_cast<double>(samples_.size());
}

double TimeSeries::ValueAt(SimTime t) const {
  auto it = UpperBoundByTime(samples_, t);
  if (it == samples_.begin()) return 0;
  return std::prev(it)->value;
}

double TimeSeries::TimeWeightedMean(SimTime t0, SimTime t1) const {
  if (t1 <= t0) return ValueAt(t0);
  double area = 0;
  SimTime cursor = t0;
  double value = ValueAt(t0);
  for (auto it = UpperBoundByTime(samples_, t0);
       it != samples_.end() && it->time < t1; ++it) {
    area += value * static_cast<double>(it->time - cursor);
    cursor = it->time;
    value = it->value;
  }
  area += value * static_cast<double>(t1 - cursor);
  return area / static_cast<double>(t1 - t0);
}

Histogram::Histogram()
    : Histogram(std::vector<double>{1, 2.5, 5, 10, 25, 50, 100, 250, 500,
                                    1000, 2500, 5000, 10000, 25000, 60000}) {}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double value) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  ++buckets_[i];
  samples_.push_back(value);
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  for (double v : other.samples_) Observe(v);
}

double Histogram::Quantile(double p) const {
  return Percentile(samples_, p);
}

MetricsRegistry::MetricsRegistry(const MetricsRegistry& other) {
  std::lock_guard<std::mutex> lock(other.mutex_);
  series_ = other.series_;
  counters_ = other.counters_;
  gauges_ = other.gauges_;
  histograms_ = other.histograms_;
}

MetricsRegistry& MetricsRegistry::operator=(const MetricsRegistry& other) {
  if (this == &other) return *this;
  // Consistent order not needed: callers never copy registries into each
  // other concurrently in both directions; scoped locks avoid self-lock.
  std::map<std::string, TimeSeries> series;
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    series = other.series_;
    counters = other.counters_;
    gauges = other.gauges_;
    histograms = other.histograms_;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  series_ = std::move(series);
  counters_ = std::move(counters);
  gauges_ = std::move(gauges);
  histograms_ = std::move(histograms);
  return *this;
}

void MetricsRegistry::Record(const std::string& name, SimTime t,
                             double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  series_[name].Record(t, value);
}

TimeSeries MetricsRegistry::GetSeries(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(name);
  return it == series_.end() ? TimeSeries() : it->second;
}

std::map<std::string, TimeSeries> MetricsRegistry::AllSeries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return series_;
}

void MetricsRegistry::Add(const std::string& counter, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[counter] += delta;
}

double MetricsRegistry::Counter(const std::string& counter) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(counter);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, double> MetricsRegistry::AllCounters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

double MetricsRegistry::Gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

std::map<std::string, double> MetricsRegistry::AllGauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  histograms_[name].Observe(value);
}

void MetricsRegistry::DeclareHistogram(const std::string& name,
                                       std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  histograms_.emplace(name, Histogram(std::move(bounds)));
}

void MetricsRegistry::MergeHistogram(const std::string& name,
                                     const Histogram& h) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histograms_.emplace(name, h);
  } else {
    it->second.Merge(h);
  }
}

Histogram MetricsRegistry::GetHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram() : it->second;
}

std::map<std::string, Histogram> MetricsRegistry::AllHistograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // Snapshot first so we never hold two registry locks at once.
  const auto series = other.AllSeries();
  const auto counters = other.AllCounters();
  const auto gauges = other.AllGauges();
  const auto histograms = other.AllHistograms();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, ts] : series) {
    for (const auto& s : ts.samples()) series_[name].Record(s.time, s.value);
  }
  for (const auto& [name, v] : counters) counters_[name] += v;
  for (const auto& [name, v] : gauges) gauges_[name] = v;
  for (const auto& [name, h] : histograms) {
    // Copy wholesale when new so custom bucket bounds survive the merge;
    // `Merge` re-observes into the destination's (default) bounds.
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.Merge(h);
    }
  }
}

std::string MetricsRegistry::ToCsv(const std::string& name) const {
  std::string out;
  const TimeSeries ts = GetSeries(name);
  for (const auto& s : ts.samples()) {
    out += name + "," +
           std::to_string(static_cast<double>(s.time) / kSeconds) + "," +
           std::to_string(s.value) + "\n";
  }
  return out;
}

namespace {

/// Deterministic number rendering: integers without a decimal point,
/// everything else with up to 10 significant digits.
std::string FormatValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Splits `name{label="x"}` into base name and label block (sans braces).
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1);
  if (!labels->empty() && labels->back() == '}') labels->pop_back();
}

std::string Sanitize(const std::string& base) {
  std::string out = base;
  for (char& c : out) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':')) {
      c = '_';
    }
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void EmitTypeOnce(std::string* out, std::string* last_base,
                  const std::string& base, const char* type) {
  if (*last_base == base) return;
  *last_base = base;
  *out += "# TYPE " + base + " " + type + "\n";
}

std::string WithLabels(const std::string& base, const std::string& labels,
                       const std::string& extra = "") {
  std::string all = labels;
  if (!extra.empty()) {
    if (!all.empty()) all += ",";
    all += extra;
  }
  if (all.empty()) return base;
  return base + "{" + all + "}";
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  const auto counters = AllCounters();
  const auto gauges = AllGauges();
  const auto series = AllSeries();
  const auto histograms = AllHistograms();

  std::string out;
  std::string last_base;
  for (const auto& [name, v] : counters) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    base = "pixels_" + Sanitize(base);
    EmitTypeOnce(&out, &last_base, base, "counter");
    out += WithLabels(base, labels) + " " + FormatValue(v) + "\n";
  }
  last_base.clear();
  for (const auto& [name, v] : gauges) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    base = "pixels_" + Sanitize(base);
    EmitTypeOnce(&out, &last_base, base, "gauge");
    out += WithLabels(base, labels) + " " + FormatValue(v) + "\n";
  }
  // A series exports its latest value as a gauge.
  last_base.clear();
  for (const auto& [name, ts] : series) {
    if (ts.empty()) continue;
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    base = "pixels_" + Sanitize(base);
    EmitTypeOnce(&out, &last_base, base, "gauge");
    out += WithLabels(base, labels) + " " +
           FormatValue(ts.samples().back().value) + "\n";
  }
  last_base.clear();
  for (const auto& [name, h] : histograms) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    base = "pixels_" + Sanitize(base);
    EmitTypeOnce(&out, &last_base, base, "histogram");
    uint64_t cum = 0;
    for (size_t i = 0; i < h.bounds().size(); ++i) {
      cum += h.bucket_counts()[i];
      out += WithLabels(base + "_bucket", labels,
                        "le=\"" + FormatValue(h.bounds()[i]) + "\"") +
             " " + FormatValue(static_cast<double>(cum)) + "\n";
    }
    out += WithLabels(base + "_bucket", labels, "le=\"+Inf\"") + " " +
           FormatValue(static_cast<double>(h.count())) + "\n";
    out += WithLabels(base + "_sum", labels) + " " + FormatValue(h.sum()) +
           "\n";
    out += WithLabels(base + "_count", labels) + " " +
           FormatValue(static_cast<double>(h.count())) + "\n";
  }
  return out;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

namespace {

bool IsMetricNameChar(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
    return true;
  }
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

bool Fail(std::string* error, const std::string& line,
          const std::string& why) {
  if (error != nullptr) *error = why + ": " + line;
  return false;
}

}  // namespace

namespace {

// Splits a label block's contents ("a=\"x\",le=\"10\"") into the `le`
// value and the remaining labels (comma-split outside quotes).
void ExtractLe(const std::string& labels, std::string* le,
               std::string* rest) {
  le->clear();
  rest->clear();
  size_t start = 0;
  bool in_quotes = false;
  for (size_t j = 0; j <= labels.size(); ++j) {
    if (j < labels.size() && labels[j] == '"' &&
        (j == 0 || labels[j - 1] != '\\')) {
      in_quotes = !in_quotes;
      continue;
    }
    if (j == labels.size() || (labels[j] == ',' && !in_quotes)) {
      const std::string item = labels.substr(start, j - start);
      if (item.rfind("le=\"", 0) == 0 && item.size() >= 5) {
        *le = item.substr(4, item.size() - 5);
      } else if (!item.empty()) {
        if (!rest->empty()) *rest += ',';
        *rest += item;
      }
      start = j + 1;
    }
  }
}

}  // namespace

bool ValidatePrometheusText(const std::string& text, std::string* error) {
  // Histogram semantics collected during the line scan: cumulative bucket
  // values must be non-decreasing in emission (ascending-`le`) order, and
  // the `+Inf` bucket must equal the series' `_count`.
  std::map<std::string, double> last_bucket;   // series key -> last value
  std::map<std::string, std::string> last_bucket_line;
  std::map<std::string, double> inf_bucket;    // series key -> +Inf value
  std::map<std::string, double> count_value;   // series key -> _count
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only "# TYPE name kind" and "# HELP name ..." comments allowed.
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        size_t sp = rest.find(' ');
        if (sp == std::string::npos) {
          return Fail(error, line, "TYPE line missing kind");
        }
        const std::string kind = rest.substr(sp + 1);
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped") {
          return Fail(error, line, "unknown metric kind");
        }
      } else if (line.rfind("# HELP ", 0) != 0) {
        return Fail(error, line, "unknown comment");
      }
      continue;
    }
    // Sample line: name[{labels}] value
    size_t i = 0;
    if (!IsMetricNameChar(line[0], /*first=*/true)) {
      return Fail(error, line, "bad metric name start");
    }
    while (i < line.size() && IsMetricNameChar(line[i], i == 0)) ++i;
    const std::string name = line.substr(0, i);
    std::string labels;
    if (i < line.size() && line[i] == '{') {
      bool in_quotes = false;
      size_t close = std::string::npos;
      for (size_t j = i + 1; j < line.size(); ++j) {
        if (line[j] == '"' && (j == 0 || line[j - 1] != '\\')) {
          in_quotes = !in_quotes;
        } else if (line[j] == '}' && !in_quotes) {
          close = j;
          break;
        }
      }
      if (close == std::string::npos || in_quotes) {
        return Fail(error, line, "unbalanced label block");
      }
      labels = line.substr(i + 1, close - i - 1);
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      return Fail(error, line, "missing value separator");
    }
    const std::string value = line.substr(i + 1);
    if (value.empty()) return Fail(error, line, "missing value");
    double num = 0;
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      char* end = nullptr;
      num = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Fail(error, line, "unparseable value");
      }
    }
    // Histogram semantics.
    constexpr const char* kBucket = "_bucket";
    constexpr const char* kCount = "_count";
    if (name.size() > 7 && name.compare(name.size() - 7, 7, kBucket) == 0) {
      std::string le, rest;
      ExtractLe(labels, &le, &rest);
      if (le.empty()) return Fail(error, line, "bucket without le label");
      const std::string key = name.substr(0, name.size() - 7) + "{" + rest;
      auto it = last_bucket.find(key);
      if (it != last_bucket.end() && num < it->second) {
        return Fail(error, line, "non-monotone histogram buckets");
      }
      last_bucket[key] = num;
      last_bucket_line[key] = line;
      if (le == "+Inf") inf_bucket[key] = num;
    } else if (name.size() > 6 &&
               name.compare(name.size() - 6, 6, kCount) == 0) {
      count_value[name.substr(0, name.size() - 6) + "{" + labels] = num;
    }
  }
  for (const auto& [key, inf] : inf_bucket) {
    auto it = count_value.find(key);
    if (it == count_value.end()) {
      return Fail(error, last_bucket_line[key], "histogram missing _count");
    }
    if (it->second != inf) {
      return Fail(error, last_bucket_line[key],
                  "+Inf bucket does not equal _count");
    }
  }
  return true;
}

}  // namespace pixels
