#include "cloud/metrics.h"

#include <algorithm>
#include <cmath>

namespace pixels {

double TimeSeries::Min() const {
  double m = samples_.empty() ? 0 : samples_[0].value;
  for (const auto& s : samples_) m = std::min(m, s.value);
  return m;
}

double TimeSeries::Max() const {
  double m = samples_.empty() ? 0 : samples_[0].value;
  for (const auto& s : samples_) m = std::max(m, s.value);
  return m;
}

double TimeSeries::Mean() const {
  if (samples_.empty()) return 0;
  double total = 0;
  for (const auto& s : samples_) total += s.value;
  return total / static_cast<double>(samples_.size());
}

double TimeSeries::ValueAt(SimTime t) const {
  double v = 0;
  for (const auto& s : samples_) {
    if (s.time > t) break;
    v = s.value;
  }
  return v;
}

double TimeSeries::TimeWeightedMean(SimTime t0, SimTime t1) const {
  if (t1 <= t0) return ValueAt(t0);
  double area = 0;
  SimTime cursor = t0;
  double value = ValueAt(t0);
  for (const auto& s : samples_) {
    if (s.time <= t0) continue;
    if (s.time >= t1) break;
    area += value * static_cast<double>(s.time - cursor);
    cursor = s.time;
    value = s.value;
  }
  area += value * static_cast<double>(t1 - cursor);
  return area / static_cast<double>(t1 - t0);
}

double MetricsRegistry::Counter(const std::string& counter) const {
  auto it = counters_.find(counter);
  return it == counters_.end() ? 0 : it->second;
}

std::string MetricsRegistry::ToCsv(const std::string& name) const {
  std::string out;
  auto it = series_.find(name);
  if (it == series_.end()) return out;
  for (const auto& s : it->second.samples()) {
    out += name + "," +
           std::to_string(static_cast<double>(s.time) / kSeconds) + "," +
           std::to_string(s.value) + "\n";
  }
  return out;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

}  // namespace pixels
