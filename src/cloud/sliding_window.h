// Incrementally maintained sliding-window aggregates over virtual time.
// The SLO monitor keeps one window per signal (queue depth, per-level
// queue-wait, violation outcomes) and reads rates/quantiles on demand; the
// admission controller consumes them to adapt watermarks.
//
// Both classes are single-writer: they are only touched from the simulation
// thread (the query server's mailbox pump), so they carry no locks. Sum and
// count are maintained incrementally on insert/evict; quantiles are exact
// over the retained samples (same definition as `Percentile` in
// cloud/metrics.h).
#pragma once

#include <cstdint>
#include <deque>

#include "common/sim_clock.h"

namespace pixels {

/// Timestamped numeric samples retained for `window` of virtual time
/// (half-open: a sample at `now - window` is evicted, one at
/// `now - window + 1` is retained).
class SlidingWindow {
 public:
  explicit SlidingWindow(SimTime window = 60 * kSeconds);

  SimTime window() const { return window_; }

  /// Appends a sample at `now` (must be monotone non-decreasing) and evicts
  /// expired ones.
  void Add(SimTime now, double value);
  /// Evicts expired samples without adding one.
  void AdvanceTo(SimTime now);

  size_t Count() const { return samples_.size(); }
  bool Empty() const { return samples_.empty(); }
  double Sum() const { return sum_; }
  /// 0 when empty.
  double Mean() const;
  /// Exact percentile over retained samples (p in [0,100]); 0 when empty.
  double Quantile(double p) const;
  /// Largest retained sample; 0 when empty.
  double Max() const;
  /// Samples per second of window span (count / window); 0 when empty.
  double RatePerSecond() const;

  void Clear();

 private:
  struct Entry {
    SimTime time;
    double value;
  };

  SimTime window_;
  std::deque<Entry> samples_;
  double sum_ = 0;
};

/// Windowed binary-outcome ratio (e.g. SLO violations / scored queries).
class SlidingRatio {
 public:
  explicit SlidingRatio(SimTime window = 60 * kSeconds);

  SimTime window() const { return window_; }

  /// Records one outcome at `now` (monotone non-decreasing).
  void Add(SimTime now, bool hit);
  void AdvanceTo(SimTime now);

  size_t Total() const { return outcomes_.size(); }
  size_t Hits() const { return hits_; }
  /// hits / total over the retained window; 0 when empty.
  double Rate() const;

  void Clear();

 private:
  struct Outcome {
    SimTime time;
    bool hit;
  };

  SimTime window_;
  std::deque<Outcome> outcomes_;
  size_t hits_ = 0;
};

}  // namespace pixels
