// Simulated cloud-function service (paper §3.1): creates hundreds of
// workers in about a second, but at a 9-24x higher resource unit price
// than VMs. The coordinator invokes worker fleets to execute pushed-down
// sub-plans.
#pragma once

#include <functional>

#include "cloud/metrics.h"
#include "cloud/pricing.h"
#include "common/random.h"
#include "common/sim_clock.h"

namespace pixels {

/// CF platform parameters.
struct CfServiceParams {
  /// vCPUs per worker (Lambda 10 GB ≈ 6 vCPU).
  double vcpus_per_worker = 6.0;
  /// Cold-start latency per invocation batch, uniform in [min, max]
  /// (paper: hundreds of workers in 1 second).
  SimTime startup_min = 500 * kMillis;
  SimTime startup_max = 1500 * kMillis;
  /// Account-level concurrency limit.
  int max_concurrent_workers = 1000;
  /// Hard cap on a single invocation's duration (Lambda: 15 min).
  SimTime max_duration = 15 * kMinutes;
};

/// Usage summary of one fleet invocation.
struct CfInvocationResult {
  int workers = 0;
  SimTime startup_latency = 0;
  SimTime run_duration = 0;  // per-worker runtime after startup
  double cost_usd = 0;
};

/// Discrete-event CF service simulator with concurrency accounting.
class CfService {
 public:
  CfService(SimClock* clock, Random* rng, CfServiceParams params,
            PricingModel pricing);

  /// Launches `workers` functions that each perform
  /// `work_vcpu_seconds / workers` of compute, then invokes `done`.
  /// Fails (returns ResourceExhausted via callback-less error) when the
  /// concurrency limit would be exceeded; callers check CanInvoke first.
  CfInvocationResult Invoke(int workers, double work_vcpu_seconds,
                            std::function<void()> done);

  bool CanInvoke(int workers) const {
    return in_flight_ + workers <= params_.max_concurrent_workers;
  }

  int in_flight() const { return in_flight_; }
  double AccruedCostUsd() const { return accrued_cost_; }
  int total_invocations() const { return total_invocations_; }

  const CfServiceParams& params() const { return params_; }
  MetricsRegistry& metrics() { return metrics_; }

 private:
  SimClock* clock_;
  Random* rng_;
  CfServiceParams params_;
  PricingModel pricing_;

  int in_flight_ = 0;
  int total_invocations_ = 0;
  double accrued_cost_ = 0;
  MetricsRegistry metrics_;
};

}  // namespace pixels
