// Cloud resource pricing. Calibrated to the figures quoted in the paper:
// CF resource-unit prices are 9-24x those of VMs (§2, [7]); the query
// server's $/TB-scan price list lives in server/service_level.h.
#pragma once

#include <cstdint>

namespace pixels {

/// Per-resource pricing parameters of the simulated cloud.
struct PricingModel {
  /// VM price per vCPU-hour (m5-family on-demand ballpark).
  double vm_price_per_vcpu_hour = 0.048;

  /// CF unit-price multiplier vs VM per vCPU-second. The paper reports
  /// 9-24x depending on function size and region; default mid-range.
  double cf_unit_price_ratio = 12.0;

  /// Fixed per-invocation cost of a CF worker (request pricing).
  double cf_invocation_cost = 0.0000002;

  /// CF billing granularity in milliseconds (durations round up).
  int64_t cf_billing_quantum_ms = 1;

  /// Object-store price per GET request (S3 standard-tier ballpark).
  /// Coalescing and caching cut THIS cost axis; $/TB-scan is unaffected.
  double object_store_price_per_get = 0.0000004;

  double VmPricePerVcpuSecond() const {
    return vm_price_per_vcpu_hour / 3600.0;
  }
  double CfPricePerVcpuSecond() const {
    return VmPricePerVcpuSecond() * cf_unit_price_ratio;
  }

  /// Cost of `vcpu_seconds` of VM compute.
  double VmComputeCost(double vcpu_seconds) const {
    return vcpu_seconds * VmPricePerVcpuSecond();
  }

  /// Cost of one CF invocation running `vcpus` for `duration_ms`.
  double CfInvocationCost(double vcpus, int64_t duration_ms) const;

  /// Request cost of `gets` object-store GETs (the axis the buffered I/O
  /// layer optimizes).
  double ObjectStoreGetCost(uint64_t gets) const {
    return static_cast<double>(gets) * object_store_price_per_get;
  }

  /// Estimated provider-side cost of running `work_vcpu_seconds` of
  /// compute on `workers` CF invocations. The admission controller's
  /// cost-based placement compares this against a fraction of the query's
  /// $/TB-scan bill to decide whether bursting to CF is economical.
  double EstimatedCfCost(double work_vcpu_seconds, int workers) const {
    return work_vcpu_seconds * CfPricePerVcpuSecond() +
           static_cast<double>(workers) * cf_invocation_cost;
  }
};

/// Bytes in one terabyte (decimal, as cloud billing uses).
inline constexpr double kBytesPerTB = 1e12;

}  // namespace pixels
