#include "cloud/vm_cluster.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pixels {

VmCluster::VmCluster(SimClock* clock, Random* rng, VmClusterParams params,
                     PricingModel pricing)
    : clock_(clock),
      rng_(rng),
      params_(params),
      pricing_(pricing),
      active_vms_(std::clamp(params.initial_vms, params.min_vms,
                             params.max_vms)),
      last_accrual_(clock->Now()) {
  metrics_.Record("vms", clock_->Now(), active_vms_);
  metrics_.Record("concurrency", clock_->Now(), 0);
}

void VmCluster::Start() {
  if (monitoring_) return;
  monitoring_ = true;
  monitor_event_ = clock_->Schedule(params_.monitor_interval,
                                    [this] { MonitorTick(); });
}

void VmCluster::Stop() {
  if (!monitoring_) return;
  monitoring_ = false;
  clock_->Cancel(monitor_event_);
}

bool VmCluster::TryStartQuery() {
  if (running_queries_ >= TotalSlots()) return false;
  ++running_queries_;
  RecordConcurrencySample();
  return true;
}

void VmCluster::FinishQuery() {
  PIXELS_DCHECK(running_queries_ > 0) << "FinishQuery without running query";
  if (running_queries_ > 0) --running_queries_;
  RecordConcurrencySample();
  if (capacity_cb_) capacity_cb_();
}

void VmCluster::RecordConcurrencySample() {
  metrics_.Record("concurrency", clock_->Now(), Concurrency());
}

void VmCluster::AccrueCost() {
  const SimTime now = clock_->Now();
  if (now > last_accrual_) {
    const double seconds = static_cast<double>(now - last_accrual_) / 1000.0;
    accrued_cost_ += pricing_.VmComputeCost(
        seconds * active_vms_ * params_.vcpus_per_vm);
    last_accrual_ = now;
  }
}

double VmCluster::AccruedCostUsd() {
  AccrueCost();
  return accrued_cost_;
}

void VmCluster::MonitorTick() {
  if (!monitoring_) return;
  const SimTime now = clock_->Now();
  // Maintain the sliding concurrency window.
  concurrency_window_.push_back({now, Concurrency()});
  while (!concurrency_window_.empty() &&
         concurrency_window_.front().time < now - params_.scale_in_window) {
    concurrency_window_.pop_front();
  }

  // Inclusive comparison: the query server stops feeding relaxed queries
  // exactly at the watermark, so a strict '>' could plateau right at the
  // threshold without ever triggering the scale-out that would unblock it.
  if (Concurrency() >= params_.high_watermark &&
      active_vms_ + pending_vms_ < params_.max_vms) {
    TriggerScaleOut();
  } else {
    double avg = 0;
    for (const auto& s : concurrency_window_) avg += s.value;
    avg /= static_cast<double>(std::max<size_t>(concurrency_window_.size(), 1));
    const bool window_full =
        !concurrency_window_.empty() &&
        now - concurrency_window_.front().time >=
            params_.scale_in_window - params_.monitor_interval;
    const bool cooled =
        params_.scale_in_cooldown <= 0 || last_scale_in_ < 0 ||
        now - last_scale_in_ >= params_.scale_in_cooldown;
    if (window_full && avg < params_.low_watermark &&
        active_vms_ > params_.min_vms && cooled && deferred_backlog_ == 0) {
      TriggerScaleIn();
    }
  }
  if (deferred_backlog_ > 0) {
    metrics_.Record("deferred_backlog", now,
                    static_cast<double>(deferred_backlog_));
  }
  monitor_event_ = clock_->Schedule(params_.monitor_interval,
                                    [this] { MonitorTick(); });
}

void VmCluster::TriggerScaleOut() {
  // Target-tracking: size the cluster for the observed demand (running +
  // waiting queries) instead of creeping up one step per tick, which
  // overshoots under steady load. A saturated cluster always gets at
  // least `scale_out_step` more VMs.
  const int demand_vms = static_cast<int>(
      std::ceil(Concurrency() / std::max(params_.slots_per_vm, 1)));
  int target = demand_vms;
  if (FreeSlots() <= 0) {
    target = std::max(target,
                      active_vms_ + pending_vms_ + params_.scale_out_step);
  }
  target = std::min(target, params_.max_vms);
  const int to_add = target - active_vms_ - pending_vms_;
  if (to_add <= 0) return;
  ++scale_out_events_;
  pending_vms_ += to_add;
  metrics_.Add("scale_out_vms", to_add);
  for (int i = 0; i < to_add; ++i) {
    const SimTime delay = rng_->Uniform(params_.provision_delay_min,
                                        params_.provision_delay_max);
    clock_->Schedule(delay, [this] {
      AccrueCost();
      --pending_vms_;
      ++active_vms_;
      metrics_.Record("vms", clock_->Now(), active_vms_);
      if (capacity_cb_) capacity_cb_();
    });
  }
  PIXELS_LOG(kDebug) << "scale-out: +" << to_add << " VMs (active "
                     << active_vms_ << ", pending " << pending_vms_ << ")";
}

void VmCluster::TriggerScaleIn() {
  AccrueCost();
  // Release one VM gracefully; never drop below running queries' needs.
  const int min_for_load = (running_queries_ + params_.slots_per_vm - 1) /
                           std::max(params_.slots_per_vm, 1);
  if (active_vms_ - 1 < std::max(params_.min_vms, min_for_load)) return;
  --active_vms_;
  ++scale_in_events_;
  last_scale_in_ = clock_->Now();
  metrics_.Add("scale_in_vms", 1);
  metrics_.Record("vms", clock_->Now(), active_vms_);
  PIXELS_LOG(kDebug) << "scale-in: -1 VM (active " << active_vms_ << ")";
}

}  // namespace pixels
