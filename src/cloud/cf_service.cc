#include "cloud/cf_service.h"

#include <algorithm>
#include <cmath>

namespace pixels {

CfService::CfService(SimClock* clock, Random* rng, CfServiceParams params,
                     PricingModel pricing)
    : clock_(clock), rng_(rng), params_(params), pricing_(pricing) {}

CfInvocationResult CfService::Invoke(int workers, double work_vcpu_seconds,
                                     std::function<void()> done) {
  CfInvocationResult result;
  workers = std::max(workers, 1);
  result.workers = workers;
  result.startup_latency =
      rng_->Uniform(params_.startup_min, params_.startup_max);

  const double per_worker_vcpu_seconds =
      work_vcpu_seconds / static_cast<double>(workers);
  SimTime run_ms = static_cast<SimTime>(std::ceil(
      per_worker_vcpu_seconds / params_.vcpus_per_worker * 1000.0));
  run_ms = std::min(run_ms, params_.max_duration);
  result.run_duration = run_ms;

  for (int w = 0; w < workers; ++w) {
    result.cost_usd += pricing_.CfInvocationCost(params_.vcpus_per_worker,
                                                 run_ms);
  }
  accrued_cost_ += result.cost_usd;
  total_invocations_ += workers;
  in_flight_ += workers;
  metrics_.Record("cf_in_flight", clock_->Now(), in_flight_);

  const SimTime total = result.startup_latency + result.run_duration;
  clock_->Schedule(total, [this, workers, cb = std::move(done)] {
    in_flight_ -= workers;
    metrics_.Record("cf_in_flight", clock_->Now(), in_flight_);
    if (cb) cb();
  });
  return result;
}

}  // namespace pixels
