#include "cloud/pricing.h"

namespace pixels {

double PricingModel::CfInvocationCost(double vcpus, int64_t duration_ms) const {
  int64_t quantum = cf_billing_quantum_ms > 0 ? cf_billing_quantum_ms : 1;
  int64_t billed_ms = ((duration_ms + quantum - 1) / quantum) * quantum;
  double vcpu_seconds = vcpus * static_cast<double>(billed_ms) / 1000.0;
  return cf_invocation_cost + vcpu_seconds * CfPricePerVcpuSecond();
}

}  // namespace pixels
