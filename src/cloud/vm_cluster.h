// Simulated auto-scaled VM cluster (paper §3.1). VMs take 1-2 minutes to
// provision; the autoscaler monitors query concurrency against a high
// watermark (scale out) and a low watermark over an observation window
// (lazy scale in, paper §3.2 footnote 2).
#pragma once

#include <deque>
#include <functional>

#include "cloud/metrics.h"
#include "cloud/pricing.h"
#include "common/random.h"
#include "common/sim_clock.h"

namespace pixels {

/// Cluster sizing, scaling, and scheduling parameters.
struct VmClusterParams {
  int vcpus_per_vm = 8;
  /// Concurrent query slots per VM.
  int slots_per_vm = 4;
  int initial_vms = 2;
  int min_vms = 1;
  int max_vms = 64;
  /// Provisioning lag, uniform in [min, max] (paper: 1-2 minutes).
  SimTime provision_delay_min = 60 * kSeconds;
  SimTime provision_delay_max = 120 * kSeconds;
  /// Scale-out trigger: cluster-wide running query concurrency above this
  /// (paper example: 5).
  double high_watermark = 5.0;
  /// Scale-in trigger: average concurrency within the observation window
  /// below this (paper example: 0.75).
  double low_watermark = 0.75;
  /// Concurrency sampling / scaling decision interval.
  SimTime monitor_interval = 5 * kSeconds;
  /// Observation window for the scale-in average.
  SimTime scale_in_window = 60 * kSeconds;
  /// Lazy scale-in: minimum time between scale-in events (0 = eager).
  SimTime scale_in_cooldown = 120 * kSeconds;
  /// VMs added per scale-out event.
  int scale_out_step = 2;
};

/// Discrete-event VM cluster simulator. The coordinator drives it via
/// TryStartQuery/FinishQuery; the autoscaler runs on the clock.
class VmCluster {
 public:
  VmCluster(SimClock* clock, Random* rng, VmClusterParams params,
            PricingModel pricing);

  /// Begins the monitor loop; must be called once before the simulation runs.
  void Start();

  /// Stops monitoring (ends the periodic event so RunAll terminates).
  void Stop();

  /// Claims a query slot if one is free. Returns false when saturated.
  bool TryStartQuery();

  /// Releases a slot claimed by TryStartQuery. Invokes the idle callback
  /// so the coordinator can dequeue waiting queries.
  void FinishQuery();

  /// Called whenever capacity may have become available (query finished
  /// or VMs provisioned).
  void SetCapacityAvailableCallback(std::function<void()> cb) {
    capacity_cb_ = std::move(cb);
  }

  int num_vms() const { return active_vms_; }
  int pending_vms() const { return pending_vms_; }
  int running_queries() const { return running_queries_; }
  int TotalSlots() const { return active_vms_ * params_.slots_per_vm; }
  int FreeSlots() const { return TotalSlots() - running_queries_; }

  /// Reports the number of admitted-but-waiting queries (the coordinator's
  /// queue). Included in the watermark metric so sustained backlog drives
  /// scale-out even when every slot is busy.
  void SetBacklog(int backlog) { backlog_ = backlog < 0 ? 0 : backlog; }
  int backlog() const { return backlog_; }

  /// Deferred demand: best-effort queries held by the query server. A
  /// separate signal from `backlog` on purpose — it must NOT count into
  /// Concurrency() (best-effort work gates itself on the low watermark,
  /// so its own holds would keep the gate closed forever) but it blocks
  /// scale-in: an idle-looking cluster with deferred work pending is
  /// about to be used.
  void SetDeferredBacklog(int n) { deferred_backlog_ = n < 0 ? 0 : n; }
  int deferred_backlog() const { return deferred_backlog_; }

  /// Cluster-wide query concurrency (running + waiting), the watermark
  /// metric of paper §3.1.
  double Concurrency() const {
    return static_cast<double>(running_queries_ + backlog_);
  }

  bool AboveHighWatermark() const {
    return Concurrency() >= params_.high_watermark;
  }
  bool BelowLowWatermark() const {
    return Concurrency() < params_.low_watermark;
  }

  /// Accrued VM cost (integrates active VMs over virtual time).
  double AccruedCostUsd();

  /// Cumulative scale events.
  int scale_out_events() const { return scale_out_events_; }
  int scale_in_events() const { return scale_in_events_; }

  const VmClusterParams& params() const { return params_; }
  MetricsRegistry& metrics() { return metrics_; }

 private:
  void MonitorTick();
  void TriggerScaleOut();
  void TriggerScaleIn();
  void AccrueCost();
  void RecordConcurrencySample();

  SimClock* clock_;
  Random* rng_;
  VmClusterParams params_;
  PricingModel pricing_;

  int active_vms_;
  int pending_vms_ = 0;
  int running_queries_ = 0;
  int backlog_ = 0;
  int deferred_backlog_ = 0;

  bool monitoring_ = false;
  uint64_t monitor_event_ = 0;
  std::deque<Sample> concurrency_window_;
  SimTime last_scale_in_ = -1;
  int scale_out_events_ = 0;
  int scale_in_events_ = 0;

  SimTime last_accrual_ = 0;
  double accrued_cost_ = 0;

  std::function<void()> capacity_cb_;
  MetricsRegistry metrics_;
};

}  // namespace pixels
