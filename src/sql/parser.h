// Recursive-descent SQL parser producing SelectStmt ASTs.
#pragma once

#include "common/result.h"
#include "sql/ast.h"

namespace pixels {

/// Parses one SELECT statement (optionally terminated by nothing else).
/// Supported grammar: SELECT [DISTINCT] items FROM table [AS a]
/// ([LEFT|CROSS] JOIN table [AS b] [ON expr])* [WHERE expr]
/// [GROUP BY exprs] [HAVING expr] [ORDER BY expr [ASC|DESC], ...]
/// [LIMIT n], with full scalar/aggregate expressions, BETWEEN, IN, LIKE,
/// IS [NOT] NULL, CASE, and DATE 'yyyy-mm-dd' literals.
Result<SelectStmtPtr> ParseSelect(const std::string& sql);

/// Parses a standalone scalar expression (used in tests and by the NL
/// benchmark's equivalence checks).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace pixels
