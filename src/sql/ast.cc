#include "sql/ast.h"

namespace pixels {

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->name = std::move(name);
  return e;
}

ExprPtr MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kStar;
  return e;
}

ExprPtr MakeUnary(std::string op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kUnary;
  e->op = std::move(op);
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->op = std::move(op);
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kFunction;
  e->name = std::move(name);
  e->args = std::move(args);
  return e;
}

bool IsAggregateFunction(const std::string& name) {
  return name == "sum" || name == "avg" || name == "count" || name == "min" ||
         name == "max";
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->qualifier = qualifier;
  e->name = name;
  e->op = op;
  e->negated = negated;
  e->distinct = distinct;
  e->has_else = has_else;
  for (const auto& a : args) e->args.push_back(a->Clone());
  return e;
}

bool Expr::ContainsAggregate() const {
  if (kind == Kind::kFunction && IsAggregateFunction(name)) return true;
  for (const auto& a : args) {
    if (a->ContainsAggregate()) return true;
  }
  return false;
}

bool Expr::Equals(const Expr& other) const {
  if (kind != other.kind || qualifier != other.qualifier ||
      name != other.name || op != other.op || negated != other.negated ||
      distinct != other.distinct || has_else != other.has_else ||
      args.size() != other.args.size()) {
    return false;
  }
  // For literals, numeric kinds compare by value (1 == 1.0); NULL equals
  // NULL structurally.
  if (kind == Kind::kLiteral && literal.Compare(other.literal) != 0) {
    return false;
  }
  for (size_t i = 0; i < args.size(); ++i) {
    if (!args[i]->Equals(*other.args[i])) return false;
  }
  return true;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kColumnRef:
      return QualifiedName();
    case Kind::kStar:
      return "*";
    case Kind::kUnary:
      if (op == "NOT") return "(NOT " + args[0]->ToString() + ")";
      return "(" + op + args[0]->ToString() + ")";
    case Kind::kBinary:
      return "(" + args[0]->ToString() + " " + op + " " + args[1]->ToString() +
             ")";
    case Kind::kFunction: {
      std::string s = name + "(";
      if (distinct) s += "DISTINCT ";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) s += ", ";
        s += args[i]->ToString();
      }
      return s + ")";
    }
    case Kind::kBetween:
      return "(" + args[0]->ToString() + (negated ? " NOT" : "") + " BETWEEN " +
             args[1]->ToString() + " AND " + args[2]->ToString() + ")";
    case Kind::kInList: {
      std::string s = "(" + args[0]->ToString() + (negated ? " NOT" : "") +
                      " IN (";
      for (size_t i = 1; i < args.size(); ++i) {
        if (i > 1) s += ", ";
        s += args[i]->ToString();
      }
      return s + "))";
    }
    case Kind::kIsNull:
      return "(" + args[0]->ToString() + " IS " + (negated ? "NOT " : "") +
             "NULL)";
    case Kind::kCase: {
      std::string s = "CASE";
      size_t pairs = (args.size() - (has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        s += " WHEN " + args[2 * i]->ToString() + " THEN " +
             args[2 * i + 1]->ToString();
      }
      if (has_else) s += " ELSE " + args.back()->ToString();
      return s + " END";
    }
  }
  return "?";
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto out = std::make_unique<SelectStmt>();
  out->distinct = distinct;
  for (const auto& item : items) {
    out->items.push_back(SelectItem{item.expr->Clone(), item.alias});
  }
  out->has_from = has_from;
  out->from = from;
  for (const auto& j : joins) {
    JoinClause jc;
    jc.type = j.type;
    jc.table = j.table;
    jc.on = j.on ? j.on->Clone() : nullptr;
    out->joins.push_back(std::move(jc));
  }
  out->where = where ? where->Clone() : nullptr;
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  out->having = having ? having->Clone() : nullptr;
  for (const auto& o : order_by) {
    out->order_by.push_back(OrderItem{o.expr->Clone(), o.ascending});
  }
  out->limit = limit;
  return out;
}

std::string SelectStmt::ToString() const {
  std::string s = "SELECT ";
  if (distinct) s += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) s += ", ";
    s += items[i].expr->ToString();
    if (!items[i].alias.empty()) s += " AS " + items[i].alias;
  }
  if (has_from) {
    s += " FROM " + from.table;
    if (!from.alias.empty()) s += " AS " + from.alias;
    for (const auto& j : joins) {
      switch (j.type) {
        case JoinClause::Type::kInner:
          s += " JOIN ";
          break;
        case JoinClause::Type::kLeft:
          s += " LEFT JOIN ";
          break;
        case JoinClause::Type::kCross:
          s += " CROSS JOIN ";
          break;
      }
      s += j.table.table;
      if (!j.table.alias.empty()) s += " AS " + j.table.alias;
      if (j.on) s += " ON " + j.on->ToString();
    }
  }
  if (where) s += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    s += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) s += ", ";
      s += group_by[i]->ToString();
    }
  }
  if (having) s += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    s += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) s += ", ";
      s += order_by[i].expr->ToString();
      s += order_by[i].ascending ? " ASC" : " DESC";
    }
  }
  if (limit >= 0) s += " LIMIT " + std::to_string(limit);
  return s;
}

}  // namespace pixels
