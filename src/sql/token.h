// SQL token model shared by the lexer and parser.
#pragma once

#include <cstdint>
#include <string>

namespace pixels {

enum class TokenType : uint8_t {
  kEof = 0,
  kIdentifier,   // unquoted or "quoted"
  kKeyword,      // normalized to upper case
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  // contents without quotes
  kOperator,       // = <> < <= > >= + - * / % || . , ( )
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;    // normalized text (keywords upper, identifiers lower)
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;  // byte offset in the input, for error messages

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsOp(const char* op) const {
    return type == TokenType::kOperator && text == op;
  }
};

}  // namespace pixels
