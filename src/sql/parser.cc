#include "sql/parser.h"

#include "sql/lexer.h"

namespace pixels {

namespace {

/// Token-stream parser. Grammar layering (loosest to tightest):
/// or_expr > and_expr > not_expr > comparison > additive > multiplicative
/// > unary > primary.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStmtPtr> ParseSelectStmt() {
    PIXELS_ASSIGN_OR_RETURN(SelectStmtPtr stmt, ParseSelectBody());
    if (!Peek().IsOp(")") && Peek().type != TokenType::kEof) {
      return Err("unexpected token '" + Peek().text + "' after statement");
    }
    return stmt;
  }

  Result<ExprPtr> ParseStandaloneExpr() {
    PIXELS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().type != TokenType::kEof) {
      return Err("unexpected token '" + Peek().text + "' after expression");
    }
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool ConsumeKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeOp(const char* op) {
    if (Peek().IsOp(op)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " (at offset " +
                              std::to_string(Peek().offset) + ")");
  }

  Status ExpectKeyword(const char* kw) {
    if (!ConsumeKeyword(kw)) {
      return Err(std::string("expected ") + kw + ", got '" + Peek().text + "'");
    }
    return Status::OK();
  }
  Status ExpectOp(const char* op) {
    if (!ConsumeOp(op)) {
      return Err(std::string("expected '") + op + "', got '" + Peek().text +
                 "'");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Err("expected identifier, got '" + Peek().text + "'");
    }
    return Advance().text;
  }

  Result<SelectStmtPtr> ParseSelectBody() {
    PIXELS_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    auto stmt = std::make_unique<SelectStmt>();
    stmt->distinct = ConsumeKeyword("DISTINCT");
    if (ConsumeKeyword("ALL")) {
      // SELECT ALL is the default.
    }
    // Select list.
    while (true) {
      SelectItem item;
      if (Peek().IsOp("*")) {
        Advance();
        item.expr = MakeStar();
      } else {
        PIXELS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      if (ConsumeKeyword("AS")) {
        PIXELS_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      } else if (Peek().type == TokenType::kIdentifier) {
        // Bare alias.
        item.alias = Advance().text;
      }
      stmt->items.push_back(std::move(item));
      if (!ConsumeOp(",")) break;
    }
    // FROM.
    if (ConsumeKeyword("FROM")) {
      stmt->has_from = true;
      PIXELS_ASSIGN_OR_RETURN(stmt->from, ParseTableRef());
      // JOIN chain; comma = cross join.
      while (true) {
        JoinClause join;
        if (ConsumeOp(",")) {
          join.type = JoinClause::Type::kCross;
        } else if (ConsumeKeyword("CROSS")) {
          PIXELS_RETURN_NOT_OK(ExpectKeyword("JOIN"));
          join.type = JoinClause::Type::kCross;
        } else if (ConsumeKeyword("LEFT")) {
          ConsumeKeyword("OUTER");
          PIXELS_RETURN_NOT_OK(ExpectKeyword("JOIN"));
          join.type = JoinClause::Type::kLeft;
        } else if (ConsumeKeyword("INNER")) {
          PIXELS_RETURN_NOT_OK(ExpectKeyword("JOIN"));
          join.type = JoinClause::Type::kInner;
        } else if (ConsumeKeyword("JOIN")) {
          join.type = JoinClause::Type::kInner;
        } else {
          break;
        }
        PIXELS_ASSIGN_OR_RETURN(join.table, ParseTableRef());
        if (join.type != JoinClause::Type::kCross) {
          PIXELS_RETURN_NOT_OK(ExpectKeyword("ON"));
          PIXELS_ASSIGN_OR_RETURN(join.on, ParseExpr());
        }
        stmt->joins.push_back(std::move(join));
      }
    }
    if (ConsumeKeyword("WHERE")) {
      PIXELS_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (ConsumeKeyword("GROUP")) {
      PIXELS_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        PIXELS_ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
        stmt->group_by.push_back(std::move(g));
        if (!ConsumeOp(",")) break;
      }
    }
    if (ConsumeKeyword("HAVING")) {
      PIXELS_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (ConsumeKeyword("ORDER")) {
      PIXELS_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        PIXELS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) {
          item.ascending = false;
        } else {
          ConsumeKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
        if (!ConsumeOp(",")) break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().type != TokenType::kIntLiteral) {
        return Err("LIMIT expects an integer");
      }
      stmt->limit = Advance().int_value;
      if (stmt->limit < 0) return Err("LIMIT must be non-negative");
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    PIXELS_ASSIGN_OR_RETURN(ref.table, ExpectIdentifier());
    if (ConsumeKeyword("AS")) {
      PIXELS_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    PIXELS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (ConsumeKeyword("OR")) {
      PIXELS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary("OR", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    PIXELS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (ConsumeKeyword("AND")) {
      PIXELS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary("AND", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      PIXELS_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeUnary("NOT", std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    PIXELS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    // IS [NOT] NULL.
    if (ConsumeKeyword("IS")) {
      bool negated = ConsumeKeyword("NOT");
      PIXELS_RETURN_NOT_OK(ExpectKeyword("NULL"));
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kIsNull;
      e->negated = negated;
      e->args.push_back(std::move(lhs));
      return e;
    }
    bool negated = false;
    if (Peek().IsKeyword("NOT") &&
        (Peek(1).IsKeyword("BETWEEN") || Peek(1).IsKeyword("IN") ||
         Peek(1).IsKeyword("LIKE"))) {
      Advance();
      negated = true;
    }
    if (ConsumeKeyword("BETWEEN")) {
      PIXELS_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      PIXELS_RETURN_NOT_OK(ExpectKeyword("AND"));
      PIXELS_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kBetween;
      e->negated = negated;
      e->args.push_back(std::move(lhs));
      e->args.push_back(std::move(lo));
      e->args.push_back(std::move(hi));
      return e;
    }
    if (ConsumeKeyword("IN")) {
      PIXELS_RETURN_NOT_OK(ExpectOp("("));
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kInList;
      e->negated = negated;
      e->args.push_back(std::move(lhs));
      while (true) {
        PIXELS_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        e->args.push_back(std::move(item));
        if (!ConsumeOp(",")) break;
      }
      PIXELS_RETURN_NOT_OK(ExpectOp(")"));
      return e;
    }
    if (ConsumeKeyword("LIKE")) {
      PIXELS_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
      ExprPtr like = MakeBinary("LIKE", std::move(lhs), std::move(pattern));
      if (negated) return MakeUnary("NOT", std::move(like));
      return like;
    }
    if (negated) return Err("dangling NOT");
    static const char* kCompOps[] = {"=", "<>", "<", "<=", ">", ">="};
    for (const char* op : kCompOps) {
      if (Peek().IsOp(op)) {
        Advance();
        PIXELS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return MakeBinary(op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    PIXELS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Peek().IsOp("+") || Peek().IsOp("-") || Peek().IsOp("||")) {
      std::string op = Advance().text;
      PIXELS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    PIXELS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Peek().IsOp("*") || Peek().IsOp("/") || Peek().IsOp("%")) {
      std::string op = Advance().text;
      PIXELS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (ConsumeOp("-")) {
      PIXELS_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      // Fold negative literals.
      if (operand->kind == Expr::Kind::kLiteral &&
          operand->literal.kind == Value::Kind::kInt) {
        operand->literal.i = -operand->literal.i;
        return operand;
      }
      if (operand->kind == Expr::Kind::kLiteral &&
          operand->literal.kind == Value::Kind::kDouble) {
        operand->literal.d = -operand->literal.d;
        return operand;
      }
      return MakeUnary("-", std::move(operand));
    }
    if (ConsumeOp("+")) return ParseUnary();
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kIntLiteral:
        Advance();
        return MakeLiteral(Value::Int(tok.int_value));
      case TokenType::kDoubleLiteral:
        Advance();
        return MakeLiteral(Value::Double(tok.double_value));
      case TokenType::kStringLiteral:
        Advance();
        return MakeLiteral(Value::String(tok.text));
      case TokenType::kKeyword: {
        if (ConsumeKeyword("NULL")) return MakeLiteral(Value::Null());
        if (ConsumeKeyword("TRUE")) return MakeLiteral(Value::Bool(true));
        if (ConsumeKeyword("FALSE")) return MakeLiteral(Value::Bool(false));
        if (ConsumeKeyword("DATE")) {
          // DATE 'yyyy-mm-dd' literal → int days since epoch.
          if (Peek().type != TokenType::kStringLiteral) {
            return Err("DATE expects a string literal");
          }
          PIXELS_ASSIGN_OR_RETURN(int32_t days, ParseDate(Advance().text));
          return MakeLiteral(Value::Int(days));
        }
        if (ConsumeKeyword("CASE")) return ParseCase();
        if (ConsumeKeyword("CAST")) {
          // CAST(expr AS type) — parsed, represented as function cast_<type>.
          PIXELS_RETURN_NOT_OK(ExpectOp("("));
          PIXELS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          PIXELS_RETURN_NOT_OK(ExpectKeyword("AS"));
          PIXELS_ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier());
          PIXELS_RETURN_NOT_OK(ExpectOp(")"));
          std::vector<ExprPtr> args;
          args.push_back(std::move(inner));
          return MakeFunction("cast_" + type_name, std::move(args));
        }
        return Err("unexpected keyword '" + tok.text + "'");
      }
      case TokenType::kIdentifier: {
        std::string first = Advance().text;
        // Function call?
        if (Peek().IsOp("(")) {
          Advance();
          auto fn = std::make_unique<Expr>();
          fn->kind = Expr::Kind::kFunction;
          fn->name = first;
          if (ConsumeKeyword("DISTINCT")) fn->distinct = true;
          if (!Peek().IsOp(")")) {
            while (true) {
              if (Peek().IsOp("*")) {
                Advance();
                fn->args.push_back(MakeStar());
              } else {
                PIXELS_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
                fn->args.push_back(std::move(arg));
              }
              if (!ConsumeOp(",")) break;
            }
          }
          PIXELS_RETURN_NOT_OK(ExpectOp(")"));
          return fn;
        }
        // Qualified column: a.b.
        if (ConsumeOp(".")) {
          if (Peek().IsOp("*")) {
            return Err("qualified * is not supported");
          }
          PIXELS_ASSIGN_OR_RETURN(std::string second, ExpectIdentifier());
          return MakeColumnRef(first, second);
        }
        return MakeColumnRef("", first);
      }
      case TokenType::kOperator:
        if (ConsumeOp("(")) {
          // Subquery or parenthesized expression.
          if (Peek().IsKeyword("SELECT")) {
            return Err("subqueries are not supported");
          }
          PIXELS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          PIXELS_RETURN_NOT_OK(ExpectOp(")"));
          return inner;
        }
        return Err("unexpected token '" + tok.text + "'");
      case TokenType::kEof:
        return Err("unexpected end of input");
    }
    return Err("unexpected token");
  }

  Result<ExprPtr> ParseCase() {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kCase;
    while (ConsumeKeyword("WHEN")) {
      PIXELS_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
      PIXELS_RETURN_NOT_OK(ExpectKeyword("THEN"));
      PIXELS_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
      e->args.push_back(std::move(when));
      e->args.push_back(std::move(then));
    }
    if (e->args.empty()) return Err("CASE needs at least one WHEN");
    if (ConsumeKeyword("ELSE")) {
      PIXELS_ASSIGN_OR_RETURN(ExprPtr els, ParseExpr());
      e->args.push_back(std::move(els));
      e->has_else = true;
    }
    PIXELS_RETURN_NOT_OK(ExpectKeyword("END"));
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStmtPtr> ParseSelect(const std::string& sql) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  return Parser(std::move(tokens)).ParseSelectStmt();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  PIXELS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return Parser(std::move(tokens)).ParseStandaloneExpr();
}

}  // namespace pixels
