// SQL abstract syntax tree: expressions and the SELECT statement.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "format/type.h"

namespace pixels {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// A SQL expression node. One struct with a kind tag keeps the tree
/// cheap to clone and print; children live in `args`.
struct Expr {
  enum class Kind : uint8_t {
    kLiteral,    // literal (Value)
    kColumnRef,  // [qualifier.]name
    kStar,       // * (only valid in SELECT list and COUNT(*))
    kUnary,      // op in {"-", "NOT"}; args[0]
    kBinary,     // op in {+,-,*,/,%,=,<>,<,<=,>,>=,AND,OR,LIKE,||}; args[0,1]
    kFunction,   // name(args...); aggregates: sum,avg,count,min,max
    kBetween,    // args[0] BETWEEN args[1] AND args[2]; `negated`
    kInList,     // args[0] IN (args[1..]); `negated`
    kIsNull,     // args[0] IS [NOT] NULL; `negated`
    kCase,       // CASE WHEN a THEN b [WHEN..] [ELSE e] END;
                 // args = [when1, then1, when2, then2, ..., else?]; `has_else`
  };

  Kind kind;
  Value literal;           // kLiteral
  std::string qualifier;   // kColumnRef (may be empty)
  std::string name;        // kColumnRef column / kFunction name (lower case)
  std::string op;          // kUnary / kBinary
  std::vector<ExprPtr> args;
  bool negated = false;    // NOT BETWEEN / NOT IN / IS NOT NULL
  bool distinct = false;   // COUNT(DISTINCT x)
  bool has_else = false;   // kCase

  /// Fully qualified column name ("q.name" or "name").
  std::string QualifiedName() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }

  /// Deep copy.
  ExprPtr Clone() const;

  /// SQL-ish rendering (parenthesized, lossless for round-trip tests).
  std::string ToString() const;

  /// True when this subtree contains an aggregate function call.
  bool ContainsAggregate() const;

  /// Structural equality.
  bool Equals(const Expr& other) const;
};

/// Factory helpers.
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string name);
ExprPtr MakeStar();
ExprPtr MakeUnary(std::string op, ExprPtr operand);
ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args);

/// True when `name` (lower case) is an aggregate function.
bool IsAggregateFunction(const std::string& name);

/// One SELECT-list item.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty when none
};

/// A base table reference with optional alias.
struct TableRef {
  std::string table;
  std::string alias;  // empty when none

  /// The name other clauses refer to this table by.
  const std::string& EffectiveName() const { return alias.empty() ? table : alias; }
};

/// One JOIN clause following the first FROM table.
struct JoinClause {
  enum class Type : uint8_t { kInner, kLeft, kCross };
  Type type = Type::kInner;
  TableRef table;
  ExprPtr on;  // null for cross joins
};

/// ORDER BY item.
struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

/// A parsed SELECT statement.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  bool has_from = false;
  TableRef from;
  std::vector<JoinClause> joins;
  ExprPtr where;   // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // may be null
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit

  /// SQL rendering (canonical form used by tests and the NL service).
  std::string ToString() const;

  /// Deep copy.
  std::unique_ptr<SelectStmt> Clone() const;
};

using SelectStmtPtr = std::unique_ptr<SelectStmt>;

}  // namespace pixels
