// SQL lexer: turns query text into a token stream.
#pragma once

#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace pixels {

/// Tokenizes `sql`. Keywords are recognized case-insensitively and
/// normalized to upper case; unquoted identifiers are lower-cased
/// (standard SQL folding); the final token is always kEof.
Result<std::vector<Token>> Tokenize(const std::string& sql);

/// True when `word` (upper case) is a reserved SQL keyword.
bool IsReservedKeyword(const std::string& word);

}  // namespace pixels
