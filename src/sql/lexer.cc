#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <set>

namespace pixels {

namespace {
const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "SELECT", "FROM",    "WHERE",  "GROUP",    "BY",       "HAVING",
      "ORDER",  "LIMIT",   "AS",     "AND",      "OR",       "NOT",
      "JOIN",   "INNER",   "LEFT",   "RIGHT",    "OUTER",    "CROSS",
      "ON",     "ASC",     "DESC",   "DISTINCT", "BETWEEN",  "IN",
      "IS",     "NULL",    "LIKE",   "TRUE",     "FALSE",    "CASE",
      "WHEN",   "THEN",    "ELSE",   "END",      "CAST",     "DATE",
      "INTERVAL", "EXISTS", "UNION",  "ALL",     "OFFSET",   "EXPLAIN",
  };
  return kKeywords;
}
}  // namespace

bool IsReservedKeyword(const std::string& word) {
  return Keywords().count(word) > 0;
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string upper = word;
      for (auto& ch : upper) ch = static_cast<char>(std::toupper(ch));
      if (Keywords().count(upper) > 0) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        for (auto& ch : word) ch = static_cast<char>(std::tolower(ch));
        tok.text = word;
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    // Quoted identifiers.
    if (c == '"') {
      size_t start = ++i;
      while (i < n && sql[i] != '"') ++i;
      if (i >= n) {
        return Status::ParseError("unterminated quoted identifier at offset " +
                                  std::to_string(tok.offset));
      }
      tok.type = TokenType::kIdentifier;
      tok.text = sql.substr(start, i - start);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    // String literals with '' escape.
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(sql[i++]);
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(tok.offset));
      }
      tok.type = TokenType::kStringLiteral;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string text = sql.substr(start, i - start);
      if (is_double) {
        tok.type = TokenType::kDoubleLiteral;
        tok.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        tok.type = TokenType::kIntLiteral;
        tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Operators and punctuation.
    tok.type = TokenType::kOperator;
    std::string two = (i + 1 < n) ? sql.substr(i, 2) : "";
    if (two == "<=" || two == ">=" || two == "<>" || two == "!=" ||
        two == "||") {
      tok.text = two == "!=" ? "<>" : two;
      i += 2;
    } else if (std::string("=<>+-*/%.,()").find(c) != std::string::npos) {
      tok.text = std::string(1, c);
      ++i;
    } else {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at offset " + std::to_string(i));
    }
    tokens.push_back(std::move(tok));
  }
  Token eof;
  eof.type = TokenType::kEof;
  eof.offset = n;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace pixels
