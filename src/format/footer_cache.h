// Process-wide cache of parsed .pxl footers. Opening a Pixels object
// costs a Size() probe plus one or two tail GETs; the coordinator
// re-plans, CF workers re-open, and repeated queries re-open the same
// objects constantly, so a warm footer turns every one of those opens
// into zero GETs. Invalidation is twofold: size-based (Get() takes the
// current object size and drops a stale entry whose size changed) and
// explicit (`PixelsWriter::Finish` invalidates the object it overwrites,
// which also covers same-size rewrites).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "format/file_format.h"

namespace pixels {

class Storage;

/// Counter snapshot.
struct FooterCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;
  uint64_t entries = 0;
};

/// Thread-safe LRU of parsed footers, keyed by (storage instance, path).
class FooterCache {
 public:
  /// `capacity` is an entry count; footers are metadata-sized.
  explicit FooterCache(size_t capacity = 1024) : capacity_(capacity) {}

  /// Returns the cached footer if present AND the object size still
  /// matches `expected_size`; a size mismatch invalidates the entry.
  std::shared_ptr<const FileFooter> Get(const Storage* storage,
                                        const std::string& path,
                                        uint64_t expected_size);

  void Put(const Storage* storage, const std::string& path,
           uint64_t file_size, std::shared_ptr<const FileFooter> footer);

  /// Drops one object's entry (called by the writer on overwrite).
  void Invalidate(const Storage* storage, const std::string& path);

  /// Drops everything (tests and cold-run benches).
  void Clear();

  FooterCacheStats stats() const;

  /// The process-wide instance every `PixelsReader::Open` consults
  /// (unless `IoOptions::use_footer_cache` is off).
  static FooterCache* Shared();

 private:
  struct Key {
    const Storage* storage;
    std::string path;
    bool operator==(const Key& other) const {
      return storage == other.storage && path == other.path;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<std::string>()(k.path) ^
             std::hash<const void*>()(k.storage);
    }
  };
  struct Entry {
    Key key;
    uint64_t file_size;
    std::shared_ptr<const FileFooter> footer;
  };

  size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace pixels
