#include "format/reader.h"

#include <algorithm>
#include <cstring>

#include "format/compare.h"
#include "format/encoding.h"
#include "format/footer_cache.h"

namespace pixels {

namespace {
/// Speculative tail-read size for Open: one read covers trailer + footer
/// for all but very wide / very fragmented files.
constexpr uint64_t kFooterTailReadBytes = 8 * 1024;
}  // namespace

PixelsReader::PixelsReader(Storage* storage, std::string path,
                           std::shared_ptr<const FileFooter> footer,
                           uint64_t file_size, const IoOptions& io)
    : storage_(storage),
      path_(std::move(path)),
      footer_(std::move(footer)),
      file_size_(file_size),
      io_(io) {
  column_index_.reserve(footer_->schema.size());
  for (size_t i = 0; i < footer_->schema.size(); ++i) {
    column_index_.emplace(footer_->schema[i].name, static_cast<int>(i));
  }
}

Result<std::unique_ptr<PixelsReader>> PixelsReader::Open(
    Storage* storage, const std::string& path) {
  return Open(storage, path, IoOptions{});
}

Result<std::unique_ptr<PixelsReader>> PixelsReader::Open(
    Storage* storage, const std::string& path, const IoOptions& io) {
  PIXELS_ASSIGN_OR_RETURN(uint64_t size, storage->Size(path));
  const uint64_t trailer_len = sizeof(uint64_t) + sizeof(kPixelsMagic);
  if (size < sizeof(kPixelsMagic) + trailer_len) {
    return Status::Corruption("file too small: " + path);
  }

  std::shared_ptr<const FileFooter> footer;
  if (io.use_footer_cache) {
    footer = FooterCache::Shared()->Get(storage, path, size);
  }
  if (footer == nullptr) {
    // Speculative tail read: trailer + footer in one request for all but
    // oversized footers.
    const uint64_t tail_len = std::min(size, kFooterTailReadBytes);
    const uint64_t tail_start = size - tail_len;
    PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> tail,
                            storage->ReadRange(path, tail_start, tail_len));
    if (std::memcmp(tail.data() + tail_len - sizeof(kPixelsMagic),
                    kPixelsMagic, sizeof(kPixelsMagic)) != 0) {
      return Status::Corruption("bad trailing magic: " + path);
    }
    uint64_t footer_offset;
    std::memcpy(&footer_offset, tail.data() + tail_len - trailer_len,
                sizeof(uint64_t));
    if (footer_offset < sizeof(kPixelsMagic) ||
        footer_offset >= size - trailer_len) {
      return Status::Corruption("bad footer offset: " + path);
    }
    const uint64_t footer_len = size - trailer_len - footer_offset;
    FileFooter parsed;
    if (footer_offset >= tail_start) {
      // Footer fully inside the tail read (the common case).
      ByteReader reader(tail.data() + (footer_offset - tail_start),
                        footer_len);
      PIXELS_ASSIGN_OR_RETURN(parsed, FileFooter::Deserialize(&reader));
    } else {
      // Oversized footer: fetch the part before the tail and stitch.
      PIXELS_ASSIGN_OR_RETURN(
          std::vector<uint8_t> head,
          storage->ReadRange(path, footer_offset, tail_start - footer_offset));
      head.insert(head.end(), tail.begin(), tail.end() - trailer_len);
      ByteReader reader(head);
      PIXELS_ASSIGN_OR_RETURN(parsed, FileFooter::Deserialize(&reader));
    }
    footer = std::make_shared<const FileFooter>(std::move(parsed));
    if (io.use_footer_cache) {
      FooterCache::Shared()->Put(storage, path, size, footer);
    }
  }
  return std::unique_ptr<PixelsReader>(
      new PixelsReader(storage, path, std::move(footer), size, io));
}

Result<int> PixelsReader::ColumnIndex(const std::string& name) const {
  auto it = column_index_.find(name);
  if (it == column_index_.end()) {
    return Status::NotFound("no column '" + name + "' in " + path_);
  }
  return it->second;
}

Result<std::vector<int>> PixelsReader::ResolveColumns(
    const std::vector<std::string>& columns) const {
  std::vector<int> col_indexes;
  if (columns.empty()) {
    col_indexes.reserve(footer_->schema.size());
    for (size_t i = 0; i < footer_->schema.size(); ++i) {
      col_indexes.push_back(static_cast<int>(i));
    }
  } else {
    col_indexes.reserve(columns.size());
    for (const auto& name : columns) {
      PIXELS_ASSIGN_OR_RETURN(int idx, ColumnIndex(name));
      col_indexes.push_back(idx);
    }
  }
  return col_indexes;
}

Result<ColumnStats> PixelsReader::FileStats(const std::string& column) const {
  PIXELS_ASSIGN_OR_RETURN(int idx, ColumnIndex(column));
  ColumnStats merged;
  for (const auto& rg : footer_->row_groups) {
    merged.Merge(rg.chunks[static_cast<size_t>(idx)].stats);
  }
  return merged;
}

Result<std::vector<BufferCache::Buffer>> PixelsReader::FetchChunks(
    const RowGroupMeta& rg, const std::vector<int>& col_indexes,
    ScanStats* stats) const {
  std::vector<BufferCache::Buffer> buffers(col_indexes.size());
  std::vector<ByteRange> missing;
  std::vector<size_t> missing_slot;
  for (size_t i = 0; i < col_indexes.size(); ++i) {
    const ChunkMeta& chunk = rg.chunks[static_cast<size_t>(col_indexes[i])];
    if (io_.chunk_cache != nullptr) {
      buffers[i] =
          io_.chunk_cache->Get(storage_, path_, chunk.offset, chunk.length);
    }
    if (buffers[i] == nullptr) {
      missing.push_back(ByteRange{chunk.offset, chunk.length});
      missing_slot.push_back(i);
    } else if (stats != nullptr) {
      ++stats->cache_hits;
    }
  }
  if (!missing.empty()) {
    // One gap-coalesced multi-range read for every chunk the cache could
    // not serve.
    PIXELS_ASSIGN_OR_RETURN(
        std::vector<std::vector<uint8_t>> fetched,
        storage_->ReadRanges(path_, missing, io_.coalesce_gap_bytes));
    for (size_t j = 0; j < missing.size(); ++j) {
      auto buf = std::make_shared<const std::vector<uint8_t>>(
          std::move(fetched[j]));
      if (io_.chunk_cache != nullptr) {
        io_.chunk_cache->Put(storage_, path_, missing[j].offset,
                             missing[j].length, buf);
      }
      buffers[missing_slot[j]] = std::move(buf);
    }
    if (stats != nullptr) stats->cache_misses += missing.size();
  }
  return buffers;
}

Result<RowBatchPtr> PixelsReader::ReadRowGroup(
    size_t index, const std::vector<std::string>& columns) {
  return ReadRowGroup(index, columns, &scan_stats_);
}

Result<RowBatchPtr> PixelsReader::ReadRowGroup(
    size_t index, const std::vector<std::string>& columns,
    ScanStats* stats) const {
  if (index >= footer_->row_groups.size()) {
    return Status::InvalidArgument("row group index out of range");
  }
  const RowGroupMeta& rg = footer_->row_groups[index];
  PIXELS_ASSIGN_OR_RETURN(std::vector<int> col_indexes,
                          ResolveColumns(columns));
  PIXELS_ASSIGN_OR_RETURN(std::vector<BufferCache::Buffer> buffers,
                          FetchChunks(rg, col_indexes, stats));
  auto batch = std::make_shared<RowBatch>();
  for (size_t i = 0; i < col_indexes.size(); ++i) {
    const size_t idx = static_cast<size_t>(col_indexes[i]);
    const ChunkMeta& chunk = rg.chunks[idx];
    // Cache hits bill identically to fetches: the query consumed the
    // chunk either way.
    stats->bytes_scanned += buffers[i]->size();
    ByteReader reader(*buffers[i]);
    PIXELS_ASSIGN_OR_RETURN(
        ColumnVectorPtr col,
        DecodeColumn(footer_->schema[idx].type, chunk.encoding, &reader,
                     rg.num_rows));
    batch->AddColumn(footer_->schema[idx].name, std::move(col));
  }
  return batch;
}

Result<RowBatchPtr> PixelsReader::ReadRowGroupFiltered(
    size_t index, const std::vector<std::string>& columns,
    const std::vector<ScanPredicate>& predicates, ScanStats* stats) const {
  if (index >= footer_->row_groups.size()) {
    return Status::InvalidArgument("row group index out of range");
  }
  const RowGroupMeta& rg = footer_->row_groups[index];
  PIXELS_ASSIGN_OR_RETURN(std::vector<int> col_indexes,
                          ResolveColumns(columns));
  PIXELS_ASSIGN_OR_RETURN(std::vector<BufferCache::Buffer> buffers,
                          FetchChunks(rg, col_indexes, stats));
  // Billing is identical to the unfused path: every projected chunk is
  // charged up front, selected rows or not.
  for (size_t i = 0; i < col_indexes.size(); ++i) {
    stats->bytes_scanned += buffers[i]->size();
  }

  // Lower fusable predicates onto their projected column slot.
  std::vector<std::vector<TypedPredicate>> typed(col_indexes.size());
  for (const auto& pred : predicates) {
    auto op = ParseCmpOp(pred.op);
    if (!op.has_value()) continue;  // executor's Filter handles it exactly
    for (size_t i = 0; i < col_indexes.size(); ++i) {
      const size_t idx = static_cast<size_t>(col_indexes[i]);
      if (footer_->schema[idx].name == pred.column) {
        typed[i].push_back(
            TypedPredicate::Make(footer_->schema[idx].type, *op, pred.literal));
        break;
      }
    }
  }

  // Intersect per-column selections evaluated on the encoded chunks.
  std::optional<std::vector<uint32_t>> sel;
  for (size_t i = 0; i < col_indexes.size(); ++i) {
    if (typed[i].empty()) continue;
    if (sel.has_value() && sel->empty()) break;  // already nothing left
    const size_t idx = static_cast<size_t>(col_indexes[i]);
    ByteReader reader(*buffers[i]);
    PIXELS_ASSIGN_OR_RETURN(
        std::vector<uint32_t> s,
        FilterEncodedChunk(footer_->schema[idx].type, rg.chunks[idx].encoding,
                           &reader, rg.num_rows, typed[i]));
    if (!sel.has_value()) {
      sel = std::move(s);
    } else {
      std::vector<uint32_t> merged;
      merged.reserve(std::min(sel->size(), s.size()));
      std::set_intersection(sel->begin(), sel->end(), s.begin(), s.end(),
                            std::back_inserter(merged));
      *sel = std::move(merged);
    }
  }

  auto batch = std::make_shared<RowBatch>();
  const bool all_rows = !sel.has_value() || sel->size() == rg.num_rows;
  for (size_t i = 0; i < col_indexes.size(); ++i) {
    const size_t idx = static_cast<size_t>(col_indexes[i]);
    const ChunkMeta& chunk = rg.chunks[idx];
    ByteReader reader(*buffers[i]);
    ColumnVectorPtr col;
    if (all_rows) {
      PIXELS_ASSIGN_OR_RETURN(
          col, DecodeColumn(footer_->schema[idx].type, chunk.encoding, &reader,
                            rg.num_rows));
    } else {
      PIXELS_ASSIGN_OR_RETURN(
          col, DecodeColumnSelected(footer_->schema[idx].type, chunk.encoding,
                                    &reader, rg.num_rows, *sel));
    }
    batch->AddColumn(footer_->schema[idx].name, std::move(col));
  }
  return batch;
}

Status PixelsReader::PrefetchRowGroup(
    size_t index, const std::vector<std::string>& columns) const {
  if (io_.chunk_cache == nullptr) return Status::OK();
  if (index >= footer_->row_groups.size()) {
    return Status::InvalidArgument("row group index out of range");
  }
  PIXELS_ASSIGN_OR_RETURN(std::vector<int> col_indexes,
                          ResolveColumns(columns));
  return FetchChunks(footer_->row_groups[index], col_indexes, nullptr)
      .status();
}

std::vector<size_t> PixelsReader::PruneRowGroups(
    const std::vector<ScanPredicate>& predicates) const {
  std::vector<size_t> survivors;
  for (size_t g = 0; g < footer_->row_groups.size(); ++g) {
    if (RowGroupMayMatch(footer_->row_groups[g], predicates)) {
      survivors.push_back(g);
    }
  }
  return survivors;
}

bool PixelsReader::RowGroupMayMatch(
    size_t index, const std::vector<ScanPredicate>& predicates) const {
  if (index >= footer_->row_groups.size()) return false;
  return RowGroupMayMatch(footer_->row_groups[index], predicates);
}

Result<uint64_t> PixelsReader::RowGroupProjectedBytes(
    size_t index, const std::vector<std::string>& columns) const {
  if (index >= footer_->row_groups.size()) {
    return Status::InvalidArgument("row group index out of range");
  }
  PIXELS_ASSIGN_OR_RETURN(std::vector<int> col_indexes,
                          ResolveColumns(columns));
  const RowGroupMeta& rg = footer_->row_groups[index];
  uint64_t total = 0;
  for (int ci : col_indexes) {
    total += rg.chunks[static_cast<size_t>(ci)].length;
  }
  return total;
}

uint64_t PixelsReader::RowGroupRows(size_t index) const {
  if (index >= footer_->row_groups.size()) return 0;
  return footer_->row_groups[index].num_rows;
}

bool PixelsReader::RowGroupMayMatch(
    const RowGroupMeta& rg, const std::vector<ScanPredicate>& predicates) const {
  for (const auto& pred : predicates) {
    auto idx = ColumnIndex(pred.column);
    if (!idx.ok()) continue;  // unknown column: cannot prune
    const ColumnStats& stats = rg.chunks[static_cast<size_t>(*idx)].stats;
    if (!stats.MayMatch(pred.op, pred.literal)) return false;
  }
  return true;
}

Result<std::vector<RowBatchPtr>> PixelsReader::Scan(const ScanOptions& options) {
  scan_stats_ = ScanStats{};
  scan_stats_.row_groups_total = footer_->row_groups.size();
  std::vector<RowBatchPtr> out;
  for (size_t g = 0; g < footer_->row_groups.size(); ++g) {
    if (!RowGroupMayMatch(footer_->row_groups[g], options.predicates)) continue;
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, ReadRowGroup(g, options.columns));
    ++scan_stats_.row_groups_read;
    scan_stats_.rows_read += batch->num_rows();
    out.push_back(std::move(batch));
  }
  return out;
}

Result<std::vector<RowBatchPtr>> PixelsReader::Scan(const ScanOptions& options,
                                                    ThreadPool* pool,
                                                    int parallelism) {
  if (parallelism <= 0) parallelism = DefaultParallelism();
  if (pool == nullptr || parallelism <= 1) return Scan(options);

  const std::vector<size_t> survivors = PruneRowGroups(options.predicates);
  std::vector<RowBatchPtr> out(survivors.size());
  std::vector<ScanStats> morsel_stats(survivors.size());
  PIXELS_RETURN_NOT_OK(pool->ParallelFor(
      0, survivors.size(), /*grain=*/1,
      [&](size_t i) -> Status {
        PIXELS_ASSIGN_OR_RETURN(
            out[i],
            ReadRowGroup(survivors[i], options.columns, &morsel_stats[i]));
        morsel_stats[i].row_groups_read = 1;
        morsel_stats[i].rows_read = out[i]->num_rows();
        return Status::OK();
      },
      parallelism));
  // Merge in morsel order: totals match the serial scan exactly.
  scan_stats_ = ScanStats{};
  scan_stats_.row_groups_total = footer_->row_groups.size();
  for (const auto& s : morsel_stats) {
    scan_stats_.Merge(s);
  }
  return out;
}

}  // namespace pixels
