#include "format/reader.h"

#include <cstring>

namespace pixels {

Result<std::unique_ptr<PixelsReader>> PixelsReader::Open(
    Storage* storage, const std::string& path) {
  PIXELS_ASSIGN_OR_RETURN(uint64_t size, storage->Size(path));
  const uint64_t trailer_len = sizeof(uint64_t) + sizeof(kPixelsMagic);
  if (size < sizeof(kPixelsMagic) + trailer_len) {
    return Status::Corruption("file too small: " + path);
  }
  // Trailer: footer offset + magic.
  PIXELS_ASSIGN_OR_RETURN(std::vector<uint8_t> trailer,
                          storage->ReadRange(path, size - trailer_len, trailer_len));
  if (std::memcmp(trailer.data() + sizeof(uint64_t), kPixelsMagic,
                  sizeof(kPixelsMagic)) != 0) {
    return Status::Corruption("bad trailing magic: " + path);
  }
  uint64_t footer_offset;
  std::memcpy(&footer_offset, trailer.data(), sizeof(uint64_t));
  if (footer_offset < sizeof(kPixelsMagic) || footer_offset >= size - trailer_len) {
    return Status::Corruption("bad footer offset: " + path);
  }
  PIXELS_ASSIGN_OR_RETURN(
      std::vector<uint8_t> footer_bytes,
      storage->ReadRange(path, footer_offset, size - trailer_len - footer_offset));
  ByteReader reader(footer_bytes);
  PIXELS_ASSIGN_OR_RETURN(FileFooter footer, FileFooter::Deserialize(&reader));
  return std::unique_ptr<PixelsReader>(
      new PixelsReader(storage, path, std::move(footer), size));
}

Result<int> PixelsReader::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < footer_.schema.size(); ++i) {
    if (footer_.schema[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound("no column '" + name + "' in " + path_);
}

Result<ColumnStats> PixelsReader::FileStats(const std::string& column) const {
  PIXELS_ASSIGN_OR_RETURN(int idx, ColumnIndex(column));
  ColumnStats merged;
  for (const auto& rg : footer_.row_groups) {
    merged.Merge(rg.chunks[static_cast<size_t>(idx)].stats);
  }
  return merged;
}

Result<RowBatchPtr> PixelsReader::ReadRowGroup(
    size_t index, const std::vector<std::string>& columns) {
  return ReadRowGroup(index, columns, &scan_stats_);
}

Result<RowBatchPtr> PixelsReader::ReadRowGroup(
    size_t index, const std::vector<std::string>& columns,
    ScanStats* stats) const {
  if (index >= footer_.row_groups.size()) {
    return Status::InvalidArgument("row group index out of range");
  }
  const RowGroupMeta& rg = footer_.row_groups[index];
  std::vector<int> col_indexes;
  if (columns.empty()) {
    for (size_t i = 0; i < footer_.schema.size(); ++i) {
      col_indexes.push_back(static_cast<int>(i));
    }
  } else {
    for (const auto& name : columns) {
      PIXELS_ASSIGN_OR_RETURN(int idx, ColumnIndex(name));
      col_indexes.push_back(idx);
    }
  }
  auto batch = std::make_shared<RowBatch>();
  for (int idx : col_indexes) {
    const ChunkMeta& chunk = rg.chunks[static_cast<size_t>(idx)];
    PIXELS_ASSIGN_OR_RETURN(
        std::vector<uint8_t> bytes,
        storage_->ReadRange(path_, chunk.offset, chunk.length));
    stats->bytes_scanned += bytes.size();
    ByteReader reader(bytes);
    PIXELS_ASSIGN_OR_RETURN(
        ColumnVectorPtr col,
        DecodeColumn(footer_.schema[static_cast<size_t>(idx)].type,
                     chunk.encoding, &reader, rg.num_rows));
    batch->AddColumn(footer_.schema[static_cast<size_t>(idx)].name,
                     std::move(col));
  }
  return batch;
}

std::vector<size_t> PixelsReader::PruneRowGroups(
    const std::vector<ScanPredicate>& predicates) const {
  std::vector<size_t> survivors;
  for (size_t g = 0; g < footer_.row_groups.size(); ++g) {
    if (RowGroupMayMatch(footer_.row_groups[g], predicates)) {
      survivors.push_back(g);
    }
  }
  return survivors;
}

bool PixelsReader::RowGroupMayMatch(
    const RowGroupMeta& rg, const std::vector<ScanPredicate>& predicates) const {
  for (const auto& pred : predicates) {
    auto idx = ColumnIndex(pred.column);
    if (!idx.ok()) continue;  // unknown column: cannot prune
    const ColumnStats& stats = rg.chunks[static_cast<size_t>(*idx)].stats;
    if (!stats.MayMatch(pred.op, pred.literal)) return false;
  }
  return true;
}

Result<std::vector<RowBatchPtr>> PixelsReader::Scan(const ScanOptions& options) {
  scan_stats_ = ScanStats{};
  scan_stats_.row_groups_total = footer_.row_groups.size();
  std::vector<RowBatchPtr> out;
  for (size_t g = 0; g < footer_.row_groups.size(); ++g) {
    if (!RowGroupMayMatch(footer_.row_groups[g], options.predicates)) continue;
    PIXELS_ASSIGN_OR_RETURN(RowBatchPtr batch, ReadRowGroup(g, options.columns));
    ++scan_stats_.row_groups_read;
    scan_stats_.rows_read += batch->num_rows();
    out.push_back(std::move(batch));
  }
  return out;
}

Result<std::vector<RowBatchPtr>> PixelsReader::Scan(const ScanOptions& options,
                                                    ThreadPool* pool,
                                                    int parallelism) {
  if (parallelism <= 0) parallelism = DefaultParallelism();
  if (pool == nullptr || parallelism <= 1) return Scan(options);

  const std::vector<size_t> survivors = PruneRowGroups(options.predicates);
  std::vector<RowBatchPtr> out(survivors.size());
  std::vector<ScanStats> morsel_stats(survivors.size());
  PIXELS_RETURN_NOT_OK(pool->ParallelFor(
      0, survivors.size(), /*grain=*/1,
      [&](size_t i) -> Status {
        PIXELS_ASSIGN_OR_RETURN(
            out[i],
            ReadRowGroup(survivors[i], options.columns, &morsel_stats[i]));
        morsel_stats[i].row_groups_read = 1;
        morsel_stats[i].rows_read = out[i]->num_rows();
        return Status::OK();
      },
      parallelism));
  // Merge in morsel order: totals match the serial scan exactly.
  scan_stats_ = ScanStats{};
  scan_stats_.row_groups_total = footer_.row_groups.size();
  for (const auto& s : morsel_stats) {
    scan_stats_.row_groups_read += s.row_groups_read;
    scan_stats_.rows_read += s.rows_read;
    scan_stats_.bytes_scanned += s.bytes_scanned;
  }
  return out;
}

}  // namespace pixels
