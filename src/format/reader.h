// PixelsReader: opens a .pxl object, exposes schema and stats, and scans
// projected columns with zone-map-based row-group skipping.
#pragma once

#include <memory>
#include <optional>

#include "common/thread_pool.h"
#include "format/batch.h"
#include "format/file_format.h"
#include "storage/storage.h"

namespace pixels {

/// A simple comparison predicate pushed into the scan for row-group
/// pruning. Conjunction semantics across a vector of these.
struct ScanPredicate {
  std::string column;
  std::string op;  // "=", "<", "<=", ">", ">=", "<>"
  Value literal;
};

/// Scan configuration: which columns to materialize (empty = all) and
/// which predicates to use for pruning.
struct ScanOptions {
  std::vector<std::string> columns;
  std::vector<ScanPredicate> predicates;
};

/// Counters describing one scan, fed into billing ($/TB-scan) and the
/// storage benches.
struct ScanStats {
  uint64_t row_groups_total = 0;
  uint64_t row_groups_read = 0;
  uint64_t rows_read = 0;
  uint64_t bytes_scanned = 0;  // encoded chunk bytes actually fetched

  void Merge(const ScanStats& other) {
    row_groups_total += other.row_groups_total;
    row_groups_read += other.row_groups_read;
    rows_read += other.rows_read;
    bytes_scanned += other.bytes_scanned;
  }
};

/// Random-access reader over one Pixels file.
class PixelsReader {
 public:
  /// Opens a file: reads the trailer, validates magic, parses the footer.
  static Result<std::unique_ptr<PixelsReader>> Open(Storage* storage,
                                                    const std::string& path);

  const FileSchema& schema() const { return footer_.schema; }
  uint64_t NumRows() const { return footer_.NumRows(); }
  size_t NumRowGroups() const { return footer_.row_groups.size(); }

  /// File-level stats of one column (merged across row groups).
  Result<ColumnStats> FileStats(const std::string& column) const;

  /// Reads one row group with projection; `options.predicates` are NOT
  /// applied row-wise here — only used by `Scan` for pruning. Accumulates
  /// fetched chunk bytes into `scan_stats()`.
  Result<RowBatchPtr> ReadRowGroup(size_t index,
                                   const std::vector<std::string>& columns);

  /// Thread-safe variant: accumulates into the caller-supplied `stats`
  /// instead of the reader's internal counters. Concurrent calls with
  /// distinct `stats` objects are safe (this is the morsel entry point of
  /// the parallel scan path).
  Result<RowBatchPtr> ReadRowGroup(size_t index,
                                   const std::vector<std::string>& columns,
                                   ScanStats* stats) const;

  /// Indices of row groups whose zone maps may match `predicates`, in
  /// file order. Pure metadata; thread-safe.
  std::vector<size_t> PruneRowGroups(
      const std::vector<ScanPredicate>& predicates) const;

  /// Scans the whole file: prunes row groups whose zone maps cannot match
  /// the predicates, reads remaining ones with projection. Returns the
  /// surviving batches; exact filtering is the executor's job.
  Result<std::vector<RowBatchPtr>> Scan(const ScanOptions& options);

  /// Parallel scan: surviving row groups are decoded concurrently on
  /// `pool` (one morsel per row group), up to `parallelism` at a time
  /// (<= 1 degenerates to the serial scan). Batch order and scan_stats()
  /// totals are identical to the serial scan.
  Result<std::vector<RowBatchPtr>> Scan(const ScanOptions& options,
                                        ThreadPool* pool, int parallelism);

  /// Stats of the most recent Scan.
  const ScanStats& scan_stats() const { return scan_stats_; }

 private:
  PixelsReader(Storage* storage, std::string path, FileFooter footer,
               uint64_t file_size)
      : storage_(storage),
        path_(std::move(path)),
        footer_(std::move(footer)),
        file_size_(file_size) {}

  Result<int> ColumnIndex(const std::string& name) const;
  bool RowGroupMayMatch(const RowGroupMeta& rg,
                        const std::vector<ScanPredicate>& predicates) const;

  Storage* storage_;
  std::string path_;
  FileFooter footer_;
  uint64_t file_size_;
  ScanStats scan_stats_;  // not touched by the const/thread-safe paths
};

}  // namespace pixels
